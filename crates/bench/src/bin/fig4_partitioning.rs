//! Figure 4: imbalance index vs number of partitions for the static, dynamic
//! and greedy column-partitioning strategies, on a ClueWeb12-like Zipfian
//! vocabulary.
//!
//! Expected shape: greedy is orders of magnitude better than both randomized
//! strategies, until the number of partitions grows so large that the single
//! most frequent word no longer fits one partition's share, at which point the
//! greedy curve shoots up (the paper observes this at a few hundred machines).

use warplda::prelude::*;
use warplda::sparse::{imbalance_index, partition_by_size};
use warplda_bench::{full_scale, write_csv};

fn main() {
    // ClueWeb12-like column-size profile: 1M-word vocabulary (paper), Zipfian
    // term frequencies, most frequent word ≈ 0.26% of tokens after stop-word
    // removal (the paper quotes 0.257%).
    let vocab_size = if full_scale() { 1_000_000 } else { 200_000 };
    let total_tokens: u64 = if full_scale() { 10_000_000_000 } else { 1_000_000_000 };
    // The exponent is chosen so the most frequent word carries ~0.26% of all
    // tokens, the value the paper quotes for ClueWeb12 after stop-word removal.
    let zipf_exponent = if full_scale() { 0.65 } else { 0.6 };
    let cfg = SyntheticConfig { vocab_size, zipf_exponent, ..SyntheticConfig::default() };
    let tf = ZipfGenerator::new(cfg).term_frequency_profile(total_tokens);
    let top_frac = tf[0] as f64 / total_tokens as f64;
    println!(
        "vocabulary = {vocab_size}, tokens = {total_tokens}, most frequent word = {:.3}% of tokens",
        top_frac * 100.0
    );

    let partition_counts: Vec<usize> = vec![2, 4, 8, 16, 32, 64, 128, 256, 512];
    println!("\n{:>11} {:>14} {:>14} {:>14}", "partitions", "static", "dynamic", "greedy");
    let mut rows = Vec::new();
    for &p in &partition_counts {
        let mut values = Vec::new();
        for (label, strategy) in [
            ("static", PartitionStrategy::Static { seed: 11 }),
            ("dynamic", PartitionStrategy::Dynamic),
            ("greedy", PartitionStrategy::Greedy),
        ] {
            let assignment = partition_by_size(&tf, p, strategy);
            let mut loads = vec![0u64; p];
            for (w, &owner) in assignment.iter().enumerate() {
                loads[owner as usize] += tf[w];
            }
            let imbalance = imbalance_index(&loads);
            values.push(imbalance);
            rows.push(format!("{p},{label},{imbalance:.6}"));
        }
        println!("{:>11} {:>14.6} {:>14.6} {:>14.6}", p, values[0], values[1], values[2]);
    }
    write_csv("fig4_partitioning.csv", "partitions,strategy,imbalance_index", &rows);
    println!("\nExpected shape (Figure 4): greedy ≪ static/dynamic for small-to-moderate P, with");
    println!(
        "the greedy curve rising sharply once P approaches the inverse of the top word's share."
    );
}
