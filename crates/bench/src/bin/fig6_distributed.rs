//! Figure 6: distributed convergence on the ClueWeb12-subset-like preset —
//! WarpLDA (M=4) on the simulated multi-machine cluster against LightLDA
//! (M=16) as the baseline, log likelihood vs (modelled) time.
//!
//! Expected shape: WarpLDA reaches any given likelihood roughly an order of
//! magnitude sooner than LightLDA.

use std::time::Instant;

use warplda::prelude::*;
use warplda_bench::{full_scale, write_csv};

fn main() {
    let full = full_scale();
    let corpus = if full {
        DatasetPreset::ClueWebSubsetLike.generate()
    } else {
        DatasetPreset::ClueWebSubsetLike.generate_scaled(10)
    };
    let k = if full { 10_000 } else { 300 };
    let iterations = if full { 100 } else { 30 };
    let workers = 8;
    let params = ModelParams::paper_defaults(k);
    println!("corpus: {}", corpus.stats().table_row("ClueWeb12-subset-like"));
    println!("K = {k}, {workers} simulated machines\n");

    let doc_view = DocMajorView::build(&corpus);
    let word_view = WordMajorView::build(&corpus, &doc_view);
    let mut rows = Vec::new();

    // Distributed WarpLDA, M = 4.
    let config = WarpLdaConfig::with_mh_steps(4);
    let cluster = ClusterConfig::tianhe2_like(workers, config.mh_steps);
    let mut warp = DistributedWarpLda::new(&corpus, params, config, cluster, 3);
    println!("{:<22} {:>8} {:>12} {:>18}", "sampler", "iter", "time (s)", "log likelihood");
    let mut warp_time = 0.0;
    for it in 1..=iterations {
        let r = warp.run_iteration(&corpus, it % 5 == 0 || it == iterations);
        warp_time += r.wall_sec;
        if let Some(ll) = r.log_likelihood {
            println!("{:<22} {:>8} {:>12.2} {:>18.1}", "WarpLDA (M=4, dist)", it, warp_time, ll);
            rows.push(format!("WarpLDA,{it},{warp_time:.4},{ll:.3}"));
        }
    }

    // LightLDA baseline, M = 16, single machine (measured time).
    let mut light = LightLda::new(&corpus, params, 16, 3);
    let mut light_time = 0.0;
    for it in 1..=iterations {
        let t0 = Instant::now();
        light.run_iteration();
        light_time += t0.elapsed().as_secs_f64();
        if it % 5 == 0 || it == iterations {
            let ll = light.log_likelihood(&corpus, &doc_view, &word_view);
            println!("{:<22} {:>8} {:>12.2} {:>18.1}", "LightLDA (M=16)", it, light_time, ll);
            rows.push(format!("LightLDA,{it},{light_time:.4},{ll:.3}"));
        }
    }

    write_csv("fig6_distributed.csv", "sampler,iteration,seconds,log_likelihood", &rows);
    println!("\nExpected shape (Figure 6): WarpLDA reaches the same likelihood roughly 10x sooner");
    println!("in wall-clock time than LightLDA.");
}
