//! Figure 6: distributed convergence on the ClueWeb12-subset-like preset —
//! WarpLDA (M=4) on the simulated multi-machine cluster against LightLDA
//! (M=16) as the baseline, log likelihood vs (modelled) time.
//!
//! Expected shape: WarpLDA reaches any given likelihood roughly an order of
//! magnitude sooner than LightLDA.

use warplda::prelude::*;
use warplda_bench::{full_scale, logs_to_csv_rows, run_trace, write_csv};

fn main() {
    let full = full_scale();
    let corpus = if full {
        DatasetPreset::ClueWebSubsetLike.generate()
    } else {
        DatasetPreset::ClueWebSubsetLike.generate_scaled(10)
    };
    let k = if full { 10_000 } else { 300 };
    let iterations = if full { 100 } else { 30 };
    let workers = 8;
    let params = ModelParams::paper_defaults(k);
    println!("corpus: {}", corpus.stats().table_row("ClueWeb12-subset-like"));
    println!("K = {k}, {workers} simulated machines\n");

    // Distributed WarpLDA, M = 4: driven by the distributed runtime, reported
    // through the same IterationLog pipeline as every other run.
    let config = WarpLdaConfig::with_mh_steps(4);
    let cluster = ClusterConfig::tianhe2_like(workers, config.mh_steps);
    let mut warp = DistributedWarpLda::new(&corpus, params, config, cluster, 3);
    warp.run(&corpus, iterations, 5);
    let warp_log = warp.iteration_log("WarpLDA (M=4, dist)");

    // LightLDA baseline, M = 16, single machine (measured time).
    let mut light = LightLda::new(&corpus, params, 16, 3);
    let light_log = run_trace("LightLDA (M=16)", &mut light, &corpus, iterations, 5);

    println!("{:<22} {:>8} {:>12} {:>18}", "sampler", "iter", "time (s)", "log likelihood");
    for log in [&warp_log, &light_log] {
        for p in log.eval_points() {
            println!(
                "{:<22} {:>8} {:>12.2} {:>18.1}",
                log.name(),
                p.iteration,
                p.seconds,
                p.log_likelihood.unwrap()
            );
        }
    }

    write_csv(
        "fig6_distributed.csv",
        "sampler,iteration,seconds,log_likelihood",
        &logs_to_csv_rows(&[warp_log, light_log]),
    );
    println!("\nExpected shape (Figure 6): WarpLDA reaches the same likelihood roughly 10x sooner");
    println!("in wall-clock time than LightLDA.");
}
