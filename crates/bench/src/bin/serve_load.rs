//! The serving-side load harness behind `BENCH_PR7_SERVE.json`.
//!
//! Runs the **standard loopback load mix** against the event-loop query
//! server: train and freeze a small model, bind the server, hold a crowd of
//! idle keep-alive connections open for the whole run, then drive active
//! client threads through a fixed request budget. Records throughput and
//! service-time percentiles (p50/p95/p99) in the serving-trajectory JSON
//! schema (`warplda-serve-trajectory/1`) that CI validates with
//! `perf_report --validate-serving` — the serving-side counterpart of the
//! training `BENCH_*` discipline.
//!
//! ```text
//! cargo run --release -p warplda-bench --bin serve_load                  # standard mix
//! cargo run --release -p warplda-bench --bin serve_load -- --tiny       # CI smoke budget
//! cargo run --release -p warplda-bench --bin serve_load -- \
//!     --out BENCH_PR7_SERVE.json --label workers2_idle1024
//! ```
//!
//! With `--label`, the run is merged into `--out` under
//! `{"runs": {<label>: …}}` so a single file carries the SLO trajectory
//! across PRs. The idle crowd is the acceptance criterion made executable:
//! with 2 workers the server must keep ≥ 1024 idle connections open *and*
//! keep answering the active clients — a sample of idle connections is
//! queried at the end of the run to prove they are still live.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use warplda::prelude::*;
use warplda::serve::wire::Response;
use warplda_bench::json::Json;
use warplda_bench::latency::{LatencySummary, ServingRun, SERVING_SCHEMA};

struct LoadMix {
    workers: usize,
    idle: usize,
    clients: usize,
    requests_per_client: usize,
}

/// Deterministic unseen pseudo-documents over the model vocabulary.
fn query_doc(vocab_size: usize, i: usize) -> Vec<u32> {
    let len = 3 + (i % 9);
    (0..len).map(|j| ((i * 131 + j * 17 + 7) % vocab_size) as u32).collect()
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn arg_usize(args: &[String], flag: &str, default: usize) -> usize {
    arg_value(args, flag).map_or(default, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("[serve_load] {flag} expects a number, got {v:?}");
            std::process::exit(2);
        })
    })
}

/// Merges `run` into the trajectory file at `out` under `label`, creating
/// the file if absent. Mirrors the perf-report merge discipline: an existing
/// file must parse as a trajectory or the write is refused — the runs it
/// exists to preserve must never be silently clobbered.
fn write_trajectory(run: &ServingRun, out: &str, label: &str) {
    let mut doc = match std::fs::read_to_string(out) {
        Err(_) => {
            let mut d = Json::obj();
            d.set("schema", Json::Str(SERVING_SCHEMA.into()));
            d.set("runs", Json::obj());
            d
        }
        Ok(text) => match Json::parse(&text) {
            Ok(d) if d.get("runs").is_some() => d,
            Ok(_) => {
                eprintln!(
                    "[serve_load] {out} exists but is not a trajectory file \
                     (no \"runs\" key); refusing to overwrite it"
                );
                std::process::exit(2);
            }
            Err(e) => {
                eprintln!(
                    "[serve_load] {out} exists but is not valid JSON ({e}); \
                     refusing to overwrite it"
                );
                std::process::exit(2);
            }
        },
    };
    let mut runs = doc.get("runs").cloned().unwrap_or_else(Json::obj);
    runs.set(label, run.to_json());
    doc.set("runs", runs);
    if let Some(parent) = std::path::Path::new(out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    warplda::corpus::io::atomic_write_bytes(std::path::Path::new(&out), doc.render().as_bytes())
        .expect("write serving trajectory");
    println!("[serve_load] wrote {out} (label {label:?})");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let mix = LoadMix {
        workers: arg_usize(&args, "--workers", 2),
        idle: arg_usize(&args, "--idle", if tiny { 64 } else { 1024 }),
        clients: arg_usize(&args, "--clients", if tiny { 2 } else { 4 }),
        requests_per_client: arg_usize(&args, "--requests", if tiny { 250 } else { 2000 }),
    };
    let out = arg_value(&args, "--out").unwrap_or_else(|| "target/serve_load.json".to_string());
    let label = arg_value(&args, "--label")
        .unwrap_or_else(|| format!("workers{}_idle{}", mix.workers, mix.idle));

    // 1. Train and freeze the serving model.
    let corpus = DatasetPreset::Tiny.generate_scaled(4);
    let params = ModelParams::paper_defaults(16);
    let mut sampler = WarpLda::new(&corpus, params, WarpLdaConfig::with_mh_steps(2), 42);
    for _ in 0..20 {
        sampler.run_iteration();
    }
    let model = Arc::new(TopicModel::freeze_sampler(&sampler, &corpus));
    let vocab_size = corpus.vocab_size();

    // 2. Serve on loopback.
    let config = ServerConfig { workers: mix.workers, ..ServerConfig::default() };
    let handle =
        Server::bind("127.0.0.1:0", Arc::clone(&model), config).expect("bind loopback server");
    let addr = handle.addr();
    println!(
        "[serve_load] serving on {addr}: {} workers, {} idle connections, \
         {} clients x {} requests",
        mix.workers, mix.idle, mix.clients, mix.requests_per_client
    );

    // 3. Hold the idle keep-alive crowd open for the entire run.
    let mut idle_conns: Vec<Client> = (0..mix.idle)
        .map(|i| {
            Client::connect_timeout(addr, Duration::from_secs(10))
                .unwrap_or_else(|e| panic!("idle connection {i} failed: {e}"))
        })
        .collect();
    let settle = Instant::now();
    while (handle.counters().open_connections as usize) < mix.idle {
        assert!(
            settle.elapsed() < Duration::from_secs(30),
            "idle crowd never settled: {:?}",
            handle.counters()
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // 4. Active traffic: every client issues its budget of mixed-size
    //    queries; replies are counted by kind.
    let ok_replies = AtomicU64::new(0);
    let error_replies = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..mix.clients {
            let ok_replies = &ok_replies;
            let error_replies = &error_replies;
            scope.spawn(move || {
                let mut client = Client::connect_timeout(addr, Duration::from_secs(10))
                    .expect("active client connect");
                client.set_deadline(Some(Duration::from_secs(60))).expect("deadline");
                for r in 0..mix.requests_per_client {
                    let i = c * mix.requests_per_client + r;
                    let doc = query_doc(vocab_size, i);
                    match client.query_tokens(&doc, i as u64, 4).expect("query") {
                        Response::Ok(_) => ok_replies.fetch_add(1, Ordering::Relaxed),
                        Response::Error(_) => error_replies.fetch_add(1, Ordering::Relaxed),
                    };
                }
            });
        }
    });
    let duration = t0.elapsed();

    // 5. Snapshot the run's accounting before anything else touches the
    //    server — the liveness probes below must not pollute the measurement.
    let stats = handle.latency();
    let counters = handle.counters();

    // 6. The idle crowd must still be live: query a sample of it.
    for (i, client) in idle_conns.iter_mut().enumerate().step_by((mix.idle / 8).max(1)) {
        client.set_deadline(Some(Duration::from_secs(60))).expect("deadline");
        let doc = query_doc(vocab_size, i);
        match client.query_tokens(&doc, i as u64, 4).expect("idle query") {
            Response::Ok(_) | Response::Error(_) => {}
        }
    }

    // 7. Assemble the run record.
    let requests = (mix.clients * mix.requests_per_client) as u64;
    let answered = ok_replies.load(Ordering::Relaxed) + error_replies.load(Ordering::Relaxed);
    assert_eq!(answered, requests, "every request must be answered: {counters:?}");
    let served = stats.count.saturating_sub(counters.deadline_expired);
    let run = ServingRun {
        workers: mix.workers as u64,
        idle_connections: mix.idle as u64,
        requests,
        shed: counters.shed_overload,
        duration_secs: duration.as_secs_f64(),
        throughput_rps: served as f64 / duration.as_secs_f64().max(1e-9),
        latency: LatencySummary {
            count: stats.count,
            mean_us: stats.mean_us,
            p50_us: stats.p50_us,
            p95_us: stats.p95_us,
            p99_us: stats.p99_us,
            max_us: stats.max_us,
        },
    };
    println!(
        "[serve_load] {} requests in {:.2}s: {:.0} served/s, \
         p50 {}µs p95 {}µs p99 {}µs max {}µs; shed {}, deadline-expired {}, \
         stalled disconnects {}",
        requests,
        run.duration_secs,
        run.throughput_rps,
        run.latency.p50_us,
        run.latency.p95_us,
        run.latency.p99_us,
        run.latency.max_us,
        counters.shed_overload,
        counters.deadline_expired,
        counters.stalled_disconnects
    );

    write_trajectory(&run, &out, &label);
    drop(idle_conns);
    handle.shutdown();
}
