//! Figure 8: impact of the number of MH proposals M on WarpLDA convergence,
//! log likelihood vs wall-clock time for M ∈ {1, 2, 4, 8, 16}.
//!
//! Expected shape: larger M converges in fewer iterations; in wall-clock terms
//! the small values (1–4) are the sweet spot because each iteration is
//! proportionally cheaper.

use warplda::prelude::*;
use warplda_bench::{full_scale, logs_to_csv_rows, run_trace, write_csv};

fn main() {
    let full = full_scale();
    let corpus = if full {
        DatasetPreset::NyTimesLike.generate()
    } else {
        DatasetPreset::NyTimesLike.generate_scaled(6)
    };
    let k = if full { 1000 } else { 100 };
    let iterations = if full { 200 } else { 60 };
    let params = ModelParams::paper_defaults(k);
    println!("corpus: {}", corpus.stats().table_row("NYTimes-like"));
    println!("K = {k}\n");

    let mut traces = Vec::new();
    for m in [1usize, 2, 4, 8, 16] {
        let mut s = WarpLda::new(&corpus, params, WarpLdaConfig::with_mh_steps(m), 9);
        traces.push(run_trace(&format!("M={m}"), &mut s, &corpus, iterations, 5));
    }

    println!("{:<8} {:>16} {:>16} {:>14}", "config", "final LL", "seconds total", "Mtoken/s");
    for t in &traces {
        println!(
            "{:<8} {:>16.1} {:>16.2} {:>14.2}",
            t.name(),
            t.final_ll(),
            t.total_seconds(),
            t.mean_tokens_per_sec() / 1e6
        );
    }

    println!("\nlog likelihood by time:");
    for t in &traces {
        let line: Vec<String> = t
            .eval_points()
            .map(|p| format!("({:.2}s, {:.0})", p.seconds, p.log_likelihood.unwrap()))
            .collect();
        println!("{:<8} {}", t.name(), line.join(" "));
    }

    write_csv(
        "fig8_mh_steps.csv",
        "sampler,iteration,seconds,log_likelihood",
        &logs_to_csv_rows(&traces),
    );
    println!("\nExpected shape (Figure 8): per iteration, larger M converges faster; per unit of");
    println!("time, small M (1, 2 or 4) is sufficient — matching the paper's recommendation.");
}
