//! Figure 9(a): multi-threading speedup of WarpLDA on a single machine —
//! measured throughput per thread count plus the balance-limited speedup the
//! partitioner allows.
//!
//! Expected shape: near-linear scaling while threads ≤ physical cores (the
//! paper reports 17x on 24 cores). On a host with few cores the *measured*
//! column saturates at the core count; the balance-limited column shows what
//! the partitioning itself would allow on a wider machine.

use warplda::prelude::*;
use warplda::sparse::{imbalance_index, partition_by_size};
use warplda_bench::{full_scale, write_csv};

fn main() {
    let full = full_scale();
    let corpus = if full {
        DatasetPreset::NyTimesLike.generate()
    } else {
        DatasetPreset::NyTimesLike.generate_scaled(3)
    };
    let k = if full { 1000 } else { 200 };
    let iterations = if full { 20 } else { 8 };
    let params = ModelParams::paper_defaults(k);
    let config = WarpLdaConfig::with_mh_steps(2);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("corpus: {}", corpus.stats().table_row("NYTimes-like"));
    println!("K = {k}, M = {}, host has {cores} core(s)\n", config.mh_steps);

    let trainer = Trainer::new(&corpus);
    let (doc_view, word_view) = (trainer.doc_view(), trainer.word_view());
    let doc_sizes: Vec<u64> =
        (0..corpus.num_docs()).map(|d| doc_view.doc_len(d as u32) as u64).collect();
    let word_sizes: Vec<u64> =
        (0..corpus.vocab_size()).map(|w| word_view.word_len(w as u32) as u64).collect();

    let thread_counts: Vec<usize> = [1usize, 2, 4, 6, 12, 24]
        .into_iter()
        .filter(|&t| t == 1 || t <= 2 * cores.max(12))
        .collect();

    println!(
        "{:>8} {:>16} {:>18} {:>24}",
        "threads", "measured Mtok/s", "measured speedup", "balance-limited speedup"
    );
    let mut rows = Vec::new();
    let mut baseline = None;
    for &threads in &thread_counts {
        let mut sampler = ParallelWarpLda::new(&corpus, params, config, 3, threads);
        // Warm-up one iteration, then measure through the unified pipeline.
        let tps = trainer.measure_throughput(&mut sampler, iterations, 1, corpus.num_tokens());
        let base = *baseline.get_or_insert(tps);

        // Balance-limited speedup: how much the greedy/dynamic row and column
        // partitions allow, independent of this host's core count.
        let doc_loads = {
            let a = partition_by_size(&doc_sizes, threads, PartitionStrategy::Greedy);
            let mut loads = vec![0u64; threads];
            for (i, &p) in a.iter().enumerate() {
                loads[p as usize] += doc_sizes[i];
            }
            loads
        };
        let word_loads = {
            let a = partition_by_size(&word_sizes, threads, PartitionStrategy::Dynamic);
            let mut loads = vec![0u64; threads];
            for (i, &p) in a.iter().enumerate() {
                loads[p as usize] += word_sizes[i];
            }
            loads
        };
        let balance_speedup =
            threads as f64 / (1.0 + imbalance_index(&doc_loads).max(imbalance_index(&word_loads)));

        println!(
            "{:>8} {:>16.2} {:>18.2} {:>24.2}",
            threads,
            tps / 1e6,
            tps / base,
            balance_speedup
        );
        rows.push(format!("{threads},{tps:.1},{:.3},{balance_speedup:.3}", tps / base));
    }
    write_csv(
        "fig9a_threads.csv",
        "threads,tokens_per_sec,measured_speedup,balance_limited_speedup",
        &rows,
    );
    println!(
        "\nExpected shape (Figure 9a): close-to-linear speedup up to the physical core count."
    );
    if cores == 1 {
        println!("NOTE: this host exposes a single core, so measured speedup cannot exceed 1; the");
        println!(
            "balance-limited column shows that the work decomposition itself scales (the paper"
        );
        println!("measures 17x on 24 physical cores).");
    }
}
