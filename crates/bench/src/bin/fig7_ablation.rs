//! Figure 7: quality of the MCEM solution vs the CGS solution — the ablation
//! ladder LightLDA → +DW → +DD → +SP → WarpLDA, all with M = 1, log likelihood
//! per iteration.
//!
//! Expected shape: all five curves lie essentially on top of each other,
//! i.e. delayed count updates and the simple word proposal do not hurt the
//! per-iteration convergence (Section 6.3).

use warplda::prelude::*;
use warplda_bench::{full_scale, logs_to_csv_rows, run_trace, write_csv};

fn main() {
    let full = full_scale();
    let corpus = if full {
        DatasetPreset::NyTimesLike.generate()
    } else {
        DatasetPreset::NyTimesLike.generate_scaled(6)
    };
    let k = if full { 1000 } else { 100 };
    let iterations = if full { 200 } else { 60 };
    let params = ModelParams::paper_defaults(k);
    println!("corpus: {}", corpus.stats().table_row("NYTimes-like"));
    println!("K = {k}, M = 1\n");

    let mut traces = Vec::new();
    for variant in [
        LightLdaVariant::standard(),
        LightLdaVariant::delayed_word(),
        LightLdaVariant::delayed_word_doc(),
        LightLdaVariant::warp_like(),
    ] {
        let mut s = LightLda::with_variant(&corpus, params, 1, 5, variant);
        traces.push(run_trace(variant.label(), &mut s, &corpus, iterations, 5));
    }
    let mut warp = WarpLda::new(&corpus, params, WarpLdaConfig::with_mh_steps(1), 5);
    traces.push(run_trace("WarpLDA", &mut warp, &corpus, iterations, 5));

    let columns: Vec<Vec<&IterationRecord>> =
        traces.iter().map(|t| t.eval_points().collect()).collect();
    print!("{:>6}", "iter");
    for t in &traces {
        print!(" {:>20}", t.name());
    }
    println!();
    for (i, p) in columns[0].iter().enumerate() {
        print!("{:>6}", p.iteration);
        for points in &columns {
            print!(" {:>20.1}", points[i].log_likelihood.unwrap());
        }
        println!();
    }

    let finals: Vec<f64> = traces.iter().map(IterationLog::final_ll).collect();
    let best = finals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let worst = finals.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "\nfinal likelihood spread across the ladder: {:.2}% of |best|",
        (best - worst).abs() / best.abs() * 100.0
    );
    write_csv(
        "fig7_ablation.csv",
        "sampler,iteration,seconds,log_likelihood",
        &logs_to_csv_rows(&traces),
    );
    println!("Expected shape (Figure 7): all five curves need roughly the same number of");
    println!("iterations — the MCEM simplifications of WarpLDA do not change solution quality.");
}
