//! Figure 5: single-machine convergence of WarpLDA (M=2) vs LightLDA (best M)
//! vs F+LDA on the NYTimes-like and PubMed-like presets, with the five panels
//! of the paper: LL by iteration, LL by time, iteration-ratio and time-ratio
//! to reach target likelihoods, and throughput.
//!
//! Expected shape: WarpLDA needs somewhat *more iterations* than LightLDA /
//! F+LDA to reach a given likelihood but far *less time*; its throughput is
//! the highest of the three.

use warplda::prelude::*;
use warplda_bench::{
    default_targets, full_scale, logs_to_csv_rows, print_convergence_report, run_trace, write_csv,
};

fn run_setting(name: &str, corpus: &Corpus, k: usize, iterations: usize, eval_every: usize) {
    println!("\n================ {name}, K = {k} ================");
    println!("corpus: {}", corpus.stats().table_row(name));
    let params = ModelParams::paper_defaults(k);

    let mut traces = Vec::new();
    let mut warp = WarpLda::new(corpus, params, WarpLdaConfig::with_mh_steps(2), 1);
    traces.push(run_trace("WarpLDA (M=2)", &mut warp, corpus, iterations, eval_every));
    let mut light = LightLda::new(corpus, params, 4, 1);
    traces.push(run_trace("LightLDA (M=4)", &mut light, corpus, iterations, eval_every));
    let mut fplus = FPlusLda::new(corpus, params, 1);
    traces.push(run_trace("F+LDA", &mut fplus, corpus, iterations, eval_every));

    let targets = default_targets(&traces);
    print_convergence_report(&traces, &targets);
    write_csv(
        &format!("fig5_{}_k{}.csv", name.to_lowercase().replace([' ', '-'], "_"), k),
        "sampler,iteration,seconds,log_likelihood",
        &logs_to_csv_rows(&traces),
    );
}

fn main() {
    let full = full_scale();
    // Quick mode trains on reduced presets with reduced K so the whole figure
    // regenerates in a few minutes; --full uses the full presets and the
    // paper-style K grid (scaled: the paper's 10^3..10^5 topics on 100M+ token
    // corpora are out of reach for a laptop-scale synthetic corpus).
    let (nytimes, pubmed, k_small, k_large, iters, eval_every) = if full {
        (
            DatasetPreset::NyTimesLike.generate(),
            DatasetPreset::PubMedLike.generate(),
            1000,
            4000,
            150,
            10,
        )
    } else {
        (
            DatasetPreset::NyTimesLike.generate_scaled(4),
            DatasetPreset::PubMedLike.generate_scaled(10),
            100,
            400,
            60,
            5,
        )
    };

    // The four rows of Figure 5: NYTimes at two K values, PubMed at two K values.
    run_setting("NYTimes-like", &nytimes, k_small, iters, eval_every);
    run_setting("NYTimes-like", &nytimes, k_large, iters, eval_every);
    run_setting("PubMed-like", &pubmed, k_small, iters, eval_every);
    run_setting("PubMed-like", &pubmed, k_large, iters, eval_every);

    println!("\nExpected shape (Figure 5): all samplers converge to the same likelihood; WarpLDA");
    println!("uses more iterations than the baselines but is the fastest in wall-clock time, with");
    println!("the highest token throughput.");
}
