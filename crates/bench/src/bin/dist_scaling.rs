//! Measured scaling curve of the real multi-process backend.
//!
//! Spawns `ProcessCluster`s of increasing worker counts over the same corpus
//! and seed, measures wall-clock throughput and loopback bytes per worker
//! count, cross-checks every run's final assignments against the in-process
//! `ParallelWarpLda` oracle, and writes the `warplda-dist-scaling/1` JSON
//! curve that `perf_report --validate-scaling` schema-checks in CI.
//!
//! ```text
//! cargo run --release -p warplda-bench --bin dist_scaling            # 1/2/4 workers
//! cargo run --release -p warplda-bench --bin dist_scaling -- --tiny  # CI smoke budget
//! cargo run --release -p warplda-bench --bin dist_scaling -- --out target/dist_scaling.json
//! ```

use warplda::prelude::*;
use warplda_bench::scaling::{scaling_report, ScalingPoint};

const SEED: u64 = 42;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let out = arg_value(&args, "--out").unwrap_or_else(|| "target/dist_scaling.json".to_string());

    let (preset_name, corpus, topics, worker_counts, iterations): (_, _, _, &[usize], u64) = if tiny
    {
        ("tiny", DatasetPreset::Tiny.generate_scaled(2), 12, &[1, 2], 3)
    } else {
        ("nytimes-like/20", DatasetPreset::NyTimesLike.generate_scaled(20), 32, &[1, 2, 4], 5)
    };
    let params = ModelParams::paper_defaults(topics);
    let config = WarpLdaConfig::with_mh_steps(2);
    let tokens = corpus.num_tokens();
    eprintln!(
        "[dist_scaling] {preset_name}: {} docs, {tokens} tokens, K = {topics}, \
         {iterations} iterations per point",
        corpus.num_docs(),
    );

    let mut points: Vec<ScalingPoint> = Vec::new();
    for &workers in worker_counts {
        let mut cluster =
            ProcessCluster::new(&corpus, params, config, SEED, ProcessClusterConfig::new(workers))
                .unwrap_or_else(|e| {
                    eprintln!("[dist_scaling] cannot spawn {workers}-worker cluster: {e}");
                    std::process::exit(1);
                });

        let mut wall = 0.0;
        let mut bytes = 0u64;
        for _ in 0..iterations {
            let report = cluster.run_iteration().unwrap_or_else(|e| {
                eprintln!("[dist_scaling] iteration failed with {workers} workers: {e}");
                std::process::exit(1);
            });
            wall += report.wall_sec;
            bytes += report.bytes_exchanged;
        }

        // Every measured point is also a differential check: the merged
        // multi-process state must equal the single-machine oracle.
        let mut oracle = ParallelWarpLda::new(&corpus, params, config, SEED, workers);
        for _ in 0..iterations {
            oracle.run_iteration();
        }
        assert_eq!(
            cluster.assignments(),
            oracle.assignments(),
            "{workers}-worker run diverged from the parallel oracle"
        );
        if let Err(e) = cluster.shutdown() {
            eprintln!("[dist_scaling] shutdown with {workers} workers: {e}");
            std::process::exit(1);
        }

        let tps = tokens as f64 * iterations as f64 / wall.max(1e-12);
        let baseline = points.first().map_or(tps, |p| p.tokens_per_sec);
        let point = ScalingPoint {
            workers: workers as u64,
            iterations,
            wall_seconds: wall,
            tokens_per_sec: tps,
            bytes_exchanged: bytes,
            speedup_vs_one_process: tps / baseline,
        };
        eprintln!(
            "[dist_scaling]   {workers} worker(s): {:>8.3} Mtok/s wall, {:>6.2} MB exchanged, \
             speedup {:.2}x",
            tps / 1e6,
            bytes as f64 / 1e6,
            point.speedup_vs_one_process,
        );
        points.push(point);
    }

    let host_cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    let doc = scaling_report(preset_name, tokens, host_cpus, &points);
    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    warplda::corpus::io::atomic_write_bytes(std::path::Path::new(&out), doc.render().as_bytes())
        .expect("write scaling report");
    println!("[dist_scaling] wrote {out}");
}
