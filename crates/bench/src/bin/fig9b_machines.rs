//! Figure 9(b): multi-machine speedup of distributed WarpLDA on the simulated
//! cluster — modelled throughput and speedup vs number of machines on the
//! PubMed-like preset.
//!
//! The model: single-machine sampling throughput is *measured* on this host;
//! each machine-count point then charges (a) compute time = the largest
//! per-machine token load (from the real greedy grid partition) divided by the
//! measured single-machine throughput and (b) communication time = the
//! all-to-all volume of off-diagonal grid cells through the Table-like network
//! model. Expected shape: near-linear scaling (the paper reports 13.5x on 16
//! machines), bending where communication and residual imbalance bite.

use warplda::prelude::*;
use warplda_bench::{full_scale, write_csv};

fn main() {
    let full = full_scale();
    let corpus = if full {
        DatasetPreset::PubMedLike.generate()
    } else {
        DatasetPreset::PubMedLike.generate_scaled(10)
    };
    let k = if full { 10_000 } else { 400 };
    let iterations = if full { 10 } else { 4 };
    let params = ModelParams::paper_defaults(k);
    let config = WarpLdaConfig::with_mh_steps(1);
    println!("corpus: {}", corpus.stats().table_row("PubMed-like"));
    println!("K = {k}, M = 1\n");

    // Measure single-machine throughput (tokens sampled per second of
    // compute; WarpLDA visits every token twice per iteration) through the
    // unified pipeline, with one warm-up iteration.
    let trainer = Trainer::new(&corpus);
    let mut single = WarpLda::new(&corpus, params, config, 5);
    let single_tps =
        trainer.measure_throughput(&mut single, iterations, 1, corpus.num_tokens() * 2);
    println!("measured single-machine throughput: {:.2} Mtoken/s\n", single_tps / 1e6);

    let (doc_view, word_view) = (trainer.doc_view(), trainer.word_view());

    let worker_counts = [1usize, 2, 4, 8, 16];
    println!(
        "{:>10} {:>14} {:>12} {:>12} {:>10}",
        "machines", "Mtoken/s", "compute ms", "comm ms", "speedup"
    );
    let mut rows = Vec::new();
    let mut baseline = None;
    for &p in &worker_counts {
        let grid = GridPartition::build(&corpus, doc_view, word_view, p, PartitionStrategy::Greedy);
        let cluster = ClusterConfig::tianhe2_like(p, config.mh_steps);
        // The canonical cost model shared with `warplda::dist::runner`.
        let point =
            warplda::dist::runner::model_point(corpus.num_tokens(), single_tps, &grid, &cluster);
        let (tps, compute_sec, comm_sec) =
            (point.tokens_per_sec, point.compute_sec, point.comm_sec);
        let base = *baseline.get_or_insert(tps);
        println!(
            "{:>10} {:>14.2} {:>12.2} {:>12.3} {:>10.2}",
            p,
            tps / 1e6,
            compute_sec * 1e3,
            comm_sec * 1e3,
            tps / base
        );
        rows.push(format!("{p},{tps:.1},{compute_sec:.6},{comm_sec:.6},{:.3}", tps / base));
    }
    write_csv("fig9b_machines.csv", "machines,tokens_per_sec,compute_sec,comm_sec,speedup", &rows);
    println!(
        "\nExpected shape (Figure 9b): close-to-linear speedup (the paper reports 13.5x at 16"
    );
    println!(
        "machines); the gap to ideal comes from partition imbalance plus the all-to-all volume."
    );
}
