//! Table 4: L3 cache miss-rate comparison of LightLDA, F+LDA and WarpLDA
//! (M = 1), measured with the trace-driven cache simulator instead of PAPI
//! hardware counters (see DESIGN.md §4).
//!
//! The paper's numbers (NYTimes K=10³: 33% / 77% / 17%; PubMed K=10⁵:
//! 37% / 17% / 5%) are absolute; what must reproduce here is the *ordering* —
//! WarpLDA's miss rate is far below LightLDA's and, at document-scale K,
//! below F+LDA's.

use warplda::prelude::*;
use warplda_bench::{full_scale, write_csv};

fn print_row(
    name: &str,
    k: usize,
    algo: &str,
    s: warplda::cachesim::HierarchyStats,
    rows: &mut Vec<String>,
) {
    println!(
        "{:<12} {:>17.2}% {:>15.2}% {:>18.1} {:>14}",
        algo,
        s.memory_access_fraction() * 100.0,
        s.l3_miss_rate() * 100.0,
        s.mean_latency_cycles(),
        s.accesses
    );
    rows.push(format!(
        "{name},{k},{algo},{:.5},{:.5},{:.2}",
        s.memory_access_fraction(),
        s.l3_miss_rate(),
        s.mean_latency_cycles()
    ));
}

fn run_case(name: &str, corpus: &Corpus, k: usize, iterations: usize) -> Vec<String> {
    let params = ModelParams::paper_defaults(k);
    let hierarchy = HierarchyConfig::ivy_bridge();
    let trainer = Trainer::new(corpus);
    let sampling = TrainerConfig::sampling_only(iterations);
    let mut rows = Vec::new();

    println!("\n-- {name}, K = {k} --");
    println!(
        "{:<12} {:>18} {:>16} {:>18} {:>14}",
        "algorithm", "mem-access frac", "L3 miss rate", "mean latency (cy)", "accesses"
    );

    // LightLDA (M = 1).
    let mut light = LightLda::with_variant_and_probe(
        corpus,
        params,
        1,
        7,
        LightLdaVariant::standard(),
        CacheProbe::new(hierarchy),
    );
    trainer.train(&sampling, "LightLDA", &mut light);
    print_row(name, k, "LightLDA", light.probe().stats(), &mut rows);

    // F+LDA.
    let mut fplus = FPlusLda::with_probe(corpus, params, 7, CacheProbe::new(hierarchy));
    trainer.train(&sampling, "F+LDA", &mut fplus);
    print_row(name, k, "F+LDA", fplus.probe().stats(), &mut rows);

    // WarpLDA (M = 1).
    let mut warp = WarpLda::with_probe(
        corpus,
        params,
        WarpLdaConfig::with_mh_steps(1),
        7,
        CacheProbe::new(hierarchy),
    );
    trainer.train(&sampling, "WarpLDA", &mut warp);
    print_row(name, k, "WarpLDA", warp.probe().stats(), &mut rows);

    rows
}

fn main() {
    println!("Table 4: simulated L3 cache miss rates (M = 1, Ivy Bridge hierarchy of Table 1)");
    let full = full_scale();
    let mut rows = Vec::new();

    let nytimes = if full {
        DatasetPreset::NyTimesLike.generate()
    } else {
        DatasetPreset::NyTimesLike.generate_scaled(6)
    };
    rows.extend(run_case("NYTimes-like", &nytimes, if full { 1000 } else { 500 }, 2));

    let pubmed = if full {
        DatasetPreset::PubMedLike.generate()
    } else {
        DatasetPreset::PubMedLike.generate_scaled(10)
    };
    rows.extend(run_case("PubMed-like", &pubmed, if full { 10_000 } else { 2000 }, 2));

    write_csv(
        "table4_cache_miss.csv",
        "dataset,K,algorithm,memory_access_fraction,l3_miss_rate,mean_latency_cycles",
        &rows,
    );
    println!(
        "\nExpected shape (paper Table 4): WarpLDA's random accesses are the cheapest by far —"
    );
    println!(
        "lowest main-memory fraction and lowest mean latency — because its working set is one"
    );
    println!(
        "O(K) vector; LightLDA pays the most (random accesses over a KV matrix). At this scaled"
    );
    println!(
        "corpus size WarpLDA's vectors even fit L1/L2, so almost no access reaches L3 at all,"
    );
    println!(
        "which is why the raw \"L3 miss rate\" column (misses / L3 accesses) is not meaningful"
    );
    println!("for it — the memory-access fraction and mean latency carry the paper's comparison.");
}
