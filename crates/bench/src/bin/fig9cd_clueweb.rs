//! Figure 9(c, d): the headline capacity run — convergence and throughput of
//! distributed WarpLDA on the (scaled) ClueWeb12-like corpus with the largest
//! topic count the quick/full mode affords, plus the analytical extrapolation
//! to the paper's 256-machine / 11G token-per-second configuration.
//!
//! Expected shape: (c) the likelihood keeps improving smoothly over the whole
//! run; (d) the per-iteration throughput is roughly flat (slightly improving
//! as the counts sparsify), which is what makes the time-to-converge
//! predictable.

use warplda::prelude::*;
use warplda_bench::{full_scale, write_csv};

fn main() {
    let full = full_scale();
    let corpus = if full {
        DatasetPreset::ClueWebSubsetLike.generate()
    } else {
        DatasetPreset::ClueWebSubsetLike.generate_scaled(10)
    };
    // The paper learns K = 10^6 topics on 639M documents; the scaled run keeps
    // the same topics-per-document ratio within laptop memory.
    let k = if full { 20_000 } else { 1000 };
    let iterations = if full { 150 } else { 40 };
    let workers = 16;
    let params = ModelParams::new(k, 50.0 / k as f64, 0.001); // beta = 0.001 as in Section 6.4
    let config = WarpLdaConfig::with_mh_steps(1);
    let cluster = ClusterConfig::tianhe2_like(workers, config.mh_steps);
    println!("corpus: {}", corpus.stats().table_row("ClueWeb12-like (scaled)"));
    println!("K = {k}, M = 1, beta = 0.001, {workers} simulated machines\n");

    let mut driver = DistributedWarpLda::new(&corpus, params, config, cluster, 7);
    // Evaluate on a 5-iteration cadence plus the very first iteration, so
    // the convergence curve has its starting point.
    driver.run_where(&corpus, iterations, |it| it == 1 || it % 5 == 0 || it == iterations);
    let log = driver.iteration_log("WarpLDA (dist)");

    println!("{:>6} {:>14} {:>14} {:>18}", "iter", "time (s)", "Gtoken/s", "log likelihood");
    for p in log.eval_points() {
        println!(
            "{:>6} {:>14.2} {:>14.4} {:>18.1}",
            p.iteration,
            p.seconds,
            p.tokens_per_sec / 1e9,
            p.log_likelihood.unwrap()
        );
    }
    let rows: Vec<String> = log
        .records()
        .iter()
        .map(|p| {
            format!(
                "{},{:.4},{:.1},{}",
                p.iteration,
                p.seconds,
                p.tokens_per_sec,
                p.log_likelihood.map_or(String::new(), |l| format!("{l:.3}"))
            )
        })
        .collect();
    write_csv("fig9cd_clueweb.csv", "iteration,seconds,tokens_per_sec,log_likelihood", &rows);

    // Throughput context: the simulated machines share this host's physical
    // cores, so the honest per-core number divides by the host core count. A
    // naive extrapolation to the paper's 256×24-core cluster is printed as an
    // upper bound only — the paper's run uses K = 10^6, where every MH step is
    // substantially more expensive than at the scaled K used here.
    let reports = driver.reports();
    let mean_tps: f64 =
        reports.iter().map(|r| r.tokens_per_sec).sum::<f64>() / reports.len().max(1) as f64;
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let per_core = mean_tps / host_cores as f64;
    let extrapolated = per_core * 256.0 * 24.0 * 0.8;
    println!(
        "\nmean throughput on this host: {:.2} Mtoken/s across {host_cores} core(s) ({:.2} Mtoken/s per core)",
        mean_tps / 1e6,
        per_core / 1e6
    );
    println!(
        "naive upper-bound extrapolation to 256 machines x 24 cores at 80% efficiency: {:.1} Gtoken/s \
         (paper measures 11 Gtoken/s at K = 10^6)",
        extrapolated / 1e9
    );
    println!(
        "\nExpected shape (Figure 9c/d): monotone likelihood improvement over the whole run and"
    );
    println!("an approximately flat throughput curve across iterations.");
}
