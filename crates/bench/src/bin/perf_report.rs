//! The reproducible perf harness behind `BENCH_*.json`.
//!
//! Runs serial WarpLDA, parallel WarpLDA and the five baselines on the
//! synthetic Table-3 preset corpora and records, per sampler:
//!
//! * wall-clock and *phase-time-only* sampling throughput (tokens/second,
//!   one full pass over the corpus per iteration);
//! * per-phase wall time for WarpLDA (word phase vs doc phase);
//! * heap-allocation count and allocated bytes per iteration, measured by a
//!   counting global allocator;
//! * a peak-RSS proxy: the high-water mark of *live* heap bytes reached
//!   during the measured iterations (measured by the same allocator), plus
//!   the process-wide `VmHWM` where the OS exposes it.
//!
//! ```text
//! cargo run --release -p warplda-bench --bin perf_report            # default scale
//! cargo run --release -p warplda-bench --bin perf_report -- --tiny  # CI smoke budget
//! cargo run --release -p warplda-bench --bin perf_report -- --out BENCH_PR4.json --label after
//! cargo run --release -p warplda-bench --bin perf_report -- --validate BENCH_PR4.json
//! ```
//!
//! With `--label`, the report is merged into `--out` under
//! `{"runs": {<label>: …}}` so a single file can carry a before/after
//! trajectory across PRs. `--validate` schema-checks such a file (every
//! preset must report every sampler) and is run by CI.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::time::Instant;

use warplda::prelude::*;
use warplda_bench::json::Json;

// ---------------------------------------------------------------------------
// Counting allocator: every heap operation of the process is tallied.
// ---------------------------------------------------------------------------

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
static PEAK_LIVE_BYTES: AtomicI64 = AtomicI64::new(0);

struct CountingAllocator;

impl CountingAllocator {
    fn on_alloc(size: usize) {
        ALLOC_CALLS.fetch_add(1, Relaxed);
        ALLOC_BYTES.fetch_add(size as u64, Relaxed);
        let live = LIVE_BYTES.fetch_add(size as i64, Relaxed) + size as i64;
        PEAK_LIVE_BYTES.fetch_max(live, Relaxed);
    }

    fn on_dealloc(size: usize) {
        LIVE_BYTES.fetch_sub(size as i64, Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::on_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        Self::on_dealloc(layout.size());
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        Self::on_alloc(new_size);
        Self::on_dealloc(layout.size());
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Snapshot of the allocator counters.
#[derive(Clone, Copy)]
struct AllocMark {
    calls: u64,
    bytes: u64,
    live: i64,
}

fn alloc_mark() -> AllocMark {
    let live = LIVE_BYTES.load(Relaxed);
    // Restart the peak tracker from the current live level so the next
    // measured region reports its own high-water mark.
    PEAK_LIVE_BYTES.store(live, Relaxed);
    AllocMark { calls: ALLOC_CALLS.load(Relaxed), bytes: ALLOC_BYTES.load(Relaxed), live }
}

// ---------------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------------

/// Every sampler the report must contain, in report order.
const SAMPLER_NAMES: [&str; 7] =
    ["WarpLDA", "WarpLDA-parallel", "CGS", "SparseLDA", "AliasLDA", "F+LDA", "LightLDA"];

const MH_STEPS: usize = 2;
const THREADS: usize = 4;
const SEED: u64 = 42;

struct Budget {
    warmup: usize,
    iterations: usize,
}

struct Measurement {
    wall_secs_per_iter: f64,
    phase_secs_per_iter: Option<f64>,
    word_secs_per_iter: Option<f64>,
    doc_secs_per_iter: Option<f64>,
    allocs_per_iter: f64,
    alloc_bytes_per_iter: f64,
    peak_live_bytes: i64,
}

/// Runs `budget.warmup` unmeasured iterations (first-touch allocation costs)
/// followed by `budget.iterations` measured ones. `phase_split` reads the
/// sampler's `(word, doc)` phase clocks where it keeps them.
fn measure<S: Sampler>(
    sampler: &mut S,
    budget: &Budget,
    phase_split: impl Fn(&S) -> Option<(f64, f64)>,
) -> Measurement {
    for _ in 0..budget.warmup {
        sampler.run_iteration();
    }
    let before = alloc_mark();
    let t0 = Instant::now();
    let mut word = 0.0;
    let mut doc = 0.0;
    let mut have_split = false;
    for _ in 0..budget.iterations {
        sampler.run_iteration();
        if let Some((w, d)) = phase_split(sampler) {
            word += w;
            doc += d;
            have_split = true;
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let calls = ALLOC_CALLS.load(Relaxed) - before.calls;
    let bytes = ALLOC_BYTES.load(Relaxed) - before.bytes;
    let peak = (PEAK_LIVE_BYTES.load(Relaxed) - before.live).max(0);
    let n = budget.iterations as f64;
    Measurement {
        wall_secs_per_iter: wall / n,
        phase_secs_per_iter: have_split.then_some((word + doc) / n),
        word_secs_per_iter: have_split.then_some(word / n),
        doc_secs_per_iter: have_split.then_some(doc / n),
        allocs_per_iter: calls as f64 / n,
        alloc_bytes_per_iter: bytes as f64 / n,
        peak_live_bytes: peak,
    }
}

fn measurement_json(m: &Measurement, tokens: u64, budget: &Budget) -> Json {
    let opt = |v: Option<f64>| v.map(Json::Num).unwrap_or(Json::Null);
    let mut o = Json::obj();
    o.set("tokens_per_sec_wall", Json::Num(tokens as f64 / m.wall_secs_per_iter.max(1e-12)));
    o.set("tokens_per_sec_phase", opt(m.phase_secs_per_iter.map(|s| tokens as f64 / s.max(1e-12))));
    o.set("wall_seconds_per_iter", Json::Num(m.wall_secs_per_iter));
    o.set("phase_seconds_word", opt(m.word_secs_per_iter));
    o.set("phase_seconds_doc", opt(m.doc_secs_per_iter));
    o.set("allocations_per_iter", Json::Num(m.allocs_per_iter));
    o.set("allocated_bytes_per_iter", Json::Num(m.alloc_bytes_per_iter));
    o.set("peak_live_bytes", Json::Num(m.peak_live_bytes as f64));
    o.set("iterations", Json::Num(budget.iterations as f64));
    o.set("warmup", Json::Num(budget.warmup as f64));
    o
}

fn run_preset(preset: DatasetPreset, budget: &Budget) -> Json {
    let corpus = preset.generate();
    let cfg = preset.config();
    let params = ModelParams::new(cfg.num_topics, cfg.alpha, cfg.beta);
    let tokens = corpus.num_tokens();
    let warp_cfg = WarpLdaConfig::with_mh_steps(MH_STEPS);
    eprintln!(
        "[perf_report] {}: {} docs, {} tokens, {} words, K = {}",
        preset.name(),
        corpus.num_docs(),
        tokens,
        corpus.vocab_size(),
        cfg.num_topics
    );

    let mut samplers = Json::obj();
    let mut add = |name: &str, m: Measurement| {
        eprintln!(
            "[perf_report]   {:<18} {:>9.3} Mtok/s wall{}  {:>7.0} allocs/iter",
            name,
            tokens as f64 / m.wall_secs_per_iter.max(1e-12) / 1e6,
            m.phase_secs_per_iter
                .map(|s| format!(", {:>9.3} Mtok/s phase", tokens as f64 / s.max(1e-12) / 1e6))
                .unwrap_or_default(),
            m.allocs_per_iter,
        );
        samplers.set(name, measurement_json(&m, tokens, budget));
    };

    let mut warp = WarpLda::new(&corpus, params, warp_cfg, SEED);
    add("WarpLDA", measure(&mut warp, budget, |s| Some(s.last_phase_seconds())));
    drop(warp);

    let mut par = ParallelWarpLda::new(&corpus, params, warp_cfg, SEED, THREADS);
    add("WarpLDA-parallel", measure(&mut par, budget, |s| Some(s.last_phase_seconds())));
    drop(par);

    let mut cgs = CollapsedGibbs::new(&corpus, params, SEED);
    add("CGS", measure(&mut cgs, budget, |_| None));
    drop(cgs);

    let mut sparse = SparseLda::new(&corpus, params, SEED);
    add("SparseLDA", measure(&mut sparse, budget, |_| None));
    drop(sparse);

    let mut alias = AliasLda::new(&corpus, params, SEED);
    add("AliasLDA", measure(&mut alias, budget, |_| None));
    drop(alias);

    let mut fplus = FPlusLda::new(&corpus, params, SEED);
    add("F+LDA", measure(&mut fplus, budget, |_| None));
    drop(fplus);

    let mut light = LightLda::new(&corpus, params, MH_STEPS as u32, SEED);
    add("LightLDA", measure(&mut light, budget, |_| None));
    drop(light);

    let mut o = Json::obj();
    o.set("docs", Json::Num(corpus.num_docs() as f64));
    o.set("tokens", Json::Num(tokens as f64));
    o.set("vocab", Json::Num(corpus.vocab_size() as f64));
    o.set("topics", Json::Num(cfg.num_topics as f64));
    o.set("samplers", samplers);
    o
}

/// Process-wide peak resident set (`VmHWM`), where the OS exposes it.
fn vm_hwm_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

// ---------------------------------------------------------------------------
// Report assembly, merging, validation
// ---------------------------------------------------------------------------

fn build_report(mode: &str) -> Json {
    let (presets, budget): (&[DatasetPreset], Budget) = match mode {
        "tiny" => (&[DatasetPreset::Tiny], Budget { warmup: 1, iterations: 1 }),
        "full" => (
            &[
                DatasetPreset::NyTimesLike,
                DatasetPreset::PubMedLike,
                DatasetPreset::ClueWebSubsetLike,
            ],
            Budget { warmup: 3, iterations: 8 },
        ),
        _ => (
            &[
                DatasetPreset::NyTimesLike,
                DatasetPreset::PubMedLike,
                DatasetPreset::ClueWebSubsetLike,
            ],
            Budget { warmup: 2, iterations: 3 },
        ),
    };

    let mut preset_objs = Json::obj();
    for &preset in presets {
        preset_objs.set(preset.name(), run_preset(preset, &budget));
    }

    let mut report = Json::obj();
    report.set("schema", Json::Str("warplda-perf-report/1".into()));
    report.set("mode", Json::Str(mode.into()));
    report.set("threads", Json::Num(THREADS as f64));
    // Worker threads time-slice when the host has fewer cores than THREADS;
    // read the parallel numbers against this.
    report.set(
        "host_cpus",
        Json::Num(std::thread::available_parallelism().map_or(0, |n| n.get()) as f64),
    );
    report.set("mh_steps", Json::Num(MH_STEPS as f64));
    report.set("seed", Json::Num(SEED as f64));
    report.set("vm_hwm_kb", vm_hwm_kb().map(|v| Json::Num(v as f64)).unwrap_or(Json::Null));
    report.set("presets", preset_objs);
    report
}

/// Checks that every preset object under `presets` reports every sampler.
fn validate_presets(presets: &Json, context: &str, errors: &mut Vec<String>) {
    let Some(entries) = presets.as_obj() else {
        errors.push(format!("{context}: \"presets\" is not an object"));
        return;
    };
    if entries.is_empty() {
        errors.push(format!("{context}: no presets recorded"));
    }
    for (preset, obj) in entries {
        let Some(samplers) = obj.get("samplers") else {
            errors.push(format!("{context}/{preset}: missing \"samplers\""));
            continue;
        };
        for name in SAMPLER_NAMES {
            let Some(s) = samplers.get(name) else {
                errors.push(format!("{context}/{preset}: sampler {name:?} missing"));
                continue;
            };
            if s.get("tokens_per_sec_wall").and_then(Json::as_f64).is_none() {
                errors.push(format!(
                    "{context}/{preset}/{name}: missing numeric tokens_per_sec_wall"
                ));
            }
        }
    }
}

fn validate_file(path: &str) -> Result<(), Vec<String>> {
    let text =
        std::fs::read_to_string(path).map_err(|e| vec![format!("cannot read {path}: {e}")])?;
    let doc = Json::parse(&text).map_err(|e| vec![format!("{path} is not valid JSON: {e}")])?;
    let mut errors = Vec::new();
    if let Some(runs) = doc.get("runs") {
        match runs.as_obj() {
            Some(entries) if !entries.is_empty() => {
                for (label, run) in entries {
                    match run.get("presets") {
                        Some(p) => validate_presets(p, label, &mut errors),
                        None => errors.push(format!("run {label:?}: missing \"presets\"")),
                    }
                }
            }
            _ => errors.push("\"runs\" must be a non-empty object".to_string()),
        }
    } else if let Some(presets) = doc.get("presets") {
        validate_presets(presets, "report", &mut errors);
    } else {
        errors.push("file has neither \"runs\" nor \"presets\"".to_string());
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn write_report(report: Json, out: &str, label: Option<&str>) {
    let document = match label {
        None => report,
        Some(label) => {
            // Merging must never silently clobber an existing trajectory:
            // if the target exists it has to parse as one, otherwise the
            // "before" runs this file exists to preserve would be lost.
            let mut doc = match std::fs::read_to_string(out) {
                Err(_) => {
                    let mut d = Json::obj();
                    d.set("schema", Json::Str("warplda-perf-trajectory/1".into()));
                    d.set("runs", Json::obj());
                    d
                }
                Ok(text) => match Json::parse(&text) {
                    Ok(d) if d.get("runs").is_some() => d,
                    Ok(_) => {
                        eprintln!(
                            "[perf_report] {out} exists but is not a trajectory file \
                             (no \"runs\" key); refusing to overwrite it"
                        );
                        std::process::exit(2);
                    }
                    Err(e) => {
                        eprintln!(
                            "[perf_report] {out} exists but is not valid JSON ({e}); \
                             refusing to overwrite it"
                        );
                        std::process::exit(2);
                    }
                },
            };
            let mut runs = doc.get("runs").cloned().unwrap_or_else(Json::obj);
            runs.set(label, report);
            doc.set("runs", runs);
            doc
        }
    };
    if let Some(parent) = std::path::Path::new(out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    warplda::corpus::io::atomic_write_bytes(
        std::path::Path::new(&out),
        document.render().as_bytes(),
    )
    .expect("write perf report");
    println!("[perf_report] wrote {out}");
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.iter().any(|a| a == "--validate-latency") {
        // Schema-checks a serve report (the `latency` block the serving demo
        // emits); run by CI after the loopback smoke.
        let Some(path) = arg_value(&args, "--validate-latency") else {
            eprintln!("[perf_report] --validate-latency requires a file path");
            std::process::exit(2);
        };
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("[perf_report] cannot read {path}: {e}");
            std::process::exit(2);
        });
        match warplda_bench::latency::validate_serve_report(&text) {
            Ok(s) => println!(
                "[perf_report] {path}: latency block OK ({} requests, p50 {}µs, p95 {}µs, p99 {}µs)",
                s.count, s.p50_us, s.p95_us, s.p99_us
            ),
            Err(errors) => {
                for e in &errors {
                    eprintln!("[perf_report] {path}: {e}");
                }
                std::process::exit(1);
            }
        }
        return;
    }

    if args.iter().any(|a| a == "--validate-serving") {
        // Schema-checks a serving-trajectory file (the SLO runs serve_load
        // emits, e.g. BENCH_PR7_SERVE.json); run by CI after the load smoke.
        let Some(path) = arg_value(&args, "--validate-serving") else {
            eprintln!("[perf_report] --validate-serving requires a file path");
            std::process::exit(2);
        };
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("[perf_report] cannot read {path}: {e}");
            std::process::exit(2);
        });
        match warplda_bench::latency::validate_serving_report(&text) {
            Ok(runs) => {
                for (label, r) in &runs {
                    println!(
                        "[perf_report] {path}: run {label:?} OK ({} workers, {} idle conns, \
                         {:.0} served/s, p50 {}µs, p95 {}µs, p99 {}µs)",
                        r.workers,
                        r.idle_connections,
                        r.throughput_rps,
                        r.latency.p50_us,
                        r.latency.p95_us,
                        r.latency.p99_us
                    );
                }
                println!("[perf_report] {path}: serving trajectory OK ({} runs)", runs.len());
            }
            Err(errors) => {
                for e in &errors {
                    eprintln!("[perf_report] {path}: {e}");
                }
                std::process::exit(1);
            }
        }
        return;
    }

    if args.iter().any(|a| a == "--validate-scaling") {
        // Schema-checks a multi-process scaling curve (the file dist_scaling
        // emits); run by CI after the 2-worker loopback smoke.
        let Some(path) = arg_value(&args, "--validate-scaling") else {
            eprintln!("[perf_report] --validate-scaling requires a file path");
            std::process::exit(2);
        };
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("[perf_report] cannot read {path}: {e}");
            std::process::exit(2);
        });
        match warplda_bench::scaling::validate_scaling_report(&text) {
            Ok(points) => {
                let counts: Vec<String> = points.iter().map(|p| format!("{}", p.workers)).collect();
                println!(
                    "[perf_report] {path}: scaling curve OK ({} points, workers {})",
                    points.len(),
                    counts.join("/")
                );
            }
            Err(errors) => {
                for e in &errors {
                    eprintln!("[perf_report] {path}: {e}");
                }
                std::process::exit(1);
            }
        }
        return;
    }

    if args.iter().any(|a| a == "--validate") {
        // A bare `--validate` must fail loudly, not fall through to a full
        // (minutes-long) measurement run that would make a CI validation
        // step pass vacuously.
        let Some(path) = arg_value(&args, "--validate") else {
            eprintln!("[perf_report] --validate requires a file path");
            std::process::exit(2);
        };
        match validate_file(&path) {
            Ok(()) => println!("[perf_report] {path}: schema OK (all samplers present)"),
            Err(errors) => {
                for e in &errors {
                    eprintln!("[perf_report] {e}");
                }
                std::process::exit(1);
            }
        }
        return;
    }

    let mode = if args.iter().any(|a| a == "--tiny") {
        "tiny"
    } else if args.iter().any(|a| a == "--full") {
        "full"
    } else {
        "default"
    };
    let out = arg_value(&args, "--out").unwrap_or_else(|| "target/perf_report.json".to_string());
    let label = arg_value(&args, "--label");

    let report = build_report(mode);
    write_report(report, &out, label.as_deref());
}
