//! Table 1: configuration of the memory hierarchy used by the analysis and by
//! the cache simulator (latencies and sizes of L1D/L2/L3/main memory).

use warplda::cachesim::HierarchyConfig;

fn main() {
    let cfg = HierarchyConfig::ivy_bridge();
    println!("Table 1: memory hierarchy used by the cache simulator (Intel Ivy Bridge)");
    println!("{:<14} {:>16} {:>16}", "level", "latency (cycles)", "size");
    let fmt_size = |bytes: u64| {
        if bytes >= 1024 * 1024 {
            format!("{} MB", bytes / (1024 * 1024))
        } else {
            format!("{} KB", bytes / 1024)
        }
    };
    println!(
        "{:<14} {:>16} {:>16}",
        "L1D (per core)",
        cfg.l1.latency_cycles,
        fmt_size(cfg.l1.size_bytes)
    );
    println!(
        "{:<14} {:>16} {:>16}",
        "L2 (per core)",
        cfg.l2.latency_cycles,
        fmt_size(cfg.l2.size_bytes)
    );
    println!(
        "{:<14} {:>16} {:>16}",
        "L3 (shared)",
        cfg.l3.latency_cycles,
        fmt_size(cfg.l3.size_bytes)
    );
    println!(
        "{:<14} {:>16} {:>16}",
        "Main memory",
        format!("{}+", cfg.memory_latency_cycles),
        "10GB+"
    );
    println!(
        "\nThe L3 is ~{}x faster than main memory — the gap WarpLDA exploits by keeping",
        cfg.memory_latency_cycles / cfg.l3.latency_cycles
    );
    println!("its per-document/word random accesses inside an O(K) vector.");
}
