//! Table 3: statistics of the evaluation datasets. Prints the original
//! statistics quoted in the paper next to the scaled synthetic presets this
//! reproduction trains on (see DESIGN.md §4 for the substitution rationale).

use warplda::prelude::*;
use warplda_bench::full_scale;

fn main() {
    println!("Table 3: dataset statistics (paper originals vs scaled synthetic presets)\n");
    println!("{:<24} {:>14} {:>16} {:>10} {:>8}   source", "dataset", "D", "T", "V", "T/D");
    for preset in
        [DatasetPreset::NyTimesLike, DatasetPreset::PubMedLike, DatasetPreset::ClueWebSubsetLike]
    {
        if let Some((d, t, v, td)) = preset.paper_stats() {
            println!(
                "{:<24} {:>14} {:>16} {:>10} {:>8.0}   paper (original)",
                preset.name(),
                d,
                t,
                v,
                td
            );
        }
        let corpus = if full_scale() { preset.generate() } else { preset.generate_scaled(4) };
        let s = corpus.stats();
        println!(
            "{:<24} {:>14} {:>16} {:>10} {:>8.1}   synthetic preset{}",
            format!("  └ {}", preset.name()),
            s.num_docs,
            s.num_tokens,
            s.vocab_size,
            s.mean_doc_len,
            if full_scale() { "" } else { " (quick, --full for preset size)" }
        );
        println!(
            "{:<24} {:>14} {:>16} {:>10} {:>8}   top word {:.3}% of tokens, max doc {} tokens",
            "",
            "",
            "",
            "",
            "",
            s.top_word_fraction * 100.0,
            s.max_doc_len
        );
    }
    println!("\nThe presets preserve the mean document length T/D and the Zipfian skew of the");
    println!("originals while scaling D and V down to laptop size.");
}
