//! Table 2: per-algorithm memory-access summary (sequential accesses per
//! token, random accesses per token, size of the randomly accessed region per
//! document/word, visiting order), instantiated on a concrete corpus so the
//! symbolic quantities (K_d, K_w, KV, DK) become numbers.

use warplda::lda::access::{mean_distinct_topics, table2_profiles};
use warplda::prelude::*;
use warplda_bench::full_scale;

fn main() {
    let (corpus, k) = if full_scale() {
        (DatasetPreset::NyTimesLike.generate(), 1000)
    } else {
        (DatasetPreset::NyTimesLike.generate_scaled(4), 1000)
    };
    let params = ModelParams::paper_defaults(k);
    println!("corpus: {}", corpus.stats().table_row("NYTimes-like"));
    println!("K = {k}\n");

    // Burn in a few WarpLDA iterations so K_d / K_w reflect a partially
    // converged model rather than the random initialization.
    let trainer = Trainer::new(&corpus);
    let mut sampler = WarpLda::new(&corpus, params, WarpLdaConfig::with_mh_steps(1), 7);
    trainer.train(&TrainerConfig::sampling_only(5), "burn-in", &mut sampler);
    let (doc_view, word_view) = (trainer.doc_view(), trainer.word_view());
    let state = sampler.snapshot_state(&corpus, doc_view, word_view);
    let (kd, kw) = mean_distinct_topics(&state, doc_view, word_view);
    println!("measured sparsity after 5 iterations: K_d = {kd:.1}, K_w = {kw:.1}");

    let rows = table2_profiles(&corpus, doc_view, word_view, &state, 1);
    let l3 = 30u64 * 1024 * 1024;
    println!(
        "\n{:<11} {:<7} {:>12} {:>12} {:>22} {:>9} {:>9}",
        "algorithm",
        "type",
        "seq/token",
        "rand/token",
        "random region (bytes)",
        "symbolic",
        "order"
    );
    for r in &rows {
        println!(
            "{:<11} {:<7} {:>12.1} {:>12.1} {:>22} {:>9} {:>9}   {}",
            r.algorithm,
            r.class,
            r.sequential_per_token,
            r.random_per_token,
            r.random_region_bytes,
            r.random_region_symbolic,
            r.order,
            if r.fits_cache(l3) { "fits 30MB L3" } else { "EXCEEDS 30MB L3" }
        );
    }
    println!("\nOnly WarpLDA's randomly accessed region (one O(K) vector) fits the L3 cache;");
    println!(
        "every other algorithm randomly touches an O(KV) or O(DK) matrix (Table 2 of the paper)."
    );
}
