//! The multi-process scaling-curve JSON schema.
//!
//! `dist_scaling` trains the same corpus on 1, 2, … real worker processes
//! (the `ProcessCluster` backend) and records one measured point per worker
//! count; CI schema-validates the file via `perf_report --validate-scaling`,
//! the same discipline as the serve latency report.
//!
//! The workspace JSON writer has no array type, so the curve is a keyed
//! object — one `w<N>` entry per worker count:
//!
//! ```json
//! "points": {
//!   "w1": { "workers": 1, "iterations": 5, "wall_seconds": 1.9,
//!           "tokens_per_sec": 1.1e6, "bytes_exchanged": 0,
//!           "speedup_vs_one_process": 1.0 },
//!   "w2": { ... }
//! }
//! ```
//!
//! Validation deliberately does **not** require `speedup > 1`: the committed
//! curves come from CI boxes where worker processes time-slice a small number
//! of cores, so the measured speedup is honest but not necessarily > 1. The
//! schema guards shape and sanity (positive throughput, consistent keys),
//! not the hardware.

use crate::json::Json;

/// Schema tag of a scaling-report file.
pub const SCALING_SCHEMA: &str = "warplda-dist-scaling/1";

/// The required numeric fields of each scaling point, in schema order.
pub const SCALING_POINT_FIELDS: [&str; 6] = [
    "workers",
    "iterations",
    "wall_seconds",
    "tokens_per_sec",
    "bytes_exchanged",
    "speedup_vs_one_process",
];

/// One measured point of the scaling curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Worker processes spawned.
    pub workers: u64,
    /// Iterations measured.
    pub iterations: u64,
    /// Total wall seconds across the measured iterations.
    pub wall_seconds: f64,
    /// Tokens sampled per wall second (one full corpus pass per iteration).
    pub tokens_per_sec: f64,
    /// Frame bytes that crossed the loopback sockets (both directions).
    pub bytes_exchanged: u64,
    /// Measured throughput relative to the 1-process run of the same sweep.
    pub speedup_vs_one_process: f64,
}

impl ScalingPoint {
    /// Renders the point as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("workers", Json::Num(self.workers as f64));
        o.set("iterations", Json::Num(self.iterations as f64));
        o.set("wall_seconds", Json::Num(self.wall_seconds));
        o.set("tokens_per_sec", Json::Num(self.tokens_per_sec));
        o.set("bytes_exchanged", Json::Num(self.bytes_exchanged as f64));
        o.set("speedup_vs_one_process", Json::Num(self.speedup_vs_one_process));
        o
    }

    /// Parses a point previously emitted by [`to_json`](Self::to_json).
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let num = |key: &str| {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("scaling point: missing numeric {key:?}"))
        };
        Ok(Self {
            workers: num("workers")? as u64,
            iterations: num("iterations")? as u64,
            wall_seconds: num("wall_seconds")?,
            tokens_per_sec: num("tokens_per_sec")?,
            bytes_exchanged: num("bytes_exchanged")? as u64,
            speedup_vs_one_process: num("speedup_vs_one_process")?,
        })
    }
}

/// Assembles a full scaling-report document.
pub fn scaling_report(
    preset: &str,
    tokens: u64,
    host_cpus: usize,
    points: &[ScalingPoint],
) -> Json {
    let mut point_objs = Json::obj();
    for p in points {
        point_objs.set(&format!("w{}", p.workers), p.to_json());
    }
    let mut doc = Json::obj();
    doc.set("schema", Json::Str(SCALING_SCHEMA.into()));
    doc.set("preset", Json::Str(preset.into()));
    doc.set("tokens", Json::Num(tokens as f64));
    // Worker processes time-slice when the host has fewer cores than the
    // largest worker count; read the speedup column against this.
    doc.set("host_cpus", Json::Num(host_cpus as f64));
    doc.set("points", point_objs);
    doc
}

/// Validates a whole scaling-report file and returns the parsed points in
/// ascending worker order.
pub fn validate_scaling_report(text: &str) -> Result<Vec<ScalingPoint>, Vec<String>> {
    let doc = Json::parse(text).map_err(|e| vec![format!("not valid JSON: {e}")])?;
    let mut errors = Vec::new();
    match doc.get("schema").and_then(Json::as_str) {
        None => errors.push("missing \"schema\" string".to_string()),
        Some(s) if s != SCALING_SCHEMA => {
            errors.push(format!("schema is {s:?}, expected {SCALING_SCHEMA:?}"))
        }
        Some(_) => {}
    }
    if doc.get("preset").and_then(Json::as_str).is_none() {
        errors.push("missing \"preset\" string".to_string());
    }
    let mut points = Vec::new();
    match doc.get("points").and_then(Json::as_obj) {
        None => errors.push("missing \"points\" object".to_string()),
        Some([]) => errors.push("no scaling points recorded".into()),
        Some(entries) => {
            for (key, obj) in entries {
                match ScalingPoint::from_json(obj) {
                    Err(e) => errors.push(format!("point {key:?}: {e}")),
                    Ok(p) => {
                        if key != &format!("w{}", p.workers) {
                            errors.push(format!(
                                "point {key:?} claims {} workers; key and field disagree",
                                p.workers
                            ));
                        }
                        if p.workers == 0 {
                            errors.push(format!("point {key:?}: zero workers"));
                        }
                        if p.iterations == 0 {
                            errors.push(format!("point {key:?}: zero iterations"));
                        }
                        if !matches!(
                            p.tokens_per_sec.partial_cmp(&0.0),
                            Some(std::cmp::Ordering::Greater)
                        ) {
                            errors.push(format!(
                                "point {key:?}: non-positive tokens_per_sec {}",
                                p.tokens_per_sec
                            ));
                        }
                        points.push(p);
                    }
                }
            }
            if !points.iter().any(|p| p.workers == 1) {
                errors.push("no 1-process baseline point (\"w1\")".to_string());
            }
        }
    }
    if !errors.is_empty() {
        return Err(errors);
    }
    points.sort_by_key(|p| p.workers);
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(workers: u64, tps: f64) -> ScalingPoint {
        ScalingPoint {
            workers,
            iterations: 5,
            wall_seconds: 1.25,
            tokens_per_sec: tps,
            bytes_exchanged: workers.saturating_sub(1) * 4096,
            speedup_vs_one_process: tps / 1e6,
        }
    }

    fn report() -> Json {
        scaling_report("tiny", 8000, 8, &[point(1, 1e6), point(2, 1.7e6), point(4, 2.9e6)])
    }

    #[test]
    fn points_round_trip_through_json() {
        let p = point(2, 1.7e6);
        assert_eq!(ScalingPoint::from_json(&p.to_json()).unwrap(), p);
    }

    #[test]
    fn valid_report_passes_and_sorts_points() {
        let parsed = validate_scaling_report(&report().render()).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].workers, 1);
        assert_eq!(parsed[2].workers, 4);
    }

    #[test]
    fn sub_linear_speedup_is_not_an_error() {
        // Single-core CI time-slices workers: speedup < 1 must validate.
        let mut slow = point(4, 0.4e6);
        slow.speedup_vs_one_process = 0.4;
        let doc = scaling_report("tiny", 8000, 1, &[point(1, 1e6), slow]);
        assert!(validate_scaling_report(&doc.render()).is_ok());
    }

    #[test]
    fn validation_catches_structural_errors() {
        assert!(validate_scaling_report("not json").is_err());
        assert!(validate_scaling_report("{}").is_err());

        // Wrong schema tag.
        let mut doc = report();
        doc.set("schema", Json::Str("something-else/9".into()));
        let errors = validate_scaling_report(&doc.render()).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("schema")), "{errors:?}");

        // Missing baseline.
        let doc = scaling_report("tiny", 8000, 8, &[point(2, 1.7e6)]);
        let errors = validate_scaling_report(&doc.render()).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("baseline")), "{errors:?}");

        // Key / field disagreement and a non-numeric field.
        let mut points = Json::obj();
        points.set("w3", point(2, 1.7e6).to_json());
        let mut bad = point(1, 1e6).to_json();
        bad.set("tokens_per_sec", Json::Str("fast".into()));
        points.set("w1", bad);
        let mut doc = report();
        doc.set("points", points);
        let errors = validate_scaling_report(&doc.render()).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("disagree")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("tokens_per_sec")), "{errors:?}");
    }
}
