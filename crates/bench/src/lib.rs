//! Shared plumbing for the experiment harness binaries.
//!
//! Every table and figure of the paper's evaluation section has a
//! corresponding binary in `src/bin/` (see DESIGN.md §5 for the index). The
//! binaries print the paper-style rows/series to stdout and, where a series is
//! produced, also write a CSV under `target/experiments/` so the curves can be
//! plotted.
//!
//! All binaries accept `--full` to run at a larger scale (more documents, more
//! topics, more iterations); the default is a quick configuration that
//! finishes in seconds to a couple of minutes so `EXPERIMENTS.md` can be
//! regenerated end-to-end on a laptop.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use warplda::prelude::*;

/// Returns true when `--full` was passed on the command line.
pub fn full_scale() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Directory where the harness writes CSV series; created on demand.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

/// Writes a CSV file (header + rows) under `target/experiments/` and prints
/// its path.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let path = experiments_dir().join(name);
    let mut f = fs::File::create(&path).expect("create CSV file");
    writeln!(f, "{header}").unwrap();
    for row in rows {
        writeln!(f, "{row}").unwrap();
    }
    println!("[csv] wrote {}", path.display());
}

/// One sampled point of a convergence trace.
#[derive(Debug, Clone, Copy)]
pub struct TracePoint {
    /// Iteration number (1-based).
    pub iteration: usize,
    /// Wall-clock seconds spent in `run_iteration` so far (excludes evaluation).
    pub seconds: f64,
    /// Log joint likelihood after this iteration.
    pub log_likelihood: f64,
}

/// A named convergence trace.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Display name of the sampler.
    pub name: String,
    /// The sampled points.
    pub points: Vec<TracePoint>,
    /// Mean sampling throughput over the run, tokens/second.
    pub tokens_per_sec: f64,
}

impl Trace {
    /// The final log likelihood of the trace.
    pub fn final_ll(&self) -> f64 {
        self.points.last().map_or(f64::NEG_INFINITY, |p| p.log_likelihood)
    }

    /// First iteration whose likelihood reaches `target`, if any.
    pub fn iterations_to_reach(&self, target: f64) -> Option<usize> {
        self.points.iter().find(|p| p.log_likelihood >= target).map(|p| p.iteration)
    }

    /// Wall-clock seconds needed to reach `target`, if ever reached.
    pub fn seconds_to_reach(&self, target: f64) -> Option<f64> {
        self.points.iter().find(|p| p.log_likelihood >= target).map(|p| p.seconds)
    }
}

/// Runs `iterations` iterations of a sampler, evaluating the likelihood every
/// `eval_every` iterations, and returns the trace.
pub fn run_trace(
    name: &str,
    sampler: &mut dyn Sampler,
    corpus: &Corpus,
    iterations: usize,
    eval_every: usize,
) -> Trace {
    let doc_view = DocMajorView::build(corpus);
    let word_view = WordMajorView::build(corpus, &doc_view);
    let mut points = Vec::new();
    let mut sampling_seconds = 0.0;
    for it in 1..=iterations {
        let t0 = Instant::now();
        sampler.run_iteration();
        sampling_seconds += t0.elapsed().as_secs_f64();
        if it % eval_every.max(1) == 0 || it == iterations {
            let ll = sampler.log_likelihood(corpus, &doc_view, &word_view);
            points.push(TracePoint {
                iteration: it,
                seconds: sampling_seconds,
                log_likelihood: ll,
            });
        }
    }
    let tokens = corpus.num_tokens() as f64 * iterations as f64;
    Trace { name: name.to_owned(), points, tokens_per_sec: tokens / sampling_seconds.max(1e-12) }
}

/// Prints a set of traces as aligned "LL vs iteration" and "LL vs time"
/// tables, plus the speed-up ratios against the first (reference) trace — the
/// four panels of each Figure 5 row.
pub fn print_convergence_report(traces: &[Trace], reference_targets: &[f64]) {
    println!("\n== log likelihood by iteration ==");
    print!("{:>6}", "iter");
    for t in traces {
        print!(" {:>22}", t.name);
    }
    println!();
    let reference = &traces[0];
    for (i, p) in reference.points.iter().enumerate() {
        print!("{:>6}", p.iteration);
        for t in traces {
            if let Some(q) = t.points.get(i) {
                print!(" {:>22.1}", q.log_likelihood);
            } else {
                print!(" {:>22}", "-");
            }
        }
        println!();
    }

    println!("\n== log likelihood by time (seconds) ==");
    for t in traces {
        let line: Vec<String> = t
            .points
            .iter()
            .map(|p| format!("({:.2}s, {:.1})", p.seconds, p.log_likelihood))
            .collect();
        println!("{:<22} {}", t.name, line.join(" "));
    }

    println!("\n== throughput ==");
    for t in traces {
        println!("{:<22} {:>10.2} Mtoken/s", t.name, t.tokens_per_sec / 1e6);
    }

    if !reference_targets.is_empty() {
        println!("\n== speed-up of {} over the others to reach a target LL ==", traces[0].name);
        print!("{:>16}", "target LL");
        for t in traces.iter().skip(1) {
            print!(" {:>18} (iter)", t.name);
            print!(" {:>18} (time)", t.name);
        }
        println!();
        for &target in reference_targets {
            print!("{:>16.1}", target);
            let ref_iter = traces[0].iterations_to_reach(target);
            let ref_time = traces[0].seconds_to_reach(target);
            for t in traces.iter().skip(1) {
                let iter_ratio = match (ref_iter, t.iterations_to_reach(target)) {
                    (Some(a), Some(b)) => format!("{:.2}x", b as f64 / a as f64),
                    _ => "-".to_string(),
                };
                let time_ratio = match (ref_time, t.seconds_to_reach(target)) {
                    (Some(a), Some(b)) => format!("{:.2}x", b / a),
                    _ => "-".to_string(),
                };
                print!(" {:>25} {:>25}", iter_ratio, time_ratio);
            }
            println!();
        }
    }
}

/// Converts traces to CSV rows: `sampler,iteration,seconds,log_likelihood`.
pub fn traces_to_csv_rows(traces: &[Trace]) -> Vec<String> {
    let mut rows = Vec::new();
    for t in traces {
        for p in &t.points {
            rows.push(format!(
                "{},{},{:.4},{:.3}",
                t.name, p.iteration, p.seconds, p.log_likelihood
            ));
        }
    }
    rows
}

/// Likelihood targets for the speed-up panels: fractions of the way from the
/// first evaluated likelihood to the *lowest* final likelihood across traces,
/// so that every sampler reaches every target (the paper picks its targets the
/// same way — likelihood levels all runs attain).
pub fn default_targets(traces: &[Trace]) -> Vec<f64> {
    let start = traces
        .iter()
        .filter_map(|t| t.points.first().map(|p| p.log_likelihood))
        .fold(f64::INFINITY, f64::min);
    let attained = traces.iter().map(Trace::final_ll).fold(f64::INFINITY, f64::min);
    [0.5, 0.8, 0.95].iter().map(|f| start + (attained - start) * f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_helpers_work() {
        let corpus = DatasetPreset::Tiny.generate_scaled(10);
        let params = ModelParams::paper_defaults(6);
        let mut s = WarpLda::new(&corpus, params, WarpLdaConfig::default(), 1);
        let trace = run_trace("WarpLDA", &mut s, &corpus, 6, 2);
        assert_eq!(trace.points.len(), 3);
        assert!(trace.tokens_per_sec > 0.0);
        assert!(trace.final_ll().is_finite());
        let targets = default_targets(std::slice::from_ref(&trace));
        assert_eq!(targets.len(), 3);
        assert!(trace.iterations_to_reach(f64::NEG_INFINITY).is_some());
        assert!(trace.iterations_to_reach(0.0).is_none());
        let rows = traces_to_csv_rows(std::slice::from_ref(&trace));
        assert_eq!(rows.len(), 3);
    }
}
