//! Shared plumbing for the experiment harness binaries.
//!
//! Every table and figure of the paper's evaluation section has a
//! corresponding binary in `src/bin/` (see DESIGN.md §5 for the index). The
//! binaries print the paper-style rows/series to stdout and, where a series is
//! produced, also write a CSV under `target/experiments/` so the curves can be
//! plotted.
//!
//! All binaries accept `--full` to run at a larger scale (more documents, more
//! topics, more iterations); the default is a quick configuration that
//! finishes in seconds to a couple of minutes so `EXPERIMENTS.md` can be
//! regenerated end-to-end on a laptop.
//!
//! Training loops are never hand-rolled here: every run goes through the
//! workspace's unified [`Trainer`] pipeline (overlapped evaluation included)
//! and produces the shared [`IterationLog`] report format this module's
//! printing and CSV helpers consume.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod json;
pub mod latency;
pub mod scaling;

use std::fs;
use std::path::PathBuf;

use warplda::prelude::*;

/// Returns true when `--full` was passed on the command line.
pub fn full_scale() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Directory where the harness writes CSV series; created on demand.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

/// Writes a CSV file (header + rows) under `target/experiments/` and prints
/// its path. Crash-safe: a partially written series never replaces a
/// previous one.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let path = experiments_dir().join(name);
    warplda::corpus::io::atomic_write::<std::io::Error, _>(&path, |f| {
        writeln!(f, "{header}")?;
        for row in rows {
            writeln!(f, "{row}")?;
        }
        Ok(())
    })
    .expect("write CSV file");
    println!("[csv] wrote {}", path.display());
}

/// Runs `iterations` iterations of a sampler through the unified [`Trainer`]
/// pipeline, evaluating the likelihood every `eval_every` iterations (and on
/// the final iteration), and returns the log. Evaluation overlaps sampling on
/// a background worker.
pub fn run_trace(
    name: &str,
    sampler: &mut dyn Sampler,
    corpus: &Corpus,
    iterations: usize,
    eval_every: usize,
) -> IterationLog {
    let trainer = Trainer::new(corpus);
    let config = TrainerConfig::new(iterations).eval_every(eval_every.max(1));
    trainer.train(&config, name, sampler)
}

/// Prints a set of logs as aligned "LL vs iteration" and "LL vs time"
/// tables, plus the speed-up ratios against the first (reference) log — the
/// four panels of each Figure 5 row.
pub fn print_convergence_report(logs: &[IterationLog], reference_targets: &[f64]) {
    println!("\n== log likelihood by iteration ==");
    print!("{:>6}", "iter");
    for t in logs {
        print!(" {:>22}", t.name());
    }
    println!();
    let reference: Vec<&IterationRecord> = logs[0].eval_points().collect();
    let others: Vec<Vec<&IterationRecord>> =
        logs.iter().map(|t| t.eval_points().collect()).collect();
    for (i, p) in reference.iter().enumerate() {
        print!("{:>6}", p.iteration);
        for points in &others {
            if let Some(q) = points.get(i) {
                print!(" {:>22.1}", q.log_likelihood.unwrap());
            } else {
                print!(" {:>22}", "-");
            }
        }
        println!();
    }

    println!("\n== log likelihood by time (seconds) ==");
    for t in logs {
        let line: Vec<String> = t
            .eval_points()
            .map(|p| format!("({:.2}s, {:.1})", p.seconds, p.log_likelihood.unwrap()))
            .collect();
        println!("{:<22} {}", t.name(), line.join(" "));
    }

    println!("\n== throughput ==");
    for t in logs {
        println!("{:<22} {:>10.2} Mtoken/s", t.name(), t.mean_tokens_per_sec() / 1e6);
    }

    if !reference_targets.is_empty() {
        println!("\n== speed-up of {} over the others to reach a target LL ==", logs[0].name());
        print!("{:>16}", "target LL");
        for t in logs.iter().skip(1) {
            print!(" {:>18} (iter)", t.name());
            print!(" {:>18} (time)", t.name());
        }
        println!();
        for &target in reference_targets {
            print!("{:>16.1}", target);
            let ref_iter = logs[0].iterations_to_reach(target);
            let ref_time = logs[0].seconds_to_reach(target);
            for t in logs.iter().skip(1) {
                let iter_ratio = match (ref_iter, t.iterations_to_reach(target)) {
                    (Some(a), Some(b)) => format!("{:.2}x", b as f64 / a as f64),
                    _ => "-".to_string(),
                };
                let time_ratio = match (ref_time, t.seconds_to_reach(target)) {
                    (Some(a), Some(b)) => format!("{:.2}x", b / a),
                    _ => "-".to_string(),
                };
                print!(" {:>25} {:>25}", iter_ratio, time_ratio);
            }
            println!();
        }
    }
}

/// Converts logs to CSV rows: `sampler,iteration,seconds,log_likelihood`.
pub fn logs_to_csv_rows(logs: &[IterationLog]) -> Vec<String> {
    logs.iter().flat_map(IterationLog::csv_rows).collect()
}

/// Likelihood targets for the speed-up panels: fractions of the way from the
/// first evaluated likelihood to the *lowest* final likelihood across logs,
/// so that every sampler reaches every target (the paper picks its targets the
/// same way — likelihood levels all runs attain).
pub fn default_targets(logs: &[IterationLog]) -> Vec<f64> {
    let start = logs
        .iter()
        .filter_map(|t| t.eval_points().next().and_then(|p| p.log_likelihood))
        .fold(f64::INFINITY, f64::min);
    let attained = logs.iter().map(IterationLog::final_ll).fold(f64::INFINITY, f64::min);
    [0.5, 0.8, 0.95].iter().map(|f| start + (attained - start) * f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_helpers_work() {
        let corpus = DatasetPreset::Tiny.generate_scaled(10);
        let params = ModelParams::paper_defaults(6);
        let mut s = WarpLda::new(&corpus, params, WarpLdaConfig::default(), 1);
        let log = run_trace("WarpLDA", &mut s, &corpus, 6, 2);
        assert_eq!(log.records().len(), 6);
        assert_eq!(log.eval_points().count(), 3);
        assert!(log.mean_tokens_per_sec() > 0.0);
        assert!(log.final_ll().is_finite());
        let targets = default_targets(std::slice::from_ref(&log));
        assert_eq!(targets.len(), 3);
        assert!(log.iterations_to_reach(f64::NEG_INFINITY).is_some());
        assert!(log.iterations_to_reach(0.0).is_none());
        let rows = logs_to_csv_rows(std::slice::from_ref(&log));
        assert_eq!(rows.len(), 3);
    }
}
