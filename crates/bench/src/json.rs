//! A minimal JSON value type with an emitter and a parser.
//!
//! The workspace has no package registry, so instead of `serde_json` the
//! perf harness carries this self-contained module: enough JSON to write the
//! benchmark trajectory files (`BENCH_*.json`), read them back for
//! before/after merging, and schema-validate them in CI. Objects preserve
//! insertion order so emitted files are stable across runs.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always carried as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Sets `key` in an object (replacing an existing entry), keeping
    /// insertion order otherwise.
    ///
    /// # Panics
    /// Panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        let Json::Obj(entries) = self else { panic!("Json::set on a non-object") };
        if let Some(slot) = entries.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            entries.push((key.to_string(), value));
        }
        self
    }

    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => render_number(*v, out),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.render_into(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    render_string(k, out);
                    out.push_str(": ");
                    v.render_into(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, nothing else).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_number(v: f64, out: &mut String) {
    if !v.is_finite() {
        // JSON has no NaN/Inf; null is the least-bad representation.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 9e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        // `{}` on f64 is the shortest representation that round-trips.
        out.push_str(&format!("{v}"));
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected {:?} at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let span = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii span");
        span.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number {span:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else { return Err("unterminated string".to_string()) };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                // Surrogate pair.
                                self.pos += 2;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(format!("invalid escape \\{}", other as char));
                        }
                    }
                }
                _ => {
                    // Re-scan the full UTF-8 character starting at pos - 1.
                    let rest = std::str::from_utf8(&self.bytes[self.pos - 1..])
                        .map_err(|e| format!("invalid UTF-8 in string: {e}"))?;
                    let c = rest.chars().next().expect("non-empty rest");
                    s.push(c);
                    self.pos += c.len_utf8() - 1;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let span = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "non-ASCII \\u escape".to_string())?;
        self.pos += 4;
        u32::from_str_radix(span, 16).map_err(|e| format!("bad \\u escape {span:?}: {e}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let mut report = Json::obj();
        report.set("schema", Json::Str("perf/1".into()));
        report.set("threads", Json::Num(4.0));
        report.set("ratio", Json::Num(1.375));
        report
            .set("samplers", Json::Arr(vec![Json::Str("WarpLDA".into()), Json::Str("CGS".into())]));
        let mut inner = Json::obj();
        inner.set("ok", Json::Bool(true));
        inner.set("missing", Json::Null);
        report.set("nested", inner);

        let text = report.render();
        let back = Json::parse(&text).expect("parses");
        assert_eq!(back, report);
        assert_eq!(back.get("threads").and_then(Json::as_f64), Some(4.0));
        assert_eq!(back.get("ratio").and_then(Json::as_f64), Some(1.375));
        assert_eq!(back.get("nested").and_then(|n| n.get("ok")), Some(&Json::Bool(true)));
    }

    #[test]
    fn set_replaces_existing_keys_in_place() {
        let mut o = Json::obj();
        o.set("a", Json::Num(1.0));
        o.set("b", Json::Num(2.0));
        o.set("a", Json::Num(3.0));
        assert_eq!(o.as_obj().unwrap().len(), 2);
        assert_eq!(o.get("a").and_then(Json::as_f64), Some(3.0));
        // Insertion order preserved.
        assert_eq!(o.as_obj().unwrap()[0].0, "a");
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#"{"s": "a\nb\t\"c\" é 😀", "λ": 1e-3}"#).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("a\nb\t\"c\" é 😀"));
        assert_eq!(v.get("λ").and_then(Json::as_f64), Some(1e-3));
    }

    #[test]
    fn string_round_trips_through_escaping() {
        let original = Json::Str("tab\there \"quoted\" back\\slash\nnewline \u{1} é".into());
        let back = Json::parse(&original.render()).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "nul", "1 2", "\"unterminated", "{\"a\":}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(5.0).render(), "5\n");
        assert_eq!(Json::Num(-0.5).render(), "-0.5\n");
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
    }
}
