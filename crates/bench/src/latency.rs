//! The `latency` block of the perf-report JSON schema.
//!
//! The query server (`warplda-serve`) accounts per-request service time as
//! p50/p95/p99/max percentiles; this module is the bridge into the bench
//! harness's JSON schema: a `latency` object that the serving demo emits and
//! CI schema-validates (`perf_report --validate-latency`), the same
//! discipline as the training-side `BENCH_*.json` reports.
//!
//! ```json
//! "latency": {
//!   "count": 200,
//!   "mean_us": 812.4,
//!   "p50_us": 640,
//!   "p95_us": 2304,
//!   "p99_us": 4608,
//!   "max_us": 5120
//! }
//! ```

use crate::json::Json;

/// The required numeric fields of a `latency` block, in schema order.
pub const LATENCY_FIELDS: [&str; 6] = ["count", "mean_us", "p50_us", "p95_us", "p99_us", "max_us"];

/// A latency summary as carried by the JSON schema (microseconds).
///
/// Mirrors `warplda_serve::LatencyStats` field for field; the serve crate
/// cannot depend on the bench crate (the bench crate sits above the facade),
/// so the demo copies the five numbers across.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Requests measured.
    pub count: u64,
    /// Mean service time, µs.
    pub mean_us: f64,
    /// Median, µs.
    pub p50_us: u64,
    /// 95th percentile, µs.
    pub p95_us: u64,
    /// 99th percentile, µs.
    pub p99_us: u64,
    /// Worst request, µs.
    pub max_us: u64,
}

impl LatencySummary {
    /// Renders the summary as a `latency` JSON object.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("count", Json::Num(self.count as f64));
        o.set("mean_us", Json::Num(self.mean_us));
        o.set("p50_us", Json::Num(self.p50_us as f64));
        o.set("p95_us", Json::Num(self.p95_us as f64));
        o.set("p99_us", Json::Num(self.p99_us as f64));
        o.set("max_us", Json::Num(self.max_us as f64));
        o
    }

    /// Parses a `latency` object previously emitted by
    /// [`to_json`](Self::to_json).
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let num = |key: &str| {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("latency block: missing numeric {key:?}"))
        };
        Ok(Self {
            count: num("count")? as u64,
            mean_us: num("mean_us")?,
            p50_us: num("p50_us")? as u64,
            p95_us: num("p95_us")? as u64,
            p99_us: num("p99_us")? as u64,
            max_us: num("max_us")? as u64,
        })
    }
}

/// Schema-validates the `latency` block of a serve report: all six fields
/// present and numeric, percentiles monotone (`p50 ≤ p95 ≤ p99 ≤ max`), and
/// a positive request count. `context` prefixes error messages.
pub fn validate_latency_block(v: &Json, context: &str, errors: &mut Vec<String>) {
    for field in LATENCY_FIELDS {
        if v.get(field).and_then(Json::as_f64).is_none() {
            errors.push(format!("{context}: missing numeric {field:?}"));
        }
    }
    let Ok(s) = LatencySummary::from_json(v) else {
        return; // field errors already recorded
    };
    if s.count == 0 {
        errors.push(format!("{context}: zero requests measured"));
    }
    if !(s.p50_us <= s.p95_us && s.p95_us <= s.p99_us && s.p99_us <= s.max_us) {
        errors.push(format!(
            "{context}: percentiles not monotone (p50 {} / p95 {} / p99 {} / max {})",
            s.p50_us, s.p95_us, s.p99_us, s.max_us
        ));
    }
}

/// Validates a whole serve-report file: a JSON document with a `schema`
/// string and a valid `latency` block.
pub fn validate_serve_report(text: &str) -> Result<LatencySummary, Vec<String>> {
    let doc = Json::parse(text).map_err(|e| vec![format!("not valid JSON: {e}")])?;
    let mut errors = Vec::new();
    if doc.get("schema").and_then(Json::as_str).is_none() {
        errors.push("missing \"schema\" string".to_string());
    }
    match doc.get("latency") {
        Some(block) => validate_latency_block(block, "latency", &mut errors),
        None => errors.push("missing \"latency\" block".to_string()),
    }
    if !errors.is_empty() {
        return Err(errors);
    }
    LatencySummary::from_json(doc.get("latency").expect("checked above")).map_err(|e| vec![e])
}

// ---------------------------------------------------------------------------
// Serving trajectory: committed SLO runs, the serving-side BENCH_* discipline
// ---------------------------------------------------------------------------

/// Schema string of a serving-trajectory file (e.g. `BENCH_PR7_SERVE.json`).
///
/// A trajectory is `{"schema": …, "runs": {<label>: <run>}}` where every run
/// is one measured execution of the standard loopback load mix (`serve_load`):
/// idle keep-alive connections held open while active clients drive queries.
/// Like the training-side `BENCH_*` files, runs accumulate across PRs under
/// distinct labels so the serving SLOs have a committed history, not a
/// one-off measurement.
pub const SERVING_SCHEMA: &str = "warplda-serve-trajectory/1";

/// Required numeric fields of one serving run, besides the `latency` block.
pub const SERVING_RUN_FIELDS: [&str; 6] =
    ["workers", "idle_connections", "requests", "shed", "duration_secs", "throughput_rps"];

/// One measured run of the standard serving load mix.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingRun {
    /// Worker threads the server ran with.
    pub workers: u64,
    /// Idle keep-alive connections held open for the whole run.
    pub idle_connections: u64,
    /// Requests the active clients sent.
    pub requests: u64,
    /// Requests shed with a typed overload error (admission control).
    pub shed: u64,
    /// Wall-clock duration of the active-traffic phase, seconds.
    pub duration_secs: f64,
    /// Served requests per second of wall clock.
    pub throughput_rps: f64,
    /// Service-time percentiles over the served requests.
    pub latency: LatencySummary,
}

impl ServingRun {
    /// Renders the run as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("workers", Json::Num(self.workers as f64));
        o.set("idle_connections", Json::Num(self.idle_connections as f64));
        o.set("requests", Json::Num(self.requests as f64));
        o.set("shed", Json::Num(self.shed as f64));
        o.set("duration_secs", Json::Num(self.duration_secs));
        o.set("throughput_rps", Json::Num(self.throughput_rps));
        o.set("latency", self.latency.to_json());
        o
    }

    /// Parses a run object previously emitted by [`to_json`](Self::to_json).
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let num = |key: &str| {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("serving run: missing numeric {key:?}"))
        };
        let latency = v.get("latency").ok_or("serving run: missing \"latency\" block")?;
        Ok(Self {
            workers: num("workers")? as u64,
            idle_connections: num("idle_connections")? as u64,
            requests: num("requests")? as u64,
            shed: num("shed")? as u64,
            duration_secs: num("duration_secs")?,
            throughput_rps: num("throughput_rps")?,
            latency: LatencySummary::from_json(latency)?,
        })
    }
}

/// Schema-validates one serving run: every field present and numeric, a valid
/// `latency` block, and the cross-field invariants (positive duration and
/// throughput, shed + served ≤ sent). `context` prefixes error messages.
pub fn validate_serving_run(v: &Json, context: &str, errors: &mut Vec<String>) {
    for field in SERVING_RUN_FIELDS {
        if v.get(field).and_then(Json::as_f64).is_none() {
            errors.push(format!("{context}: missing numeric {field:?}"));
        }
    }
    match v.get("latency") {
        Some(block) => validate_latency_block(block, &format!("{context}/latency"), errors),
        None => errors.push(format!("{context}: missing \"latency\" block")),
    }
    let Ok(run) = ServingRun::from_json(v) else {
        return; // field errors already recorded
    };
    if run.requests == 0 {
        errors.push(format!("{context}: zero requests sent"));
    }
    if run.duration_secs <= 0.0 {
        errors.push(format!("{context}: non-positive duration_secs"));
    }
    if run.throughput_rps <= 0.0 {
        errors.push(format!("{context}: non-positive throughput_rps"));
    }
    if run.latency.count + run.shed > run.requests {
        errors.push(format!(
            "{context}: served ({}) + shed ({}) exceeds requests sent ({})",
            run.latency.count, run.shed, run.requests
        ));
    }
}

/// Validates a whole serving-trajectory file and returns the labelled runs in
/// file order.
pub fn validate_serving_report(text: &str) -> Result<Vec<(String, ServingRun)>, Vec<String>> {
    let doc = Json::parse(text).map_err(|e| vec![format!("not valid JSON: {e}")])?;
    let mut errors = Vec::new();
    match doc.get("schema").and_then(Json::as_str) {
        None => errors.push("missing \"schema\" string".to_string()),
        Some(s) if s != SERVING_SCHEMA => {
            errors.push(format!("schema is {s:?}, expected {SERVING_SCHEMA:?}"));
        }
        Some(_) => {}
    }
    let mut runs = Vec::new();
    match doc.get("runs").and_then(Json::as_obj) {
        Some(entries) if !entries.is_empty() => {
            for (label, run) in entries {
                validate_serving_run(run, label, &mut errors);
                if let Ok(parsed) = ServingRun::from_json(run) {
                    runs.push((label.clone(), parsed));
                }
            }
        }
        _ => errors.push("\"runs\" must be a non-empty object".to_string()),
    }
    if errors.is_empty() {
        Ok(runs)
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary() -> LatencySummary {
        LatencySummary {
            count: 200,
            mean_us: 812.4,
            p50_us: 640,
            p95_us: 2304,
            p99_us: 4608,
            max_us: 5120,
        }
    }

    #[test]
    fn summary_round_trips_through_json() {
        let s = summary();
        let json = s.to_json();
        let back = LatencySummary::from_json(&json).unwrap();
        assert_eq!(back, s);
        let mut errors = Vec::new();
        validate_latency_block(&json, "t", &mut errors);
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn validation_catches_missing_and_non_monotone_fields() {
        let mut json = summary().to_json();
        json.set("p95_us", Json::Num(9_999_999.0)); // above p99
        let mut errors = Vec::new();
        validate_latency_block(&json, "t", &mut errors);
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("monotone"), "{errors:?}");

        let mut json = summary().to_json();
        json.set("p50_us", Json::Str("fast".into()));
        let mut errors = Vec::new();
        validate_latency_block(&json, "t", &mut errors);
        assert!(errors.iter().any(|e| e.contains("p50_us")), "{errors:?}");
    }

    #[test]
    fn serve_report_file_validation() {
        let mut doc = Json::obj();
        doc.set("schema", Json::Str("warplda-serve-report/1".into()));
        doc.set("latency", summary().to_json());
        let s = validate_serve_report(&doc.render()).unwrap();
        assert_eq!(s.count, 200);

        assert!(validate_serve_report("{}").is_err());
        assert!(validate_serve_report("not json").is_err());
        let mut bad = Json::obj();
        bad.set("schema", Json::Str("x".into()));
        let mut lat = summary().to_json();
        lat.set("count", Json::Num(0.0));
        bad.set("latency", lat);
        let errors = validate_serve_report(&bad.render()).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("zero requests")), "{errors:?}");
    }

    fn serving_run() -> ServingRun {
        ServingRun {
            workers: 2,
            idle_connections: 1024,
            requests: 8_000,
            shed: 120,
            duration_secs: 3.5,
            throughput_rps: 2_251.4,
            latency: summary(),
        }
    }

    fn trajectory(run: &ServingRun) -> Json {
        let mut runs = Json::obj();
        runs.set("workers2_idle1024", run.to_json());
        let mut doc = Json::obj();
        doc.set("schema", Json::Str(SERVING_SCHEMA.into()));
        doc.set("runs", runs);
        doc
    }

    #[test]
    fn serving_run_round_trips_through_json() {
        let run = serving_run();
        let back = ServingRun::from_json(&run.to_json()).unwrap();
        assert_eq!(back, run);

        let parsed = validate_serving_report(&trajectory(&run).render()).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].0, "workers2_idle1024");
        assert_eq!(parsed[0].1, run);
    }

    #[test]
    fn serving_validation_catches_schema_and_invariant_violations() {
        // Wrong schema string.
        let mut doc = trajectory(&serving_run());
        doc.set("schema", Json::Str("warplda-perf-trajectory/1".into()));
        let errors = validate_serving_report(&doc.render()).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("expected")), "{errors:?}");

        // Empty runs.
        let mut doc = Json::obj();
        doc.set("schema", Json::Str(SERVING_SCHEMA.into()));
        doc.set("runs", Json::obj());
        let errors = validate_serving_report(&doc.render()).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("non-empty")), "{errors:?}");

        // served + shed exceeding requests sent.
        let mut run = serving_run();
        run.shed = run.requests; // latency.count extra responses appear from nowhere
        let errors = validate_serving_report(&trajectory(&run).render()).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("exceeds requests")), "{errors:?}");

        // Missing field.
        let mut json = serving_run().to_json();
        json.set("throughput_rps", Json::Str("fast".into()));
        let mut errors = Vec::new();
        validate_serving_run(&json, "t", &mut errors);
        assert!(errors.iter().any(|e| e.contains("throughput_rps")), "{errors:?}");

        // Broken nested latency block surfaces with the nested context.
        let mut json = serving_run().to_json();
        let mut lat = summary().to_json();
        lat.set("p95_us", Json::Num(9e9)); // above p99
        json.set("latency", lat);
        let mut errors = Vec::new();
        validate_serving_run(&json, "t", &mut errors);
        assert!(errors.iter().any(|e| e.contains("t/latency") && e.contains("monotone")));
    }
}
