//! The `latency` block of the perf-report JSON schema.
//!
//! The query server (`warplda-serve`) accounts per-request service time as
//! p50/p95/p99/max percentiles; this module is the bridge into the bench
//! harness's JSON schema: a `latency` object that the serving demo emits and
//! CI schema-validates (`perf_report --validate-latency`), the same
//! discipline as the training-side `BENCH_*.json` reports.
//!
//! ```json
//! "latency": {
//!   "count": 200,
//!   "mean_us": 812.4,
//!   "p50_us": 640,
//!   "p95_us": 2304,
//!   "p99_us": 4608,
//!   "max_us": 5120
//! }
//! ```

use crate::json::Json;

/// The required numeric fields of a `latency` block, in schema order.
pub const LATENCY_FIELDS: [&str; 6] = ["count", "mean_us", "p50_us", "p95_us", "p99_us", "max_us"];

/// A latency summary as carried by the JSON schema (microseconds).
///
/// Mirrors `warplda_serve::LatencyStats` field for field; the serve crate
/// cannot depend on the bench crate (the bench crate sits above the facade),
/// so the demo copies the five numbers across.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Requests measured.
    pub count: u64,
    /// Mean service time, µs.
    pub mean_us: f64,
    /// Median, µs.
    pub p50_us: u64,
    /// 95th percentile, µs.
    pub p95_us: u64,
    /// 99th percentile, µs.
    pub p99_us: u64,
    /// Worst request, µs.
    pub max_us: u64,
}

impl LatencySummary {
    /// Renders the summary as a `latency` JSON object.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("count", Json::Num(self.count as f64));
        o.set("mean_us", Json::Num(self.mean_us));
        o.set("p50_us", Json::Num(self.p50_us as f64));
        o.set("p95_us", Json::Num(self.p95_us as f64));
        o.set("p99_us", Json::Num(self.p99_us as f64));
        o.set("max_us", Json::Num(self.max_us as f64));
        o
    }

    /// Parses a `latency` object previously emitted by
    /// [`to_json`](Self::to_json).
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let num = |key: &str| {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("latency block: missing numeric {key:?}"))
        };
        Ok(Self {
            count: num("count")? as u64,
            mean_us: num("mean_us")?,
            p50_us: num("p50_us")? as u64,
            p95_us: num("p95_us")? as u64,
            p99_us: num("p99_us")? as u64,
            max_us: num("max_us")? as u64,
        })
    }
}

/// Schema-validates the `latency` block of a serve report: all six fields
/// present and numeric, percentiles monotone (`p50 ≤ p95 ≤ p99 ≤ max`), and
/// a positive request count. `context` prefixes error messages.
pub fn validate_latency_block(v: &Json, context: &str, errors: &mut Vec<String>) {
    for field in LATENCY_FIELDS {
        if v.get(field).and_then(Json::as_f64).is_none() {
            errors.push(format!("{context}: missing numeric {field:?}"));
        }
    }
    let Ok(s) = LatencySummary::from_json(v) else {
        return; // field errors already recorded
    };
    if s.count == 0 {
        errors.push(format!("{context}: zero requests measured"));
    }
    if !(s.p50_us <= s.p95_us && s.p95_us <= s.p99_us && s.p99_us <= s.max_us) {
        errors.push(format!(
            "{context}: percentiles not monotone (p50 {} / p95 {} / p99 {} / max {})",
            s.p50_us, s.p95_us, s.p99_us, s.max_us
        ));
    }
}

/// Validates a whole serve-report file: a JSON document with a `schema`
/// string and a valid `latency` block.
pub fn validate_serve_report(text: &str) -> Result<LatencySummary, Vec<String>> {
    let doc = Json::parse(text).map_err(|e| vec![format!("not valid JSON: {e}")])?;
    let mut errors = Vec::new();
    if doc.get("schema").and_then(Json::as_str).is_none() {
        errors.push("missing \"schema\" string".to_string());
    }
    match doc.get("latency") {
        Some(block) => validate_latency_block(block, "latency", &mut errors),
        None => errors.push("missing \"latency\" block".to_string()),
    }
    if !errors.is_empty() {
        return Err(errors);
    }
    LatencySummary::from_json(doc.get("latency").expect("checked above")).map_err(|e| vec![e])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary() -> LatencySummary {
        LatencySummary {
            count: 200,
            mean_us: 812.4,
            p50_us: 640,
            p95_us: 2304,
            p99_us: 4608,
            max_us: 5120,
        }
    }

    #[test]
    fn summary_round_trips_through_json() {
        let s = summary();
        let json = s.to_json();
        let back = LatencySummary::from_json(&json).unwrap();
        assert_eq!(back, s);
        let mut errors = Vec::new();
        validate_latency_block(&json, "t", &mut errors);
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn validation_catches_missing_and_non_monotone_fields() {
        let mut json = summary().to_json();
        json.set("p95_us", Json::Num(9_999_999.0)); // above p99
        let mut errors = Vec::new();
        validate_latency_block(&json, "t", &mut errors);
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("monotone"), "{errors:?}");

        let mut json = summary().to_json();
        json.set("p50_us", Json::Str("fast".into()));
        let mut errors = Vec::new();
        validate_latency_block(&json, "t", &mut errors);
        assert!(errors.iter().any(|e| e.contains("p50_us")), "{errors:?}");
    }

    #[test]
    fn serve_report_file_validation() {
        let mut doc = Json::obj();
        doc.set("schema", Json::Str("warplda-serve-report/1".into()));
        doc.set("latency", summary().to_json());
        let s = validate_serve_report(&doc.render()).unwrap();
        assert_eq!(s.count, 200);

        assert!(validate_serve_report("{}").is_err());
        assert!(validate_serve_report("not json").is_err());
        let mut bad = Json::obj();
        bad.set("schema", Json::Str("x".into()));
        let mut lat = summary().to_json();
        lat.set("count", Json::Num(0.0));
        bad.set("latency", lat);
        let errors = validate_serve_report(&bad.render()).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("zero requests")), "{errors:?}");
    }
}
