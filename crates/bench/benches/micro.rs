//! Criterion micro-benchmarks of the building blocks and of the per-iteration
//! cost of each sampler, including the design-choice ablations called out in
//! DESIGN.md §6 (hash vs dense count vectors, CSC+pointer layout vs dual
//! CSR/CSC layout, partitioning strategies, alias-table vs F+tree draws).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use warplda::lda::counts::{DenseCounts, HashCounts, TopicCounts};
use warplda::prelude::*;
use warplda::sampling::{new_rng, AliasTable, FTree};
use warplda::sparse::{partition_by_size, DualLayoutMatrix, TokenMatrix};

fn bench_alias_and_ftree(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling_structures");
    for &k in &[1_000usize, 10_000] {
        let weights: Vec<f64> = (0..k).map(|i| ((i % 97) + 1) as f64).collect();
        group.bench_with_input(BenchmarkId::new("alias_build", k), &weights, |b, w| {
            b.iter(|| AliasTable::new(black_box(w)))
        });
        let table = AliasTable::new(&weights);
        group.bench_with_input(BenchmarkId::new("alias_draw", k), &table, |b, t| {
            let mut rng = new_rng(1);
            b.iter(|| black_box(t.sample(&mut rng)))
        });
        group.bench_with_input(BenchmarkId::new("ftree_build", k), &weights, |b, w| {
            b.iter(|| FTree::new(black_box(w)))
        });
        let tree = FTree::new(&weights);
        group.bench_with_input(BenchmarkId::new("ftree_draw", k), &tree, |b, t| {
            let mut rng = new_rng(2);
            b.iter(|| black_box(t.sample(&mut rng)))
        });
        group.bench_with_input(BenchmarkId::new("ftree_update", k), &k, |b, &k| {
            let mut tree = FTree::new(&weights);
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 7919) % k;
                tree.set(i, (i % 13) as f64);
            })
        });
    }
    group.finish();
}

fn bench_count_vectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("count_vectors");
    let k = 100_000usize;
    let doc: Vec<u32> = (0..300u32).map(|i| (i * 2_654_435_761) % k as u32).collect();
    group.bench_function("hash_counts_build_and_clear", |b| {
        let mut counts = HashCounts::with_expected(doc.len(), k);
        b.iter(|| {
            for &t in &doc {
                counts.increment(black_box(t));
            }
            counts.clear();
        })
    });
    group.bench_function("dense_counts_build_and_clear", |b| {
        let mut counts = DenseCounts::new(k);
        b.iter(|| {
            for &t in &doc {
                counts.increment(black_box(t));
            }
            counts.clear();
        })
    });
    group.finish();
}

fn bench_visit_layouts(c: &mut Criterion) {
    // DESIGN.md §6: CSC + row pointers (no transpose) vs dual CSR/CSC with an
    // explicit transpose on every direction switch.
    let corpus = DatasetPreset::Tiny.generate();
    let doc_view = DocMajorView::build(&corpus);
    let entries: Vec<(u32, u32)> = (0..corpus.num_docs() as u32)
        .flat_map(|d| doc_view.doc_words(d).iter().map(move |&w| (d, w)).collect::<Vec<_>>())
        .collect();
    let rows = corpus.num_docs();
    let cols = corpus.vocab_size();

    let mut group = c.benchmark_group("visit_layouts");
    group.bench_function("csc_plus_pointers_row_then_col", |b| {
        let mut m: TokenMatrix<u32> = TokenMatrix::from_entries(rows, cols, &entries);
        b.iter(|| {
            m.visit_by_row(|_, mut r| {
                for i in 0..r.len() {
                    *r.get_mut(i) += 1;
                }
            });
            m.visit_by_column(|_, mut col| {
                for i in 0..col.len() {
                    *col.get_mut(i) += 1;
                }
            });
        })
    });
    group.bench_function("dual_csr_csc_row_then_col", |b| {
        let mut m: DualLayoutMatrix<u32> = DualLayoutMatrix::from_entries(rows, cols, &entries);
        b.iter(|| {
            m.visit_by_row(|_, _, data| {
                for v in data {
                    *v += 1;
                }
            });
            m.visit_by_column(|_, _, data| {
                for v in data {
                    *v += 1;
                }
            });
        })
    });
    group.finish();
}

fn bench_partitioners(c: &mut Criterion) {
    let sizes: Vec<u64> = (0..100_000u64).map(|i| 1_000_000 / (i + 1)).collect();
    let mut group = c.benchmark_group("partitioning");
    for (name, strategy) in [
        ("static", PartitionStrategy::Static { seed: 1 }),
        ("dynamic", PartitionStrategy::Dynamic),
        ("greedy", PartitionStrategy::Greedy),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| partition_by_size(black_box(&sizes), 64, strategy))
        });
    }
    group.finish();
}

fn bench_sampler_iterations(c: &mut Criterion) {
    let corpus = DatasetPreset::Tiny.generate();
    let params = ModelParams::paper_defaults(50);
    let mut group = c.benchmark_group("sampler_iteration");
    group.sample_size(10);

    group.bench_function("warplda_m2", |b| {
        let mut s = WarpLda::new(&corpus, params, WarpLdaConfig::with_mh_steps(2), 1);
        b.iter(|| s.run_iteration())
    });
    group.bench_function("warplda_m2_dense_counts", |b| {
        let cfg = WarpLdaConfig { mh_steps: 2, use_hash_counts: false };
        let mut s = WarpLda::new(&corpus, params, cfg, 1);
        b.iter(|| s.run_iteration())
    });
    group.bench_function("lightlda_m2", |b| {
        let mut s = LightLda::new(&corpus, params, 2, 1);
        b.iter(|| s.run_iteration())
    });
    group.bench_function("fpluslda", |b| {
        let mut s = FPlusLda::new(&corpus, params, 1);
        b.iter(|| s.run_iteration())
    });
    group.bench_function("sparselda", |b| {
        let mut s = SparseLda::new(&corpus, params, 1);
        b.iter(|| s.run_iteration())
    });
    group.bench_function("cgs", |b| {
        let mut s = CollapsedGibbs::new(&corpus, params, 1);
        b.iter(|| s.run_iteration())
    });
    group.finish();
}

/// Short measurement windows so the whole suite (19 benchmarks) finishes in a
/// couple of minutes on one core; raise these when chasing small regressions.
fn fast_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_alias_and_ftree,
        bench_count_vectors,
        bench_visit_layouts,
        bench_partitioners,
        bench_sampler_iterations
}
criterion_main!(benches);
