//! The coordinator↔worker wire protocol of multi-process training.
//!
//! Every message is one `warplda_net` frame whose payload starts with a
//! one-byte tag. Payload encoding rides on the same [`Encoder`]/[`Decoder`]
//! primitives as the on-disk checkpoint codec, so malformed payloads surface
//! as the same typed [`CodecError`]s the rest of the workspace handles.
//!
//! A training session is:
//!
//! ```text
//! worker            coordinator
//! Hello{id}     →                  (after connecting over loopback TCP)
//!               ←  Setup{..}       (corpus, hyper-parameters, optional resume)
//! Ready{id}     →                  (replica built, bit-identical start)
//! per iteration (epoch = completed iterations, a barrier per phase):
//!               ←  RunIteration{epoch}
//! WordDelta     →                  (owned-column records + partial c_k)
//!               ←  WordSync        (merged c_k + the records this worker lacks)
//! DocDelta      →
//!               ←  DocSync
//! shutdown:
//!               ←  Shutdown
//! Bye{id}       →
//! ```
//!
//! Workers that hit an error mid-protocol send [`Message::Fault`] on a
//! best-effort basis before exiting, so the coordinator can report *why* a
//! worker died instead of just a closed connection.
//!
//! Liveness and recovery ride on two extra messages. Workers pulse
//! [`Message::Heartbeat`] from a side thread every
//! `Setup.heartbeat_interval_ms`, which is how the coordinator tells a
//! *hung* worker (process alive, socket open, nothing flowing) from a slow
//! one. When a worker dies mid-iteration the coordinator respawns it with
//! `Setup.resume` set to the last boundary snapshot and sends every survivor
//! [`Message::Restore`] with the same snapshot; survivors abandon the
//! in-flight iteration, reinstall the boundary state and answer `Ready`.
//! Because per-entity RNG streams are keyed on (seed, iteration, phase,
//! entity), the replay is bit-identical to the run that failed.

use crate::fault::{read_fault_events, write_fault_events, FaultEvent};
use warplda_corpus::io::codec::{
    read_corpus, write_corpus, CodecError, CodecResult, Decoder, Encoder,
};
use warplda_corpus::Corpus;

/// Frame-size bound of distributed-training connections: Setup frames carry
/// the whole corpus and resume payloads carry the full packed records, both
/// far beyond the serving default.
pub const DIST_MAX_FRAME_BYTES: u32 = 1 << 28;

const TAG_HELLO: u8 = 1;
const TAG_SETUP: u8 = 2;
const TAG_READY: u8 = 3;
const TAG_RUN_ITERATION: u8 = 4;
const TAG_WORD_DELTA: u8 = 5;
const TAG_WORD_SYNC: u8 = 6;
const TAG_DOC_DELTA: u8 = 7;
const TAG_DOC_SYNC: u8 = 8;
const TAG_SHUTDOWN: u8 = 9;
const TAG_BYE: u8 = 10;
const TAG_FAULT: u8 = 11;
const TAG_HEARTBEAT: u8 = 12;
const TAG_RESTORE: u8 = 13;

/// Everything a worker needs to build its replica: the corpus, the model, the
/// seed and (when resuming) the full sampler state to adopt.
#[derive(Debug, Clone)]
pub struct Setup {
    /// Cluster size `P`.
    pub workers: u32,
    /// This worker's id in `0..P`.
    pub worker_id: u32,
    /// Seed every replica derives its per-entity RNG streams from.
    pub seed: u64,
    /// Number of topics `K`.
    pub num_topics: u64,
    /// Dirichlet `α`.
    pub alpha: f64,
    /// Dirichlet `β`.
    pub beta: f64,
    /// MH proposals per token `M`.
    pub mh_steps: u64,
    /// Hash-vs-dense count-vector heuristic toggle.
    pub use_hash_counts: bool,
    /// The training corpus, shipped in full (every replica holds it).
    pub corpus: Corpus,
    /// Sampler state to adopt instead of the fresh random initialization.
    pub resume: Option<ResumeState>,
    /// Interval between worker→coordinator heartbeats, in milliseconds.
    /// Zero disables heartbeating (single-process tests drive the protocol
    /// directly and have no liveness loop to feed).
    pub heartbeat_interval_ms: u64,
    /// Scripted fault events addressed to this worker (empty in production).
    pub faults: Vec<FaultEvent>,
}

/// Full sampler state for resuming mid-training (mirrors the checkpoint
/// layout minus the RNG, which per-entity streams re-derive from the seed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResumeState {
    /// Completed iterations at the resume point.
    pub iterations: u64,
    /// The full packed record buffer.
    pub records: Vec<u32>,
    /// The global `c_k` at the resume point.
    pub topic_counts: Vec<u32>,
}

/// A worker's phase result: the packed records of its owned entries (in the
/// deterministic plan order) plus its partial `c_k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delta {
    /// Sender's worker id.
    pub worker_id: u32,
    /// Epoch the phase belongs to (= completed iterations when it started).
    pub epoch: u64,
    /// Packed records of the sender's delta entries, `entries × stride` words.
    pub records: Vec<u32>,
    /// The sender's partial `c_k` accumulated over its shard.
    pub partial_ck: Vec<u32>,
}

/// The coordinator's phase-boundary broadcast: the merged global `c_k` plus
/// the packed records of the entries the receiver does not own.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sync {
    /// Epoch the boundary belongs to.
    pub epoch: u64,
    /// The merged global `c_k` every replica installs.
    pub topic_counts: Vec<u32>,
    /// Packed records of the receiver's sync entries, `entries × stride`.
    pub records: Vec<u32>,
}

/// One protocol message (the decoded, owning form).
#[derive(Debug, Clone)]
pub enum Message {
    /// Worker → coordinator: connection opened.
    Hello {
        /// Sender's worker id.
        worker_id: u32,
    },
    /// Coordinator → worker: build your replica.
    Setup(Box<Setup>),
    /// Worker → coordinator: replica built, ready for iterations.
    Ready {
        /// Sender's worker id.
        worker_id: u32,
    },
    /// Coordinator → worker: run iteration `epoch`.
    RunIteration {
        /// Expected completed-iterations counter on the worker.
        epoch: u64,
    },
    /// Worker → coordinator: word-phase result.
    WordDelta(Delta),
    /// Coordinator → worker: word-phase boundary.
    WordSync(Sync),
    /// Worker → coordinator: doc-phase result.
    DocDelta(Delta),
    /// Coordinator → worker: doc-phase boundary.
    DocSync(Sync),
    /// Coordinator → worker: clean shutdown.
    Shutdown,
    /// Worker → coordinator: shutting down.
    Bye {
        /// Sender's worker id.
        worker_id: u32,
    },
    /// Worker → coordinator: fatal error, best-effort before exiting.
    Fault {
        /// Sender's worker id.
        worker_id: u32,
        /// Human-readable cause.
        message: String,
    },
    /// Worker → coordinator: liveness pulse, sent on a side thread every
    /// `Setup.heartbeat_interval_ms`. Carries no protocol state; the
    /// coordinator's receive loop consumes it to refresh the worker's
    /// last-heard clock and never hands it to the state machine.
    Heartbeat {
        /// Sender's worker id.
        worker_id: u32,
    },
    /// Coordinator → worker: a peer failed; abandon the current iteration,
    /// reinstall this boundary state and reply `Ready`. Sent to *surviving*
    /// workers during recovery (the respawned worker gets the same state via
    /// `Setup.resume`).
    Restore(ResumeState),
}

fn write_resume(enc: &mut Encoder<'_>, r: &ResumeState) -> CodecResult<()> {
    enc.write_u64(r.iterations)?;
    enc.write_u32_slice(&r.records)?;
    enc.write_u32_slice(&r.topic_counts)
}

fn read_resume(dec: &mut Decoder<'_>) -> CodecResult<ResumeState> {
    Ok(ResumeState {
        iterations: dec.read_u64()?,
        records: dec.read_u32_vec()?,
        topic_counts: dec.read_u32_vec()?,
    })
}

fn write_delta(enc: &mut Encoder<'_>, d: &Delta) -> CodecResult<()> {
    enc.write_u32(d.worker_id)?;
    enc.write_u64(d.epoch)?;
    enc.write_u32_slice(&d.records)?;
    enc.write_u32_slice(&d.partial_ck)
}

fn read_delta(dec: &mut Decoder<'_>) -> CodecResult<Delta> {
    Ok(Delta {
        worker_id: dec.read_u32()?,
        epoch: dec.read_u64()?,
        records: dec.read_u32_vec()?,
        partial_ck: dec.read_u32_vec()?,
    })
}

fn write_sync(enc: &mut Encoder<'_>, s: &Sync) -> CodecResult<()> {
    enc.write_u64(s.epoch)?;
    enc.write_u32_slice(&s.topic_counts)?;
    enc.write_u32_slice(&s.records)
}

fn read_sync(dec: &mut Decoder<'_>) -> CodecResult<Sync> {
    Ok(Sync {
        epoch: dec.read_u64()?,
        topic_counts: dec.read_u32_vec()?,
        records: dec.read_u32_vec()?,
    })
}

/// Encodes a message into a frame payload (send it with
/// [`warplda_net::write_frame`]).
pub fn encode_message(msg: &Message) -> Vec<u8> {
    let mut out = Vec::new();
    let mut enc = Encoder::new(&mut out);
    // Writing to a Vec cannot fail; unwrap keeps the call sites clean.
    (|| -> CodecResult<()> {
        match msg {
            Message::Hello { worker_id } => {
                enc.write_u8(TAG_HELLO)?;
                enc.write_u32(*worker_id)
            }
            Message::Setup(s) => {
                enc.write_u8(TAG_SETUP)?;
                enc.write_u32(s.workers)?;
                enc.write_u32(s.worker_id)?;
                enc.write_u64(s.seed)?;
                enc.write_u64(s.num_topics)?;
                enc.write_f64(s.alpha)?;
                enc.write_f64(s.beta)?;
                enc.write_u64(s.mh_steps)?;
                enc.write_bool(s.use_hash_counts)?;
                write_corpus(&mut enc, &s.corpus)?;
                match &s.resume {
                    None => enc.write_bool(false)?,
                    Some(r) => {
                        enc.write_bool(true)?;
                        write_resume(&mut enc, r)?;
                    }
                }
                enc.write_u64(s.heartbeat_interval_ms)?;
                write_fault_events(&mut enc, &s.faults)
            }
            Message::Ready { worker_id } => {
                enc.write_u8(TAG_READY)?;
                enc.write_u32(*worker_id)
            }
            Message::RunIteration { epoch } => {
                enc.write_u8(TAG_RUN_ITERATION)?;
                enc.write_u64(*epoch)
            }
            Message::WordDelta(d) => {
                enc.write_u8(TAG_WORD_DELTA)?;
                write_delta(&mut enc, d)
            }
            Message::WordSync(s) => {
                enc.write_u8(TAG_WORD_SYNC)?;
                write_sync(&mut enc, s)
            }
            Message::DocDelta(d) => {
                enc.write_u8(TAG_DOC_DELTA)?;
                write_delta(&mut enc, d)
            }
            Message::DocSync(s) => {
                enc.write_u8(TAG_DOC_SYNC)?;
                write_sync(&mut enc, s)
            }
            Message::Shutdown => enc.write_u8(TAG_SHUTDOWN),
            Message::Bye { worker_id } => {
                enc.write_u8(TAG_BYE)?;
                enc.write_u32(*worker_id)
            }
            Message::Fault { worker_id, message } => {
                enc.write_u8(TAG_FAULT)?;
                enc.write_u32(*worker_id)?;
                enc.write_str(message)
            }
            Message::Heartbeat { worker_id } => {
                enc.write_u8(TAG_HEARTBEAT)?;
                enc.write_u32(*worker_id)
            }
            Message::Restore(r) => {
                enc.write_u8(TAG_RESTORE)?;
                write_resume(&mut enc, r)
            }
        }
    })()
    .expect("encoding to a Vec cannot fail");
    out
}

/// Decodes one frame payload. Unknown tags and trailing bytes are typed
/// [`CodecError::Corrupt`] — the rejection gate for malformed deltas.
pub fn decode_message(payload: &[u8]) -> CodecResult<Message> {
    let mut cursor = payload;
    let msg = {
        let mut dec = Decoder::new(&mut cursor);
        let tag = dec.read_u8()?;
        match tag {
            TAG_HELLO => Message::Hello { worker_id: dec.read_u32()? },
            TAG_SETUP => {
                let workers = dec.read_u32()?;
                let worker_id = dec.read_u32()?;
                let seed = dec.read_u64()?;
                let num_topics = dec.read_u64()?;
                let alpha = dec.read_f64()?;
                let beta = dec.read_f64()?;
                let mh_steps = dec.read_u64()?;
                let use_hash_counts = dec.read_bool()?;
                let corpus = read_corpus(&mut dec)?;
                let resume = if dec.read_bool()? { Some(read_resume(&mut dec)?) } else { None };
                let heartbeat_interval_ms = dec.read_u64()?;
                let faults = read_fault_events(&mut dec)?;
                Message::Setup(Box::new(Setup {
                    workers,
                    worker_id,
                    seed,
                    num_topics,
                    alpha,
                    beta,
                    mh_steps,
                    use_hash_counts,
                    corpus,
                    resume,
                    heartbeat_interval_ms,
                    faults,
                }))
            }
            TAG_READY => Message::Ready { worker_id: dec.read_u32()? },
            TAG_RUN_ITERATION => Message::RunIteration { epoch: dec.read_u64()? },
            TAG_WORD_DELTA => Message::WordDelta(read_delta(&mut dec)?),
            TAG_WORD_SYNC => Message::WordSync(read_sync(&mut dec)?),
            TAG_DOC_DELTA => Message::DocDelta(read_delta(&mut dec)?),
            TAG_DOC_SYNC => Message::DocSync(read_sync(&mut dec)?),
            TAG_SHUTDOWN => Message::Shutdown,
            TAG_BYE => Message::Bye { worker_id: dec.read_u32()? },
            TAG_FAULT => Message::Fault { worker_id: dec.read_u32()?, message: dec.read_string()? },
            TAG_HEARTBEAT => Message::Heartbeat { worker_id: dec.read_u32()? },
            TAG_RESTORE => Message::Restore(read_resume(&mut dec)?),
            other => return Err(CodecError::Corrupt(format!("unknown message tag {other:#04x}"))),
        }
    };
    if !cursor.is_empty() {
        return Err(CodecError::Corrupt(format!(
            "{} trailing bytes after message payload",
            cursor.len()
        )));
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use warplda_corpus::{Document, Vocabulary};

    fn tiny_corpus() -> Corpus {
        let mut vocab = Vocabulary::new();
        for w in ["a", "b", "c"] {
            vocab.intern(w);
        }
        Corpus::from_parts(
            vec![Document::from_tokens(vec![0, 1, 2, 1]), Document::from_tokens(vec![2, 0])],
            vocab,
        )
        .unwrap()
    }

    #[test]
    fn every_message_round_trips() {
        let msgs = vec![
            Message::Hello { worker_id: 3 },
            Message::Setup(Box::new(Setup {
                workers: 4,
                worker_id: 2,
                seed: 0xFEED,
                num_topics: 12,
                alpha: 0.5,
                beta: 0.01,
                mh_steps: 2,
                use_hash_counts: true,
                corpus: tiny_corpus(),
                resume: Some(ResumeState {
                    iterations: 7,
                    records: vec![0, 1, 2, 1, 0, 2],
                    topic_counts: vec![2, 2, 2],
                }),
                heartbeat_interval_ms: 250,
                faults: vec![crate::fault::FaultEvent {
                    worker: 2,
                    iteration: 3,
                    phase: crate::fault::FaultPhase::Doc,
                    action: crate::fault::FaultAction::Hang { ms: 10_000 },
                }],
            })),
            Message::Ready { worker_id: 1 },
            Message::RunIteration { epoch: 42 },
            Message::WordDelta(Delta {
                worker_id: 0,
                epoch: 5,
                records: vec![1, 2, 3],
                partial_ck: vec![4, 5],
            }),
            Message::WordSync(Sync { epoch: 5, topic_counts: vec![9, 9], records: vec![7] }),
            Message::DocDelta(Delta {
                worker_id: 1,
                epoch: 5,
                records: vec![],
                partial_ck: vec![0, 0],
            }),
            Message::DocSync(Sync { epoch: 5, topic_counts: vec![1], records: vec![] }),
            Message::Shutdown,
            Message::Bye { worker_id: 0 },
            Message::Fault { worker_id: 2, message: "shard went sideways".into() },
            Message::Heartbeat { worker_id: 3 },
            Message::Restore(ResumeState {
                iterations: 9,
                records: vec![5, 4, 3],
                topic_counts: vec![1, 1, 1],
            }),
        ];
        for msg in msgs {
            let payload = encode_message(&msg);
            let back = decode_message(&payload).unwrap();
            match (&msg, &back) {
                (Message::Hello { worker_id: a }, Message::Hello { worker_id: b }) => {
                    assert_eq!(a, b)
                }
                (Message::Setup(a), Message::Setup(b)) => {
                    assert_eq!(a.workers, b.workers);
                    assert_eq!(a.worker_id, b.worker_id);
                    assert_eq!(a.seed, b.seed);
                    assert_eq!(a.num_topics, b.num_topics);
                    assert_eq!(a.alpha.to_bits(), b.alpha.to_bits());
                    assert_eq!(a.beta.to_bits(), b.beta.to_bits());
                    assert_eq!(a.mh_steps, b.mh_steps);
                    assert_eq!(a.use_hash_counts, b.use_hash_counts);
                    assert_eq!(a.corpus.num_tokens(), b.corpus.num_tokens());
                    assert_eq!(a.resume, b.resume);
                    assert_eq!(a.heartbeat_interval_ms, b.heartbeat_interval_ms);
                    assert_eq!(a.faults, b.faults);
                }
                (Message::Ready { worker_id: a }, Message::Ready { worker_id: b }) => {
                    assert_eq!(a, b)
                }
                (Message::RunIteration { epoch: a }, Message::RunIteration { epoch: b }) => {
                    assert_eq!(a, b)
                }
                (Message::WordDelta(a), Message::WordDelta(b)) => assert_eq!(a, b),
                (Message::WordSync(a), Message::WordSync(b)) => assert_eq!(a, b),
                (Message::DocDelta(a), Message::DocDelta(b)) => assert_eq!(a, b),
                (Message::DocSync(a), Message::DocSync(b)) => assert_eq!(a, b),
                (Message::Shutdown, Message::Shutdown) => {}
                (Message::Bye { worker_id: a }, Message::Bye { worker_id: b }) => {
                    assert_eq!(a, b)
                }
                (
                    Message::Fault { worker_id: a, message: am },
                    Message::Fault { worker_id: b, message: bm },
                ) => {
                    assert_eq!(a, b);
                    assert_eq!(am, bm);
                }
                (Message::Heartbeat { worker_id: a }, Message::Heartbeat { worker_id: b }) => {
                    assert_eq!(a, b)
                }
                (Message::Restore(a), Message::Restore(b)) => assert_eq!(a, b),
                (sent, got) => panic!("message kind changed in flight: {sent:?} -> {got:?}"),
            }
        }
    }

    #[test]
    fn malformed_payloads_are_typed_codec_errors() {
        // Empty payload.
        assert!(matches!(decode_message(&[]), Err(CodecError::Io(_))));
        // Unknown tag.
        assert!(matches!(decode_message(&[0xEE]), Err(CodecError::Corrupt(_))));
        // Truncated delta: announced lengths larger than the payload.
        let mut payload = encode_message(&Message::WordDelta(Delta {
            worker_id: 0,
            epoch: 1,
            records: vec![1, 2, 3, 4],
            partial_ck: vec![1],
        }));
        payload.truncate(payload.len() - 6);
        assert!(matches!(decode_message(&payload), Err(CodecError::Io(_))));
        // Trailing garbage after a well-formed message.
        let mut payload = encode_message(&Message::Shutdown);
        payload.push(0);
        assert!(matches!(decode_message(&payload), Err(CodecError::Corrupt(_))));
    }
}
