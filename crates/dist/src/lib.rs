//! Simulated multi-machine runtime for WarpLDA (Sections 5.3.2 and 6.5 of the
//! paper).
//!
//! The paper's headline numbers are distributed: near-linear speedup on up to
//! 16 machines of a Tianhe-2-like cluster (Figure 9b), convergence on the
//! ClueWeb12 subset (Figure 6) and the 256-machine capacity run (Figure 9c/d).
//! Reproducing them bit-for-bit needs a cluster; reproducing their *structure*
//! does not. This crate runs the real WarpLDA sampler sharded across `P`
//! simulated machines on one host and layers the paper's distributed cost
//! model on top:
//!
//! * [`GridPartition`] — the P×P grid over the document-major and word-major
//!   views. Machine `i` owns document shard `i` during doc phases and word
//!   shard `i` during word phases; a token whose document and word live on
//!   different machines (an *off-diagonal* grid cell) must cross the network
//!   at every phase switch.
//! * [`ClusterConfig`] — the network model: worker count, per-link bandwidth
//!   and latency, and the per-token message size of `(M + 1) * 4` bytes (the
//!   `u32` topic assignment plus `M` `u32` proposals).
//! * [`DistributedWarpLda`] — the driver. Each simulated machine maps onto one
//!   worker of the shared-memory [`warplda_core::ParallelWarpLda`] sampler,
//!   which already gives every worker a disjoint document/word shard and its
//!   own deterministic RNG stream; the merged assignments are therefore
//!   **bit-identical** to a `ParallelWarpLda` run with the same seed and
//!   worker count (the simulation only adds accounting). Every iteration
//!   returns an [`IterationReport`] with tokens sampled, bytes exchanged, and
//!   modeled communication/wall times.
//! * [`runner`] — the modeled scaling sweep behind the Figure 9b style
//!   machine-count curves.
//!
//! On top of the simulation sits a **real multi-process backend**:
//!
//! * [`protocol`] — the framed wire protocol (over [`warplda_net`]) the
//!   coordinator and workers speak: corpus/hyperparameter setup, per-phase
//!   record deltas with partial `c_k`, merged boundary syncs, clean shutdown;
//! * [`ShardPlan`] — the deterministic per-worker ownership and exchange
//!   entry lists both sides derive independently from the [`GridPartition`];
//! * [`ProcessCluster`] — the coordinator: spawns N `warplda-dist-worker`
//!   OS processes, drives iterations over loopback TCP, and keeps a replica
//!   whose merged state is bit-identical to the simulated
//!   [`DistributedWarpLda`] (and hence to
//!   [`warplda_core::ParallelWarpLda`]) after every iteration — the
//!   simulation is retained as the correctness oracle for the real thing.
//!
//! ```
//! use warplda_corpus::DatasetPreset;
//! use warplda_core::{ModelParams, WarpLdaConfig};
//! use warplda_dist::{ClusterConfig, DistributedWarpLda};
//!
//! let corpus = DatasetPreset::Tiny.generate_scaled(10);
//! let config = WarpLdaConfig::with_mh_steps(2);
//! let cluster = ClusterConfig::tianhe2_like(4, config.mh_steps);
//! let mut driver =
//!     DistributedWarpLda::new(&corpus, ModelParams::paper_defaults(8), config, cluster, 42);
//! let report = driver.run_iteration(&corpus, true);
//! assert_eq!(report.tokens_sampled, corpus.num_tokens() * 2);
//! assert!(report.log_likelihood.unwrap().is_finite());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod driver;
pub mod fault;
pub mod grid;
pub mod plan;
pub mod process;
pub mod protocol;
pub mod runner;

pub use cluster::ClusterConfig;
pub use driver::{DistributedWarpLda, IterationReport};
pub use fault::{FaultAction, FaultEvent, FaultPhase, FaultPlan};
pub use grid::GridPartition;
pub use plan::ShardPlan;
pub use process::{DistError, ProcessCluster, ProcessClusterConfig, ProcessIterationReport};
