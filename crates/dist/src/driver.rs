//! The distributed WarpLDA driver.
//!
//! [`DistributedWarpLda`] executes the sampler exactly as the shared-memory
//! [`ParallelWarpLda`] does — each simulated machine is one worker with a
//! disjoint document shard (doc phases) and word shard (word phases) and its
//! own deterministic RNG stream — and adds the distributed bookkeeping on
//! top: the P×P [`GridPartition`] says which tokens cross machine boundaries
//! at each phase switch, and the [`ClusterConfig`] prices that exchange.
//!
//! Because the execution *is* the shared-memory execution, the assignments
//! after any number of iterations are bit-identical to `ParallelWarpLda` with
//! the same seed and worker count; the integration suite
//! (`tests/distributed_consistency.rs`) pins that property down.

use std::time::Instant;

use warplda_core::trainer::{IterationLog, IterationRecord};
use warplda_core::{ModelParams, ParallelWarpLda, Sampler, WarpLdaConfig};
use warplda_corpus::{Corpus, DocMajorView, WordMajorView};
use warplda_sparse::PartitionStrategy;

use crate::cluster::ClusterConfig;
use crate::grid::GridPartition;

/// Accounting for one distributed iteration.
#[derive(Debug, Clone)]
pub struct IterationReport {
    /// Iteration number, 1-based.
    pub iteration: u64,
    /// Tokens sampled this iteration: every token is visited in the word
    /// phase and again in the doc phase, so `2 * T`.
    pub tokens_sampled: u64,
    /// Bytes crossing the network this iteration: the off-diagonal tokens of
    /// the grid, `(M + 1) * 4` bytes each, shipped at both phase switches.
    pub bytes_exchanged: u64,
    /// Measured sampling time of the iteration on this host, seconds.
    pub compute_sec: f64,
    /// Modeled communication time of the two all-to-all exchanges, seconds.
    pub comm_sec: f64,
    /// Modeled wall time: compute plus communication.
    pub wall_sec: f64,
    /// Modeled sampling throughput, `tokens_sampled / wall_sec`.
    pub tokens_per_sec: f64,
    /// Log joint likelihood after the iteration, when evaluation was
    /// requested.
    pub log_likelihood: Option<f64>,
}

/// WarpLDA on a simulated cluster of [`ClusterConfig::workers`] machines.
pub struct DistributedWarpLda {
    shared: ParallelWarpLda,
    grid: GridPartition,
    cluster: ClusterConfig,
    doc_view: DocMajorView,
    word_view: WordMajorView,
    reports: Vec<IterationReport>,
}

impl DistributedWarpLda {
    /// Creates a distributed sampler over `cluster.workers` simulated
    /// machines.
    ///
    /// The grid mirrors the partitions the shared-memory execution actually
    /// uses — greedy document shards for doc phases and contiguous
    /// token-balanced word ranges for word phases — so the communication
    /// accounting prices exactly the execution that runs. The underlying
    /// sampler state is identical to
    /// `ParallelWarpLda::new(corpus, params, config, seed, workers)`.
    ///
    /// # Panics
    /// Panics if the cluster's per-token message size disagrees with the
    /// sampler's MH step count (`(M + 1) * 4` bytes): a mismatch would
    /// silently mis-price every exchange.
    pub fn new(
        corpus: &Corpus,
        params: ModelParams,
        config: WarpLdaConfig,
        cluster: ClusterConfig,
        seed: u64,
    ) -> Self {
        assert_eq!(
            cluster.bytes_per_token,
            (config.mh_steps as u64 + 1) * 4,
            "cluster message size must match the sampler's MH step count \
             (expected (M + 1) * 4 bytes per token for M = {})",
            config.mh_steps,
        );
        let doc_view = DocMajorView::build(corpus);
        let word_view = WordMajorView::build(corpus, &doc_view);
        let grid = GridPartition::build_with(
            corpus,
            &doc_view,
            &word_view,
            cluster.workers,
            PartitionStrategy::Greedy,
            PartitionStrategy::Dynamic,
        );
        let shared = ParallelWarpLda::new(corpus, params, config, seed, cluster.workers);
        Self { shared, grid, cluster, doc_view, word_view, reports: Vec::new() }
    }

    /// The grid partition in use.
    pub fn grid(&self) -> &GridPartition {
        &self.grid
    }

    /// The cluster model in use.
    pub fn cluster(&self) -> &ClusterConfig {
        &self.cluster
    }

    /// Number of simulated machines.
    pub fn workers(&self) -> usize {
        self.cluster.workers
    }

    /// Iterations completed so far.
    pub fn iterations(&self) -> u64 {
        self.shared.iterations()
    }

    /// Reports of all completed iterations, in order.
    pub fn reports(&self) -> &[IterationReport] {
        &self.reports
    }

    /// Current topic assignments in document-major token order — bit-identical
    /// to a [`ParallelWarpLda`] run with the same seed and worker count.
    pub fn assignments(&self) -> Vec<u32> {
        self.shared.assignments()
    }

    /// Runs one iteration (word phase + doc phase), optionally evaluating the
    /// log joint likelihood afterwards, and returns its report.
    pub fn run_iteration(&mut self, corpus: &Corpus, evaluate: bool) -> IterationReport {
        let start = Instant::now();
        self.shared.run_iteration();
        let compute_sec = start.elapsed().as_secs_f64().max(1e-9);

        let tokens_sampled = corpus.num_tokens() * 2;
        let bytes_exchanged =
            self.cluster.bytes_per_iteration(self.grid.tokens_exchanged_per_phase_switch());
        let comm_sec = self.cluster.exchange_time_sec(bytes_exchanged);
        let wall_sec = compute_sec + comm_sec;

        let log_likelihood =
            evaluate.then(|| self.shared.log_likelihood(corpus, &self.doc_view, &self.word_view));

        let report = IterationReport {
            iteration: self.shared.iterations(),
            tokens_sampled,
            bytes_exchanged,
            compute_sec,
            comm_sec,
            wall_sec,
            tokens_per_sec: tokens_sampled as f64 / wall_sec,
            log_likelihood,
        };
        self.reports.push(report.clone());
        report
    }

    /// Runs `iterations` iterations, evaluating the likelihood every
    /// `eval_every` iterations (and always on the last), and returns their
    /// reports.
    pub fn run(
        &mut self,
        corpus: &Corpus,
        iterations: usize,
        eval_every: usize,
    ) -> Vec<IterationReport> {
        self.run_where(corpus, iterations, |it| {
            it == iterations || (eval_every > 0 && it % eval_every == 0)
        })
    }

    /// Like [`run`](Self::run) but with an arbitrary evaluation schedule:
    /// `evaluate` receives the 1-based index of each iteration *within this
    /// call* and returns whether to compute the likelihood after it. Used by
    /// harness binaries that want extra points (e.g. the very first
    /// iteration of a convergence curve).
    pub fn run_where(
        &mut self,
        corpus: &Corpus,
        iterations: usize,
        mut evaluate: impl FnMut(usize) -> bool,
    ) -> Vec<IterationReport> {
        (1..=iterations).map(|it| self.run_iteration(corpus, evaluate(it))).collect()
    }

    /// Adapts the accumulated per-iteration reports into the workspace's
    /// shared [`IterationLog`] format — the same structure the single-machine
    /// [`Trainer`](warplda_core::Trainer) produces — so distributed and
    /// shared-memory runs print, export and compare through one pipeline.
    /// `seconds` accumulates the *modeled* wall time (compute plus
    /// communication).
    pub fn iteration_log(&self, name: &str) -> IterationLog {
        let tokens_per_iteration = self.doc_view.num_tokens() as u64 * 2;
        let mut log = IterationLog::new(name, tokens_per_iteration);
        let mut seconds = 0.0;
        for r in &self.reports {
            seconds += r.wall_sec;
            log.push(IterationRecord {
                iteration: r.iteration,
                seconds,
                tokens_per_sec: r.tokens_per_sec,
                // compute_sec is the measured sampling time of the iteration,
                // already free of the modeled communication cost.
                phase_seconds: Some(r.compute_sec),
                log_likelihood: r.log_likelihood,
                // The distributed driver has no held-out evaluation path.
                held_out: None,
            });
        }
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warplda_corpus::DatasetPreset;

    fn driver(workers: usize, mh_steps: usize, seed: u64) -> (Corpus, DistributedWarpLda) {
        let corpus = DatasetPreset::Tiny.generate_scaled(8);
        let params = ModelParams::paper_defaults(6);
        let config = WarpLdaConfig::with_mh_steps(mh_steps);
        let cluster = ClusterConfig::tianhe2_like(workers, mh_steps);
        let d = DistributedWarpLda::new(&corpus, params, config, cluster, seed);
        (corpus, d)
    }

    #[test]
    fn matches_shared_memory_sampler_bit_for_bit() {
        let (corpus, mut dist) = driver(3, 2, 17);
        let params = ModelParams::paper_defaults(6);
        let mut shared =
            ParallelWarpLda::new(&corpus, params, WarpLdaConfig::with_mh_steps(2), 17, 3);
        assert_eq!(dist.assignments(), shared.assignments(), "initial state");
        for _ in 0..3 {
            dist.run_iteration(&corpus, false);
            shared.run_iteration();
            assert_eq!(dist.assignments(), shared.assignments());
        }
    }

    #[test]
    fn communication_volume_sweep_matches_analytical_bound() {
        // Property-style sweep over workers x mh_steps: the reported volume
        // must equal (off-diagonal tokens) * (M + 1) * 4 bytes * 2 switches,
        // for every configuration.
        let corpus = DatasetPreset::Tiny.generate_scaled(8);
        let params = ModelParams::paper_defaults(4);
        for workers in [1usize, 2, 3, 4, 6, 8] {
            for mh_steps in [1usize, 2, 3, 4, 8] {
                let config = WarpLdaConfig::with_mh_steps(mh_steps);
                let cluster = ClusterConfig::tianhe2_like(workers, mh_steps);
                let mut d = DistributedWarpLda::new(&corpus, params, config, cluster, 5);
                let r = d.run_iteration(&corpus, false);
                let expected =
                    d.grid().tokens_exchanged_per_phase_switch() * (mh_steps as u64 + 1) * 4 * 2;
                assert_eq!(
                    r.bytes_exchanged, expected,
                    "workers = {workers}, mh_steps = {mh_steps}"
                );
                // The volume is also stable across iterations: the grid is
                // static, so the second iteration ships the same bytes.
                let r2 = d.run_iteration(&corpus, false);
                assert_eq!(r2.bytes_exchanged, expected);
            }
        }
    }

    #[test]
    fn reports_accumulate_with_one_based_iteration_numbers() {
        let (corpus, mut dist) = driver(2, 1, 3);
        let reports = dist.run(&corpus, 4, 2);
        assert_eq!(reports.len(), 4);
        assert_eq!(dist.reports().len(), 4);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.iteration, i as u64 + 1);
            assert!(r.tokens_per_sec > 0.0);
            assert!(r.wall_sec >= r.compute_sec);
        }
        // eval_every = 2 evaluates iterations 2 and 4 only.
        assert!(reports[0].log_likelihood.is_none());
        assert!(reports[1].log_likelihood.is_some());
        assert!(reports[2].log_likelihood.is_none());
        assert!(reports[3].log_likelihood.is_some());
    }

    #[test]
    fn iteration_log_mirrors_reports() {
        let (corpus, mut dist) = driver(2, 1, 3);
        dist.run(&corpus, 4, 2);
        let log = dist.iteration_log("dist");
        assert_eq!(log.records().len(), 4);
        assert_eq!(log.eval_points().count(), 2, "iterations 2 and 4 were evaluated");
        assert_eq!(log.records()[0].iteration, 1);
        assert_eq!(log.tokens_per_iteration(), corpus.num_tokens() * 2);
        assert!(log.total_seconds() > 0.0);
        assert!(log.final_ll().is_finite());
        // Cumulative seconds equal the summed modeled wall times.
        let wall: f64 = dist.reports().iter().map(|r| r.wall_sec).sum();
        assert!((log.total_seconds() - wall).abs() < 1e-12);
    }

    #[test]
    fn final_iteration_is_always_evaluated() {
        let (corpus, mut dist) = driver(2, 1, 4);
        let reports = dist.run(&corpus, 3, 0);
        assert!(reports[0].log_likelihood.is_none());
        assert!(reports[1].log_likelihood.is_none());
        assert!(reports[2].log_likelihood.is_some());
    }

    #[test]
    #[should_panic(expected = "message size must match")]
    fn mismatched_message_size_rejected() {
        let corpus = DatasetPreset::Tiny.generate_scaled(16);
        let _ = DistributedWarpLda::new(
            &corpus,
            ModelParams::paper_defaults(4),
            WarpLdaConfig::with_mh_steps(4),
            ClusterConfig::tianhe2_like(2, 1),
            1,
        );
    }

    #[test]
    fn tokens_sampled_is_independent_of_worker_count() {
        for workers in [1usize, 2, 4] {
            let (corpus, mut dist) = driver(workers, 1, 7);
            let r = dist.run_iteration(&corpus, false);
            assert_eq!(r.tokens_sampled, corpus.num_tokens() * 2, "workers = {workers}");
        }
    }
}
