//! Deterministic fault injection for the distributed runtime.
//!
//! Fault-tolerance code that is only exercised by real crashes is dead code
//! with extra steps. This module gives tests, the CI smoke and the example
//! binary a scripted way to make precise bad things happen at precise
//! moments: a [`FaultPlan`] is a list of [`FaultEvent`]s ("worker 2 crashes
//! at the start of iteration 3's doc phase", "worker 0 truncates its next
//! word delta mid-frame"). The coordinator ships each worker *its own*
//! events inside `Setup`, and the worker fires an event exactly once when
//! training reaches the scripted (iteration, phase) point.
//!
//! Determinism is the whole point: the same plan against the same seed
//! produces the same failure, the same recovery path and — because recovery
//! replays from a boundary snapshot with per-entity RNG streams — the same
//! final model, bit for bit. That makes "the cluster survived a crash" an
//! exact equality assertion instead of a flaky integration hope.
//!
//! Replay safety: when a worker is respawned and replays iterations it
//! already ran, the coordinator filters out events at or before the replay
//! point ([`FaultPlan::surviving`]) so a scripted crash does not re-fire
//! forever.

use warplda_corpus::io::codec::{CodecError, CodecResult, Decoder, Encoder};

/// Which half of an iteration an event fires in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPhase {
    /// Fires when the worker starts the word phase of the target iteration.
    Word,
    /// Fires when the worker starts the doc phase of the target iteration.
    Doc,
}

/// What happens when an event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The worker process exits immediately (`exit(9)`), mid-protocol. The
    /// coordinator sees a dead child / closed connection.
    Crash,
    /// The worker stops heartbeating and stalls for the given duration (then
    /// exits). The *process* stays alive, so only liveness detection — not a
    /// child-exit check — can catch it.
    Hang {
        /// Stall length in milliseconds; longer than the coordinator's
        /// liveness timeout in any real plan.
        ms: u64,
    },
    /// The worker sleeps for the given duration but keeps heartbeating.
    /// A correct supervisor rides this out without declaring the worker
    /// dead — the false-positive probe.
    Delay {
        /// Sleep length in milliseconds.
        ms: u64,
    },
    /// The worker flips bits in its next delta frame so the coordinator's
    /// decode fails with a typed [`CodecError::Corrupt`].
    CorruptDelta,
    /// The worker writes the full length prefix but only half the payload of
    /// its next delta, flushes and exits — the coordinator sees a connection
    /// closed mid-frame.
    TruncateDelta,
}

/// One scripted fault: `action` fires on `worker` when it starts `phase` of
/// the `iteration`-th iteration (1-based: `iteration: 1` is the first
/// iteration after setup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Target worker id.
    pub worker: u32,
    /// 1-based iteration ordinal; fires when the worker's completed-iteration
    /// counter (`epoch`) satisfies `epoch + 1 == iteration`.
    pub iteration: u64,
    /// Which phase of that iteration.
    pub phase: FaultPhase,
    /// What happens.
    pub action: FaultAction,
}

/// A deterministic fault script for one cluster run. Build with the fluent
/// methods, hand to `ProcessClusterConfig::fault_plan`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan: no injected faults (the production configuration).
    pub fn new() -> Self {
        Self::default()
    }

    /// True when the plan scripts nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All scripted events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Adds an arbitrary event.
    pub fn event(mut self, ev: FaultEvent) -> Self {
        self.events.push(ev);
        self
    }

    /// Scripts `worker` to exit abruptly at the start of `phase` of the
    /// (1-based) `iteration`-th iteration.
    pub fn crash(self, worker: u32, iteration: u64, phase: FaultPhase) -> Self {
        self.event(FaultEvent { worker, iteration, phase, action: FaultAction::Crash })
    }

    /// Scripts `worker` to stop heartbeating and stall for `ms` milliseconds.
    pub fn hang(self, worker: u32, iteration: u64, phase: FaultPhase, ms: u64) -> Self {
        self.event(FaultEvent { worker, iteration, phase, action: FaultAction::Hang { ms } })
    }

    /// Scripts `worker` to sleep `ms` milliseconds while still heartbeating.
    pub fn delay(self, worker: u32, iteration: u64, phase: FaultPhase, ms: u64) -> Self {
        self.event(FaultEvent { worker, iteration, phase, action: FaultAction::Delay { ms } })
    }

    /// Scripts `worker` to corrupt its next delta frame.
    pub fn corrupt_delta(self, worker: u32, iteration: u64, phase: FaultPhase) -> Self {
        self.event(FaultEvent { worker, iteration, phase, action: FaultAction::CorruptDelta })
    }

    /// Scripts `worker` to truncate its next delta frame mid-payload.
    pub fn truncate_delta(self, worker: u32, iteration: u64, phase: FaultPhase) -> Self {
        self.event(FaultEvent { worker, iteration, phase, action: FaultAction::TruncateDelta })
    }

    /// The events addressed to `worker` — what `Setup` ships.
    pub fn for_worker(&self, worker: u32) -> Vec<FaultEvent> {
        self.events.iter().copied().filter(|ev| ev.worker == worker).collect()
    }

    /// The events for `worker` that are still ahead of a replay from
    /// `replay_epoch` completed iterations: a respawned worker replaying
    /// iteration `replay_epoch + 1` must not re-fire the event that killed
    /// it, or recovery would loop forever.
    pub fn surviving(&self, worker: u32, replay_epoch: u64) -> Vec<FaultEvent> {
        self.events
            .iter()
            .copied()
            .filter(|ev| ev.worker == worker && ev.iteration > replay_epoch + 1)
            .collect()
    }
}

/// A worker-side cursor over its scripted events: [`fire`](FaultTimeline::fire)
/// pops the first event matching the current (epoch, phase) point, consuming
/// it so each event fires at most once.
#[derive(Debug, Default)]
pub struct FaultTimeline {
    events: Vec<FaultEvent>,
}

impl FaultTimeline {
    /// Builds a timeline from the events `Setup` delivered.
    pub fn new(events: Vec<FaultEvent>) -> Self {
        Self { events }
    }

    /// Pops the action scripted for the start of `phase` at completed
    /// iteration count `epoch`, if any.
    pub fn fire(&mut self, epoch: u64, phase: FaultPhase) -> Option<FaultAction> {
        let at =
            self.events.iter().position(|ev| ev.iteration == epoch + 1 && ev.phase == phase)?;
        Some(self.events.remove(at).action)
    }
}

const PHASE_WORD: u8 = 0;
const PHASE_DOC: u8 = 1;

const ACTION_CRASH: u8 = 0;
const ACTION_HANG: u8 = 1;
const ACTION_DELAY: u8 = 2;
const ACTION_CORRUPT_DELTA: u8 = 3;
const ACTION_TRUNCATE_DELTA: u8 = 4;

/// Writes a list of events (the `Setup.faults` field).
pub fn write_fault_events(enc: &mut Encoder<'_>, events: &[FaultEvent]) -> CodecResult<()> {
    enc.write_u32(events.len() as u32)?;
    for ev in events {
        enc.write_u32(ev.worker)?;
        enc.write_u64(ev.iteration)?;
        enc.write_u8(match ev.phase {
            FaultPhase::Word => PHASE_WORD,
            FaultPhase::Doc => PHASE_DOC,
        })?;
        let (tag, ms) = match ev.action {
            FaultAction::Crash => (ACTION_CRASH, 0),
            FaultAction::Hang { ms } => (ACTION_HANG, ms),
            FaultAction::Delay { ms } => (ACTION_DELAY, ms),
            FaultAction::CorruptDelta => (ACTION_CORRUPT_DELTA, 0),
            FaultAction::TruncateDelta => (ACTION_TRUNCATE_DELTA, 0),
        };
        enc.write_u8(tag)?;
        enc.write_u64(ms)?;
    }
    Ok(())
}

/// Reads a list of events written by [`write_fault_events`].
pub fn read_fault_events(dec: &mut Decoder<'_>) -> CodecResult<Vec<FaultEvent>> {
    let n = dec.read_u32()? as usize;
    let mut events = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let worker = dec.read_u32()?;
        let iteration = dec.read_u64()?;
        let phase = match dec.read_u8()? {
            PHASE_WORD => FaultPhase::Word,
            PHASE_DOC => FaultPhase::Doc,
            other => return Err(CodecError::Corrupt(format!("unknown fault phase {other}"))),
        };
        let tag = dec.read_u8()?;
        let ms = dec.read_u64()?;
        let action = match tag {
            ACTION_CRASH => FaultAction::Crash,
            ACTION_HANG => FaultAction::Hang { ms },
            ACTION_DELAY => FaultAction::Delay { ms },
            ACTION_CORRUPT_DELTA => FaultAction::CorruptDelta,
            ACTION_TRUNCATE_DELTA => FaultAction::TruncateDelta,
            other => return Err(CodecError::Corrupt(format!("unknown fault action {other}"))),
        };
        events.push(FaultEvent { worker, iteration, phase, action });
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builder_routes_events_per_worker() {
        let plan = FaultPlan::new()
            .crash(1, 2, FaultPhase::Word)
            .hang(0, 3, FaultPhase::Doc, 10_000)
            .corrupt_delta(1, 4, FaultPhase::Doc);
        assert_eq!(plan.events().len(), 3);
        assert_eq!(plan.for_worker(1).len(), 2);
        assert_eq!(plan.for_worker(0).len(), 1);
        assert!(plan.for_worker(2).is_empty());
    }

    #[test]
    fn surviving_filters_out_the_replayed_event() {
        let plan =
            FaultPlan::new().crash(1, 2, FaultPhase::Word).truncate_delta(1, 5, FaultPhase::Doc);
        // Worker 1 died at iteration 2; replay starts from epoch 1 (one
        // completed iteration). The killing event must not ship again.
        let survivors = plan.surviving(1, 1);
        assert_eq!(survivors.len(), 1);
        assert_eq!(survivors[0].iteration, 5);
        // A replay from epoch 0 would re-run iteration 1 first, so the
        // iteration-2 event is still ahead and must ship.
        assert_eq!(plan.surviving(1, 0).len(), 2);
    }

    #[test]
    fn timeline_fires_each_event_once_at_its_point() {
        let plan = FaultPlan::new().crash(0, 2, FaultPhase::Word).delay(0, 2, FaultPhase::Doc, 50);
        let mut tl = FaultTimeline::new(plan.for_worker(0));
        assert_eq!(tl.fire(0, FaultPhase::Word), None);
        assert_eq!(tl.fire(1, FaultPhase::Word), Some(FaultAction::Crash));
        assert_eq!(tl.fire(1, FaultPhase::Word), None, "events are consumed");
        assert_eq!(tl.fire(1, FaultPhase::Doc), Some(FaultAction::Delay { ms: 50 }));
    }

    #[test]
    fn fault_events_round_trip_through_the_codec() {
        let events = vec![
            FaultEvent {
                worker: 0,
                iteration: 1,
                phase: FaultPhase::Word,
                action: FaultAction::Crash,
            },
            FaultEvent {
                worker: 3,
                iteration: 9,
                phase: FaultPhase::Doc,
                action: FaultAction::Hang { ms: 7_500 },
            },
            FaultEvent {
                worker: 1,
                iteration: 2,
                phase: FaultPhase::Doc,
                action: FaultAction::TruncateDelta,
            },
        ];
        let mut buf = Vec::new();
        let mut enc = Encoder::new(&mut buf);
        write_fault_events(&mut enc, &events).unwrap();
        let mut cursor = buf.as_slice();
        let mut dec = Decoder::new(&mut cursor);
        assert_eq!(read_fault_events(&mut dec).unwrap(), events);
    }
}
