//! The real multi-process training backend: a coordinator that spawns
//! `warplda-dist-worker` processes and drives them over loopback TCP.
//!
//! The coordinator owns a full [`ShardedWarpLda`] replica of its own. Every
//! iteration it broadcasts `RunIteration`, collects each worker's phase
//! [`Delta`](crate::protocol::Delta) (owned-entry records + partial `c_k`),
//! merges the partials, imports the records — at which point its replica *is*
//! the globally advanced state — and answers each worker with the merged
//! `c_k` plus exactly the records that worker lacks (per the shared
//! [`ShardPlan`]). The replica is therefore always inspectable
//! ([`assignments`](ProcessCluster::assignments),
//! [`topic_counts`](ProcessCluster::topic_counts)) and checkpointable without
//! touching the workers, and — by the per-entity RNG stream argument spelled
//! out in `warplda_core::warp::shard` — bit-identical to a simulated
//! [`DistributedWarpLda`](crate::DistributedWarpLda) and an in-process
//! [`ParallelWarpLda`](warplda_core::ParallelWarpLda) run of the same seed.
//!
//! # Supervision
//!
//! The coordinator is also a supervisor. Three mechanisms stack:
//!
//! * **Liveness.** Workers pulse `Heartbeat` frames from a side thread every
//!   [`heartbeat_interval`](ProcessClusterConfig::heartbeat_interval). While
//!   waiting on a worker the coordinator polls in short slices, so it can
//!   distinguish a *dead* process (child exited / connection closed → typed
//!   [`DistError::WorkerFailed`]) from a *hung* one (process alive, socket
//!   open, no heartbeats for
//!   [`liveness_timeout`](ProcessClusterConfig::liveness_timeout), or a phase
//!   running past the overall `io_timeout` → typed
//!   [`DistError::WorkerHung`]). A slow worker that keeps heartbeating is
//!   *not* declared hung.
//! * **Recovery.** After every successful iteration (and the initial
//!   handshake) the coordinator captures a boundary snapshot of its replica —
//!   epoch, packed records, `c_k`; cheap in-memory copies. When a worker dies
//!   or hangs mid-iteration, [`run_iteration`](ProcessCluster::run_iteration)
//!   kills and respawns the process, replays `Setup` with the snapshot as
//!   resume state, resets every survivor to the same boundary with a
//!   `Restore` frame, and retries the iteration — up to
//!   [`max_recoveries`](ProcessClusterConfig::max_recoveries) times across
//!   the cluster's lifetime. Because every phase derives its randomness from
//!   per-entity RNG streams keyed on (seed, iteration, phase, entity), the
//!   retried iteration is **bit-identical** to the one that failed, so a
//!   recovered run converges to exactly the fault-free model.
//! * **Scripted faults.** A [`FaultPlan`](crate::FaultPlan) makes precise
//!   failures happen at precise moments (crash, hang, delay, corrupt or
//!   truncated delta) so all of the above is exercised deterministically in
//!   tests and CI instead of waiting for real crashes.
//!
//! Every receive is bounded and every failure is typed — the coordinator
//! never hangs on a dead worker.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use warplda_core::{ModelParams, Sampler, ShardedWarpLda, WarpLdaConfig};
use warplda_corpus::io::codec::CodecError;
use warplda_corpus::{Corpus, DocMajorView, WordMajorView};
use warplda_net::{write_frame, FrameBuffer, PollFrame, WireError};
use warplda_sparse::PartitionStrategy;

use crate::fault::FaultPlan;
use crate::grid::GridPartition;
use crate::plan::ShardPlan;
use crate::protocol::{
    decode_message, encode_message, Message, ResumeState, Setup, Sync, DIST_MAX_FRAME_BYTES,
};

/// How long one poll slice waits before the liveness checks interleave.
const POLL_SLICE: Duration = Duration::from_millis(15);

/// Errors of the multi-process runtime.
#[derive(Debug)]
pub enum DistError {
    /// An underlying I/O error (spawn failure, socket error, …).
    Io(std::io::Error),
    /// A framing error on a worker connection.
    Wire(WireError),
    /// A payload that decoded to something structurally invalid.
    Codec(CodecError),
    /// The protocol state machine was violated (unexpected message, epoch
    /// mismatch, …).
    Protocol(String),
    /// A specific worker died, disconnected, sent garbage or reported a
    /// fault. Recoverable: the supervisor respawns the worker and retries.
    WorkerFailed {
        /// The worker's id.
        worker: u32,
        /// What happened.
        message: String,
    },
    /// A specific worker is alive but not making progress: no heartbeat for
    /// the liveness timeout, or a phase running past the I/O deadline.
    /// Recoverable, same as a death — but typed separately so operators can
    /// tell a crash loop from a livelock.
    WorkerHung {
        /// The worker's id.
        worker: u32,
        /// What the liveness check observed.
        message: String,
    },
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Io(e) => write!(f, "I/O error: {e}"),
            DistError::Wire(e) => write!(f, "wire error: {e}"),
            DistError::Codec(e) => write!(f, "codec error: {e}"),
            DistError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            DistError::WorkerFailed { worker, message } => {
                write!(f, "worker {worker} failed: {message}")
            }
            DistError::WorkerHung { worker, message } => {
                write!(f, "worker {worker} hung: {message}")
            }
        }
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistError::Io(e) => Some(e),
            DistError::Wire(e) => Some(e),
            DistError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DistError {
    fn from(e: std::io::Error) -> Self {
        DistError::Io(e)
    }
}

impl From<WireError> for DistError {
    fn from(e: WireError) -> Self {
        DistError::Wire(e)
    }
}

impl From<CodecError> for DistError {
    fn from(e: CodecError) -> Self {
        DistError::Codec(e)
    }
}

/// The worker id a recoverable error names, if the error is recoverable.
fn recoverable_worker(err: &DistError) -> Option<u32> {
    match err {
        DistError::WorkerFailed { worker, .. } | DistError::WorkerHung { worker, .. } => {
            Some(*worker)
        }
        _ => None,
    }
}

/// Configuration of a [`ProcessCluster`].
#[derive(Debug, Clone)]
pub struct ProcessClusterConfig {
    /// Number of worker processes to spawn.
    pub workers: usize,
    /// Bound on every receive (and connection wait): a dead or hung worker
    /// surfaces as a typed error within this long.
    pub io_timeout: Duration,
    /// Explicit path to the `warplda-dist-worker` binary; when `None` the
    /// `WARPLDA_DIST_WORKER` environment variable is consulted, then the
    /// directories around the current executable (which covers `cargo test`
    /// and `cargo run`, whose binaries sit in or one level below the
    /// directory the worker bin lands in).
    pub worker_binary: Option<PathBuf>,
    /// Interval between worker heartbeats.
    pub heartbeat_interval: Duration,
    /// Heartbeat silence after which a worker mid-iteration is declared hung.
    /// Must comfortably exceed `heartbeat_interval`.
    pub liveness_timeout: Duration,
    /// Total worker recoveries the cluster will perform over its lifetime
    /// before giving up and propagating the error. Zero disables recovery:
    /// the first failure is final (the fail-fast behavior tests that assert
    /// on typed errors rely on).
    pub max_recoveries: u32,
    /// Scripted faults for tests and the CI smoke; empty in production.
    pub fault_plan: FaultPlan,
}

impl ProcessClusterConfig {
    /// Defaults: a 30 s I/O bound, 250 ms heartbeats with a 5 s liveness
    /// timeout, up to 3 recoveries, no scripted faults, automatic
    /// worker-binary discovery.
    pub fn new(workers: usize) -> Self {
        Self {
            workers,
            io_timeout: Duration::from_secs(30),
            worker_binary: None,
            heartbeat_interval: Duration::from_millis(250),
            liveness_timeout: Duration::from_secs(5),
            max_recoveries: 3,
            fault_plan: FaultPlan::new(),
        }
    }
}

/// Accounting for one multi-process iteration.
#[derive(Debug, Clone)]
pub struct ProcessIterationReport {
    /// Iteration number, 1-based.
    pub iteration: u64,
    /// Measured wall seconds of the full iteration (compute + real loopback
    /// communication + merges, including any recovery work).
    pub wall_sec: f64,
    /// Frame bytes crossing the sockets this iteration (deltas + syncs, both
    /// directions, including length prefixes and recovery traffic).
    pub bytes_exchanged: u64,
    /// Worker recoveries performed while completing this iteration (0 on a
    /// healthy run).
    pub recoveries: u32,
}

struct Conn {
    stream: TcpStream,
    buf: FrameBuffer,
    /// When this connection last produced a frame (heartbeats included)
    /// while being waited on — the liveness clock.
    last_heard: Instant,
}

/// The coordinator replica's state at an iteration boundary: what recovery
/// rolls everything back to. Cheap to capture (two buffer copies) relative
/// to an iteration's sampling work.
struct BoundarySnapshot {
    epoch: u64,
    records: Vec<u32>,
    topic_counts: Vec<u32>,
}

/// Locates the worker binary next to (or one/two levels above) the current
/// executable — `cargo test` binaries live in `target/<profile>/deps/` while
/// bins land in `target/<profile>/`.
fn default_worker_binary() -> Option<PathBuf> {
    if let Ok(path) = std::env::var("WARPLDA_DIST_WORKER") {
        return Some(PathBuf::from(path));
    }
    let exe = std::env::current_exe().ok()?;
    let name = format!("warplda-dist-worker{}", std::env::consts::EXE_SUFFIX);
    let mut dir = exe.parent()?;
    for _ in 0..3 {
        let candidate = dir.join(&name);
        if candidate.is_file() {
            return Some(candidate);
        }
        dir = dir.parent()?;
    }
    None
}

fn spawn_worker(binary: &Path, addr: &SocketAddr, id: u32) -> std::io::Result<Child> {
    Command::new(binary)
        .arg("--connect")
        .arg(addr.to_string())
        .arg("--worker-id")
        .arg(id.to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .spawn()
}

/// A coordinator over `workers` spawned `warplda-dist-worker` processes.
pub struct ProcessCluster {
    sampler: ShardedWarpLda,
    grid: GridPartition,
    plan: ShardPlan,
    conns: Vec<Conn>,
    children: Vec<Child>,
    cfg: ProcessClusterConfig,
    bytes_this_iteration: u64,
    /// Kept open for the cluster's lifetime so recovery can re-accept a
    /// respawned worker's connection.
    listener: TcpListener,
    binary: PathBuf,
    /// Retained for respawn `Setup` frames (every replica holds a copy
    /// anyway).
    corpus: Corpus,
    snapshot: BoundarySnapshot,
    recoveries: u64,
}

impl ProcessCluster {
    /// Spawns the workers and trains `corpus` from a fresh random
    /// initialization (the same one every other backend derives from `seed`).
    pub fn new(
        corpus: &Corpus,
        params: ModelParams,
        config: WarpLdaConfig,
        seed: u64,
        cfg: ProcessClusterConfig,
    ) -> Result<Self, DistError> {
        Self::from_sampler(corpus, ShardedWarpLda::new(corpus, params, config, seed), cfg)
    }

    /// Spawns the workers around an existing replica — how training resumes
    /// from a checkpoint: load it into a [`ShardedWarpLda`] first, then hand
    /// it here and the workers adopt its full state before the first
    /// iteration. The worker count is free to differ from the one that wrote
    /// the checkpoint; continuation is bit-identical either way.
    pub fn from_sampler(
        corpus: &Corpus,
        sampler: ShardedWarpLda,
        cfg: ProcessClusterConfig,
    ) -> Result<Self, DistError> {
        if cfg.workers == 0 {
            return Err(DistError::Protocol("need at least one worker".into()));
        }
        let doc_view = DocMajorView::build(corpus);
        let word_view = WordMajorView::build(corpus, &doc_view);
        let grid = GridPartition::build_with(
            corpus,
            &doc_view,
            &word_view,
            cfg.workers,
            PartitionStrategy::Greedy,
            PartitionStrategy::Dynamic,
        );
        let plan = ShardPlan::build(&sampler, &grid);

        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let binary = cfg.worker_binary.clone().or_else(default_worker_binary).ok_or_else(|| {
            DistError::Protocol(
                "cannot locate the warplda-dist-worker binary; build it or set \
                 WARPLDA_DIST_WORKER"
                    .into(),
            )
        })?;

        let mut children = Vec::with_capacity(cfg.workers);
        for id in 0..cfg.workers {
            children.push(spawn_worker(&binary, &addr, id as u32)?);
        }

        let mut cluster = Self {
            sampler,
            grid,
            plan,
            conns: Vec::new(),
            children,
            cfg,
            bytes_this_iteration: 0,
            listener,
            binary,
            corpus: corpus.clone(),
            snapshot: BoundarySnapshot { epoch: 0, records: Vec::new(), topic_counts: Vec::new() },
            recoveries: 0,
        };
        match cluster.handshake() {
            Ok(()) => {
                cluster.capture_snapshot();
                Ok(cluster)
            }
            Err(e) => {
                cluster.kill_all();
                Err(e)
            }
        }
    }

    /// Accepts every worker's connection, exchanges Hello/Setup/Ready. Each
    /// step is deadline-bounded and fails fast if a child dies early.
    fn handshake(&mut self) -> Result<(), DistError> {
        let workers = self.cfg.workers;
        let deadline = Instant::now() + self.cfg.io_timeout;
        let mut slots: Vec<Option<Conn>> = (0..workers).map(|_| None).collect();
        for _ in 0..workers {
            let (worker_id, conn) = self.accept_hello(deadline)?;
            let id = worker_id as usize;
            if id >= workers || slots[id].is_some() {
                return Err(DistError::Protocol(format!(
                    "unexpected Hello from worker id {worker_id}"
                )));
            }
            slots[id] = Some(conn);
        }
        self.conns = slots.into_iter().map(|s| s.expect("all slots filled")).collect();

        for i in 0..workers {
            let resume = (self.sampler.iterations() > 0).then(|| ResumeState {
                iterations: self.sampler.iterations(),
                records: self.sampler.records_slice().to_vec(),
                topic_counts: self.sampler.topic_counts().to_vec(),
            });
            let faults = self.cfg.fault_plan.for_worker(i as u32);
            let setup = self.make_setup(i as u32, resume, faults);
            self.send(i, &setup)?;
        }
        for i in 0..workers {
            self.await_ready(i)?;
        }
        Ok(())
    }

    /// Accepts one connection and reads its `Hello`, bounded by `deadline`.
    /// Any child that exits while we wait is reported as the failure.
    fn accept_hello(&mut self, deadline: Instant) -> Result<(u32, Conn), DistError> {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(self.cfg.io_timeout))?;
                    stream.set_write_timeout(Some(self.cfg.io_timeout))?;
                    let mut conn = Conn {
                        stream,
                        buf: FrameBuffer::with_max_frame(1 << 16, DIST_MAX_FRAME_BYTES),
                        last_heard: Instant::now(),
                    };
                    return match recv_on(&mut conn)? {
                        Some(Message::Hello { worker_id }) => Ok((worker_id, conn)),
                        Some(other) => Err(DistError::Protocol(format!(
                            "expected Hello, got {}",
                            kind_of(&other)
                        ))),
                        None => Err(DistError::Protocol("worker disconnected before Hello".into())),
                    };
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() > deadline {
                        return Err(DistError::Protocol(
                            "timed out waiting for a worker to connect".into(),
                        ));
                    }
                    for (i, child) in self.children.iter_mut().enumerate() {
                        if let Some(status) = child.try_wait()? {
                            return Err(DistError::WorkerFailed {
                                worker: i as u32,
                                message: format!("exited during startup: {status}"),
                            });
                        }
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn make_setup(
        &self,
        worker_id: u32,
        resume: Option<ResumeState>,
        faults: Vec<crate::fault::FaultEvent>,
    ) -> Message {
        let params = *self.sampler.params();
        let config = *self.sampler.config();
        Message::Setup(Box::new(Setup {
            workers: self.cfg.workers as u32,
            worker_id,
            seed: self.sampler.seed(),
            num_topics: params.num_topics as u64,
            alpha: params.alpha,
            beta: params.beta,
            mh_steps: config.mh_steps as u64,
            use_hash_counts: config.use_hash_counts,
            corpus: self.corpus.clone(),
            resume,
            heartbeat_interval_ms: self.cfg.heartbeat_interval.as_millis() as u64,
            faults,
        }))
    }

    /// Cluster size `P`.
    pub fn workers(&self) -> usize {
        self.cfg.workers
    }

    /// The grid partition driving shard ownership.
    pub fn grid(&self) -> &GridPartition {
        &self.grid
    }

    /// Completed iterations.
    pub fn iterations(&self) -> u64 {
        self.sampler.iterations()
    }

    /// Total worker recoveries performed over the cluster's lifetime.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// The OS process ids of the current worker children — what the
    /// no-zombie tests poll after dropping the cluster.
    pub fn worker_pids(&self) -> Vec<u32> {
        self.children.iter().map(Child::id).collect()
    }

    /// The merged topic assignments (doc-major token order), as advanced by
    /// the workers through the last completed iteration.
    pub fn assignments(&self) -> Vec<u32> {
        self.sampler.assignments()
    }

    /// The merged global `c_k`.
    pub fn topic_counts(&self) -> &[u32] {
        self.sampler.topic_counts()
    }

    /// The coordinator's replica — checkpoint it with
    /// `warplda_core::checkpoint::write_checkpoint` to persist the cluster's
    /// state.
    pub fn sampler(&self) -> &ShardedWarpLda {
        &self.sampler
    }

    fn send(&mut self, i: usize, msg: &Message) -> Result<(), DistError> {
        let payload = encode_message(msg);
        self.bytes_this_iteration += payload.len() as u64 + 4;
        write_frame(&mut self.conns[i].stream, &payload).map_err(|e| {
            // A worker that died mid-iteration surfaces here as a broken
            // pipe; report *which* worker instead of a bare I/O error.
            DistError::WorkerFailed { worker: i as u32, message: format!("send failed: {e}") }
        })
    }

    /// Receives the next protocol message from worker `i`, interleaving the
    /// supervision checks between short poll slices: heartbeats refresh the
    /// liveness clock and are consumed here (never surfaced), a dead child or
    /// closed connection is a typed `WorkerFailed`, heartbeat silence beyond
    /// the liveness timeout (when `liveness` is on) or a phase overrunning
    /// `io_timeout` is a typed `WorkerHung`. `liveness` is off for waits
    /// that are legitimately quiet — replica builds after `Setup`/`Restore`,
    /// which run before the worker's heartbeat thread has anything to prove.
    fn recv(&mut self, i: usize, liveness: bool) -> Result<Message, DistError> {
        let deadline = Instant::now() + self.cfg.io_timeout;
        // The liveness clock measures silence *while watched*: heartbeats
        // that piled up in the socket buffer while the coordinator serviced
        // other workers drain on the first poll slices below.
        self.conns[i].last_heard = Instant::now();
        loop {
            let polled = {
                let conn = &mut self.conns[i];
                conn.buf.poll_frame(&mut conn.stream, POLL_SLICE)
            };
            match polled {
                Ok(PollFrame::Frame(range)) => {
                    self.bytes_this_iteration += range.len() as u64 + 4;
                    self.conns[i].last_heard = Instant::now();
                    let msg = decode_message(self.conns[i].buf.payload(range)).map_err(|e| {
                        DistError::WorkerFailed {
                            worker: i as u32,
                            message: format!("malformed frame: {e}"),
                        }
                    })?;
                    match msg {
                        Message::Heartbeat { .. } => continue,
                        Message::Fault { worker_id, message } => {
                            return Err(DistError::WorkerFailed { worker: worker_id, message })
                        }
                        msg => return Ok(msg),
                    }
                }
                Ok(PollFrame::Idle) => {
                    if let Some(status) = self.children[i].try_wait()? {
                        return Err(DistError::WorkerFailed {
                            worker: i as u32,
                            message: format!("process exited: {status}"),
                        });
                    }
                    let silence = self.conns[i].last_heard.elapsed();
                    if liveness && silence > self.cfg.liveness_timeout {
                        return Err(DistError::WorkerHung {
                            worker: i as u32,
                            message: format!(
                                "no heartbeat for {silence:?} (liveness timeout {:?})",
                                self.cfg.liveness_timeout
                            ),
                        });
                    }
                    if Instant::now() > deadline {
                        return Err(DistError::WorkerHung {
                            worker: i as u32,
                            message: format!("phase deadline {:?} exceeded", self.cfg.io_timeout),
                        });
                    }
                }
                Ok(PollFrame::Eof) => {
                    return Err(DistError::WorkerFailed {
                        worker: i as u32,
                        message: "connection closed unexpectedly".into(),
                    })
                }
                Err(e) => {
                    // Everything the wire can throw on one worker's
                    // connection — mid-frame truncation, an oversized length
                    // prefix, a socket error — is that worker's failure and
                    // therefore recoverable.
                    return Err(DistError::WorkerFailed {
                        worker: i as u32,
                        message: format!("wire error: {e}"),
                    });
                }
            }
        }
    }

    /// Waits for worker `i`'s `Ready`, discarding stale deltas a survivor
    /// had already put on the wire before a `Restore` reached it.
    fn await_ready(&mut self, i: usize) -> Result<(), DistError> {
        loop {
            match self.recv(i, false)? {
                Message::Ready { worker_id } if worker_id as usize == i => return Ok(()),
                Message::WordDelta(_) | Message::DocDelta(_) => continue,
                other => {
                    return Err(DistError::Protocol(format!(
                        "expected Ready from worker {i}, got {}",
                        kind_of(&other)
                    )))
                }
            }
        }
    }

    /// Runs one distributed iteration: word phase (deltas in, boundary out),
    /// then doc phase, each a barrier across all workers. A worker failure
    /// mid-iteration triggers recovery — respawn, roll everyone back to the
    /// last boundary snapshot, retry — until the iteration completes or the
    /// recovery budget is exhausted. The completed iteration is bit-identical
    /// to a fault-free run.
    pub fn run_iteration(&mut self) -> Result<ProcessIterationReport, DistError> {
        let t0 = Instant::now();
        self.bytes_this_iteration = 0;
        let mut recovered_here = 0u32;
        loop {
            let mut err = match self.attempt_iteration() {
                Ok(()) => {
                    self.capture_snapshot();
                    return Ok(ProcessIterationReport {
                        iteration: self.sampler.iterations(),
                        wall_sec: t0.elapsed().as_secs_f64(),
                        bytes_exchanged: self.bytes_this_iteration,
                        recoveries: recovered_here,
                    });
                }
                Err(e) => e,
            };
            // Recover the failed worker; a *different* worker failing during
            // recovery feeds back into the same loop (fresh budget check,
            // fresh recovery) until recovery succeeds or the budget is gone.
            loop {
                let worker = match recoverable_worker(&err) {
                    Some(w) => w,
                    None => return Err(err),
                };
                if self.recoveries >= u64::from(self.cfg.max_recoveries) {
                    return Err(err);
                }
                self.recoveries += 1;
                recovered_here += 1;
                match self.recover(worker) {
                    Ok(()) => break,
                    Err(e) => err = e,
                }
            }
        }
    }

    /// One try at an iteration; leaves the replica mid-state on failure (the
    /// caller rolls back via the boundary snapshot).
    fn attempt_iteration(&mut self) -> Result<(), DistError> {
        let epoch = self.sampler.iterations();
        let k = self.sampler.params().num_topics;
        for i in 0..self.workers() {
            self.send(i, &Message::RunIteration { epoch })?;
        }

        for phase in [Phase::Word, Phase::Doc] {
            let mut merged = vec![0u32; k];
            for i in 0..self.workers() {
                let delta = match (phase, self.recv(i, true)?) {
                    (Phase::Word, Message::WordDelta(d)) => d,
                    (Phase::Doc, Message::DocDelta(d)) => d,
                    (_, other) => {
                        return Err(DistError::Protocol(format!(
                            "expected {phase:?} delta from worker {i}, got {}",
                            kind_of(&other)
                        )))
                    }
                };
                if delta.worker_id != i as u32 || delta.epoch != epoch {
                    return Err(DistError::Protocol(format!(
                        "delta from worker {} for epoch {} on worker {i}'s connection at \
                         epoch {epoch}",
                        delta.worker_id, delta.epoch
                    )));
                }
                if delta.partial_ck.len() != k {
                    return Err(DistError::Codec(CodecError::Corrupt(format!(
                        "partial c_k has {} slots for K = {k}",
                        delta.partial_ck.len()
                    ))));
                }
                for (m, &p) in merged.iter_mut().zip(&delta.partial_ck) {
                    *m += p;
                }
                let entries = match phase {
                    Phase::Word => &self.plan.word_delta_entries[i],
                    Phase::Doc => &self.plan.doc_delta_entries[i],
                };
                self.sampler.import_records(entries, &delta.records)?;
            }
            self.sampler.install_topic_counts(&merged);
            for i in 0..self.workers() {
                let entries = match phase {
                    Phase::Word => &self.plan.word_sync_entries[i],
                    Phase::Doc => &self.plan.doc_sync_entries[i],
                };
                let mut records = Vec::new();
                self.sampler.export_records(entries, &mut records);
                let sync = Sync { epoch, topic_counts: merged.clone(), records };
                let msg = match phase {
                    Phase::Word => Message::WordSync(sync),
                    Phase::Doc => Message::DocSync(sync),
                };
                self.send(i, &msg)?;
            }
        }

        self.sampler.advance_iteration();
        Ok(())
    }

    fn capture_snapshot(&mut self) {
        self.snapshot = BoundarySnapshot {
            epoch: self.sampler.iterations(),
            records: self.sampler.records_slice().to_vec(),
            topic_counts: self.sampler.topic_counts().to_vec(),
        };
    }

    /// Recovers from worker `dead`'s failure: kill and reap the process
    /// (it may be hung-alive, not dead), roll the coordinator replica back
    /// to the boundary snapshot, respawn the worker with the snapshot as its
    /// resume state, and reset every survivor to the same boundary. On
    /// return the whole cluster sits at the snapshot's epoch, exactly as if
    /// the failed iteration had never started.
    fn recover(&mut self, dead: u32) -> Result<(), DistError> {
        let dead = dead as usize;
        let _ = self.children[dead].kill();
        let _ = self.children[dead].wait();

        // The failed attempt may have imported some deltas already; the
        // replica must rejoin the boundary before re-serving as the merge
        // point.
        self.sampler.restore(
            self.snapshot.epoch,
            &self.snapshot.records,
            &self.snapshot.topic_counts,
        )?;

        let addr = self.listener.local_addr()?;
        self.children[dead] = spawn_worker(&self.binary, &addr, dead as u32)?;
        let deadline = Instant::now() + self.cfg.io_timeout;
        let (hello_id, conn) = self.accept_hello(deadline)?;
        if hello_id as usize != dead {
            return Err(DistError::Protocol(format!(
                "respawned worker {dead} but worker {hello_id} connected"
            )));
        }
        self.conns[dead] = conn;

        let resume = ResumeState {
            iterations: self.snapshot.epoch,
            records: self.snapshot.records.clone(),
            topic_counts: self.snapshot.topic_counts.clone(),
        };
        // Events at or before the replay point must not ship again: the
        // crash that killed this worker would otherwise re-fire on every
        // respawn and recovery would loop until the budget ran out.
        let faults = self.cfg.fault_plan.surviving(dead as u32, self.snapshot.epoch);
        let setup = self.make_setup(dead as u32, Some(resume.clone()), faults);
        self.send(dead, &setup)?;
        self.await_ready(dead)?;

        for j in 0..self.workers() {
            if j == dead {
                continue;
            }
            // Consume whatever the survivor already put on the wire (a delta
            // for the abandoned iteration, heartbeats) before writing the
            // Restore frame: sending first against a survivor itself blocked
            // mid-delta on a full socket buffer could deadlock.
            self.drain_to_idle(j)?;
            self.send(j, &Message::Restore(resume.clone()))?;
            self.await_ready(j)?;
        }
        Ok(())
    }

    /// Discards already-buffered frames on worker `j`'s connection until the
    /// socket goes quiet. TCP's per-connection FIFO ordering makes the
    /// subsequent drain-until-`Ready` sound: anything sent before the
    /// worker's `Ready` reply is stale by definition.
    fn drain_to_idle(&mut self, j: usize) -> Result<(), DistError> {
        loop {
            let polled = {
                let conn = &mut self.conns[j];
                conn.buf.poll_frame(&mut conn.stream, Duration::from_millis(50))
            };
            match polled {
                Ok(PollFrame::Frame(range)) => {
                    let msg = decode_message(self.conns[j].buf.payload(range)).map_err(|e| {
                        DistError::WorkerFailed {
                            worker: j as u32,
                            message: format!("malformed frame: {e}"),
                        }
                    })?;
                    match msg {
                        Message::Heartbeat { .. }
                        | Message::WordDelta(_)
                        | Message::DocDelta(_) => continue,
                        Message::Fault { worker_id, message } => {
                            return Err(DistError::WorkerFailed { worker: worker_id, message })
                        }
                        other => {
                            return Err(DistError::Protocol(format!(
                                "unexpected {} from worker {j} during recovery",
                                kind_of(&other)
                            )))
                        }
                    }
                }
                Ok(PollFrame::Idle) => return Ok(()),
                Ok(PollFrame::Eof) => {
                    return Err(DistError::WorkerFailed {
                        worker: j as u32,
                        message: "connection closed unexpectedly".into(),
                    })
                }
                Err(e) => {
                    return Err(DistError::WorkerFailed {
                        worker: j as u32,
                        message: format!("wire error: {e}"),
                    })
                }
            }
        }
    }

    /// Kills worker `i` outright — the fault-injection hook: the next
    /// exchange involving it returns a typed [`DistError::WorkerFailed`]
    /// (or triggers recovery, when the budget allows) instead of hanging.
    pub fn kill_worker(&mut self, i: usize) {
        let _ = self.children[i].kill();
        let _ = self.children[i].wait();
    }

    /// Clean shutdown: Shutdown → Bye on every connection, then reaps the
    /// children. Any worker that misbehaves is killed and the first error
    /// reported.
    pub fn shutdown(mut self) -> Result<(), DistError> {
        let mut first_err = None;
        for i in 0..self.conns.len() {
            let result =
                self.send(i, &Message::Shutdown).and_then(|()| match self.recv(i, false)? {
                    Message::Bye { .. } => Ok(()),
                    other => Err(DistError::Protocol(format!(
                        "expected Bye from worker {i}, got {}",
                        kind_of(&other)
                    ))),
                });
            if let Err(e) = result {
                let _ = self.children[i].kill();
                first_err.get_or_insert(e);
            }
        }
        for child in &mut self.children {
            let _ = child.wait();
        }
        self.children.clear();
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    fn kill_all(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
        self.children.clear();
    }
}

impl Drop for ProcessCluster {
    fn drop(&mut self) {
        // Best effort: never leave orphaned worker processes behind.
        self.kill_all();
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Word,
    Doc,
}

/// Receives one message on a connection; `Ok(None)` is a clean disconnect.
fn recv_on(conn: &mut Conn) -> Result<Option<Message>, DistError> {
    let Conn { stream, buf, .. } = conn;
    match buf.read_frame(stream) {
        Ok(Some(range)) => Ok(Some(decode_message(buf.payload(range))?)),
        Ok(None) => Ok(None),
        Err(e) => Err(e.into()),
    }
}

fn kind_of(msg: &Message) -> &'static str {
    match msg {
        Message::Hello { .. } => "Hello",
        Message::Setup(_) => "Setup",
        Message::Ready { .. } => "Ready",
        Message::RunIteration { .. } => "RunIteration",
        Message::WordDelta(_) => "WordDelta",
        Message::WordSync(_) => "WordSync",
        Message::DocDelta(_) => "DocDelta",
        Message::DocSync(_) => "DocSync",
        Message::Shutdown => "Shutdown",
        Message::Bye { .. } => "Bye",
        Message::Fault { .. } => "Fault",
        Message::Heartbeat { .. } => "Heartbeat",
        Message::Restore(_) => "Restore",
    }
}
