//! The real multi-process training backend: a coordinator that spawns
//! `warplda-dist-worker` processes and drives them over loopback TCP.
//!
//! The coordinator owns a full [`ShardedWarpLda`] replica of its own. Every
//! iteration it broadcasts `RunIteration`, collects each worker's phase
//! [`Delta`](crate::protocol::Delta) (owned-entry records + partial `c_k`),
//! merges the partials, imports the records — at which point its replica *is*
//! the globally advanced state — and answers each worker with the merged
//! `c_k` plus exactly the records that worker lacks (per the shared
//! [`ShardPlan`]). The replica is therefore always inspectable
//! ([`assignments`](ProcessCluster::assignments),
//! [`topic_counts`](ProcessCluster::topic_counts)) and checkpointable without
//! touching the workers, and — by the per-entity RNG stream argument spelled
//! out in `warplda_core::warp::shard` — bit-identical to a simulated
//! [`DistributedWarpLda`](crate::DistributedWarpLda) and an in-process
//! [`ParallelWarpLda`](warplda_core::ParallelWarpLda) run of the same seed.
//!
//! Every receive is bounded by the configured I/O timeout and every failure
//! (worker death, timeout, malformed payload) is a typed [`DistError`] — the
//! coordinator never hangs on a dead worker.

use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use warplda_core::{ModelParams, Sampler, ShardedWarpLda, WarpLdaConfig};
use warplda_corpus::io::codec::CodecError;
use warplda_corpus::{Corpus, DocMajorView, WordMajorView};
use warplda_net::{write_frame, FrameBuffer, WireError};
use warplda_sparse::PartitionStrategy;

use crate::grid::GridPartition;
use crate::plan::ShardPlan;
use crate::protocol::{
    decode_message, encode_message, Message, ResumeState, Setup, Sync, DIST_MAX_FRAME_BYTES,
};

/// Errors of the multi-process runtime.
#[derive(Debug)]
pub enum DistError {
    /// An underlying I/O error (spawn failure, socket error, …).
    Io(std::io::Error),
    /// A framing error on a worker connection.
    Wire(WireError),
    /// A payload that decoded to something structurally invalid.
    Codec(CodecError),
    /// The protocol state machine was violated (unexpected message, epoch
    /// mismatch, …).
    Protocol(String),
    /// A specific worker died, timed out or reported a fault.
    WorkerFailed {
        /// The worker's id.
        worker: u32,
        /// What happened.
        message: String,
    },
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Io(e) => write!(f, "I/O error: {e}"),
            DistError::Wire(e) => write!(f, "wire error: {e}"),
            DistError::Codec(e) => write!(f, "codec error: {e}"),
            DistError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            DistError::WorkerFailed { worker, message } => {
                write!(f, "worker {worker} failed: {message}")
            }
        }
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistError::Io(e) => Some(e),
            DistError::Wire(e) => Some(e),
            DistError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DistError {
    fn from(e: std::io::Error) -> Self {
        DistError::Io(e)
    }
}

impl From<WireError> for DistError {
    fn from(e: WireError) -> Self {
        DistError::Wire(e)
    }
}

impl From<CodecError> for DistError {
    fn from(e: CodecError) -> Self {
        DistError::Codec(e)
    }
}

/// Configuration of a [`ProcessCluster`].
#[derive(Debug, Clone)]
pub struct ProcessClusterConfig {
    /// Number of worker processes to spawn.
    pub workers: usize,
    /// Bound on every receive (and connection wait): a dead or hung worker
    /// surfaces as a typed error within this long.
    pub io_timeout: Duration,
    /// Explicit path to the `warplda-dist-worker` binary; when `None` the
    /// `WARPLDA_DIST_WORKER` environment variable is consulted, then the
    /// directories around the current executable (which covers `cargo test`
    /// and `cargo run`, whose binaries sit in or one level below the
    /// directory the worker bin lands in).
    pub worker_binary: Option<PathBuf>,
}

impl ProcessClusterConfig {
    /// Defaults: a 30 s I/O bound and automatic worker-binary discovery.
    pub fn new(workers: usize) -> Self {
        Self { workers, io_timeout: Duration::from_secs(30), worker_binary: None }
    }
}

/// Accounting for one multi-process iteration.
#[derive(Debug, Clone)]
pub struct ProcessIterationReport {
    /// Iteration number, 1-based.
    pub iteration: u64,
    /// Measured wall seconds of the full iteration (compute + real loopback
    /// communication + merges).
    pub wall_sec: f64,
    /// Frame bytes crossing the sockets this iteration (deltas + syncs, both
    /// directions, including length prefixes).
    pub bytes_exchanged: u64,
}

struct Conn {
    stream: TcpStream,
    buf: FrameBuffer,
}

/// Locates the worker binary next to (or one/two levels above) the current
/// executable — `cargo test` binaries live in `target/<profile>/deps/` while
/// bins land in `target/<profile>/`.
fn default_worker_binary() -> Option<PathBuf> {
    if let Ok(path) = std::env::var("WARPLDA_DIST_WORKER") {
        return Some(PathBuf::from(path));
    }
    let exe = std::env::current_exe().ok()?;
    let name = format!("warplda-dist-worker{}", std::env::consts::EXE_SUFFIX);
    let mut dir = exe.parent()?;
    for _ in 0..3 {
        let candidate = dir.join(&name);
        if candidate.is_file() {
            return Some(candidate);
        }
        dir = dir.parent()?;
    }
    None
}

/// A coordinator over `workers` spawned `warplda-dist-worker` processes.
pub struct ProcessCluster {
    sampler: ShardedWarpLda,
    grid: GridPartition,
    plan: ShardPlan,
    conns: Vec<Conn>,
    children: Vec<Child>,
    cfg: ProcessClusterConfig,
    bytes_this_iteration: u64,
}

impl ProcessCluster {
    /// Spawns the workers and trains `corpus` from a fresh random
    /// initialization (the same one every other backend derives from `seed`).
    pub fn new(
        corpus: &Corpus,
        params: ModelParams,
        config: WarpLdaConfig,
        seed: u64,
        cfg: ProcessClusterConfig,
    ) -> Result<Self, DistError> {
        Self::from_sampler(corpus, ShardedWarpLda::new(corpus, params, config, seed), cfg)
    }

    /// Spawns the workers around an existing replica — how training resumes
    /// from a checkpoint: load it into a [`ShardedWarpLda`] first, then hand
    /// it here and the workers adopt its full state before the first
    /// iteration. The worker count is free to differ from the one that wrote
    /// the checkpoint; continuation is bit-identical either way.
    pub fn from_sampler(
        corpus: &Corpus,
        sampler: ShardedWarpLda,
        cfg: ProcessClusterConfig,
    ) -> Result<Self, DistError> {
        if cfg.workers == 0 {
            return Err(DistError::Protocol("need at least one worker".into()));
        }
        let doc_view = DocMajorView::build(corpus);
        let word_view = WordMajorView::build(corpus, &doc_view);
        let grid = GridPartition::build_with(
            corpus,
            &doc_view,
            &word_view,
            cfg.workers,
            PartitionStrategy::Greedy,
            PartitionStrategy::Dynamic,
        );
        let plan = ShardPlan::build(&sampler, &grid);

        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let binary = cfg.worker_binary.clone().or_else(default_worker_binary).ok_or_else(|| {
            DistError::Protocol(
                "cannot locate the warplda-dist-worker binary; build it or set \
                 WARPLDA_DIST_WORKER"
                    .into(),
            )
        })?;

        let mut children = Vec::with_capacity(cfg.workers);
        for id in 0..cfg.workers {
            let child = Command::new(&binary)
                .arg("--connect")
                .arg(addr.to_string())
                .arg("--worker-id")
                .arg(id.to_string())
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .spawn()?;
            children.push(child);
        }

        let mut cluster =
            Self { sampler, grid, plan, conns: Vec::new(), children, cfg, bytes_this_iteration: 0 };
        match cluster.handshake(&listener, corpus) {
            Ok(()) => Ok(cluster),
            Err(e) => {
                cluster.kill_all();
                Err(e)
            }
        }
    }

    /// Accepts every worker's connection, exchanges Hello/Setup/Ready. Each
    /// step is deadline-bounded and fails fast if a child dies early.
    fn handshake(&mut self, listener: &TcpListener, corpus: &Corpus) -> Result<(), DistError> {
        let workers = self.cfg.workers;
        let deadline = Instant::now() + self.cfg.io_timeout;
        let mut slots: Vec<Option<Conn>> = (0..workers).map(|_| None).collect();
        let mut connected = 0usize;
        while connected < workers {
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(self.cfg.io_timeout))?;
                    stream.set_write_timeout(Some(self.cfg.io_timeout))?;
                    let mut conn = Conn {
                        stream,
                        buf: FrameBuffer::with_max_frame(1 << 16, DIST_MAX_FRAME_BYTES),
                    };
                    match recv_on(&mut conn)? {
                        Some(Message::Hello { worker_id }) => {
                            let id = worker_id as usize;
                            if id >= workers || slots[id].is_some() {
                                return Err(DistError::Protocol(format!(
                                    "unexpected Hello from worker id {worker_id}"
                                )));
                            }
                            slots[id] = Some(conn);
                            connected += 1;
                        }
                        Some(other) => {
                            return Err(DistError::Protocol(format!(
                                "expected Hello, got {}",
                                kind_of(&other)
                            )))
                        }
                        None => {
                            return Err(DistError::Protocol(
                                "worker disconnected before Hello".into(),
                            ))
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() > deadline {
                        return Err(DistError::Protocol(format!(
                            "timed out waiting for {} worker(s) to connect",
                            workers - connected
                        )));
                    }
                    for (i, child) in self.children.iter_mut().enumerate() {
                        if let Some(status) = child.try_wait()? {
                            return Err(DistError::WorkerFailed {
                                worker: i as u32,
                                message: format!("exited during startup: {status}"),
                            });
                        }
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e.into()),
            }
        }
        self.conns = slots.into_iter().map(|s| s.expect("all slots filled")).collect();

        let params = *self.sampler.params();
        let config = *self.sampler.config();
        let resume = (self.sampler.iterations() > 0).then(|| ResumeState {
            iterations: self.sampler.iterations(),
            records: self.sampler.records_slice().to_vec(),
            topic_counts: self.sampler.topic_counts().to_vec(),
        });
        for i in 0..workers {
            let setup = Message::Setup(Box::new(Setup {
                workers: workers as u32,
                worker_id: i as u32,
                seed: self.sampler.seed(),
                num_topics: params.num_topics as u64,
                alpha: params.alpha,
                beta: params.beta,
                mh_steps: config.mh_steps as u64,
                use_hash_counts: config.use_hash_counts,
                corpus: corpus.clone(),
                resume: resume.clone(),
            }));
            self.send(i, &setup)?;
        }
        for i in 0..workers {
            match self.recv(i)? {
                Message::Ready { worker_id } if worker_id as usize == i => {}
                other => {
                    return Err(DistError::Protocol(format!(
                        "expected Ready from worker {i}, got {}",
                        kind_of(&other)
                    )))
                }
            }
        }
        Ok(())
    }

    /// Cluster size `P`.
    pub fn workers(&self) -> usize {
        self.cfg.workers
    }

    /// The grid partition driving shard ownership.
    pub fn grid(&self) -> &GridPartition {
        &self.grid
    }

    /// Completed iterations.
    pub fn iterations(&self) -> u64 {
        self.sampler.iterations()
    }

    /// The merged topic assignments (doc-major token order), as advanced by
    /// the workers through the last completed iteration.
    pub fn assignments(&self) -> Vec<u32> {
        self.sampler.assignments()
    }

    /// The merged global `c_k`.
    pub fn topic_counts(&self) -> &[u32] {
        self.sampler.topic_counts()
    }

    /// The coordinator's replica — checkpoint it with
    /// `warplda_core::checkpoint::write_checkpoint` to persist the cluster's
    /// state.
    pub fn sampler(&self) -> &ShardedWarpLda {
        &self.sampler
    }

    fn send(&mut self, i: usize, msg: &Message) -> Result<(), DistError> {
        let payload = encode_message(msg);
        self.bytes_this_iteration += payload.len() as u64 + 4;
        write_frame(&mut self.conns[i].stream, &payload).map_err(|e| {
            // A worker that died mid-iteration surfaces here as a broken
            // pipe; report *which* worker instead of a bare I/O error.
            DistError::WorkerFailed { worker: i as u32, message: format!("send failed: {e}") }
        })
    }

    fn recv(&mut self, i: usize) -> Result<Message, DistError> {
        let timeout = self.cfg.io_timeout;
        let conn = &mut self.conns[i];
        let Conn { stream, buf } = conn;
        match buf.read_frame(stream) {
            Ok(Some(range)) => {
                let payload_len = range.len() as u64;
                let msg = decode_message(buf.payload(range))?;
                self.bytes_this_iteration += payload_len + 4;
                if let Message::Fault { worker_id, message } = msg {
                    return Err(DistError::WorkerFailed { worker: worker_id, message });
                }
                Ok(msg)
            }
            Ok(None) => Err(DistError::WorkerFailed {
                worker: i as u32,
                message: "connection closed unexpectedly".into(),
            }),
            Err(WireError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                Err(DistError::WorkerFailed {
                    worker: i as u32,
                    message: format!("receive timed out after {timeout:?}"),
                })
            }
            Err(WireError::Malformed(m)) if m.contains("mid-frame") => {
                Err(DistError::WorkerFailed { worker: i as u32, message: m.into() })
            }
            Err(e) => Err(DistError::Wire(e)),
        }
    }

    /// Runs one distributed iteration: word phase (deltas in, boundary out),
    /// then doc phase, each a barrier across all workers.
    pub fn run_iteration(&mut self) -> Result<ProcessIterationReport, DistError> {
        let t0 = Instant::now();
        self.bytes_this_iteration = 0;
        let epoch = self.sampler.iterations();
        let k = self.sampler.params().num_topics;
        for i in 0..self.workers() {
            self.send(i, &Message::RunIteration { epoch })?;
        }

        for phase in [Phase::Word, Phase::Doc] {
            let mut merged = vec![0u32; k];
            for i in 0..self.workers() {
                let delta = match (phase, self.recv(i)?) {
                    (Phase::Word, Message::WordDelta(d)) => d,
                    (Phase::Doc, Message::DocDelta(d)) => d,
                    (_, other) => {
                        return Err(DistError::Protocol(format!(
                            "expected {phase:?} delta from worker {i}, got {}",
                            kind_of(&other)
                        )))
                    }
                };
                if delta.worker_id != i as u32 || delta.epoch != epoch {
                    return Err(DistError::Protocol(format!(
                        "delta from worker {} for epoch {} on worker {i}'s connection at \
                         epoch {epoch}",
                        delta.worker_id, delta.epoch
                    )));
                }
                if delta.partial_ck.len() != k {
                    return Err(DistError::Codec(CodecError::Corrupt(format!(
                        "partial c_k has {} slots for K = {k}",
                        delta.partial_ck.len()
                    ))));
                }
                for (m, &p) in merged.iter_mut().zip(&delta.partial_ck) {
                    *m += p;
                }
                let entries = match phase {
                    Phase::Word => &self.plan.word_delta_entries[i],
                    Phase::Doc => &self.plan.doc_delta_entries[i],
                };
                self.sampler.import_records(entries, &delta.records)?;
            }
            self.sampler.install_topic_counts(&merged);
            for i in 0..self.workers() {
                let entries = match phase {
                    Phase::Word => &self.plan.word_sync_entries[i],
                    Phase::Doc => &self.plan.doc_sync_entries[i],
                };
                let mut records = Vec::new();
                self.sampler.export_records(entries, &mut records);
                let sync = Sync { epoch, topic_counts: merged.clone(), records };
                let msg = match phase {
                    Phase::Word => Message::WordSync(sync),
                    Phase::Doc => Message::DocSync(sync),
                };
                self.send(i, &msg)?;
            }
        }

        self.sampler.advance_iteration();
        Ok(ProcessIterationReport {
            iteration: self.sampler.iterations(),
            wall_sec: t0.elapsed().as_secs_f64(),
            bytes_exchanged: self.bytes_this_iteration,
        })
    }

    /// Kills worker `i` outright — the fault-injection hook: the next
    /// exchange involving it returns a typed [`DistError::WorkerFailed`]
    /// within the I/O timeout instead of hanging.
    pub fn kill_worker(&mut self, i: usize) {
        let _ = self.children[i].kill();
        let _ = self.children[i].wait();
    }

    /// Clean shutdown: Shutdown → Bye on every connection, then reaps the
    /// children. Any worker that misbehaves is killed and the first error
    /// reported.
    pub fn shutdown(mut self) -> Result<(), DistError> {
        let mut first_err = None;
        for i in 0..self.conns.len() {
            let result = self.send(i, &Message::Shutdown).and_then(|()| match self.recv(i)? {
                Message::Bye { .. } => Ok(()),
                other => Err(DistError::Protocol(format!(
                    "expected Bye from worker {i}, got {}",
                    kind_of(&other)
                ))),
            });
            if let Err(e) = result {
                let _ = self.children[i].kill();
                first_err.get_or_insert(e);
            }
        }
        for child in &mut self.children {
            let _ = child.wait();
        }
        self.children.clear();
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    fn kill_all(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
        self.children.clear();
    }
}

impl Drop for ProcessCluster {
    fn drop(&mut self) {
        // Best effort: never leave orphaned worker processes behind.
        self.kill_all();
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Word,
    Doc,
}

/// Receives one message on a connection; `Ok(None)` is a clean disconnect.
fn recv_on(conn: &mut Conn) -> Result<Option<Message>, DistError> {
    let Conn { stream, buf } = conn;
    match buf.read_frame(stream) {
        Ok(Some(range)) => Ok(Some(decode_message(buf.payload(range))?)),
        Ok(None) => Ok(None),
        Err(e) => Err(e.into()),
    }
}

fn kind_of(msg: &Message) -> &'static str {
    match msg {
        Message::Hello { .. } => "Hello",
        Message::Setup(_) => "Setup",
        Message::Ready { .. } => "Ready",
        Message::RunIteration { .. } => "RunIteration",
        Message::WordDelta(_) => "WordDelta",
        Message::WordSync(_) => "WordSync",
        Message::DocDelta(_) => "DocDelta",
        Message::DocSync(_) => "DocSync",
        Message::Shutdown => "Shutdown",
        Message::Bye { .. } => "Bye",
        Message::Fault { .. } => "Fault",
    }
}
