//! The cluster network model (Section 6.5).
//!
//! The paper's distributed experiments run on Tianhe-2: 12-core Ivy Bridge
//! nodes on a TH Express-2 fat tree. For the simulation only two properties of
//! the network matter: how many bytes a phase switch must move (a function of
//! the grid partition and the MH step count) and how long the all-to-all
//! exchange of those bytes takes (a function of link bandwidth and latency).

/// Simulated cluster: worker count plus the parameters of the all-to-all
/// exchange cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Number of machines `P`.
    pub workers: usize,
    /// Effective point-to-point bandwidth of one machine's link, bytes/sec.
    pub link_bandwidth_bytes_per_sec: f64,
    /// One-way message latency of the interconnect, seconds.
    pub link_latency_sec: f64,
    /// Bytes shipped per off-diagonal token at one phase switch:
    /// `(M + 1) * 4` — the `u32` topic assignment plus `M` `u32` proposals.
    pub bytes_per_token: u64,
}

impl ClusterConfig {
    /// A Tianhe-2-like configuration: TH Express-2 class links (~6 GB/s
    /// effective per node, microsecond-scale latency) and the WarpLDA message
    /// format of `(mh_steps + 1) * 4` bytes per shipped token.
    ///
    /// # Panics
    /// Panics if `workers` is zero or `mh_steps` is zero.
    pub fn tianhe2_like(workers: usize, mh_steps: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        assert!(mh_steps >= 1, "need at least one MH proposal per token");
        Self {
            workers,
            link_bandwidth_bytes_per_sec: 6.0e9,
            link_latency_sec: 5.0e-6,
            bytes_per_token: (mh_steps as u64 + 1) * 4,
        }
    }

    /// Total bytes one iteration ships across the network:
    /// `tokens_crossing_per_switch` off-diagonal tokens at `bytes_per_token`
    /// each, exchanged at both phase switches (doc → word and word → doc).
    ///
    /// This is the single pricing formula shared by
    /// [`DistributedWarpLda`](crate::DistributedWarpLda)'s per-iteration
    /// reports and [`runner::model_point`](crate::runner::model_point).
    pub fn bytes_per_iteration(&self, tokens_crossing_per_switch: u64) -> u64 {
        tokens_crossing_per_switch * self.bytes_per_token * 2
    }

    /// Modeled wall time of an all-to-all exchange of `bytes` total bytes.
    ///
    /// The exchange runs as `P - 1` rounds of a ring all-to-all: every machine
    /// pays the link latency per round, and the `bytes / P` bytes each machine
    /// must ship flow through its own link concurrently with the others.
    /// A single machine exchanges nothing and pays nothing.
    pub fn exchange_time_sec(&self, bytes: u64) -> f64 {
        if self.workers <= 1 {
            return 0.0;
        }
        let rounds = (self.workers - 1) as f64;
        let per_link_bytes = bytes as f64 / self.workers as f64;
        self.link_latency_sec * rounds + per_link_bytes / self.link_bandwidth_bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_size_is_assignment_plus_proposals() {
        for m in 1..=16 {
            let c = ClusterConfig::tianhe2_like(8, m);
            assert_eq!(c.bytes_per_token, (m as u64 + 1) * 4);
        }
    }

    #[test]
    fn exchange_time_grows_with_volume_and_is_positive() {
        let c = ClusterConfig::tianhe2_like(4, 2);
        let small = c.exchange_time_sec(1_000);
        let large = c.exchange_time_sec(1_000_000_000);
        assert!(small > 0.0);
        assert!(large > small);
        // A gigabyte through 4 x 6 GB/s links takes on the order of 40 ms.
        assert!((0.01..1.0).contains(&large), "modeled time {large}");
    }

    #[test]
    fn single_machine_pays_no_communication() {
        let c = ClusterConfig::tianhe2_like(1, 4);
        assert_eq!(c.exchange_time_sec(0), 0.0);
        assert_eq!(c.exchange_time_sec(1_000_000), 0.0);
    }

    #[test]
    fn latency_dominates_empty_exchanges() {
        let c = ClusterConfig::tianhe2_like(16, 1);
        let t = c.exchange_time_sec(0);
        assert!((t - 15.0 * c.link_latency_sec).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = ClusterConfig::tianhe2_like(0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one MH proposal")]
    fn zero_mh_steps_rejected() {
        let _ = ClusterConfig::tianhe2_like(2, 0);
    }
}
