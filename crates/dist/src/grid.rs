//! The P×P grid partition of the token matrix (Section 5.3.2).
//!
//! Distributed WarpLDA gives each of the `P` machines one *document shard*
//! (used during document phases) and one *word shard* (used during word
//! phases). Conceptually this cuts the D×V token matrix into a P×P grid:
//! cell `(i, j)` holds the tokens whose document belongs to machine `i` and
//! whose word belongs to machine `j`. Tokens on the diagonal never move;
//! every off-diagonal token must be shipped to the other owner at each phase
//! switch, which is exactly the all-to-all volume the paper's communication
//! model charges.

use warplda_corpus::{Corpus, DocId, DocMajorView, WordId, WordMajorView};
use warplda_sparse::{imbalance_index, partition_by_size, partition_loads, PartitionStrategy};

/// A P×P grid partition over the document-major and word-major views.
#[derive(Debug, Clone)]
pub struct GridPartition {
    workers: usize,
    /// `doc_owner[d]` = machine owning document `d` in doc phases.
    doc_owner: Vec<u32>,
    /// `word_owner[w]` = machine owning word `w` in word phases.
    word_owner: Vec<u32>,
    /// Token count of each grid cell, `cells[i * workers + j]` for documents
    /// of machine `i` and words of machine `j`.
    cells: Vec<u64>,
    /// Per-machine token loads in doc phases (row sums of `cells`).
    doc_loads: Vec<u64>,
    /// Per-machine token loads in word phases (column sums of `cells`).
    word_loads: Vec<u64>,
    total_tokens: u64,
}

impl GridPartition {
    /// Builds the grid for `workers` machines, assigning documents and words
    /// independently with `strategy` (the paper uses greedy, Figure 4).
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn build(
        corpus: &Corpus,
        doc_view: &DocMajorView,
        word_view: &WordMajorView,
        workers: usize,
        strategy: PartitionStrategy,
    ) -> Self {
        Self::build_with(corpus, doc_view, word_view, workers, strategy, strategy)
    }

    /// Builds the grid with separate strategies for the document and word
    /// shards. [`DistributedWarpLda`](crate::DistributedWarpLda) uses this to
    /// mirror the shared-memory execution it accounts for, which greedy-shards
    /// documents but slices words into contiguous token-balanced ranges.
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn build_with(
        corpus: &Corpus,
        doc_view: &DocMajorView,
        word_view: &WordMajorView,
        workers: usize,
        doc_strategy: PartitionStrategy,
        word_strategy: PartitionStrategy,
    ) -> Self {
        assert!(workers >= 1, "need at least one worker");
        let doc_sizes: Vec<u64> =
            (0..doc_view.num_docs()).map(|d| doc_view.doc_len(d as DocId) as u64).collect();
        let word_sizes: Vec<u64> =
            (0..word_view.num_words()).map(|w| word_view.word_len(w as WordId) as u64).collect();
        let doc_owner = partition_by_size(&doc_sizes, workers, doc_strategy);
        let word_owner = partition_by_size(&word_sizes, workers, word_strategy);

        let mut cells = vec![0u64; workers * workers];
        for (d, &owner) in doc_owner.iter().enumerate() {
            let i = owner as usize;
            let row = &mut cells[i * workers..(i + 1) * workers];
            for &w in doc_view.doc_words(d as DocId) {
                row[word_owner[w as usize] as usize] += 1;
            }
        }

        let doc_loads = partition_loads(&doc_sizes, &doc_owner, workers);
        let word_loads = partition_loads(&word_sizes, &word_owner, workers);
        debug_assert_eq!(doc_loads.iter().sum::<u64>(), corpus.num_tokens());
        debug_assert_eq!(word_loads.iter().sum::<u64>(), corpus.num_tokens());

        Self {
            workers,
            doc_owner,
            word_owner,
            cells,
            doc_loads,
            word_loads,
            total_tokens: corpus.num_tokens(),
        }
    }

    /// Number of machines `P`.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Machine owning document `d` during doc phases.
    pub fn doc_owner(&self, d: DocId) -> u32 {
        self.doc_owner[d as usize]
    }

    /// Machine owning word `w` during word phases.
    pub fn word_owner(&self, w: WordId) -> u32 {
        self.word_owner[w as usize]
    }

    /// Token count of grid cell `(doc_machine, word_machine)`.
    pub fn cell_tokens(&self, doc_machine: usize, word_machine: usize) -> u64 {
        self.cells[doc_machine * self.workers + word_machine]
    }

    /// Total tokens across all cells (= the corpus token count).
    pub fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    /// Per-machine token loads during doc phases.
    pub fn doc_phase_loads(&self) -> &[u64] {
        &self.doc_loads
    }

    /// Per-machine token loads during word phases.
    pub fn word_phase_loads(&self) -> &[u64] {
        &self.word_loads
    }

    /// Imbalance index `max/mean - 1` of the doc-phase loads (0 = perfect).
    pub fn doc_phase_imbalance(&self) -> f64 {
        imbalance_index(&self.doc_loads)
    }

    /// Imbalance index `max/mean - 1` of the word-phase loads (0 = perfect).
    pub fn word_phase_imbalance(&self) -> f64 {
        imbalance_index(&self.word_loads)
    }

    /// Number of tokens that must cross the network at one phase switch: the
    /// tokens in off-diagonal cells, whose doc-phase and word-phase owners
    /// differ. Each WarpLDA iteration switches phases twice (doc → word and
    /// word → doc), so an iteration ships twice this many tokens.
    pub fn tokens_exchanged_per_phase_switch(&self) -> u64 {
        let mut off_diagonal = 0u64;
        for i in 0..self.workers {
            for j in 0..self.workers {
                if i != j {
                    off_diagonal += self.cells[i * self.workers + j];
                }
            }
        }
        off_diagonal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warplda_corpus::DatasetPreset;

    fn views(corpus: &Corpus) -> (DocMajorView, WordMajorView) {
        let dv = DocMajorView::build(corpus);
        let wv = WordMajorView::build(corpus, &dv);
        (dv, wv)
    }

    #[test]
    fn cells_partition_every_token_exactly_once() {
        let corpus = DatasetPreset::Tiny.generate_scaled(2);
        let (dv, wv) = views(&corpus);
        for workers in [1usize, 2, 3, 4, 8, 16] {
            let grid = GridPartition::build(&corpus, &dv, &wv, workers, PartitionStrategy::Greedy);
            let cell_sum: u64 = (0..workers)
                .flat_map(|i| (0..workers).map(move |j| (i, j)))
                .map(|(i, j)| grid.cell_tokens(i, j))
                .sum();
            assert_eq!(cell_sum, corpus.num_tokens(), "workers = {workers}");
            assert_eq!(grid.total_tokens(), corpus.num_tokens());
            assert_eq!(grid.doc_phase_loads().iter().sum::<u64>(), corpus.num_tokens());
            assert_eq!(grid.word_phase_loads().iter().sum::<u64>(), corpus.num_tokens());
        }
    }

    #[test]
    fn loads_are_row_and_column_sums_of_the_grid() {
        let corpus = DatasetPreset::Tiny.generate_scaled(4);
        let (dv, wv) = views(&corpus);
        let workers = 4;
        let grid = GridPartition::build(&corpus, &dv, &wv, workers, PartitionStrategy::Greedy);
        for m in 0..workers {
            let row: u64 = (0..workers).map(|j| grid.cell_tokens(m, j)).sum();
            let col: u64 = (0..workers).map(|i| grid.cell_tokens(i, m)).sum();
            assert_eq!(row, grid.doc_phase_loads()[m]);
            assert_eq!(col, grid.word_phase_loads()[m]);
        }
    }

    #[test]
    fn owners_agree_with_cells() {
        let corpus = DatasetPreset::Tiny.generate_scaled(8);
        let (dv, wv) = views(&corpus);
        let grid = GridPartition::build(&corpus, &dv, &wv, 3, PartitionStrategy::Greedy);
        // Recount cells straight from the owner maps.
        let mut recount = [0u64; 9];
        for d in 0..corpus.num_docs() {
            for &w in dv.doc_words(d as DocId) {
                let i = grid.doc_owner(d as DocId) as usize;
                let j = grid.word_owner(w) as usize;
                recount[i * 3 + j] += 1;
            }
        }
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(grid.cell_tokens(i, j), recount[i * 3 + j]);
            }
        }
    }

    #[test]
    fn single_machine_exchanges_nothing() {
        let corpus = DatasetPreset::Tiny.generate_scaled(8);
        let (dv, wv) = views(&corpus);
        let grid = GridPartition::build(&corpus, &dv, &wv, 1, PartitionStrategy::Greedy);
        assert_eq!(grid.tokens_exchanged_per_phase_switch(), 0);
        assert_eq!(grid.doc_phase_imbalance(), 0.0);
        assert_eq!(grid.word_phase_imbalance(), 0.0);
    }

    #[test]
    fn greedy_keeps_phases_balanced() {
        let corpus = DatasetPreset::Tiny.generate_scaled(2);
        let (dv, wv) = views(&corpus);
        for workers in [2usize, 4, 8] {
            let grid = GridPartition::build(&corpus, &dv, &wv, workers, PartitionStrategy::Greedy);
            assert!(
                grid.doc_phase_imbalance() < 0.1,
                "doc imbalance at {workers} workers: {}",
                grid.doc_phase_imbalance()
            );
            assert!(
                grid.word_phase_imbalance() < 0.2,
                "word imbalance at {workers} workers: {}",
                grid.word_phase_imbalance()
            );
        }
    }

    #[test]
    fn off_diagonal_volume_is_bounded_by_total() {
        let corpus = DatasetPreset::Tiny.generate_scaled(4);
        let (dv, wv) = views(&corpus);
        for workers in [2usize, 5, 8] {
            let grid = GridPartition::build(&corpus, &dv, &wv, workers, PartitionStrategy::Greedy);
            let crossing = grid.tokens_exchanged_per_phase_switch();
            assert!(crossing <= grid.total_tokens());
            // With more than one machine some token crosses in practice: the
            // diagonal holds ~1/P of the mass for independent assignments.
            assert!(crossing > 0, "workers = {workers}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let corpus = DatasetPreset::Tiny.generate_scaled(16);
        let (dv, wv) = views(&corpus);
        let _ = GridPartition::build(&corpus, &dv, &wv, 0, PartitionStrategy::Greedy);
    }
}
