//! `warplda-dist-worker` — one shard of a real multi-process training run.
//!
//! Spawned by [`warplda_dist::ProcessCluster`] as
//! `warplda-dist-worker --connect 127.0.0.1:PORT --worker-id N`. The worker
//! connects back, receives the corpus and model hyperparameters in a `Setup`
//! frame, rebuilds the *same* replica and [`ShardPlan`] the coordinator holds
//! (both are deterministic functions of the corpus, seed and worker count),
//! then serves `RunIteration` requests: advance the owned shard of a phase,
//! report the owned records plus a partial `c_k`, and absorb the merged
//! `c_k` plus the cross-owner records the plan says this worker lacks.
//!
//! Every protocol violation or decode failure is reported back as a `Fault`
//! frame (best effort) before exiting non-zero, so the coordinator gets a
//! typed error instead of a silent hang.

use std::net::TcpStream;
use std::time::Duration;

use warplda_core::{ModelParams, ShardedWarpLda, WarpLdaConfig};
use warplda_corpus::{Corpus, DocMajorView, WordMajorView};
use warplda_dist::plan::ShardPlan;
use warplda_dist::protocol::{
    decode_message, encode_message, Delta, Message, Setup, DIST_MAX_FRAME_BYTES,
};
use warplda_dist::GridPartition;
use warplda_net::{connect_with_retry, write_frame, FrameBuffer};
use warplda_sparse::PartitionStrategy;

type Result<T> = std::result::Result<T, Box<dyn std::error::Error>>;

fn main() {
    let (addr, worker_id) = match parse_args() {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("warplda-dist-worker: {e}");
            eprintln!("usage: warplda-dist-worker --connect HOST:PORT --worker-id N");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(&addr, worker_id) {
        eprintln!("warplda-dist-worker {worker_id}: {e}");
        std::process::exit(1);
    }
}

fn parse_args() -> Result<(String, u32)> {
    let mut addr = None;
    let mut worker_id = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--connect" => addr = Some(args.next().ok_or("--connect needs HOST:PORT")?),
            "--worker-id" => {
                let raw = args.next().ok_or("--worker-id needs a number")?;
                worker_id = Some(raw.parse::<u32>().map_err(|e| format!("bad worker id: {e}"))?);
            }
            other => return Err(format!("unknown flag {other}").into()),
        }
    }
    Ok((addr.ok_or("missing --connect")?, worker_id.ok_or("missing --worker-id")?))
}

/// The framed connection back to the coordinator.
struct Link {
    stream: TcpStream,
    buf: FrameBuffer,
}

impl Link {
    fn send(&mut self, msg: &Message) -> Result<()> {
        write_frame(&mut self.stream, &encode_message(msg))?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Message> {
        match self.buf.read_frame(&mut self.stream)? {
            Some(range) => Ok(decode_message(self.buf.payload(range))?),
            None => Err("coordinator closed the connection".into()),
        }
    }
}

fn run(addr: &str, worker_id: u32) -> Result<()> {
    let stream =
        connect_with_retry(addr, 200, Duration::from_millis(5), Duration::from_millis(100))?;
    stream.set_nodelay(true)?;
    // If the coordinator hangs (rather than dying, which shows up as EOF
    // immediately), give up instead of lingering as an orphan.
    stream.set_read_timeout(Some(Duration::from_secs(300)))?;
    let mut link = Link { stream, buf: FrameBuffer::with_max_frame(1 << 16, DIST_MAX_FRAME_BYTES) };

    link.send(&Message::Hello { worker_id })?;
    let setup = match link.recv()? {
        Message::Setup(setup) => *setup,
        other => return Err(format!("expected Setup, got {other:?}").into()),
    };
    if setup.worker_id != worker_id {
        return Err(format!(
            "coordinator addressed worker {} on worker {worker_id}'s connection",
            setup.worker_id
        )
        .into());
    }

    let (mut sampler, plan) = build_replica(&setup)?;
    link.send(&Message::Ready { worker_id })?;

    let id = worker_id as usize;
    match serve(&mut link, &mut sampler, &plan, id) {
        Ok(()) => {
            link.send(&Message::Bye { worker_id })?;
            Ok(())
        }
        Err(e) => {
            // Best effort: give the coordinator a typed Fault before dying.
            let _ = link.send(&Message::Fault { worker_id, message: e.to_string() });
            Err(e)
        }
    }
}

/// Rebuilds the deterministic replica + exchange plan from the `Setup`
/// payload, applying resume state when present.
fn build_replica(setup: &Setup) -> Result<(ShardedWarpLda, ShardPlan)> {
    let corpus: &Corpus = &setup.corpus;
    let params = ModelParams::new(setup.num_topics as usize, setup.alpha, setup.beta);
    let config =
        WarpLdaConfig { mh_steps: setup.mh_steps as usize, use_hash_counts: setup.use_hash_counts };
    let doc_view = DocMajorView::build(corpus);
    let word_view = WordMajorView::build(corpus, &doc_view);
    let grid = GridPartition::build_with(
        corpus,
        &doc_view,
        &word_view,
        setup.workers as usize,
        PartitionStrategy::Greedy,
        PartitionStrategy::Dynamic,
    );
    let mut sampler = ShardedWarpLda::new(corpus, params, config, setup.seed);
    if let Some(resume) = &setup.resume {
        sampler.restore(resume.iterations, &resume.records, &resume.topic_counts)?;
    }
    let plan = ShardPlan::build(&sampler, &grid);
    Ok((sampler, plan))
}

/// The iteration loop: word shard → delta → sync, doc shard → delta → sync,
/// until `Shutdown`.
fn serve(link: &mut Link, sampler: &mut ShardedWarpLda, plan: &ShardPlan, id: usize) -> Result<()> {
    let k = sampler.params().num_topics;
    let mut partial = vec![0u32; k];
    let mut records = Vec::new();
    loop {
        let epoch = match link.recv()? {
            Message::RunIteration { epoch } => epoch,
            Message::Shutdown => return Ok(()),
            other => return Err(format!("expected RunIteration or Shutdown, got {other:?}").into()),
        };
        if epoch != sampler.iterations() {
            return Err(format!(
                "coordinator asked for epoch {epoch} but this worker is at {}",
                sampler.iterations()
            )
            .into());
        }

        sampler.run_word_phase_shard(&plan.owned_words[id], &mut partial);
        sampler.export_records(&plan.word_delta_entries[id], &mut records);
        link.send(&Message::WordDelta(Delta {
            worker_id: id as u32,
            epoch,
            records: records.clone(),
            partial_ck: partial.clone(),
        }))?;
        apply_sync(link, sampler, &plan.word_sync_entries[id], epoch, k, SyncKind::Word)?;

        sampler.run_doc_phase_shard(&plan.owned_docs[id], &mut partial);
        sampler.export_records(&plan.doc_delta_entries[id], &mut records);
        link.send(&Message::DocDelta(Delta {
            worker_id: id as u32,
            epoch,
            records: records.clone(),
            partial_ck: partial.clone(),
        }))?;
        apply_sync(link, sampler, &plan.doc_sync_entries[id], epoch, k, SyncKind::Doc)?;

        sampler.advance_iteration();
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SyncKind {
    Word,
    Doc,
}

/// Receives the expected phase-boundary sync, installs the merged `c_k` and
/// imports the cross-owner records this worker does not advance itself.
fn apply_sync(
    link: &mut Link,
    sampler: &mut ShardedWarpLda,
    entries: &[u32],
    epoch: u64,
    k: usize,
    kind: SyncKind,
) -> Result<()> {
    let sync = match (kind, link.recv()?) {
        (SyncKind::Word, Message::WordSync(sync)) => sync,
        (SyncKind::Doc, Message::DocSync(sync)) => sync,
        (_, other) => return Err(format!("expected {kind:?} sync, got {other:?}").into()),
    };
    if sync.epoch != epoch {
        return Err(format!("{kind:?} sync for epoch {} at epoch {epoch}", sync.epoch).into());
    }
    if sync.topic_counts.len() != k {
        return Err(format!("merged c_k has {} slots for K = {k}", sync.topic_counts.len()).into());
    }
    sampler.install_topic_counts(&sync.topic_counts);
    sampler.import_records(entries, &sync.records)?;
    Ok(())
}
