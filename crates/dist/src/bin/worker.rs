//! `warplda-dist-worker` — one shard of a real multi-process training run.
//!
//! Spawned by [`warplda_dist::ProcessCluster`] as
//! `warplda-dist-worker --connect 127.0.0.1:PORT --worker-id N`. The worker
//! connects back, receives the corpus and model hyperparameters in a `Setup`
//! frame, rebuilds the *same* replica and [`ShardPlan`] the coordinator holds
//! (both are deterministic functions of the corpus, seed and worker count),
//! then serves `RunIteration` requests: advance the owned shard of a phase,
//! report the owned records plus a partial `c_k`, and absorb the merged
//! `c_k` plus the cross-owner records the plan says this worker lacks.
//!
//! Once `Ready` is sent, a side thread pulses `Heartbeat` frames every
//! `Setup.heartbeat_interval_ms` so the coordinator can tell a slow worker
//! from a hung one. The write half of the socket is shared behind a mutex;
//! frames are written whole under the lock so the two writers never
//! interleave bytes.
//!
//! When a *peer* worker fails, the coordinator sends `Restore`: this worker
//! abandons whatever iteration is in flight (without advancing), reinstalls
//! the boundary state and answers `Ready`. Per-entity RNG streams make the
//! subsequent replay bit-identical.
//!
//! Scripted faults from `Setup.faults` fire at the start of their target
//! phase: crash (exit mid-protocol), hang (stop heartbeats and stall), delay
//! (stall but keep heartbeating — the supervisor must *not* kill us), or
//! corrupt/truncate the next delta frame.
//!
//! Every protocol violation or decode failure is reported back as a `Fault`
//! frame (best effort) before exiting non-zero, so the coordinator gets a
//! typed error instead of a silent hang.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use warplda_core::{ModelParams, ShardedWarpLda, WarpLdaConfig};
use warplda_corpus::{Corpus, DocMajorView, WordMajorView};
use warplda_dist::fault::{FaultAction, FaultPhase, FaultTimeline};
use warplda_dist::plan::ShardPlan;
use warplda_dist::protocol::{
    decode_message, encode_message, Delta, Message, Setup, DIST_MAX_FRAME_BYTES,
};
use warplda_dist::GridPartition;
use warplda_net::{connect_within, write_frame, FrameBuffer};
use warplda_sparse::PartitionStrategy;

type Result<T> = std::result::Result<T, Box<dyn std::error::Error>>;

fn main() {
    let (addr, worker_id) = match parse_args() {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("warplda-dist-worker: {e}");
            eprintln!("usage: warplda-dist-worker --connect HOST:PORT --worker-id N");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(&addr, worker_id) {
        eprintln!("warplda-dist-worker {worker_id}: {e}");
        std::process::exit(1);
    }
}

fn parse_args() -> Result<(String, u32)> {
    let mut addr = None;
    let mut worker_id = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--connect" => addr = Some(args.next().ok_or("--connect needs HOST:PORT")?),
            "--worker-id" => {
                let raw = args.next().ok_or("--worker-id needs a number")?;
                worker_id = Some(raw.parse::<u32>().map_err(|e| format!("bad worker id: {e}"))?);
            }
            other => return Err(format!("unknown flag {other}").into()),
        }
    }
    Ok((addr.ok_or("missing --connect")?, worker_id.ok_or("missing --worker-id")?))
}

/// The write half of the coordinator link, shared with the heartbeat thread.
#[derive(Clone)]
struct SharedWriter {
    stream: Arc<Mutex<TcpStream>>,
}

impl SharedWriter {
    fn lock(&self) -> std::sync::MutexGuard<'_, TcpStream> {
        self.stream.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn send(&self, msg: &Message) -> Result<()> {
        let payload = encode_message(msg);
        write_frame(&mut *self.lock(), &payload)?;
        Ok(())
    }

    /// Scripted `CorruptDelta`: flips the tag byte so the coordinator's
    /// decode fails with a typed corrupt-payload error.
    fn send_corrupted(&self, msg: &Message) -> Result<()> {
        let mut payload = encode_message(msg);
        payload[0] ^= 0xFF;
        write_frame(&mut *self.lock(), &payload)?;
        Ok(())
    }

    /// Scripted `TruncateDelta`: a full length prefix but only half the
    /// payload — the coordinator sees the connection close mid-frame.
    fn send_truncated(&self, msg: &Message) -> Result<()> {
        let payload = encode_message(msg);
        let mut stream = self.lock();
        stream.write_all(&(payload.len() as u32).to_le_bytes())?;
        stream.write_all(&payload[..payload.len() / 2])?;
        stream.flush()?;
        Ok(())
    }
}

/// The read half, owned by the protocol loop.
struct Reader {
    stream: TcpStream,
    buf: FrameBuffer,
}

impl Reader {
    fn recv(&mut self) -> Result<Message> {
        match self.buf.read_frame(&mut self.stream)? {
            Some(range) => Ok(decode_message(self.buf.payload(range))?),
            None => Err("coordinator closed the connection".into()),
        }
    }
}

/// The heartbeat side thread: pulses until stopped or the socket dies.
struct Heartbeat {
    flag: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Heartbeat {
    fn start(writer: SharedWriter, worker_id: u32, interval: Duration) -> Self {
        let flag = Arc::new(AtomicBool::new(false));
        let stop = flag.clone();
        let handle = std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(interval);
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                // A send failure means the coordinator is gone; the protocol
                // loop will notice on its own.
                if writer.send(&Message::Heartbeat { worker_id }).is_err() {
                    break;
                }
            }
        });
        Self { flag, handle: Some(handle) }
    }

    fn stop(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.stop();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn run(addr: &str, worker_id: u32) -> Result<()> {
    let stream = connect_within(
        addr,
        Duration::from_secs(30),
        Duration::from_millis(5),
        Duration::from_millis(100),
    )?;
    stream.set_nodelay(true)?;
    // If the coordinator hangs (rather than dying, which shows up as EOF
    // immediately), give up instead of lingering as an orphan.
    stream.set_read_timeout(Some(Duration::from_secs(300)))?;
    let reader_stream = stream.try_clone()?;
    let writer = SharedWriter { stream: Arc::new(Mutex::new(stream)) };
    let mut reader = Reader {
        stream: reader_stream,
        buf: FrameBuffer::with_max_frame(1 << 16, DIST_MAX_FRAME_BYTES),
    };

    writer.send(&Message::Hello { worker_id })?;
    let setup = match reader.recv()? {
        Message::Setup(setup) => *setup,
        other => return Err(format!("expected Setup, got {other:?}").into()),
    };
    if setup.worker_id != worker_id {
        return Err(format!(
            "coordinator addressed worker {} on worker {worker_id}'s connection",
            setup.worker_id
        )
        .into());
    }

    let (mut sampler, plan) = build_replica(&setup)?;
    let mut faults = FaultTimeline::new(setup.faults.clone());
    writer.send(&Message::Ready { worker_id })?;
    let heartbeat = (setup.heartbeat_interval_ms > 0).then(|| {
        Heartbeat::start(
            writer.clone(),
            worker_id,
            Duration::from_millis(setup.heartbeat_interval_ms),
        )
    });

    let id = worker_id as usize;
    match serve(&mut reader, &writer, &mut sampler, &plan, id, &mut faults, heartbeat.as_ref()) {
        Ok(()) => {
            if let Some(hb) = &heartbeat {
                hb.stop();
            }
            writer.send(&Message::Bye { worker_id })?;
            Ok(())
        }
        Err(e) => {
            // Best effort: give the coordinator a typed Fault before dying.
            let _ = writer.send(&Message::Fault { worker_id, message: e.to_string() });
            Err(e)
        }
    }
}

/// Rebuilds the deterministic replica + exchange plan from the `Setup`
/// payload, applying resume state when present.
fn build_replica(setup: &Setup) -> Result<(ShardedWarpLda, ShardPlan)> {
    let corpus: &Corpus = &setup.corpus;
    let params = ModelParams::new(setup.num_topics as usize, setup.alpha, setup.beta);
    let config =
        WarpLdaConfig { mh_steps: setup.mh_steps as usize, use_hash_counts: setup.use_hash_counts };
    let doc_view = DocMajorView::build(corpus);
    let word_view = WordMajorView::build(corpus, &doc_view);
    let grid = GridPartition::build_with(
        corpus,
        &doc_view,
        &word_view,
        setup.workers as usize,
        PartitionStrategy::Greedy,
        PartitionStrategy::Dynamic,
    );
    let mut sampler = ShardedWarpLda::new(corpus, params, config, setup.seed);
    if let Some(resume) = &setup.resume {
        sampler.restore(resume.iterations, &resume.records, &resume.topic_counts)?;
    }
    let plan = ShardPlan::build(&sampler, &grid);
    Ok((sampler, plan))
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SyncKind {
    Word,
    Doc,
}

/// What a phase-boundary wait produced: the expected sync, or a `Restore`
/// that abandons the iteration.
enum Flow {
    Synced,
    Restored,
}

/// Executes a scripted fault action at its firing point. Crash and the
/// post-stall half of hang never return; delay returns after sleeping; the
/// delta-sabotage actions are returned to the caller to apply at send time.
fn execute_fault(action: FaultAction, heartbeat: Option<&Heartbeat>) -> Option<FaultAction> {
    match action {
        FaultAction::Crash => std::process::exit(9),
        FaultAction::Hang { ms } => {
            // Silence the heartbeats *first* — the point is to present as
            // alive-but-stuck, detectable only by the liveness timeout. The
            // coordinator kills this process long before the stall ends.
            if let Some(hb) = heartbeat {
                hb.stop();
            }
            std::thread::sleep(Duration::from_millis(ms));
            std::process::exit(7);
        }
        FaultAction::Delay { ms } => {
            std::thread::sleep(Duration::from_millis(ms));
            None
        }
        sabotage @ (FaultAction::CorruptDelta | FaultAction::TruncateDelta) => Some(sabotage),
    }
}

/// The iteration loop: word shard → delta → sync, doc shard → delta → sync,
/// until `Shutdown`. A `Restore` at any receive point abandons the current
/// iteration (no advance), reinstalls the boundary state and re-enters the
/// loop with a fresh `Ready`.
#[allow(clippy::too_many_arguments)]
fn serve(
    reader: &mut Reader,
    writer: &SharedWriter,
    sampler: &mut ShardedWarpLda,
    plan: &ShardPlan,
    id: usize,
    faults: &mut FaultTimeline,
    heartbeat: Option<&Heartbeat>,
) -> Result<()> {
    let k = sampler.params().num_topics;
    let mut partial = vec![0u32; k];
    let mut records = Vec::new();
    'session: loop {
        let epoch = match reader.recv()? {
            Message::RunIteration { epoch } => epoch,
            Message::Restore(r) => {
                sampler.restore(r.iterations, &r.records, &r.topic_counts)?;
                writer.send(&Message::Ready { worker_id: id as u32 })?;
                continue;
            }
            Message::Shutdown => return Ok(()),
            other => {
                return Err(
                    format!("expected RunIteration, Restore or Shutdown, got {other:?}").into()
                )
            }
        };
        if epoch != sampler.iterations() {
            return Err(format!(
                "coordinator asked for epoch {epoch} but this worker is at {}",
                sampler.iterations()
            )
            .into());
        }

        for kind in [SyncKind::Word, SyncKind::Doc] {
            let phase = match kind {
                SyncKind::Word => FaultPhase::Word,
                SyncKind::Doc => FaultPhase::Doc,
            };
            let sabotage =
                faults.fire(epoch, phase).and_then(|action| execute_fault(action, heartbeat));

            match kind {
                SyncKind::Word => sampler.run_word_phase_shard(&plan.owned_words[id], &mut partial),
                SyncKind::Doc => sampler.run_doc_phase_shard(&plan.owned_docs[id], &mut partial),
            }
            let delta_entries = match kind {
                SyncKind::Word => &plan.word_delta_entries[id],
                SyncKind::Doc => &plan.doc_delta_entries[id],
            };
            sampler.export_records(delta_entries, &mut records);
            let delta = Delta {
                worker_id: id as u32,
                epoch,
                records: records.clone(),
                partial_ck: partial.clone(),
            };
            let msg = match kind {
                SyncKind::Word => Message::WordDelta(delta),
                SyncKind::Doc => Message::DocDelta(delta),
            };
            match sabotage {
                Some(FaultAction::CorruptDelta) => writer.send_corrupted(&msg)?,
                Some(FaultAction::TruncateDelta) => {
                    writer.send_truncated(&msg)?;
                    // The frame is unfinishable; exiting here is the fault.
                    std::process::exit(4);
                }
                _ => writer.send(&msg)?,
            }

            let sync_entries = match kind {
                SyncKind::Word => &plan.word_sync_entries[id],
                SyncKind::Doc => &plan.doc_sync_entries[id],
            };
            match apply_sync(reader, writer, sampler, sync_entries, epoch, k, kind, id)? {
                Flow::Synced => {}
                Flow::Restored => continue 'session,
            }
        }

        sampler.advance_iteration();
    }
}

/// Receives the expected phase-boundary sync, installs the merged `c_k` and
/// imports the cross-owner records this worker does not advance itself. A
/// `Restore` here means a peer failed mid-iteration: adopt the boundary
/// state, acknowledge with `Ready` and report [`Flow::Restored`].
#[allow(clippy::too_many_arguments)]
fn apply_sync(
    reader: &mut Reader,
    writer: &SharedWriter,
    sampler: &mut ShardedWarpLda,
    entries: &[u32],
    epoch: u64,
    k: usize,
    kind: SyncKind,
    id: usize,
) -> Result<Flow> {
    let sync = match (kind, reader.recv()?) {
        (SyncKind::Word, Message::WordSync(sync)) => sync,
        (SyncKind::Doc, Message::DocSync(sync)) => sync,
        (_, Message::Restore(r)) => {
            sampler.restore(r.iterations, &r.records, &r.topic_counts)?;
            writer.send(&Message::Ready { worker_id: id as u32 })?;
            return Ok(Flow::Restored);
        }
        (_, other) => return Err(format!("expected {kind:?} sync, got {other:?}").into()),
    };
    if sync.epoch != epoch {
        return Err(format!("{kind:?} sync for epoch {} at epoch {epoch}", sync.epoch).into());
    }
    if sync.topic_counts.len() != k {
        return Err(format!("merged c_k has {} slots for K = {k}", sync.topic_counts.len()).into());
    }
    sampler.install_topic_counts(&sync.topic_counts);
    sampler.import_records(entries, &sync.records)?;
    Ok(Flow::Synced)
}
