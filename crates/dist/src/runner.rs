//! Modeled machine-count scaling sweeps (Figure 9b).
//!
//! The simulated machines of [`DistributedWarpLda`](crate::DistributedWarpLda)
//! share one host's cores, so *measured* multi-worker wall times say more
//! about the host than about the cluster. The sweep therefore prices each
//! machine count analytically, the way the paper's own scaling model does:
//! measure single-machine sampling throughput once, then charge each `P`
//! (a) compute time — the slowest machine's token load over the two phases at
//! the measured per-machine throughput — and (b) communication time — the
//! off-diagonal grid volume through the cluster's all-to-all model.
//!
//! Unlike [`DistributedWarpLda`](crate::DistributedWarpLda), whose grid mirrors
//! the shared-memory execution it accounts for, the sweep models the paper's
//! *actual cluster deployment*, which greedy-partitions both documents and
//! words (Section 5.3.2 / Figure 4).

use warplda_core::{ModelParams, Trainer, WarpLda, WarpLdaConfig};
use warplda_corpus::Corpus;
use warplda_sparse::PartitionStrategy;

use crate::cluster::ClusterConfig;
use crate::grid::GridPartition;

/// One machine count of a scaling sweep.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// Number of machines `P`.
    pub workers: usize,
    /// Modeled per-iteration compute time (slowest machine), seconds.
    pub compute_sec: f64,
    /// Modeled per-iteration communication time, seconds.
    pub comm_sec: f64,
    /// Modeled throughput, tokens/second.
    pub tokens_per_sec: f64,
    /// Throughput relative to the first point of the sweep.
    pub speedup: f64,
}

/// Prices one machine count: the canonical cost model shared by
/// [`scaling_sweep`] and the Figure 9b binary, so the library API and the
/// harness always agree.
///
/// Per iteration the model charges the slowest machine's two-phase token load
/// at the measured single-machine throughput, and overlaps the all-to-all
/// exchange with computation except for a `1/P` synchronization tail:
/// `wall = max(compute, comm) + comm / P`.
///
/// The returned point's `speedup` is set to `1.0`; callers comparing several
/// machine counts rescale against their chosen baseline.
pub fn model_point(
    total_tokens: u64,
    single_tokens_per_sec: f64,
    grid: &GridPartition,
    cluster: &ClusterConfig,
) -> ScalingPoint {
    let max_doc = grid.doc_phase_loads().iter().copied().max().unwrap_or(0) as f64;
    let max_word = grid.word_phase_loads().iter().copied().max().unwrap_or(0) as f64;
    let compute_sec = (max_doc + max_word) / single_tokens_per_sec;
    let bytes = cluster.bytes_per_iteration(grid.tokens_exchanged_per_phase_switch());
    let comm_sec = cluster.exchange_time_sec(bytes);
    let wall = (compute_sec.max(comm_sec) + comm_sec / cluster.workers as f64).max(1e-12);
    ScalingPoint {
        workers: cluster.workers,
        compute_sec,
        comm_sec,
        tokens_per_sec: total_tokens as f64 * 2.0 / wall,
        speedup: 1.0,
    }
}

/// Sweeps `worker_counts` machine counts, returning one modeled point each.
///
/// Single-machine throughput is measured on this host over `iterations`
/// iterations of the serial sampler (seeded with `seed`); each machine count
/// is then priced with the real greedy grid partition of the corpus and the
/// Tianhe-2-like network model. `speedup` is relative to the first entry of
/// `worker_counts`.
///
/// # Panics
/// Panics if `worker_counts` is empty or `iterations` is zero.
pub fn scaling_sweep(
    corpus: &Corpus,
    params: ModelParams,
    config: WarpLdaConfig,
    worker_counts: &[usize],
    iterations: usize,
    seed: u64,
) -> Vec<ScalingPoint> {
    assert!(!worker_counts.is_empty(), "need at least one machine count");
    assert!(iterations >= 1, "need at least one measurement iteration");

    // Measured single-machine sampling throughput (tokens/sec of compute;
    // WarpLDA visits every token twice per iteration). The first iteration
    // pays allocation costs, so it runs as unmeasured warm-up.
    let trainer = Trainer::new(corpus);
    let mut single = WarpLda::new(corpus, params, config, seed);
    let single_tps =
        trainer.measure_throughput(&mut single, iterations, 1, corpus.num_tokens() * 2);

    let mut points = Vec::with_capacity(worker_counts.len());
    let mut baseline: Option<f64> = None;
    for &workers in worker_counts {
        let grid = GridPartition::build(
            corpus,
            trainer.doc_view(),
            trainer.word_view(),
            workers,
            PartitionStrategy::Greedy,
        );
        let cluster = ClusterConfig::tianhe2_like(workers, config.mh_steps);
        let mut point = model_point(corpus.num_tokens(), single_tps, &grid, &cluster);
        let base = *baseline.get_or_insert(point.tokens_per_sec);
        point.speedup = point.tokens_per_sec / base;
        points.push(point);
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use warplda_corpus::DatasetPreset;

    #[test]
    fn sweep_reports_one_point_per_machine_count() {
        let corpus = DatasetPreset::Tiny.generate_scaled(8);
        let params = ModelParams::paper_defaults(4);
        let config = WarpLdaConfig::with_mh_steps(1);
        let points = scaling_sweep(&corpus, params, config, &[1, 2, 4], 1, 3);
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].workers, 1);
        assert!((points[0].speedup - 1.0).abs() < 1e-12, "first point is the baseline");
        for p in &points {
            assert!(p.tokens_per_sec > 0.0);
            assert!(p.compute_sec > 0.0);
            assert!(p.comm_sec >= 0.0);
        }
    }

    #[test]
    fn compute_time_shrinks_with_more_machines() {
        let corpus = DatasetPreset::Tiny.generate_scaled(4);
        let params = ModelParams::paper_defaults(4);
        let config = WarpLdaConfig::with_mh_steps(1);
        let points = scaling_sweep(&corpus, params, config, &[1, 8], 1, 3);
        assert!(
            points[1].compute_sec < points[0].compute_sec,
            "8 machines should model less per-machine compute than 1"
        );
    }

    #[test]
    #[should_panic(expected = "at least one machine count")]
    fn empty_sweep_rejected() {
        let corpus = DatasetPreset::Tiny.generate_scaled(16);
        let _ = scaling_sweep(
            &corpus,
            ModelParams::paper_defaults(4),
            WarpLdaConfig::with_mh_steps(1),
            &[],
            1,
            1,
        );
    }
}
