//! The deterministic per-worker exchange plan of multi-process training.
//!
//! The coordinator and every worker build the *same* [`ShardPlan`] from the
//! same inputs (the replica's token-matrix structure plus the
//! [`GridPartition`]), so entry lists never cross the wire: a delta or sync
//! frame carries only packed records, and both ends already agree — in order
//! — on which entries those records belong to.
//!
//! Per worker `i` the plan holds:
//!
//! * `owned_words[i]` / `owned_docs[i]` — the columns/rows worker `i`
//!   advances in the word/doc phase.
//! * `word_delta_entries[i]` / `doc_delta_entries[i]` — the entries whose
//!   records worker `i` *reports* after each phase (all entries of its owned
//!   columns/rows).
//! * `word_sync_entries[i]` — the entries worker `i` must *receive* after
//!   the word phase: entries of its owned rows whose word lives on another
//!   worker (it needs their fresh word-phase output before its doc phase).
//! * `doc_sync_entries[i]` — the mirror image after the doc phase: entries
//!   of its owned columns whose document lives elsewhere.
//!
//! All lists are in ascending entity order (entities ascending, entries in
//! matrix order within an entity), which is what makes the plan identical on
//! every process without coordination.

use warplda_core::ShardedWarpLda;

use crate::grid::GridPartition;

/// Per-worker ownership and exchange entry lists (see the module docs).
#[derive(Debug, Clone)]
pub struct ShardPlan {
    workers: usize,
    /// Columns worker `i` advances in word phases.
    pub owned_words: Vec<Vec<u32>>,
    /// Rows worker `i` advances in doc phases.
    pub owned_docs: Vec<Vec<u32>>,
    /// Entries worker `i` reports after a word phase.
    pub word_delta_entries: Vec<Vec<u32>>,
    /// Entries worker `i` reports after a doc phase.
    pub doc_delta_entries: Vec<Vec<u32>>,
    /// Entries worker `i` receives at the word→doc boundary.
    pub word_sync_entries: Vec<Vec<u32>>,
    /// Entries worker `i` receives at the doc→word boundary.
    pub doc_sync_entries: Vec<Vec<u32>>,
}

impl ShardPlan {
    /// Builds the plan for `grid.workers()` workers over `sampler`'s matrix.
    /// Deterministic: every process building from the same corpus and worker
    /// count gets the identical plan.
    pub fn build(sampler: &ShardedWarpLda, grid: &GridPartition) -> Self {
        let p = grid.workers();
        let mut owned_words: Vec<Vec<u32>> = vec![Vec::new(); p];
        for w in 0..sampler.num_words() as u32 {
            owned_words[grid.word_owner(w) as usize].push(w);
        }
        let mut owned_docs: Vec<Vec<u32>> = vec![Vec::new(); p];
        for d in 0..sampler.num_docs() as u32 {
            owned_docs[grid.doc_owner(d) as usize].push(d);
        }

        let mut word_delta_entries: Vec<Vec<u32>> = vec![Vec::new(); p];
        let mut doc_sync_entries: Vec<Vec<u32>> = vec![Vec::new(); p];
        for (i, words) in owned_words.iter().enumerate() {
            for &w in words {
                let range = sampler.col_entry_range(w);
                word_delta_entries[i].extend(range.clone().map(|e| e as u32));
                for (e, &d) in range.zip(sampler.col_entry_rows(w)) {
                    if grid.doc_owner(d) as usize != i {
                        doc_sync_entries[i].push(e as u32);
                    }
                }
            }
        }

        let mut doc_delta_entries: Vec<Vec<u32>> = vec![Vec::new(); p];
        let mut word_sync_entries: Vec<Vec<u32>> = vec![Vec::new(); p];
        for (i, docs) in owned_docs.iter().enumerate() {
            for &d in docs {
                let entries = sampler.row_entry_ids(d);
                doc_delta_entries[i].extend_from_slice(entries);
                for (&e, &w) in entries.iter().zip(sampler.row_entry_cols(d)) {
                    if grid.word_owner(w) as usize != i {
                        word_sync_entries[i].push(e);
                    }
                }
            }
        }

        Self {
            workers: p,
            owned_words,
            owned_docs,
            word_delta_entries,
            doc_delta_entries,
            word_sync_entries,
            doc_sync_entries,
        }
    }

    /// Cluster size `P`.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warplda_core::{ModelParams, WarpLdaConfig};
    use warplda_corpus::{Corpus, DatasetPreset, DocMajorView, WordMajorView};
    use warplda_sparse::PartitionStrategy;

    fn build_all(corpus: &Corpus, workers: usize) -> (ShardedWarpLda, GridPartition, ShardPlan) {
        let dv = DocMajorView::build(corpus);
        let wv = WordMajorView::build(corpus, &dv);
        let grid = GridPartition::build_with(
            corpus,
            &dv,
            &wv,
            workers,
            PartitionStrategy::Greedy,
            PartitionStrategy::Dynamic,
        );
        let sampler = ShardedWarpLda::new(
            corpus,
            ModelParams::new(5, 0.5, 0.1),
            WarpLdaConfig::with_mh_steps(2),
            7,
        );
        let plan = ShardPlan::build(&sampler, &grid);
        (sampler, grid, plan)
    }

    #[test]
    fn delta_entries_partition_the_matrix_exactly_once() {
        let corpus = DatasetPreset::Tiny.generate_scaled(4);
        for workers in [1usize, 2, 3, 4] {
            let (sampler, _, plan) = build_all(&corpus, workers);
            for lists in [&plan.word_delta_entries, &plan.doc_delta_entries] {
                let mut seen = vec![false; sampler.num_entries()];
                for list in lists {
                    for &e in list {
                        assert!(!seen[e as usize], "entry {e} owned twice ({workers} workers)");
                        seen[e as usize] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "some entry unowned ({workers} workers)");
            }
        }
    }

    #[test]
    fn sync_entries_are_exactly_the_cross_owner_entries() {
        let corpus = DatasetPreset::Tiny.generate_scaled(4);
        let (sampler, grid, plan) = build_all(&corpus, 3);
        // Word→doc boundary: worker i receives exactly the entries of its
        // rows whose column it does not own; summed over workers that is the
        // grid's off-diagonal token count.
        let total: usize = plan.word_sync_entries.iter().map(|l| l.len()).sum();
        assert_eq!(total as u64, grid.tokens_exchanged_per_phase_switch());
        let total: usize = plan.doc_sync_entries.iter().map(|l| l.len()).sum();
        assert_eq!(total as u64, grid.tokens_exchanged_per_phase_switch());
        for (i, list) in plan.word_sync_entries.iter().enumerate() {
            for &e in list {
                assert!(plan.word_delta_entries[i].binary_search(&e).is_err());
            }
        }
        // One worker owns everything → nothing to sync.
        let (_, _, solo) = build_all(&corpus, 1);
        assert!(solo.word_sync_entries[0].is_empty());
        assert!(solo.doc_sync_entries[0].is_empty());
        let _ = sampler;
    }
}
