//! Length-prefixed binary framing shared by the serving and distributed
//! runtimes.
//!
//! Every message on a WarpLDA socket is one **frame**: a little-endian `u32`
//! payload length followed by the payload. This crate owns the three pieces
//! every protocol built on that framing needs, so the query server
//! (`warplda-serve`) and the multi-process training runtime (`warplda-dist`)
//! share one implementation instead of two drifting copies:
//!
//! * [`FrameBuffer`] — an incremental frame reader over a byte stream. A
//!   short or timed-out read never loses bytes; data accumulates until a
//!   frame is complete, which is what lets workers poll shutdown flags on
//!   read timeouts and batch already-buffered frames. The maximum frame size
//!   is enforced in **exactly one place** (the internal length peek consulted
//!   by [`has_complete_frame`](FrameBuffer::has_complete_frame),
//!   [`take_frame`](FrameBuffer::take_frame) and
//!   [`read_frame`](FrameBuffer::read_frame)), and is configurable per
//!   buffer: the query server keeps the conservative
//!   [`DEFAULT_MAX_FRAME_BYTES`], the distributed runtime raises it for
//!   corpus and record-delta frames.
//! * [`PayloadReader`] — a zero-copy bounds-checked cursor over one payload.
//! * [`connect_with_retry`] / [`connect_within`] — TCP connect with jittered
//!   exponential backoff, for clients and workers racing a listener that is
//!   still coming up. `connect_within` bounds the whole dance by a wall-clock
//!   deadline and surfaces exhaustion as a typed
//!   [`WireError::ConnectTimedOut`] instead of retrying forever.
//!
//! Encoding is in-place: [`begin_frame`]/[`end_frame`] reserve and patch the
//! length prefix so a frame is built directly in the output buffer, and
//! [`write_frame`] writes an already-encoded payload as one frame.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Default bound on a single frame's payload. Frames announcing more are
/// rejected before any allocation happens — a corrupt or hostile length
/// prefix must not OOM the receiver.
pub const DEFAULT_MAX_FRAME_BYTES: u32 = 16 << 20;

/// Errors of the framing layer.
#[derive(Debug)]
pub enum WireError {
    /// An underlying socket error.
    Io(std::io::Error),
    /// A frame announced a length above the receiver's configured bound.
    FrameTooLarge {
        /// The announced length.
        len: u32,
        /// The receiving buffer's configured bound.
        limit: u32,
    },
    /// The payload did not parse (truncated fields, unknown opcode, …).
    Malformed(&'static str),
    /// [`connect_within`] exhausted its overall deadline without reaching the
    /// peer (refused, unroutable or blackholed address).
    ConnectTimedOut {
        /// Wall time spent trying.
        elapsed: Duration,
        /// Connection attempts made.
        attempts: u32,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::FrameTooLarge { len, limit } => {
                write!(f, "frame of {len} bytes exceeds the {limit}-byte limit")
            }
            WireError::Malformed(what) => write!(f, "malformed message: {what}"),
            WireError::ConnectTimedOut { elapsed, attempts } => {
                write!(f, "connect timed out after {elapsed:?} ({attempts} attempts)")
            }
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Frame encoding
// ---------------------------------------------------------------------------

/// Reserves a length prefix in `out` and returns its position; pair with
/// [`end_frame`] once the payload has been appended.
pub fn begin_frame(out: &mut Vec<u8>) -> usize {
    let at = out.len();
    out.extend_from_slice(&[0u8; 4]);
    at
}

/// Patches the length prefix reserved by [`begin_frame`] at `at` to cover
/// everything appended since.
pub fn end_frame(out: &mut [u8], at: usize) {
    let len = (out.len() - at - 4) as u32;
    out[at..at + 4].copy_from_slice(&len.to_le_bytes());
}

/// Writes one complete frame (length prefix + `payload`) to `w`.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

// ---------------------------------------------------------------------------
// Incremental frame reading
// ---------------------------------------------------------------------------

/// An incremental frame reader over a byte stream.
///
/// Unlike `read_exact`, a short or timed-out read never loses bytes: data
/// accumulates in the internal buffer until a frame is complete. That is what
/// lets socket workers (a) poll their shutdown flag on read timeouts safely
/// and (b) batch — after serving one request, any *already buffered* frames
/// are served before the responses are flushed, so pipelined clients get one
/// write per batch instead of one per request.
#[derive(Debug)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    start: usize,
    end: usize,
    max_frame: u32,
}

impl FrameBuffer {
    /// A buffer starting at `capacity` bytes (it grows to the largest frame
    /// seen and is then reused without further allocation), enforcing the
    /// [`DEFAULT_MAX_FRAME_BYTES`] bound.
    pub fn new(capacity: usize) -> Self {
        Self::with_max_frame(capacity, DEFAULT_MAX_FRAME_BYTES)
    }

    /// A buffer with an explicit frame-size bound (the distributed runtime
    /// ships corpus shards and record deltas larger than the serving bound).
    pub fn with_max_frame(capacity: usize, max_frame: u32) -> Self {
        Self { buf: vec![0; capacity.max(4096)], start: 0, end: 0, max_frame }
    }

    /// The frame-size bound this buffer enforces.
    pub fn max_frame_bytes(&self) -> u32 {
        self.max_frame
    }

    /// Discards all buffered bytes (a worker reuses one buffer across
    /// connections; a dead connection's tail must not leak into the next).
    pub fn reset(&mut self) {
        self.start = 0;
        self.end = 0;
    }

    /// **The** single point where the frame-size bound is enforced: peeks the
    /// next frame's announced payload length, if a length prefix is buffered.
    /// Every read path (`has_complete_frame`, `take_frame`, `read_frame`)
    /// funnels through here, so the bound cannot drift between them.
    fn peek_len(&self) -> Result<Option<usize>, WireError> {
        if self.end - self.start < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[self.start..self.start + 4].try_into().unwrap());
        if len > self.max_frame {
            return Err(WireError::FrameTooLarge { len, limit: self.max_frame });
        }
        Ok(Some(len as usize))
    }

    /// Returns `true` when calling [`take_frame`](Self::take_frame) would
    /// make progress without touching the socket: either a complete frame is
    /// already buffered (the batching predicate) or the buffered length
    /// prefix is oversized and the typed error is ready to surface.
    pub fn has_complete_frame(&self) -> bool {
        match self.peek_len() {
            Err(_) => true,
            Ok(Some(len)) => self.end - self.start >= 4 + len,
            Ok(None) => false,
        }
    }

    /// Takes the next complete frame, if one is buffered, returning the
    /// payload range (read it with [`payload`](Self::payload)). Rejects
    /// oversized length prefixes before buffering their payload.
    pub fn take_frame(&mut self) -> Result<Option<std::ops::Range<usize>>, WireError> {
        let Some(len) = self.peek_len()? else { return Ok(None) };
        if self.end - self.start < 4 + len {
            return Ok(None);
        }
        let range = self.start + 4..self.start + 4 + len;
        self.start = range.end;
        Ok(Some(range))
    }

    /// The bytes of a range returned by [`take_frame`](Self::take_frame).
    /// Only valid until the next [`fill_from`](Self::fill_from).
    pub fn payload(&self, range: std::ops::Range<usize>) -> &[u8] {
        &self.buf[range]
    }

    /// Reads once from `r` into the buffer (compacting/growing first if
    /// needed). Returns the number of bytes read — `0` means clean EOF.
    /// `WouldBlock`/`TimedOut` errors pass through for the caller to treat
    /// as "no data yet".
    pub fn fill_from(&mut self, r: &mut impl Read) -> std::io::Result<usize> {
        if self.start == self.end {
            self.start = 0;
            self.end = 0;
        }
        if self.end == self.buf.len() {
            if self.start > 0 {
                self.buf.copy_within(self.start..self.end, 0);
                self.end -= self.start;
                self.start = 0;
            } else {
                let new_len = self.buf.len() * 2;
                self.buf.resize(new_len, 0);
            }
        }
        let n = r.read(&mut self.buf[self.end..])?;
        self.end += n;
        Ok(n)
    }

    /// Blocking receive: fills from `r` until one complete frame is buffered
    /// and returns its payload range. Returns `Ok(None)` on a clean EOF at a
    /// frame boundary; an EOF *inside* a frame is a typed
    /// [`WireError::Malformed`]. A read timeout configured on `r` passes
    /// through as [`WireError::Io`], which is what bounds every receive in
    /// the distributed coordinator — a dead peer surfaces as a typed error,
    /// never a hang.
    pub fn read_frame(
        &mut self,
        r: &mut impl Read,
    ) -> Result<Option<std::ops::Range<usize>>, WireError> {
        loop {
            if let Some(range) = self.take_frame()? {
                return Ok(Some(range));
            }
            let n = self.fill_from(r)?;
            if n == 0 {
                return if self.start == self.end {
                    Ok(None)
                } else {
                    Err(WireError::Malformed("connection closed mid-frame"))
                };
            }
        }
    }

    /// Bounded receive: waits at most `wait` for bytes on `stream` and
    /// reports what happened instead of treating a quiet peer as an error.
    /// This is the supervisor-side primitive — a liveness loop polls each
    /// worker with a short wait, interleaving heartbeat bookkeeping and
    /// child-exit checks between [`PollFrame::Idle`] returns.
    ///
    /// Sets the stream's read timeout to `wait` as a side effect.
    pub fn poll_frame(
        &mut self,
        stream: &mut TcpStream,
        wait: Duration,
    ) -> Result<PollFrame, WireError> {
        if let Some(range) = self.take_frame()? {
            return Ok(PollFrame::Frame(range));
        }
        stream.set_read_timeout(Some(wait.max(Duration::from_millis(1))))?;
        loop {
            match self.fill_from(stream) {
                Ok(0) => {
                    return if self.start == self.end {
                        Ok(PollFrame::Eof)
                    } else {
                        Err(WireError::Malformed("connection closed mid-frame"))
                    };
                }
                Ok(_) => {
                    if let Some(range) = self.take_frame()? {
                        return Ok(PollFrame::Frame(range));
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(PollFrame::Idle);
                }
                Err(e) => return Err(WireError::Io(e)),
            }
        }
    }
}

/// Outcome of one [`FrameBuffer::poll_frame`] call.
#[derive(Debug)]
pub enum PollFrame {
    /// A complete frame is buffered; the range indexes into the buffer.
    Frame(std::ops::Range<usize>),
    /// No complete frame arrived within the wait budget; the peer is quiet
    /// but the connection is intact.
    Idle,
    /// The peer closed the connection at a frame boundary.
    Eof,
}

// ---------------------------------------------------------------------------
// Payload decoding
// ---------------------------------------------------------------------------

/// A zero-copy bounds-checked cursor over one payload.
pub struct PayloadReader<'a> {
    bytes: &'a [u8],
}

impl<'a> PayloadReader<'a> {
    /// Wraps a payload slice.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes }
    }

    /// Takes the next `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.bytes.len() < n {
            return Err(WireError::Malformed("truncated payload"));
        }
        let (head, rest) = self.bytes.split_at(n);
        self.bytes = rest;
        Ok(head)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u32`-length-prefixed UTF-8 string field.
    pub fn str_field(&mut self) -> Result<&'a str, WireError> {
        let len = self.u32()? as usize;
        std::str::from_utf8(self.bytes(len)?).map_err(|_| WireError::Malformed("invalid UTF-8"))
    }

    /// Asserts the payload was consumed exactly.
    pub fn finish(self) -> Result<(), WireError> {
        if self.bytes.is_empty() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after payload"))
        }
    }
}

// ---------------------------------------------------------------------------
// Connection helpers
// ---------------------------------------------------------------------------

/// A tiny xorshift stream for backoff jitter. Seeded per call from the
/// process id and a monotonic counter so concurrent workers desynchronise
/// their retry storms without the crate growing an RNG dependency.
struct JitterRng(u64);

impl JitterRng {
    fn new() -> Self {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let salt = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let seed = (u64::from(std::process::id()) << 32) ^ salt ^ 0x9e37_79b9_7f4a_7c15;
        Self(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// A duration uniform in `[base/2, base]` — "equal jitter" backoff.
    fn jittered(&mut self, base: Duration) -> Duration {
        let nanos = base.as_nanos().min(u128::from(u64::MAX)) as u64;
        let half = nanos / 2;
        Duration::from_nanos(half + self.next() % (half + 1))
    }
}

/// Connects to `addr`, retrying with bounded jittered exponential backoff:
/// `attempts` tries, sleeping roughly `initial_backoff` after the first
/// failure and doubling up to `max_backoff` between the rest (each sleep is
/// jittered to `[base/2, base]` so a fleet of workers does not retry in
/// lock-step). Returns the last connect error if every attempt fails. Used
/// by clients of a server that is still coming up; workers racing the
/// coordinator's listener use the deadline-bounded [`connect_within`].
pub fn connect_with_retry<A: ToSocketAddrs>(
    addr: A,
    attempts: u32,
    initial_backoff: Duration,
    max_backoff: Duration,
) -> std::io::Result<TcpStream> {
    assert!(attempts >= 1, "need at least one connect attempt");
    let mut rng = JitterRng::new();
    let mut backoff = initial_backoff;
    let mut last_err = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(rng.jittered(backoff));
            backoff = (backoff * 2).min(max_backoff);
        }
        match TcpStream::connect(&addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.expect("at least one attempt was made"))
}

/// Connects to `addr`, retrying with jittered exponential backoff until an
/// overall wall-clock `deadline` elapses, then returns a typed
/// [`WireError::ConnectTimedOut`] instead of retrying forever against a
/// refused or blackholed address. Each individual attempt is bounded by the
/// remaining budget via `TcpStream::connect_timeout`, so a peer that accepts
/// the SYN and then stalls cannot pin the caller past the deadline either.
pub fn connect_within<A: ToSocketAddrs>(
    addr: A,
    deadline: Duration,
    initial_backoff: Duration,
    max_backoff: Duration,
) -> Result<TcpStream, WireError> {
    let start = Instant::now();
    let mut rng = JitterRng::new();
    let mut backoff = initial_backoff;
    let mut attempts = 0u32;
    loop {
        let addrs: Vec<_> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(WireError::Malformed("address resolved to nothing"));
        }
        for sockaddr in &addrs {
            let remaining = deadline.saturating_sub(start.elapsed());
            if remaining.is_zero() {
                return Err(WireError::ConnectTimedOut { elapsed: start.elapsed(), attempts });
            }
            attempts += 1;
            if let Ok(stream) = TcpStream::connect_timeout(sockaddr, remaining) {
                return Ok(stream);
            }
        }
        let remaining = deadline.saturating_sub(start.elapsed());
        if remaining.is_zero() {
            return Err(WireError::ConnectTimedOut { elapsed: start.elapsed(), attempts });
        }
        std::thread::sleep(rng.jittered(backoff).min(remaining));
        backoff = (backoff * 2).min(max_backoff);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, payload).unwrap();
        out
    }

    #[test]
    fn frame_buffer_reassembles_split_and_batched_frames() {
        // Three frames, delivered in adversarial chunk sizes.
        let mut stream = Vec::new();
        for payload in [&b"alpha"[..], b"beta", b"gamma"] {
            stream.extend_from_slice(&frame(payload));
        }
        for chunk_size in [1usize, 3, 7, stream.len()] {
            let mut fb = FrameBuffer::new(8);
            let mut seen = Vec::new();
            let mut cursor = 0;
            while cursor < stream.len() || fb.has_complete_frame() {
                while let Some(range) = fb.take_frame().unwrap() {
                    seen.push(fb.payload(range).to_vec());
                }
                if cursor < stream.len() {
                    let end = (cursor + chunk_size).min(stream.len());
                    let mut src = &stream[cursor..end];
                    let n = fb.fill_from(&mut src).unwrap();
                    cursor += n;
                }
            }
            assert_eq!(seen, vec![b"alpha".to_vec(), b"beta".to_vec(), b"gamma".to_vec()]);
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_buffering_it() {
        // Regression: the bound is enforced at the length peek, before any
        // payload is read, and `has_complete_frame` reports the poisoned
        // stream as actionable instead of waiting for unreachable bytes.
        let mut fb = FrameBuffer::new(16);
        let huge = (DEFAULT_MAX_FRAME_BYTES + 1).to_le_bytes();
        let mut src = &huge[..];
        fb.fill_from(&mut src).unwrap();
        assert!(fb.has_complete_frame(), "oversized prefix must be surfaced, not waited on");
        match fb.take_frame() {
            Err(WireError::FrameTooLarge { len, limit }) => {
                assert_eq!(len, DEFAULT_MAX_FRAME_BYTES + 1);
                assert_eq!(limit, DEFAULT_MAX_FRAME_BYTES);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn custom_bound_is_enforced_and_permits_larger_frames() {
        let payload = vec![7u8; (DEFAULT_MAX_FRAME_BYTES as usize) + 8];
        let stream = frame(&payload);
        // The default bound rejects it...
        let mut fb = FrameBuffer::new(64);
        let mut src = &stream[..];
        fb.fill_from(&mut src).unwrap();
        assert!(matches!(fb.take_frame(), Err(WireError::FrameTooLarge { .. })));
        // ...a raised bound accepts the same bytes.
        let mut fb = FrameBuffer::with_max_frame(64, DEFAULT_MAX_FRAME_BYTES * 2);
        let mut src = &stream[..];
        let range = fb.read_frame(&mut src).unwrap().expect("one frame");
        assert_eq!(fb.payload(range).len(), payload.len());
    }

    #[test]
    fn read_frame_distinguishes_clean_eof_from_truncation() {
        // Clean EOF at a frame boundary: one frame, then None.
        let stream = frame(b"only");
        let mut fb = FrameBuffer::new(8);
        let mut src = &stream[..];
        let range = fb.read_frame(&mut src).unwrap().expect("one frame");
        assert_eq!(fb.payload(range), b"only");
        assert!(fb.read_frame(&mut src).unwrap().is_none());

        // EOF inside a frame: a typed error, not silence.
        let truncated = &stream[..stream.len() - 2];
        let mut fb = FrameBuffer::new(8);
        let mut src = truncated;
        match fb.read_frame(&mut src) {
            Err(WireError::Malformed(msg)) => assert!(msg.contains("mid-frame"), "{msg}"),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn payload_reader_round_trips_and_bounds_checks() {
        let mut out = Vec::new();
        out.push(9u8);
        out.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        out.extend_from_slice(&u64::MAX.to_le_bytes());
        out.extend_from_slice(&0.25f64.to_bits().to_le_bytes());
        out.extend_from_slice(&(2u32).to_le_bytes());
        out.extend_from_slice(b"ok");
        let mut r = PayloadReader::new(&out);
        assert_eq!(r.u8().unwrap(), 9);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.f64().unwrap(), 0.25);
        assert_eq!(r.str_field().unwrap(), "ok");
        r.finish().unwrap();

        let mut r = PayloadReader::new(&[1, 2]);
        assert!(matches!(r.u32(), Err(WireError::Malformed(_))));
        let r = PayloadReader::new(&[1]);
        assert!(matches!(r.finish(), Err(WireError::Malformed(_))));
    }

    #[test]
    fn connect_with_retry_reaches_a_late_listener_and_gives_up_cleanly() {
        use std::net::TcpListener;
        // A port with no listener: bounded attempts fail with the last error.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
            // listener dropped here
        };
        let start = std::time::Instant::now();
        assert!(connect_with_retry(dead, 3, Duration::from_millis(5), Duration::from_millis(10))
            .is_err());
        assert!(start.elapsed() < Duration::from_secs(5), "backoff must be bounded");

        // A listener that comes up after the first attempt is reached.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = l.local_addr().unwrap();
            drop(l);
            addr
        };
        let accept = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            let l = TcpListener::bind(addr).unwrap();
            let _ = l.accept();
        });
        let stream =
            connect_with_retry(addr, 10, Duration::from_millis(10), Duration::from_millis(40));
        accept.join().unwrap();
        assert!(stream.is_ok(), "late listener should be reached: {stream:?}");
    }

    #[test]
    fn connect_within_times_out_with_a_typed_error() {
        use std::net::TcpListener;
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let start = std::time::Instant::now();
        let err = connect_within(
            dead,
            Duration::from_millis(120),
            Duration::from_millis(5),
            Duration::from_millis(20),
        )
        .unwrap_err();
        match err {
            WireError::ConnectTimedOut { elapsed, attempts } => {
                assert!(attempts >= 1);
                assert!(elapsed >= Duration::from_millis(100), "deadline honoured: {elapsed:?}");
            }
            other => panic!("expected ConnectTimedOut, got {other:?}"),
        }
        assert!(start.elapsed() < Duration::from_secs(5), "deadline must bound the retry loop");
    }

    #[test]
    fn connect_within_reaches_a_late_listener() {
        use std::net::TcpListener;
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = l.local_addr().unwrap();
            drop(l);
            addr
        };
        let accept = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            let l = TcpListener::bind(addr).unwrap();
            let _ = l.accept();
        });
        let stream = connect_within(
            addr,
            Duration::from_secs(5),
            Duration::from_millis(5),
            Duration::from_millis(20),
        );
        accept.join().unwrap();
        assert!(stream.is_ok(), "late listener should be reached: {stream:?}");
    }

    #[test]
    fn poll_frame_distinguishes_idle_frames_and_eof() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        let mut server = server_side;

        let mut fb = FrameBuffer::new(64);
        // Quiet peer → Idle, quickly.
        let start = std::time::Instant::now();
        match fb.poll_frame(&mut client, Duration::from_millis(20)).unwrap() {
            PollFrame::Idle => {}
            other => panic!("expected Idle, got {other:?}"),
        }
        assert!(start.elapsed() < Duration::from_secs(2));

        // A frame shows up → Frame with the right payload.
        write_frame(&mut server, b"pulse").unwrap();
        match fb.poll_frame(&mut client, Duration::from_millis(500)).unwrap() {
            PollFrame::Frame(range) => assert_eq!(fb.payload(range), b"pulse"),
            other => panic!("expected Frame, got {other:?}"),
        }

        // Peer closes at a frame boundary → Eof.
        drop(server);
        match fb.poll_frame(&mut client, Duration::from_millis(500)).unwrap() {
            PollFrame::Eof => {}
            other => panic!("expected Eof, got {other:?}"),
        }
    }
}
