//! WarpLDA (Section 4 of the paper): an O(1)-per-token MCEM sampler whose
//! randomly accessed memory per document/word is a single O(K) vector.
//!
//! The sampler is built directly on the [`warplda_sparse::TokenMatrix`]
//! framework of Section 5: the only persistent per-token state is the entry
//! data (the current topic assignment) plus `M` topic proposals per token kept
//! in a flat side array indexed by entry id. Neither `Cd` nor `Cw` is ever
//! materialized — each row/column count vector is recomputed on the fly while
//! its document/word is being visited and discarded afterwards (Section 4.4,
//! M-step).
//!
//! One iteration is two passes (Algorithm 2):
//!
//! 1. **Word phase** (`VisitByColumn`): for each word, compute `c_w`, run the
//!    MH chains that consume the *document* proposals drawn in the previous
//!    doc phase (their acceptance rate only needs `c_w` and `c_k`), then draw
//!    fresh *word* proposals `q_word(k) ∝ C_wk + β` from an alias table over
//!    the updated `c_w`.
//! 2. **Document phase** (`VisitByRow`): for each document, compute `c_d`, run
//!    the MH chains that consume the word proposals (acceptance needs only
//!    `c_d` and `c_k`), then draw fresh document proposals
//!    `q_doc(k) ∝ C_dk + α` by random positioning.
//!
//! The global vector `c_k` is re-accumulated during each phase and swapped in
//! at the phase boundary (delayed update), which is what makes the reordering
//! legal.

pub mod parallel;

use rand::rngs::SmallRng;
use rand::Rng;

use warplda_cachesim::{MemoryProbe, NoProbe, RegionId};
use warplda_corpus::{Corpus, DocMajorView};
use warplda_sampling::{new_rng, Dice, SparseAliasTable};
use warplda_sparse::TokenMatrix;

use crate::checkpoint::{self, Checkpointable};
use crate::counts::{CountVector, TopicCounts};
use crate::params::ModelParams;
use crate::sampler::Sampler;
use warplda_corpus::io::codec::{CodecError, CodecResult, Decoder, Encoder};

/// Tuning knobs of WarpLDA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarpLdaConfig {
    /// Number of MH proposals kept per token (`M` in the paper; Figures 5–8
    /// use 1–16, with 1, 2 or 4 recommended).
    pub mh_steps: usize,
    /// Use the open-addressing hash tables of Section 5.4 for the per-row /
    /// per-column count vectors when they are expected to be sparse; when
    /// `false` a dense reusable vector is always used (ablation knob).
    pub use_hash_counts: bool,
}

impl Default for WarpLdaConfig {
    fn default() -> Self {
        Self { mh_steps: 2, use_hash_counts: true }
    }
}

impl WarpLdaConfig {
    /// Configuration with a specific number of MH steps.
    pub fn with_mh_steps(mh_steps: usize) -> Self {
        assert!(mh_steps >= 1, "need at least one MH proposal per token");
        Self { mh_steps, ..Self::default() }
    }
}

/// The WarpLDA sampler, generic over an optional memory probe.
pub struct WarpLda<P: MemoryProbe = NoProbe> {
    params: ModelParams,
    config: WarpLdaConfig,
    /// D × V matrix; entry data = current topic assignment of that token.
    matrix: TokenMatrix<u32>,
    /// `M` proposals per entry, `proposals[entry * M + i]`.
    proposals: Vec<u32>,
    /// Global topic counts used (read-only) during the current phase.
    topic_counts: Vec<u32>,
    /// Global topic counts being accumulated for the next phase.
    next_topic_counts: Vec<u32>,
    /// Entry id of each doc-major token index (for exporting assignments).
    entry_of_token: Vec<u32>,
    rng: SmallRng,
    iterations: u64,
    beta_bar: f64,
    vocab_size: usize,
    probe: P,
    region_cd: RegionId,
    region_cw: RegionId,
    region_ck: RegionId,
}

impl WarpLda<NoProbe> {
    /// Creates an uninstrumented WarpLDA sampler with random initial topics.
    pub fn new(corpus: &Corpus, params: ModelParams, config: WarpLdaConfig, seed: u64) -> Self {
        Self::with_probe(corpus, params, config, seed, NoProbe)
    }
}

impl<P: MemoryProbe> WarpLda<P> {
    /// Creates a sampler whose count-vector accesses are reported to `probe`.
    ///
    /// Only the count structures are probed (`c_d`, `c_w`, `c_k`): the token
    /// and proposal arrays are scanned strictly sequentially by construction
    /// and are therefore irrelevant to the random-access analysis of
    /// Sections 3 and 6 (Table 2 lists no sequential-access term for WarpLDA).
    pub fn with_probe(
        corpus: &Corpus,
        params: ModelParams,
        config: WarpLdaConfig,
        seed: u64,
        mut probe: P,
    ) -> Self {
        assert!(config.mh_steps >= 1, "need at least one MH proposal per token");
        let doc_view = DocMajorView::build(corpus);
        let num_docs = corpus.num_docs();
        let vocab_size = corpus.vocab_size();
        let k = params.num_topics;

        // Build the token matrix: one entry per token, in doc-major order so
        // the row slices keep the original token order.
        let mut entries = Vec::with_capacity(doc_view.num_tokens());
        for d in 0..num_docs {
            for i in doc_view.doc_range(d as u32) {
                entries.push((d as u32, doc_view.word_of(i)));
            }
        }
        let mut matrix: TokenMatrix<u32> =
            TokenMatrix::from_entries(num_docs, vocab_size, &entries);

        // Map each doc-major token index to its entry id.
        let mut entry_of_token = vec![0u32; doc_view.num_tokens()];
        {
            let mut cursor = 0usize;
            for d in 0..num_docs {
                for &e in matrix.row_entry_ids(d as u32) {
                    entry_of_token[cursor] = e;
                    cursor += 1;
                }
            }
        }

        // Random initial topics + proposals.
        let mut rng = new_rng(seed);
        let mut topic_counts = vec![0u32; k];
        for z in matrix.data_mut() {
            let t = rng.dice(k) as u32;
            *z = t;
            topic_counts[t as usize] += 1;
        }
        let proposals: Vec<u32> =
            (0..doc_view.num_tokens() * config.mh_steps).map(|_| rng.dice(k) as u32).collect();

        let region_cd = probe.register_region("cd vector", k, 4);
        let region_cw = probe.register_region("cw vector", k, 4);
        let region_ck = probe.register_region("ck vector", k, 4);

        Self {
            params,
            config,
            matrix,
            proposals,
            topic_counts,
            next_topic_counts: vec![0u32; k],
            entry_of_token,
            rng,
            iterations: 0,
            beta_bar: params.beta_bar(vocab_size),
            vocab_size,
            probe,
            region_cd,
            region_cw,
            region_ck,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &WarpLdaConfig {
        &self.config
    }

    /// The memory probe (e.g. to read cache statistics after a run).
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// The global topic counts as of the last completed phase.
    pub fn topic_counts(&self) -> &[u32] {
        &self.topic_counts
    }

    /// Access to the underlying token matrix (read-only).
    pub fn matrix(&self) -> &TokenMatrix<u32> {
        &self.matrix
    }

    /// Swaps in the freshly accumulated `c_k` at a phase boundary.
    fn swap_topic_counts(&mut self) {
        std::mem::swap(&mut self.topic_counts, &mut self.next_topic_counts);
        self.next_topic_counts.fill(0);
    }

    /// The **word phase**: `VisitByColumn`, consuming doc proposals and
    /// producing word proposals.
    fn word_phase(&mut self) {
        let k = self.params.num_topics;
        let m = self.config.mh_steps;
        let beta = self.params.beta;
        let beta_bar = self.beta_bar;
        let use_hash = self.config.use_hash_counts;

        let Self { matrix, proposals, topic_counts, next_topic_counts, rng, probe, .. } = self;
        let region_cw = self.region_cw;
        let region_ck = self.region_ck;

        matrix.visit_by_column(|_w, mut col| {
            let len = col.len();
            if len == 0 {
                return;
            }
            probe.begin_scope();
            // c_w on the fly.
            let mut cw = if use_hash {
                CountVector::auto(len, k)
            } else {
                CountVector::Dense(crate::counts::DenseCounts::new(k))
            };
            for n in 0..len {
                let t = *col.get(n);
                cw.increment(t);
                probe.write(region_cw, t as usize);
            }

            // Simulate the q_doc chains with the proposals drawn last doc phase.
            for n in 0..len {
                let entry = col.entry_id(n) as usize;
                let mut z = *col.get(n);
                for i in 0..m {
                    let t = proposals[entry * m + i];
                    if t != z {
                        probe.read(region_cw, t as usize);
                        probe.read(region_cw, z as usize);
                        probe.read(region_ck, t as usize);
                        probe.read(region_ck, z as usize);
                        let ratio = (cw.get(t) as f64 + beta) / (cw.get(z) as f64 + beta)
                            * (topic_counts[z as usize] as f64 + beta_bar)
                            / (topic_counts[t as usize] as f64 + beta_bar);
                        if ratio >= 1.0 || rng.gen::<f64>() < ratio {
                            z = t;
                        }
                    }
                }
                *col.get_mut(n) = z;
            }

            // Recompute c_w from the updated assignments (Algorithm 2 "Update Cwk"),
            // accumulate it into the next c_k, and build the alias table of
            // q_word(k) ∝ C_wk + β.
            cw.clear();
            for n in 0..len {
                let t = *col.get(n);
                cw.increment(t);
                probe.write(region_cw, t as usize);
                next_topic_counts[t as usize] += 1;
            }
            let pairs = cw.to_pairs();
            let alias = SparseAliasTable::new(
                &pairs.iter().map(|&(t, c)| (t, c as f64)).collect::<Vec<_>>(),
            );
            // Mixture weights of q_word: counts part (mass L_w) vs smoothing
            // part (mass K·β).
            let count_mass = len as f64;
            let smooth_mass = k as f64 * beta;
            let p_count = count_mass / (count_mass + smooth_mass);

            for n in 0..len {
                let entry = col.entry_id(n) as usize;
                for i in 0..m {
                    let t = if rng.gen::<f64>() < p_count {
                        alias.sample(rng)
                    } else {
                        rng.dice(k) as u32
                    };
                    proposals[entry * m + i] = t;
                }
            }
            probe.end_scope();
        });

        self.swap_topic_counts();
    }

    /// The **document phase**: `VisitByRow`, consuming word proposals and
    /// producing doc proposals.
    fn doc_phase(&mut self) {
        let k = self.params.num_topics;
        let m = self.config.mh_steps;
        let alpha = self.params.alpha;
        let alpha_bar = self.params.alpha_bar();
        let beta_bar = self.beta_bar;
        let use_hash = self.config.use_hash_counts;

        let Self { matrix, proposals, topic_counts, next_topic_counts, rng, probe, .. } = self;
        let region_cd = self.region_cd;
        let region_ck = self.region_ck;

        matrix.visit_by_row(|_d, mut row| {
            let len = row.len();
            if len == 0 {
                return;
            }
            probe.begin_scope();
            // c_d on the fly.
            let mut cd = if use_hash {
                CountVector::auto(len, k)
            } else {
                CountVector::Dense(crate::counts::DenseCounts::new(k))
            };
            for n in 0..len {
                let t = *row.get(n);
                cd.increment(t);
                probe.write(region_cd, t as usize);
            }

            // Simulate the q_word chains with the proposals drawn last word phase.
            for n in 0..len {
                let entry = row.entry_id(n) as usize;
                let mut z = *row.get(n);
                for i in 0..m {
                    let t = proposals[entry * m + i];
                    if t != z {
                        probe.read(region_cd, t as usize);
                        probe.read(region_cd, z as usize);
                        probe.read(region_ck, t as usize);
                        probe.read(region_ck, z as usize);
                        let ratio = (cd.get(t) as f64 + alpha) / (cd.get(z) as f64 + alpha)
                            * (topic_counts[z as usize] as f64 + beta_bar)
                            / (topic_counts[t as usize] as f64 + beta_bar);
                        if ratio >= 1.0 || rng.gen::<f64>() < ratio {
                            z = t;
                        }
                    }
                }
                if z != *row.get(n) {
                    // Keep c_d in sync so the upcoming random positioning reflects
                    // the updated assignments of this document.
                    cd.decrement(*row.get(n));
                    cd.increment(z);
                }
                *row.get_mut(n) = z;
            }

            // Accumulate the updated c_d into the next c_k.
            cd.for_each(|t, c| next_topic_counts[t as usize] += c);

            // Draw the doc proposals q_doc(k) ∝ C_dk + α by random positioning:
            // with probability L_d/(L_d + ᾱ) reuse the topic of a uniformly
            // chosen token of this document, otherwise a uniform topic.
            let p_count = len as f64 / (len as f64 + alpha_bar);
            for n in 0..len {
                let entry = row.entry_id(n) as usize;
                for i in 0..m {
                    let t = if rng.gen::<f64>() < p_count {
                        let pos = rng.dice(len);
                        *row.get(pos)
                    } else {
                        rng.dice(k) as u32
                    };
                    proposals[entry * m + i] = t;
                }
            }
            probe.end_scope();
        });

        self.swap_topic_counts();
    }
}

impl<P: MemoryProbe> Sampler for WarpLda<P> {
    fn name(&self) -> &'static str {
        "WarpLDA"
    }

    fn params(&self) -> &ModelParams {
        &self.params
    }

    fn run_iteration(&mut self) {
        // Algorithm 2: word phase first, then document phase.
        self.word_phase();
        self.doc_phase();
        self.iterations += 1;
    }

    fn iterations(&self) -> u64 {
        self.iterations
    }

    fn assignments(&self) -> Vec<u32> {
        let data = self.matrix.data();
        self.entry_of_token.iter().map(|&e| data[e as usize]).collect()
    }
}

impl<P: MemoryProbe> Checkpointable for WarpLda<P> {
    fn checkpoint_kind(&self) -> &'static str {
        "warplda"
    }

    fn write_state(&self, enc: &mut Encoder<'_>) -> CodecResult<()> {
        enc.write_u64(self.iterations)?;
        checkpoint::write_rng(enc, &self.rng)?;
        enc.write_usize(self.config.mh_steps)?;
        enc.write_bool(self.config.use_hash_counts)?;
        enc.write_u32_slice(self.matrix.data())?;
        enc.write_u32_slice(&self.proposals)?;
        enc.write_u32_slice(&self.topic_counts)
    }

    fn read_state(&mut self, dec: &mut Decoder<'_>) -> CodecResult<()> {
        let k = self.params.num_topics;
        let entries = self.matrix.num_entries();
        let iterations = dec.read_u64()?;
        let rng = checkpoint::read_rng(dec)?;
        let mh_steps = dec.read_usize()?;
        let use_hash = dec.read_bool()?;
        if mh_steps != self.config.mh_steps || use_hash != self.config.use_hash_counts {
            return Err(CodecError::Corrupt(format!(
                "checkpoint config (M = {mh_steps}, hash counts = {use_hash}) does not match \
                 the sampler (M = {}, hash counts = {})",
                self.config.mh_steps, self.config.use_hash_counts,
            )));
        }
        let data = dec.read_u32_vec()?;
        checkpoint::validate_assignments(&data, entries, k)?;
        let proposals = dec.read_u32_vec()?;
        checkpoint::validate_assignments(&proposals, entries * mh_steps, k)?;
        let topic_counts = dec.read_u32_vec()?;
        // The delayed-update invariant between iterations: c_k is exactly the
        // topic histogram of the assignments.
        let mut hist = vec![0u32; k];
        for &t in &data {
            hist[t as usize] += 1;
        }
        if topic_counts != hist {
            return Err(CodecError::Corrupt(
                "topic counts do not match the assignment histogram".to_string(),
            ));
        }
        self.matrix.data_mut().copy_from_slice(&data);
        self.proposals = proposals;
        self.topic_counts = topic_counts;
        self.next_topic_counts.fill(0);
        self.rng = rng;
        self.iterations = iterations;
        Ok(())
    }
}

/// Sanity helper shared by the serial and parallel test suites: recomputes the
/// global topic histogram straight from the matrix.
#[cfg(test)]
pub(crate) fn topic_histogram(matrix: &TokenMatrix<u32>, k: usize) -> Vec<u32> {
    let mut hist = vec![0u32; k];
    for &t in matrix.data() {
        hist[t as usize] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cgs::CollapsedGibbs;
    use crate::eval::log_joint_likelihood;
    use warplda_cachesim::{CacheProbe, HierarchyConfig};
    use warplda_corpus::{CorpusBuilder, DatasetPreset, WordMajorView};

    fn themed_corpus() -> Corpus {
        let mut b = CorpusBuilder::new();
        for _ in 0..30 {
            b.push_text_doc(["river", "lake", "water", "fish", "river", "boat"]);
            b.push_text_doc(["desert", "sand", "dune", "cactus", "desert", "heat"]);
        }
        b.build().unwrap()
    }

    fn ll_of<S: Sampler>(s: &S, corpus: &Corpus) -> f64 {
        let dv = DocMajorView::build(corpus);
        let wv = WordMajorView::build(corpus, &dv);
        log_joint_likelihood(corpus, &dv, &wv, s.params(), &s.assignments())
    }

    #[test]
    fn topic_counts_stay_consistent_with_assignments() {
        let corpus = themed_corpus();
        let params = ModelParams::new(5, 0.3, 0.05);
        let mut s = WarpLda::new(&corpus, params, WarpLdaConfig::with_mh_steps(2), 3);
        for _ in 0..4 {
            s.run_iteration();
            let hist = topic_histogram(s.matrix(), 5);
            assert_eq!(s.topic_counts(), &hist[..], "ck must equal the topic histogram");
            let total: u32 = hist.iter().sum();
            assert_eq!(total as u64, corpus.num_tokens());
        }
    }

    #[test]
    fn assignments_cover_every_token_and_valid_topics() {
        let corpus = themed_corpus();
        let params = ModelParams::new(7, 0.3, 0.05);
        let mut s = WarpLda::new(&corpus, params, WarpLdaConfig::default(), 5);
        s.run_iteration();
        let z = s.assignments();
        assert_eq!(z.len() as u64, corpus.num_tokens());
        assert!(z.iter().all(|&t| t < 7));
    }

    #[test]
    fn likelihood_improves_and_approaches_cgs() {
        let corpus = themed_corpus();
        let params = ModelParams::new(2, 0.5, 0.1);
        let mut warp = WarpLda::new(&corpus, params, WarpLdaConfig::with_mh_steps(4), 7);
        let mut cgs = CollapsedGibbs::new(&corpus, params, 7);
        let ll0 = ll_of(&warp, &corpus);
        for _ in 0..50 {
            warp.run_iteration();
            cgs.run_iteration();
        }
        let ll_w = ll_of(&warp, &corpus);
        let ll_c = ll_of(&cgs, &corpus);
        assert!(ll_w > ll0, "likelihood should improve: {ll0} -> {ll_w}");
        assert!(
            (ll_w - ll_c).abs() < 0.06 * ll_c.abs(),
            "WarpLDA {ll_w} should approach CGS {ll_c} (Section 6.3 claim)"
        );
    }

    #[test]
    fn separates_planted_topics() {
        let corpus = themed_corpus();
        let params = ModelParams::new(2, 0.5, 0.1);
        let mut s = WarpLda::new(&corpus, params, WarpLdaConfig::with_mh_steps(4), 11);
        for _ in 0..60 {
            s.run_iteration();
        }
        let z = s.assignments();
        let dv = DocMajorView::build(&corpus);
        // Majority topic of the "river" documents vs the "desert" documents.
        let mut votes = [[0u32; 2]; 2];
        for d in 0..corpus.num_docs() {
            let theme = d % 2;
            for i in dv.doc_range(d as u32) {
                votes[theme][z[i] as usize] += 1;
            }
        }
        let river_topic = if votes[0][0] > votes[0][1] { 0 } else { 1 };
        let desert_topic = if votes[1][0] > votes[1][1] { 0 } else { 1 };
        assert_ne!(river_topic, desert_topic, "themes should map to different topics: {votes:?}");
        // Majorities should be strong.
        assert!(votes[0][river_topic] * 10 > (votes[0][0] + votes[0][1]) * 7);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let corpus = DatasetPreset::Tiny.generate_scaled(10);
        let params = ModelParams::new(5, 0.5, 0.1);
        let mut a = WarpLda::new(&corpus, params, WarpLdaConfig::default(), 42);
        let mut b = WarpLda::new(&corpus, params, WarpLdaConfig::default(), 42);
        for _ in 0..2 {
            a.run_iteration();
            b.run_iteration();
        }
        assert_eq!(a.assignments(), b.assignments());
    }

    #[test]
    fn dense_and_hash_count_configurations_both_converge() {
        let corpus = themed_corpus();
        let params = ModelParams::new(2, 0.5, 0.1);
        for use_hash in [true, false] {
            let cfg = WarpLdaConfig { mh_steps: 2, use_hash_counts: use_hash };
            let mut s = WarpLda::new(&corpus, params, cfg, 13);
            let ll0 = ll_of(&s, &corpus);
            for _ in 0..30 {
                s.run_iteration();
            }
            assert!(ll_of(&s, &corpus) > ll0, "use_hash={use_hash} should still converge");
        }
    }

    #[test]
    fn more_mh_steps_never_hurts_much() {
        // Figure 8: larger M converges at least as fast per iteration.
        let corpus = themed_corpus();
        let params = ModelParams::new(2, 0.5, 0.1);
        let mut m1 = WarpLda::new(&corpus, params, WarpLdaConfig::with_mh_steps(1), 17);
        let mut m8 = WarpLda::new(&corpus, params, WarpLdaConfig::with_mh_steps(8), 17);
        for _ in 0..15 {
            m1.run_iteration();
            m8.run_iteration();
        }
        let ll1 = ll_of(&m1, &corpus);
        let ll8 = ll_of(&m8, &corpus);
        assert!(ll8 > ll1 - 0.02 * ll1.abs(), "M=8 ({ll8}) should not lag far behind M=1 ({ll1})");
    }

    #[test]
    fn cache_probe_shows_small_working_set() {
        // WarpLDA's random accesses go to O(K) vectors. With K chosen so that
        // the vectors overflow the tiny test hierarchy's L1/L2 but fit its
        // 16 KiB L3, the accesses must be absorbed by the L3 (contrast with
        // the LightLDA/F+LDA matrices, exercised in the table4 benchmark).
        let corpus = themed_corpus();
        let params = ModelParams::new(1024, 0.5, 0.1);
        let probe = CacheProbe::new(HierarchyConfig::tiny_for_tests());
        let mut s =
            WarpLda::with_probe(&corpus, params, WarpLdaConfig::with_mh_steps(2), 19, probe);
        for _ in 0..3 {
            s.run_iteration();
        }
        let stats = s.probe().stats();
        assert!(stats.accesses > 0);
        assert!(stats.l3_miss_rate() < 0.3, "WarpLDA working set should fit the cache: {stats:?}");
    }

    #[test]
    #[should_panic(expected = "at least one MH proposal")]
    fn zero_mh_steps_rejected() {
        let _ = WarpLdaConfig::with_mh_steps(0);
    }
}
