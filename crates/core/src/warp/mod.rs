//! WarpLDA (Section 4 of the paper): an O(1)-per-token MCEM sampler whose
//! randomly accessed memory per document/word is a single O(K) vector.
//!
//! The sampler is built directly on the [`warplda_sparse::TokenMatrix`]
//! framework of Section 5, used structure-only (offsets and row pointers);
//! the per-token state lives in a [`PackedRecords`] buffer: one interleaved
//! record per entry holding the current topic assignment followed by the `M`
//! pending MH proposals. Assignment and proposals are always read and written
//! together, so packing them makes each token touch a single sequential
//! stream instead of two parallel ones. Neither `Cd` nor `Cw` is ever
//! materialized — each row/column count vector is recomputed on the fly while
//! its document/word is being visited and discarded afterwards (Section 4.4,
//! M-step).
//!
//! One iteration is two passes (Algorithm 2):
//!
//! 1. **Word phase** (`VisitByColumn`): for each word, compute `c_w`, run the
//!    MH chains that consume the *document* proposals drawn in the previous
//!    doc phase (their acceptance rate only needs `c_w` and `c_k`), then draw
//!    fresh *word* proposals `q_word(k) ∝ C_wk + β` from an alias table over
//!    the updated `c_w`.
//! 2. **Document phase** (`VisitByRow`): for each document, compute `c_d`, run
//!    the MH chains that consume the word proposals (acceptance needs only
//!    `c_d` and `c_k`), then draw fresh document proposals
//!    `q_doc(k) ∝ C_dk + α` by random positioning.
//!
//! The global vector `c_k` is re-accumulated during each phase and swapped in
//! at the phase boundary (delayed update), which is what makes the reordering
//! legal.
//!
//! Steady-state iterations perform **no heap allocation**: the count vectors
//! come from a per-sampler [`CountPool`], the word-proposal alias table is
//! rebuilt in place ([`SparseAliasTable::rebuild`]), and all buffers are
//! pre-sized at construction for the largest row/column of the corpus. The
//! first iteration populates the pool's capacity classes; everything after it
//! runs allocation-free (pinned by the `zero_alloc` integration suite).

pub mod parallel;
pub mod shard;

use rand::rngs::SmallRng;
use rand::Rng;

use warplda_cachesim::{MemoryProbe, NoProbe, RegionId};
use warplda_corpus::{Corpus, DocMajorView};
use warplda_sampling::{new_rng, AliasBuildScratch, Dice, SparseAliasTable};
use warplda_sparse::{PackedRecords, TokenMatrix};

use crate::checkpoint::{self, Checkpointable};
use crate::counts::{CountPool, TopicCounts};
use crate::params::ModelParams;
use crate::sampler::Sampler;
use warplda_corpus::io::codec::{CodecError, CodecResult, Decoder, Encoder};

/// Tuning knobs of WarpLDA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarpLdaConfig {
    /// Number of MH proposals kept per token (`M` in the paper; Figures 5–8
    /// use 1–16, with 1, 2 or 4 recommended).
    pub mh_steps: usize,
    /// Use the open-addressing hash tables of Section 5.4 for the per-row /
    /// per-column count vectors when they are expected to be sparse; when
    /// `false` a dense reusable vector is always used (ablation knob).
    pub use_hash_counts: bool,
}

impl Default for WarpLdaConfig {
    fn default() -> Self {
        Self { mh_steps: 2, use_hash_counts: true }
    }
}

impl WarpLdaConfig {
    /// Configuration with a specific number of MH steps.
    pub fn with_mh_steps(mh_steps: usize) -> Self {
        assert!(mh_steps >= 1, "need at least one MH proposal per token");
        Self { mh_steps, ..Self::default() }
    }
}

/// Reusable per-phase working state: pooled count vectors plus the
/// word-proposal alias table and its build buffers, all pre-sized so
/// steady-state iterations allocate nothing. The serial sampler owns one;
/// the parallel driver owns one per worker.
pub(crate) struct PhaseScratch {
    /// Pooled `c_d` / `c_w` count vectors.
    pub counts: CountPool,
    /// `(topic, count)` pairs of the current word, staged for the alias build.
    pub pairs: Vec<(u32, f64)>,
    /// The word-proposal alias table, rebuilt in place per word.
    pub alias: SparseAliasTable,
    /// Worklists of the in-place alias build.
    pub alias_build: AliasBuildScratch,
}

impl PhaseScratch {
    /// Scratch for `num_topics` topics where no row/column exceeds
    /// `max_len` entries (so at most `min{K, max_len}` distinct topics).
    pub fn new(num_topics: usize, max_len: usize) -> Self {
        let cap = num_topics.min(max_len).max(1);
        Self {
            counts: CountPool::new(num_topics),
            pairs: Vec::with_capacity(cap),
            alias: SparseAliasTable::with_capacity(cap),
            alias_build: AliasBuildScratch::with_capacity(cap),
        }
    }
}

/// The WarpLDA sampler, generic over an optional memory probe.
pub struct WarpLda<P: MemoryProbe = NoProbe> {
    params: ModelParams,
    config: WarpLdaConfig,
    /// D × V matrix, structure only (offsets + row pointers; no entry data).
    matrix: TokenMatrix<()>,
    /// Packed per-entry records `[z | M proposals]`, stride `M + 1`, indexed
    /// by entry id (CSC position).
    records: PackedRecords,
    /// Global topic counts used (read-only) during the current phase.
    topic_counts: Vec<u32>,
    /// Global topic counts being accumulated for the next phase.
    next_topic_counts: Vec<u32>,
    /// Entry id of each doc-major token index (for exporting assignments).
    entry_of_token: Vec<u32>,
    rng: SmallRng,
    iterations: u64,
    beta_bar: f64,
    vocab_size: usize,
    /// Largest row or column of the corpus; sizes phase/worker scratch.
    max_visit_len: usize,
    scratch: PhaseScratch,
    /// Wall seconds of the most recent word phase.
    last_word_phase_secs: f64,
    /// Wall seconds of the most recent doc phase.
    last_doc_phase_secs: f64,
    probe: P,
    region_cd: RegionId,
    region_cw: RegionId,
    region_ck: RegionId,
}

impl WarpLda<NoProbe> {
    /// Creates an uninstrumented WarpLDA sampler with random initial topics.
    pub fn new(corpus: &Corpus, params: ModelParams, config: WarpLdaConfig, seed: u64) -> Self {
        Self::with_probe(corpus, params, config, seed, NoProbe)
    }
}

impl<P: MemoryProbe> WarpLda<P> {
    /// Creates a sampler whose count-vector accesses are reported to `probe`.
    ///
    /// Only the count structures are probed (`c_d`, `c_w`, `c_k`): the packed
    /// token records are scanned strictly sequentially by construction and
    /// are therefore irrelevant to the random-access analysis of Sections 3
    /// and 6 (Table 2 lists no sequential-access term for WarpLDA).
    pub fn with_probe(
        corpus: &Corpus,
        params: ModelParams,
        config: WarpLdaConfig,
        seed: u64,
        mut probe: P,
    ) -> Self {
        assert!(config.mh_steps >= 1, "need at least one MH proposal per token");
        let doc_view = DocMajorView::build(corpus);
        let num_docs = corpus.num_docs();
        let vocab_size = corpus.vocab_size();
        let k = params.num_topics;
        let m = config.mh_steps;

        // Build the token matrix: one entry per token, in doc-major order so
        // the row slices keep the original token order.
        let mut entries = Vec::with_capacity(doc_view.num_tokens());
        for d in 0..num_docs {
            for i in doc_view.doc_range(d as u32) {
                entries.push((d as u32, doc_view.word_of(i)));
            }
        }
        let matrix: TokenMatrix<()> = TokenMatrix::from_entries(num_docs, vocab_size, &entries);
        let num_entries = matrix.num_entries();

        // Map each doc-major token index to its entry id.
        let mut entry_of_token = vec![0u32; num_entries];
        {
            let mut cursor = 0usize;
            for d in 0..num_docs {
                for &e in matrix.row_entry_ids(d as u32) {
                    entry_of_token[cursor] = e;
                    cursor += 1;
                }
            }
        }

        let max_col_len = (0..vocab_size).map(|w| matrix.col_len(w as u32)).max().unwrap_or(0);
        let max_row_len = (0..num_docs).map(|d| matrix.row_len(d as u32)).max().unwrap_or(0);
        let max_visit_len = max_col_len.max(max_row_len);

        // Random initial topics + proposals, packed per entry.
        let mut rng = new_rng(seed);
        let mut records = PackedRecords::new(num_entries, m + 1);
        let mut topic_counts = vec![0u32; k];
        for e in 0..num_entries {
            let t = rng.dice(k) as u32;
            records.set_primary(e, t);
            topic_counts[t as usize] += 1;
        }
        for e in 0..num_entries {
            for slot in &mut records.record_mut(e)[1..] {
                *slot = rng.dice(k) as u32;
            }
        }

        let region_cd = probe.register_region("cd vector", k, 4);
        let region_cw = probe.register_region("cw vector", k, 4);
        let region_ck = probe.register_region("ck vector", k, 4);

        Self {
            params,
            config,
            matrix,
            records,
            topic_counts,
            next_topic_counts: vec![0u32; k],
            entry_of_token,
            rng,
            iterations: 0,
            beta_bar: params.beta_bar(vocab_size),
            vocab_size,
            max_visit_len,
            scratch: PhaseScratch::new(k, max_visit_len),
            last_word_phase_secs: 0.0,
            last_doc_phase_secs: 0.0,
            probe,
            region_cd,
            region_cw,
            region_ck,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &WarpLdaConfig {
        &self.config
    }

    /// The memory probe (e.g. to read cache statistics after a run).
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// The global topic counts as of the last completed phase.
    pub fn topic_counts(&self) -> &[u32] {
        &self.topic_counts
    }

    /// Wall seconds of the most recent `(word phase, doc phase)`, measured
    /// inside [`run_iteration`](Sampler::run_iteration).
    pub fn last_phase_seconds(&self) -> (f64, f64) {
        (self.last_word_phase_secs, self.last_doc_phase_secs)
    }

    /// Swaps in the freshly accumulated `c_k` at a phase boundary.
    fn swap_topic_counts(&mut self) {
        std::mem::swap(&mut self.topic_counts, &mut self.next_topic_counts);
        self.next_topic_counts.fill(0);
    }

    /// The **word phase**: `VisitByColumn`, consuming doc proposals and
    /// producing word proposals.
    fn word_phase(&mut self) {
        let k = self.params.num_topics;
        let m = self.config.mh_steps;
        let beta = self.params.beta;
        let beta_bar = self.beta_bar;
        let use_hash = self.config.use_hash_counts;
        let region_cw = self.region_cw;
        let region_ck = self.region_ck;

        let Self { matrix, records, topic_counts, next_topic_counts, rng, probe, scratch, .. } =
            self;

        for w in 0..matrix.num_cols() as u32 {
            let range = matrix.col_entry_range(w);
            let len = range.len();
            if len == 0 {
                continue;
            }
            probe.begin_scope();
            // A column's records are one contiguous block: the whole visit is
            // a single sequential stream over `len * (M + 1)` words.
            let block = records.block_mut(range);
            process_word_column(
                block,
                m,
                k,
                beta,
                beta_bar,
                topic_counts,
                next_topic_counts,
                scratch,
                use_hash,
                rng,
                probe,
                region_cw,
                region_ck,
            );
            probe.end_scope();
        }

        self.swap_topic_counts();
    }

    /// The **document phase**: `VisitByRow`, consuming word proposals and
    /// producing doc proposals.
    fn doc_phase(&mut self) {
        let k = self.params.num_topics;
        let alpha = self.params.alpha;
        let alpha_bar = self.params.alpha_bar();
        let beta_bar = self.beta_bar;
        let use_hash = self.config.use_hash_counts;
        let region_cd = self.region_cd;
        let region_ck = self.region_ck;

        let Self { matrix, records, topic_counts, next_topic_counts, rng, probe, scratch, .. } =
            self;
        let recs = RecPtr::new(records);

        for d in 0..matrix.num_rows() as u32 {
            let entries = matrix.row_entry_ids(d);
            let len = entries.len();
            if len == 0 {
                continue;
            }
            probe.begin_scope();
            // SAFETY: `recs` wraps the exclusively borrowed `records` and this
            // loop visits each row (disjoint entry sets) once, serially.
            unsafe {
                process_doc_row(
                    entries,
                    recs,
                    k,
                    alpha,
                    alpha_bar,
                    beta_bar,
                    topic_counts,
                    next_topic_counts,
                    scratch,
                    use_hash,
                    rng,
                    probe,
                    region_cd,
                    region_ck,
                );
            }
            probe.end_scope();
        }

        self.swap_topic_counts();
    }
}

/// One column of the word phase, shared by the serial and parallel drivers:
/// recompute `c_w`, run the MH chains over the packed records, accumulate the
/// updated counts into `next_ck`, rebuild the word-proposal alias table in
/// place and draw fresh proposals. Picks the hash or dense count
/// representation per the paper's heuristic, then runs the monomorphized
/// kernel. Performs no heap allocation once the scratch buffers have grown
/// to the column's size.
#[allow(clippy::too_many_arguments)]
fn process_word_column<P: MemoryProbe>(
    block: &mut [u32],
    m: usize,
    k: usize,
    beta: f64,
    beta_bar: f64,
    ck: &[u32],
    next_ck: &mut [u32],
    scratch: &mut PhaseScratch,
    use_hash: bool,
    rng: &mut SmallRng,
    probe: &mut P,
    region_cw: RegionId,
    region_ck: RegionId,
) {
    let len = block.len() / (m + 1);
    let PhaseScratch { counts, pairs, alias, alias_build } = scratch;
    if use_hash && counts.prefers_hash(len) {
        word_column_kernel(
            block,
            m,
            k,
            beta,
            beta_bar,
            ck,
            next_ck,
            counts.hash_for(len),
            pairs,
            alias,
            alias_build,
            rng,
            probe,
            region_cw,
            region_ck,
        );
    } else {
        word_column_kernel(
            block,
            m,
            k,
            beta,
            beta_bar,
            ck,
            next_ck,
            counts.dense(),
            pairs,
            alias,
            alias_build,
            rng,
            probe,
            region_cw,
            region_ck,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn word_column_kernel<C: TopicCounts, P: MemoryProbe>(
    block: &mut [u32],
    m: usize,
    k: usize,
    beta: f64,
    beta_bar: f64,
    ck: &[u32],
    next_ck: &mut [u32],
    cw: &mut C,
    pairs: &mut Vec<(u32, f64)>,
    alias: &mut SparseAliasTable,
    alias_build: &mut AliasBuildScratch,
    rng: &mut SmallRng,
    probe: &mut P,
    region_cw: RegionId,
    region_ck: RegionId,
) {
    let stride = m + 1;
    debug_assert!(!block.is_empty() && block.len().is_multiple_of(stride));
    let len = block.len() / stride;

    // c_w on the fly.
    for rec in block.chunks_exact(stride) {
        let t = rec[0];
        cw.increment(t);
        probe.write(region_cw, t as usize);
    }

    // Simulate the q_doc chains with the proposals drawn last doc phase.
    for rec in block.chunks_exact_mut(stride) {
        let mut z = rec[0];
        for &t in &rec[1..] {
            if t != z {
                probe.read(region_cw, t as usize);
                probe.read(region_cw, z as usize);
                probe.read(region_ck, t as usize);
                probe.read(region_ck, z as usize);
                let ratio = (cw.get(t) as f64 + beta) / (cw.get(z) as f64 + beta)
                    * (ck[z as usize] as f64 + beta_bar)
                    / (ck[t as usize] as f64 + beta_bar);
                if ratio >= 1.0 || rng.gen::<f64>() < ratio {
                    z = t;
                }
            }
        }
        rec[0] = z;
    }

    // Recompute c_w from the updated assignments (Algorithm 2 "Update Cwk"),
    // accumulate it into the next c_k, and rebuild the alias table of
    // q_word(k) ∝ C_wk + β in place.
    cw.clear();
    for rec in block.chunks_exact(stride) {
        let t = rec[0];
        cw.increment(t);
        probe.write(region_cw, t as usize);
        next_ck[t as usize] += 1;
    }
    pairs.clear();
    cw.for_each(|t, c| pairs.push((t, c as f64)));
    alias.rebuild(pairs, alias_build);
    // Mixture weights of q_word: counts part (mass L_w) vs smoothing part
    // (mass K·β).
    let count_mass = len as f64;
    let smooth_mass = k as f64 * beta;
    let p_count = count_mass / (count_mass + smooth_mass);

    for rec in block.chunks_exact_mut(stride) {
        for slot in &mut rec[1..] {
            *slot = if rng.gen::<f64>() < p_count { alias.sample(rng) } else { rng.dice(k) as u32 };
        }
    }
}

/// A copyable raw view over packed records for row visits, which reach
/// entries through the row-pointer indirection. Both the serial driver
/// (exclusive borrow) and the parallel driver (disjoint rows per worker)
/// funnel through this so the doc-phase kernel exists once.
#[derive(Clone, Copy)]
pub(crate) struct RecPtr {
    ptr: *mut u32,
    stride: usize,
}

// SAFETY: a `RecPtr` is only dereferenced at the entry ids of rows the
// holding thread owns; the drivers guarantee each row is visited by exactly
// one thread (see `process_doc_row`).
unsafe impl Send for RecPtr {}
unsafe impl Sync for RecPtr {}

impl RecPtr {
    pub(crate) fn new(records: &mut PackedRecords) -> Self {
        Self { ptr: records.as_mut_ptr(), stride: records.stride() }
    }

    #[inline]
    unsafe fn z(&self, e: u32) -> u32 {
        *self.ptr.add(e as usize * self.stride)
    }

    #[inline]
    unsafe fn set_z(&self, e: u32, v: u32) {
        *self.ptr.add(e as usize * self.stride) = v;
    }

    #[inline]
    unsafe fn proposal(&self, e: u32, i: usize) -> u32 {
        *self.ptr.add(e as usize * self.stride + 1 + i)
    }

    #[inline]
    unsafe fn set_proposal(&self, e: u32, i: usize, v: u32) {
        *self.ptr.add(e as usize * self.stride + 1 + i) = v;
    }
}

/// One row of the doc phase, shared by the serial and parallel drivers:
/// recompute `c_d`, run the MH chains, accumulate into `next_ck`, draw fresh
/// doc proposals by random positioning. Picks the hash or dense count
/// representation per the paper's heuristic, then runs the monomorphized
/// kernel. Allocation-free.
///
/// # Safety
/// `entries` must be the entry ids of one row of the matrix `recs` was
/// created from, every id in range, and no other thread may touch those
/// records for the duration of the call.
#[allow(clippy::too_many_arguments)]
unsafe fn process_doc_row<P: MemoryProbe>(
    entries: &[u32],
    recs: RecPtr,
    k: usize,
    alpha: f64,
    alpha_bar: f64,
    beta_bar: f64,
    ck: &[u32],
    next_ck: &mut [u32],
    scratch: &mut PhaseScratch,
    use_hash: bool,
    rng: &mut SmallRng,
    probe: &mut P,
    region_cd: RegionId,
    region_ck: RegionId,
) {
    let len = entries.len();
    let counts = &mut scratch.counts;
    if use_hash && counts.prefers_hash(len) {
        doc_row_kernel(
            entries,
            recs,
            k,
            alpha,
            alpha_bar,
            beta_bar,
            ck,
            next_ck,
            counts.hash_for(len),
            rng,
            probe,
            region_cd,
            region_ck,
        );
    } else {
        doc_row_kernel(
            entries,
            recs,
            k,
            alpha,
            alpha_bar,
            beta_bar,
            ck,
            next_ck,
            counts.dense(),
            rng,
            probe,
            region_cd,
            region_ck,
        );
    }
}

/// # Safety
/// Same contract as [`process_doc_row`].
#[allow(clippy::too_many_arguments)]
unsafe fn doc_row_kernel<C: TopicCounts, P: MemoryProbe>(
    entries: &[u32],
    recs: RecPtr,
    k: usize,
    alpha: f64,
    alpha_bar: f64,
    beta_bar: f64,
    ck: &[u32],
    next_ck: &mut [u32],
    cd: &mut C,
    rng: &mut SmallRng,
    probe: &mut P,
    region_cd: RegionId,
    region_ck: RegionId,
) {
    let len = entries.len();
    let m = recs.stride - 1;

    // c_d on the fly.
    for &e in entries {
        let t = recs.z(e);
        cd.increment(t);
        probe.write(region_cd, t as usize);
    }

    // Simulate the q_word chains with the proposals drawn last word phase.
    for &e in entries {
        let old = recs.z(e);
        let mut cur = old;
        for i in 0..m {
            let t = recs.proposal(e, i);
            if t != cur {
                probe.read(region_cd, t as usize);
                probe.read(region_cd, cur as usize);
                probe.read(region_ck, t as usize);
                probe.read(region_ck, cur as usize);
                let ratio = (cd.get(t) as f64 + alpha) / (cd.get(cur) as f64 + alpha)
                    * (ck[cur as usize] as f64 + beta_bar)
                    / (ck[t as usize] as f64 + beta_bar);
                if ratio >= 1.0 || rng.gen::<f64>() < ratio {
                    cur = t;
                }
            }
        }
        if cur != old {
            // Keep c_d in sync so the upcoming random positioning reflects
            // the updated assignments of this document.
            cd.decrement(old);
            cd.increment(cur);
            recs.set_z(e, cur);
        }
    }

    // Accumulate the updated c_d into the next c_k.
    cd.for_each(|t, c| next_ck[t as usize] += c);

    // Draw the doc proposals q_doc(k) ∝ C_dk + α by random positioning: with
    // probability L_d/(L_d + ᾱ) reuse the topic of a uniformly chosen token
    // of this document, otherwise a uniform topic.
    let p_count = len as f64 / (len as f64 + alpha_bar);
    for &e in entries {
        for i in 0..m {
            let t = if rng.gen::<f64>() < p_count {
                let pos = rng.dice(len);
                recs.z(entries[pos])
            } else {
                rng.dice(k) as u32
            };
            recs.set_proposal(e, i, t);
        }
    }
}

impl<P: MemoryProbe> Sampler for WarpLda<P> {
    fn name(&self) -> &'static str {
        "WarpLDA"
    }

    fn params(&self) -> &ModelParams {
        &self.params
    }

    fn run_iteration(&mut self) {
        // Algorithm 2: word phase first, then document phase.
        let t0 = std::time::Instant::now();
        self.word_phase();
        self.last_word_phase_secs = t0.elapsed().as_secs_f64();
        let t1 = std::time::Instant::now();
        self.doc_phase();
        self.last_doc_phase_secs = t1.elapsed().as_secs_f64();
        self.iterations += 1;
    }

    fn iterations(&self) -> u64 {
        self.iterations
    }

    fn assignments(&self) -> Vec<u32> {
        self.entry_of_token.iter().map(|&e| self.records.primary(e as usize)).collect()
    }

    fn last_iteration_phase_seconds(&self) -> Option<f64> {
        Some(self.last_word_phase_secs + self.last_doc_phase_secs)
    }
}

impl<P: MemoryProbe> Checkpointable for WarpLda<P> {
    fn checkpoint_kind(&self) -> &'static str {
        "warplda"
    }

    fn write_state(&self, enc: &mut Encoder<'_>) -> CodecResult<()> {
        enc.write_u64(self.iterations)?;
        checkpoint::write_rng(enc, &self.rng)?;
        enc.write_usize(self.config.mh_steps)?;
        enc.write_bool(self.config.use_hash_counts)?;
        // Format v2: the packed records as one interleaved slice
        // (assignment + M proposals per entry), replacing the v1 pair of
        // separate assignment/proposal arrays.
        enc.write_u32_slice(self.records.as_slice())?;
        enc.write_u32_slice(&self.topic_counts)
    }

    fn read_state(&mut self, dec: &mut Decoder<'_>) -> CodecResult<()> {
        let k = self.params.num_topics;
        let entries = self.matrix.num_entries();
        let iterations = dec.read_u64()?;
        let rng = checkpoint::read_rng(dec)?;
        let mh_steps = dec.read_usize()?;
        let use_hash = dec.read_bool()?;
        if mh_steps != self.config.mh_steps || use_hash != self.config.use_hash_counts {
            return Err(CodecError::Corrupt(format!(
                "checkpoint config (M = {mh_steps}, hash counts = {use_hash}) does not match \
                 the sampler (M = {}, hash counts = {})",
                self.config.mh_steps, self.config.use_hash_counts,
            )));
        }
        let stride = mh_steps + 1;
        let data = dec.read_u32_vec()?;
        if data.len() != entries * stride {
            return Err(CodecError::Corrupt(format!(
                "checkpoint holds {} record words but the corpus needs {} \
                 ({entries} entries × stride {stride})",
                data.len(),
                entries * stride,
            )));
        }
        if let Some(&bad) = data.iter().find(|&&t| t as usize >= k) {
            return Err(CodecError::Corrupt(format!("record topic {bad} out of range (K = {k})")));
        }
        let topic_counts = dec.read_u32_vec()?;
        // The delayed-update invariant between iterations: c_k is exactly the
        // topic histogram of the assignments.
        let mut hist = vec![0u32; k];
        for &t in data.iter().step_by(stride) {
            hist[t as usize] += 1;
        }
        if topic_counts != hist {
            return Err(CodecError::Corrupt(
                "topic counts do not match the assignment histogram".to_string(),
            ));
        }
        self.records = PackedRecords::from_raw(data, stride);
        self.topic_counts = topic_counts;
        self.next_topic_counts.fill(0);
        self.rng = rng;
        self.iterations = iterations;
        Ok(())
    }
}

/// Sanity helper shared by the serial and parallel test suites: recomputes the
/// global topic histogram straight from the packed records.
#[cfg(test)]
pub(crate) fn topic_histogram<P: MemoryProbe>(s: &WarpLda<P>) -> Vec<u32> {
    let mut hist = vec![0u32; s.params.num_topics];
    for t in s.records.primaries() {
        hist[t as usize] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cgs::CollapsedGibbs;
    use crate::eval::log_joint_likelihood;
    use warplda_cachesim::{CacheProbe, HierarchyConfig};
    use warplda_corpus::{CorpusBuilder, DatasetPreset, WordMajorView};

    fn themed_corpus() -> Corpus {
        let mut b = CorpusBuilder::new();
        for _ in 0..30 {
            b.push_text_doc(["river", "lake", "water", "fish", "river", "boat"]);
            b.push_text_doc(["desert", "sand", "dune", "cactus", "desert", "heat"]);
        }
        b.build().unwrap()
    }

    fn ll_of<S: Sampler>(s: &S, corpus: &Corpus) -> f64 {
        let dv = DocMajorView::build(corpus);
        let wv = WordMajorView::build(corpus, &dv);
        log_joint_likelihood(corpus, &dv, &wv, s.params(), &s.assignments())
    }

    #[test]
    fn topic_counts_stay_consistent_with_assignments() {
        let corpus = themed_corpus();
        let params = ModelParams::new(5, 0.3, 0.05);
        let mut s = WarpLda::new(&corpus, params, WarpLdaConfig::with_mh_steps(2), 3);
        for _ in 0..4 {
            s.run_iteration();
            let hist = topic_histogram(&s);
            assert_eq!(s.topic_counts(), &hist[..], "ck must equal the topic histogram");
            let total: u32 = hist.iter().sum();
            assert_eq!(total as u64, corpus.num_tokens());
        }
    }

    #[test]
    fn assignments_cover_every_token_and_valid_topics() {
        let corpus = themed_corpus();
        let params = ModelParams::new(7, 0.3, 0.05);
        let mut s = WarpLda::new(&corpus, params, WarpLdaConfig::default(), 5);
        s.run_iteration();
        let z = s.assignments();
        assert_eq!(z.len() as u64, corpus.num_tokens());
        assert!(z.iter().all(|&t| t < 7));
    }

    #[test]
    fn likelihood_improves_and_approaches_cgs() {
        let corpus = themed_corpus();
        let params = ModelParams::new(2, 0.5, 0.1);
        let mut warp = WarpLda::new(&corpus, params, WarpLdaConfig::with_mh_steps(4), 7);
        let mut cgs = CollapsedGibbs::new(&corpus, params, 7);
        let ll0 = ll_of(&warp, &corpus);
        for _ in 0..50 {
            warp.run_iteration();
            cgs.run_iteration();
        }
        let ll_w = ll_of(&warp, &corpus);
        let ll_c = ll_of(&cgs, &corpus);
        assert!(ll_w > ll0, "likelihood should improve: {ll0} -> {ll_w}");
        assert!(
            (ll_w - ll_c).abs() < 0.06 * ll_c.abs(),
            "WarpLDA {ll_w} should approach CGS {ll_c} (Section 6.3 claim)"
        );
    }

    #[test]
    fn separates_planted_topics() {
        let corpus = themed_corpus();
        let params = ModelParams::new(2, 0.5, 0.1);
        let mut s = WarpLda::new(&corpus, params, WarpLdaConfig::with_mh_steps(4), 11);
        for _ in 0..60 {
            s.run_iteration();
        }
        let z = s.assignments();
        let dv = DocMajorView::build(&corpus);
        // Majority topic of the "river" documents vs the "desert" documents.
        let mut votes = [[0u32; 2]; 2];
        for d in 0..corpus.num_docs() {
            let theme = d % 2;
            for i in dv.doc_range(d as u32) {
                votes[theme][z[i] as usize] += 1;
            }
        }
        let river_topic = if votes[0][0] > votes[0][1] { 0 } else { 1 };
        let desert_topic = if votes[1][0] > votes[1][1] { 0 } else { 1 };
        assert_ne!(river_topic, desert_topic, "themes should map to different topics: {votes:?}");
        // Majorities should be strong.
        assert!(votes[0][river_topic] * 10 > (votes[0][0] + votes[0][1]) * 7);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let corpus = DatasetPreset::Tiny.generate_scaled(10);
        let params = ModelParams::new(5, 0.5, 0.1);
        let mut a = WarpLda::new(&corpus, params, WarpLdaConfig::default(), 42);
        let mut b = WarpLda::new(&corpus, params, WarpLdaConfig::default(), 42);
        for _ in 0..2 {
            a.run_iteration();
            b.run_iteration();
        }
        assert_eq!(a.assignments(), b.assignments());
    }

    #[test]
    fn dense_and_hash_count_configurations_both_converge() {
        let corpus = themed_corpus();
        let params = ModelParams::new(2, 0.5, 0.1);
        for use_hash in [true, false] {
            let cfg = WarpLdaConfig { mh_steps: 2, use_hash_counts: use_hash };
            let mut s = WarpLda::new(&corpus, params, cfg, 13);
            let ll0 = ll_of(&s, &corpus);
            for _ in 0..30 {
                s.run_iteration();
            }
            assert!(ll_of(&s, &corpus) > ll0, "use_hash={use_hash} should still converge");
        }
    }

    #[test]
    fn more_mh_steps_never_hurts_much() {
        // Figure 8: larger M converges at least as fast per iteration.
        let corpus = themed_corpus();
        let params = ModelParams::new(2, 0.5, 0.1);
        let mut m1 = WarpLda::new(&corpus, params, WarpLdaConfig::with_mh_steps(1), 17);
        let mut m8 = WarpLda::new(&corpus, params, WarpLdaConfig::with_mh_steps(8), 17);
        for _ in 0..15 {
            m1.run_iteration();
            m8.run_iteration();
        }
        let ll1 = ll_of(&m1, &corpus);
        let ll8 = ll_of(&m8, &corpus);
        assert!(ll8 > ll1 - 0.02 * ll1.abs(), "M=8 ({ll8}) should not lag far behind M=1 ({ll1})");
    }

    #[test]
    fn cache_probe_shows_small_working_set() {
        // WarpLDA's random accesses go to O(K) vectors. With K chosen so that
        // the vectors overflow the tiny test hierarchy's L1/L2 but fit its
        // 16 KiB L3, the accesses must be absorbed by the L3 (contrast with
        // the LightLDA/F+LDA matrices, exercised in the table4 benchmark).
        let corpus = themed_corpus();
        let params = ModelParams::new(1024, 0.5, 0.1);
        let probe = CacheProbe::new(HierarchyConfig::tiny_for_tests());
        let mut s =
            WarpLda::with_probe(&corpus, params, WarpLdaConfig::with_mh_steps(2), 19, probe);
        for _ in 0..3 {
            s.run_iteration();
        }
        let stats = s.probe().stats();
        assert!(stats.accesses > 0);
        assert!(stats.l3_miss_rate() < 0.3, "WarpLDA working set should fit the cache: {stats:?}");
    }

    #[test]
    fn records_are_packed_with_assignment_then_proposals() {
        // The layout contract the checkpoint codec and the parallel driver
        // rely on: stride M + 1, primary word first, one block per column.
        let corpus = themed_corpus();
        let params = ModelParams::new(6, 0.5, 0.1);
        let mut s = WarpLda::new(&corpus, params, WarpLdaConfig::with_mh_steps(3), 23);
        s.run_iteration();
        assert_eq!(s.records.stride(), 4);
        assert_eq!(s.records.num_records() as u64, corpus.num_tokens());
        assert!(s.records.as_slice().iter().all(|&t| t < 6), "every word is a topic id");
        // The primaries are exactly the assignments, entry-indexed.
        let z = s.assignments();
        for (token, &e) in s.entry_of_token.iter().enumerate() {
            assert_eq!(z[token], s.records.primary(e as usize));
        }
    }

    #[test]
    #[should_panic(expected = "at least one MH proposal")]
    fn zero_mh_steps_rejected() {
        let _ = WarpLdaConfig::with_mh_steps(0);
    }
}
