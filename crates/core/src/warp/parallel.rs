//! Multi-threaded WarpLDA (Section 5.3.1).
//!
//! WarpLDA parallelizes trivially because workers own disjoint documents
//! (doc phase) or words (word phase) and the only shared state — the global
//! topic vector `c_k` — is read-only within a phase and merged at the phase
//! boundary. This driver reproduces the paper's shared-memory setup:
//!
//! * **word phase** — each worker owns a contiguous, token-balanced range of
//!   columns; the CSC data and the proposal array split into disjoint `&mut`
//!   slices, so this pass is entirely safe code;
//! * **doc phase** — rows reach their entries through the pointer
//!   indirection, so workers share a raw pointer to the entry/proposal arrays;
//!   safety rests on the row-partition being a partition (each entry belongs
//!   to exactly one row, each row to exactly one worker).
//!
//! Workers use independent deterministic RNG streams
//! ([`warplda_sampling::split_seed`]), so a run is reproducible for a fixed
//! thread count.

use crossbeam::thread;
use rand::Rng;

use warplda_cachesim::NoProbe;
use warplda_corpus::Corpus;
use warplda_sampling::{new_rng, split_seed, Dice, SparseAliasTable};
use warplda_sparse::{partition_by_size, PartitionStrategy};

use crate::checkpoint::Checkpointable;
use crate::counts::{CountVector, TopicCounts};
use crate::params::ModelParams;
use crate::sampler::Sampler;
use warplda_corpus::io::codec::{CodecError, CodecResult, Decoder, Encoder};

use super::{WarpLda, WarpLdaConfig};

/// A copyable wrapper that lets worker threads share a raw pointer; see the
/// module docs for the disjointness argument.
struct SendPtr<T>(*mut T);
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// Multi-threaded WarpLDA driver (Figure 9a).
pub struct ParallelWarpLda {
    inner: WarpLda<NoProbe>,
    num_threads: usize,
    seed: u64,
}

impl ParallelWarpLda {
    /// Creates a parallel sampler over `num_threads` worker threads.
    pub fn new(
        corpus: &Corpus,
        params: ModelParams,
        config: WarpLdaConfig,
        seed: u64,
        num_threads: usize,
    ) -> Self {
        assert!(num_threads >= 1, "need at least one worker thread");
        Self { inner: WarpLda::new(corpus, params, config, seed), num_threads, seed }
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Read-only access to the wrapped serial sampler.
    pub fn inner(&self) -> &WarpLda<NoProbe> {
        &self.inner
    }

    fn parallel_word_phase(&mut self) {
        let k = self.inner.params.num_topics;
        let m = self.inner.config.mh_steps;
        let beta = self.inner.params.beta;
        let beta_bar = self.inner.beta_bar;
        let use_hash = self.inner.config.use_hash_counts;
        let num_threads = self.num_threads;
        let vocab_size = self.inner.vocab_size;
        let iteration = self.inner.iterations;
        let base_seed = self.seed;

        // Token-balanced contiguous column ranges.
        let col_sizes: Vec<u64> =
            (0..vocab_size).map(|w| self.inner.matrix.col_len(w as u32) as u64).collect();
        let assignment = partition_by_size(&col_sizes, num_threads, PartitionStrategy::Dynamic);
        let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(num_threads);
        let mut start = 0usize;
        for worker in 0..num_threads {
            let mut end = start;
            while end < vocab_size && assignment[end] as usize == worker {
                end += 1;
            }
            ranges.push((start, end));
            start = end;
        }
        if start < vocab_size {
            ranges.last_mut().expect("at least one worker").1 = vocab_size;
        }

        // Entry ranges corresponding to each worker's columns (contiguous).
        let col_entry_start: Vec<usize> = (0..=vocab_size)
            .map(|w| {
                if w == vocab_size {
                    self.inner.matrix.num_entries()
                } else {
                    self.inner.matrix.col_entry_range(w as u32).start
                }
            })
            .collect();

        let topic_counts = self.inner.topic_counts.clone();
        let mut partial_next: Vec<Vec<u32>> = vec![vec![0u32; k]; num_threads];

        {
            let matrix = &mut self.inner.matrix;
            let proposals = &mut self.inner.proposals;
            let data = matrix.data_mut();

            thread::scope(|scope| {
                let mut data_rest: &mut [u32] = data;
                let mut prop_rest: &mut [u32] = proposals;
                let mut consumed_entries = 0usize;
                let mut partials = partial_next.iter_mut();
                for (worker, &(col_start, col_end)) in ranges.iter().enumerate() {
                    let entry_start = col_entry_start[col_start];
                    let entry_end = col_entry_start[col_end];
                    let (skip_d, rest_d) = data_rest.split_at_mut(entry_start - consumed_entries);
                    let _ = skip_d;
                    let (my_data, rest_d) = rest_d.split_at_mut(entry_end - entry_start);
                    data_rest = rest_d;
                    let (skip_p, rest_p) =
                        prop_rest.split_at_mut((entry_start - consumed_entries) * m);
                    let _ = skip_p;
                    let (my_props, rest_p) = rest_p.split_at_mut((entry_end - entry_start) * m);
                    prop_rest = rest_p;
                    consumed_entries = entry_end;

                    let my_next = partials.next().expect("one partial per worker");
                    let ck = &topic_counts;
                    let col_entry_start = &col_entry_start;
                    scope.spawn(move |_| {
                        let mut rng =
                            new_rng(split_seed(base_seed, iteration * 2_000 + worker as u64));
                        for w in col_start..col_end {
                            let lo = col_entry_start[w] - entry_start;
                            let hi = col_entry_start[w + 1] - entry_start;
                            let len = hi - lo;
                            if len == 0 {
                                continue;
                            }
                            let z_col = &mut my_data[lo..hi];
                            let props = &mut my_props[lo * m..hi * m];

                            let mut cw = if use_hash {
                                CountVector::auto(len, k)
                            } else {
                                CountVector::Dense(crate::counts::DenseCounts::new(k))
                            };
                            for &t in z_col.iter() {
                                cw.increment(t);
                            }
                            for (n, z) in z_col.iter_mut().enumerate() {
                                for i in 0..m {
                                    let t = props[n * m + i];
                                    if t != *z {
                                        let ratio = (cw.get(t) as f64 + beta)
                                            / (cw.get(*z) as f64 + beta)
                                            * (ck[*z as usize] as f64 + beta_bar)
                                            / (ck[t as usize] as f64 + beta_bar);
                                        if ratio >= 1.0 || rng.gen::<f64>() < ratio {
                                            *z = t;
                                        }
                                    }
                                }
                            }
                            cw.clear();
                            for &t in z_col.iter() {
                                cw.increment(t);
                                my_next[t as usize] += 1;
                            }
                            let pairs = cw.to_pairs();
                            let alias = SparseAliasTable::new(
                                &pairs.iter().map(|&(t, c)| (t, c as f64)).collect::<Vec<_>>(),
                            );
                            let p_count = len as f64 / (len as f64 + k as f64 * beta);
                            for slot in props.iter_mut() {
                                *slot = if rng.gen::<f64>() < p_count {
                                    alias.sample(&mut rng)
                                } else {
                                    rng.dice(k) as u32
                                };
                            }
                        }
                    });
                }
            })
            .expect("word-phase worker panicked");
        }

        // Merge partial c_k vectors and swap.
        let next = &mut self.inner.next_topic_counts;
        for partial in &partial_next {
            for (t, &c) in partial.iter().enumerate() {
                next[t] += c;
            }
        }
        self.inner.swap_topic_counts();
    }

    fn parallel_doc_phase(&mut self) {
        let k = self.inner.params.num_topics;
        let m = self.inner.config.mh_steps;
        let alpha = self.inner.params.alpha;
        let alpha_bar = self.inner.params.alpha_bar();
        let beta_bar = self.inner.beta_bar;
        let use_hash = self.inner.config.use_hash_counts;
        let num_threads = self.num_threads;
        let num_docs = self.inner.matrix.num_rows();
        let iteration = self.inner.iterations;
        let base_seed = self.seed;

        let row_sizes: Vec<u64> =
            (0..num_docs).map(|d| self.inner.matrix.row_len(d as u32) as u64).collect();
        let assignment = partition_by_size(&row_sizes, num_threads, PartitionStrategy::Greedy);

        let topic_counts = self.inner.topic_counts.clone();
        let mut partial_next: Vec<Vec<u32>> = vec![vec![0u32; k]; num_threads];

        {
            // Copy the per-row entry ids up front so no borrow of the matrix is
            // alive while the workers write through the raw data pointers.
            let row_entries: Vec<Vec<u32>> =
                (0..num_docs).map(|d| self.inner.matrix.row_entry_ids(d as u32).to_vec()).collect();
            let data_ptr = SendPtr(self.inner.matrix.data_mut().as_mut_ptr());
            let prop_ptr = SendPtr(self.inner.proposals.as_mut_ptr());

            thread::scope(|scope| {
                let mut partials = partial_next.iter_mut();
                for worker in 0..num_threads {
                    let my_next = partials.next().expect("one partial per worker");
                    let assignment = &assignment;
                    let row_entries = &row_entries;
                    let ck = &topic_counts;
                    scope.spawn(move |_| {
                        let data_ptr = data_ptr;
                        let prop_ptr = prop_ptr;
                        let mut rng = new_rng(split_seed(
                            base_seed,
                            iteration * 2_000 + 1_000 + worker as u64,
                        ));
                        // SAFETY: each entry id belongs to exactly one row and each
                        // row to exactly one worker, so no element of `data` or
                        // `proposals` is touched by two threads.
                        let z_at = |e: u32| unsafe { &mut *data_ptr.0.add(e as usize) };
                        let prop_at =
                            |e: u32, i: usize| unsafe { &mut *prop_ptr.0.add(e as usize * m + i) };
                        for (d, entries) in row_entries.iter().enumerate() {
                            if assignment[d] as usize != worker {
                                continue;
                            }
                            let len = entries.len();
                            if len == 0 {
                                continue;
                            }
                            let mut cd = if use_hash {
                                CountVector::auto(len, k)
                            } else {
                                CountVector::Dense(crate::counts::DenseCounts::new(k))
                            };
                            for &e in entries.iter() {
                                cd.increment(*z_at(e));
                            }
                            for &e in entries.iter() {
                                let z = z_at(e);
                                let old = *z;
                                let mut cur = old;
                                for i in 0..m {
                                    let t = *prop_at(e, i);
                                    if t != cur {
                                        let ratio = (cd.get(t) as f64 + alpha)
                                            / (cd.get(cur) as f64 + alpha)
                                            * (ck[cur as usize] as f64 + beta_bar)
                                            / (ck[t as usize] as f64 + beta_bar);
                                        if ratio >= 1.0 || rng.gen::<f64>() < ratio {
                                            cur = t;
                                        }
                                    }
                                }
                                if cur != old {
                                    cd.decrement(old);
                                    cd.increment(cur);
                                    *z = cur;
                                }
                            }
                            cd.for_each(|t, c| my_next[t as usize] += c);
                            let p_count = len as f64 / (len as f64 + alpha_bar);
                            for &e in entries.iter() {
                                for i in 0..m {
                                    *prop_at(e, i) = if rng.gen::<f64>() < p_count {
                                        let pos = rng.dice(len);
                                        *z_at(entries[pos])
                                    } else {
                                        rng.dice(k) as u32
                                    };
                                }
                            }
                        }
                    });
                }
            })
            .expect("doc-phase worker panicked");
        }

        let next = &mut self.inner.next_topic_counts;
        for partial in &partial_next {
            for (t, &c) in partial.iter().enumerate() {
                next[t] += c;
            }
        }
        self.inner.swap_topic_counts();
    }
}

impl Sampler for ParallelWarpLda {
    fn name(&self) -> &'static str {
        "WarpLDA (parallel)"
    }

    fn params(&self) -> &ModelParams {
        &self.inner.params
    }

    fn run_iteration(&mut self) {
        if self.num_threads == 1 {
            self.inner.run_iteration();
            return;
        }
        self.parallel_word_phase();
        self.parallel_doc_phase();
        self.inner.iterations += 1;
    }

    fn iterations(&self) -> u64 {
        self.inner.iterations
    }

    fn assignments(&self) -> Vec<u32> {
        self.inner.assignments()
    }
}

impl Checkpointable for ParallelWarpLda {
    fn checkpoint_kind(&self) -> &'static str {
        "warplda-parallel"
    }

    fn write_state(&self, enc: &mut Encoder<'_>) -> CodecResult<()> {
        enc.write_u64(self.seed)?;
        enc.write_usize(self.num_threads)?;
        self.inner.write_state(enc)
    }

    fn read_state(&mut self, dec: &mut Decoder<'_>) -> CodecResult<()> {
        let seed = dec.read_u64()?;
        // Worker RNG streams are a pure function of (seed, iteration,
        // worker), so continuing under a different thread count would be a
        // *valid* run but not the bit-identical continuation the checkpoint
        // promises — reject the mismatch like every other config field.
        let written_threads = dec.read_usize()?;
        if written_threads != self.num_threads {
            return Err(CodecError::Corrupt(format!(
                "checkpoint was written with {written_threads} worker thread(s) but the sampler \
                 has {}; continuation would not be bit-identical",
                self.num_threads,
            )));
        }
        self.inner.read_state(dec)?;
        self.seed = seed;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::log_joint_likelihood;
    use warplda_corpus::{CorpusBuilder, DatasetPreset, DocMajorView, WordMajorView};

    fn themed_corpus() -> Corpus {
        let mut b = CorpusBuilder::new();
        for i in 0..40 {
            if i % 2 == 0 {
                b.push_text_doc(["wine", "grape", "cellar", "cork", "wine", "vineyard"]);
            } else {
                b.push_text_doc(["code", "bug", "compile", "test", "code", "debug"]);
            }
        }
        b.build().unwrap()
    }

    fn ll_of<S: Sampler>(s: &S, corpus: &Corpus) -> f64 {
        let dv = DocMajorView::build(corpus);
        let wv = WordMajorView::build(corpus, &dv);
        log_joint_likelihood(corpus, &dv, &wv, s.params(), &s.assignments())
    }

    #[test]
    fn topic_counts_match_assignments_after_parallel_iterations() {
        let corpus = DatasetPreset::Tiny.generate_scaled(4);
        let params = ModelParams::new(8, 0.5, 0.1);
        let mut s = ParallelWarpLda::new(&corpus, params, WarpLdaConfig::with_mh_steps(2), 3, 4);
        for _ in 0..3 {
            s.run_iteration();
            let hist = super::super::topic_histogram(s.inner().matrix(), 8);
            assert_eq!(s.inner().topic_counts(), &hist[..]);
        }
    }

    #[test]
    fn parallel_converges_like_serial() {
        let corpus = themed_corpus();
        let params = ModelParams::new(2, 0.5, 0.1);
        let mut serial = WarpLda::new(&corpus, params, WarpLdaConfig::with_mh_steps(4), 7);
        let mut parallel =
            ParallelWarpLda::new(&corpus, params, WarpLdaConfig::with_mh_steps(4), 7, 4);
        for _ in 0..40 {
            serial.run_iteration();
            parallel.run_iteration();
        }
        let ll_s = ll_of(&serial, &corpus);
        let ll_p = ll_of(&parallel, &corpus);
        assert!(
            (ll_s - ll_p).abs() < 0.05 * ll_s.abs(),
            "parallel ({ll_p}) should converge like serial ({ll_s})"
        );
    }

    #[test]
    fn single_thread_delegates_to_serial() {
        let corpus = DatasetPreset::Tiny.generate_scaled(8);
        let params = ModelParams::new(5, 0.5, 0.1);
        let mut a = ParallelWarpLda::new(&corpus, params, WarpLdaConfig::default(), 11, 1);
        let mut b = WarpLda::new(&corpus, params, WarpLdaConfig::default(), 11);
        a.run_iteration();
        b.run_iteration();
        assert_eq!(a.assignments(), b.assignments());
    }

    #[test]
    fn deterministic_for_fixed_seed_and_thread_count() {
        let corpus = DatasetPreset::Tiny.generate_scaled(8);
        let params = ModelParams::new(5, 0.5, 0.1);
        let mut a = ParallelWarpLda::new(&corpus, params, WarpLdaConfig::default(), 13, 3);
        let mut b = ParallelWarpLda::new(&corpus, params, WarpLdaConfig::default(), 13, 3);
        for _ in 0..2 {
            a.run_iteration();
            b.run_iteration();
        }
        assert_eq!(a.assignments(), b.assignments());
    }

    #[test]
    fn checkpoint_with_different_thread_count_is_rejected() {
        use crate::checkpoint::{read_checkpoint, write_checkpoint};
        let corpus = DatasetPreset::Tiny.generate_scaled(4);
        let params = ModelParams::new(4, 0.5, 0.1);
        let mut a = ParallelWarpLda::new(&corpus, params, WarpLdaConfig::default(), 1, 3);
        a.run_iteration();
        let mut buf = Vec::new();
        write_checkpoint(&a, None, &mut buf).unwrap();
        let mut b = ParallelWarpLda::new(&corpus, params, WarpLdaConfig::default(), 1, 2);
        let err = read_checkpoint(&mut b, &mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("worker thread"), "{err}");
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let corpus = DatasetPreset::Tiny.generate_scaled(10);
        let _ = ParallelWarpLda::new(
            &corpus,
            ModelParams::new(4, 0.5, 0.1),
            WarpLdaConfig::default(),
            1,
            0,
        );
    }
}
