//! Multi-threaded WarpLDA (Section 5.3.1).
//!
//! WarpLDA parallelizes trivially because workers own disjoint documents
//! (doc phase) or words (word phase) and the only shared state — the global
//! topic vector `c_k` — is read-only within a phase and merged at the phase
//! boundary. This driver reproduces the paper's shared-memory setup with
//! three deliberate mechanics:
//!
//! * **Chunked work queue.** Workers pull contiguous column/row chunks from a
//!   [`ChunkCursor`] instead of receiving a static partition, so the tail
//!   imbalance a power-law head word leaves in any up-front split disappears:
//!   whoever finishes early claims the next chunk.
//! * **Per-entity RNG streams.** Every column (word phase) and row (doc
//!   phase) derives its own stream from `(seed, iteration, phase, entity)`
//!   via [`warplda_sampling::split_seed`]. Results therefore do not depend
//!   on which worker claims which chunk — a run is **bit-identical for any
//!   thread count**, including one.
//! * **Striped phase-boundary reduction.** The per-worker partial `c_k`
//!   vectors are merged by workers owning contiguous topic stripes (falling
//!   back to an inline merge when `K` is too small to amortize a spawn), so
//!   the merge scales instead of serializing on one core at every boundary.
//!
//! Worker scratch (count pools, alias tables, partial `c_k`) persists across
//! iterations, so apart from the scoped-thread spawns themselves the phases
//! perform no steady-state heap allocation.
//!
//! Sharing the entry data is sound for the same reason as in
//! [`warplda_sparse::parallel`]: a column's records are a contiguous block
//! claimed by exactly one worker, and each row's entry ids are touched by
//! exactly one worker ([`RecPtr`]'s disjointness argument).

use crossbeam::thread;

use warplda_cachesim::NoProbe;
use warplda_corpus::Corpus;
use warplda_sampling::{new_rng, split_seed};
use warplda_sparse::{ChunkCursor, SendPtr};

use crate::checkpoint::Checkpointable;
use crate::params::ModelParams;
use crate::sampler::Sampler;
use warplda_corpus::io::codec::{CodecResult, Decoder, Encoder};

use super::{process_word_column, PhaseScratch, RecPtr, WarpLda, WarpLdaConfig};

/// Reusable per-worker state: the shared phase scratch plus the worker's
/// partial `c_k` accumulator. Persists across iterations.
struct WorkerScratch {
    partial_ck: Vec<u32>,
    scratch: PhaseScratch,
}

impl WorkerScratch {
    fn new(num_topics: usize, max_len: usize) -> Self {
        Self { partial_ck: vec![0; num_topics], scratch: PhaseScratch::new(num_topics, max_len) }
    }
}

/// Multi-threaded WarpLDA driver (Figure 9a).
pub struct ParallelWarpLda {
    inner: WarpLda<NoProbe>,
    num_threads: usize,
    seed: u64,
    workers: Vec<WorkerScratch>,
    col_cursor: ChunkCursor,
    row_cursor: ChunkCursor,
    /// Wall seconds of the most recent (word phase, doc phase).
    last_phase_secs: (f64, f64),
}

impl ParallelWarpLda {
    /// Creates a parallel sampler over `num_threads` worker threads.
    pub fn new(
        corpus: &Corpus,
        params: ModelParams,
        config: WarpLdaConfig,
        seed: u64,
        num_threads: usize,
    ) -> Self {
        assert!(num_threads >= 1, "need at least one worker thread");
        let inner = WarpLda::new(corpus, params, config, seed);
        let workers = (0..num_threads)
            .map(|_| WorkerScratch::new(params.num_topics, inner.max_visit_len))
            .collect();
        let col_cursor = ChunkCursor::for_workers(inner.vocab_size, num_threads);
        let row_cursor = ChunkCursor::for_workers(inner.matrix.num_rows(), num_threads);
        Self {
            inner,
            num_threads,
            seed,
            workers,
            col_cursor,
            row_cursor,
            last_phase_secs: (0.0, 0.0),
        }
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Read-only access to the wrapped serial sampler.
    pub fn inner(&self) -> &WarpLda<NoProbe> {
        &self.inner
    }

    /// The global topic counts `c_k`.
    pub fn topic_counts(&self) -> &[u32] {
        &self.inner.topic_counts
    }

    /// Wall seconds of the most recent `(word phase, doc phase)`.
    pub fn last_phase_seconds(&self) -> (f64, f64) {
        self.last_phase_secs
    }

    fn parallel_word_phase(&mut self) {
        let k = self.inner.params.num_topics;
        let m = self.inner.config.mh_steps;
        let stride = m + 1;
        let beta = self.inner.params.beta;
        let beta_bar = self.inner.beta_bar;
        let use_hash = self.inner.config.use_hash_counts;
        // Word-phase stream root for this iteration; per-column streams hang
        // off it, so results are independent of chunk scheduling.
        let phase_seed = split_seed(self.seed, self.inner.iterations * 2);

        self.col_cursor.reset();
        let Self { inner, workers, col_cursor, .. } = self;
        let region_cw = inner.region_cw;
        let region_ck = inner.region_ck;
        let matrix = &inner.matrix;
        let ck: &[u32] = &inner.topic_counts;
        let rec_ptr = SendPtr(inner.records.as_mut_ptr());

        thread::scope(|scope| {
            for ws in workers.iter_mut() {
                let cursor = &*col_cursor;
                scope.spawn(move |_| {
                    let rec_ptr = rec_ptr;
                    let mut probe = NoProbe;
                    ws.partial_ck.fill(0);
                    while let Some(chunk) = cursor.claim() {
                        for w in chunk {
                            let range = matrix.col_entry_range(w as u32);
                            let len = range.len();
                            if len == 0 {
                                continue;
                            }
                            let mut rng = new_rng(split_seed(phase_seed, w as u64));
                            // SAFETY: column w's records are the contiguous
                            // block `range.start * stride ..`, and every
                            // column is claimed by exactly one worker.
                            let block = unsafe {
                                std::slice::from_raw_parts_mut(
                                    rec_ptr.0.add(range.start * stride),
                                    len * stride,
                                )
                            };
                            process_word_column(
                                block,
                                m,
                                k,
                                beta,
                                beta_bar,
                                ck,
                                &mut ws.partial_ck,
                                &mut ws.scratch,
                                use_hash,
                                &mut rng,
                                &mut probe,
                                region_cw,
                                region_ck,
                            );
                        }
                    }
                });
            }
        })
        .expect("word-phase worker panicked");

        reduce_partials(&mut self.inner.next_topic_counts, &self.workers, self.num_threads);
        self.inner.swap_topic_counts();
    }

    fn parallel_doc_phase(&mut self) {
        let k = self.inner.params.num_topics;
        let alpha = self.inner.params.alpha;
        let alpha_bar = self.inner.params.alpha_bar();
        let beta_bar = self.inner.beta_bar;
        let use_hash = self.inner.config.use_hash_counts;
        let phase_seed = split_seed(self.seed, self.inner.iterations * 2 + 1);

        self.row_cursor.reset();
        let Self { inner, workers, row_cursor, .. } = self;
        let region_cd = inner.region_cd;
        let region_ck = inner.region_ck;
        let matrix = &inner.matrix;
        let ck: &[u32] = &inner.topic_counts;
        let recs = RecPtr::new(&mut inner.records);

        thread::scope(|scope| {
            for ws in workers.iter_mut() {
                let cursor = &*row_cursor;
                scope.spawn(move |_| {
                    let recs = recs;
                    let mut probe = NoProbe;
                    ws.partial_ck.fill(0);
                    while let Some(chunk) = cursor.claim() {
                        for d in chunk {
                            let entries = matrix.row_entry_ids(d as u32);
                            let len = entries.len();
                            if len == 0 {
                                continue;
                            }
                            let mut rng = new_rng(split_seed(phase_seed, d as u64));
                            // SAFETY: every entry id belongs to exactly one
                            // row and each row is claimed by exactly one
                            // worker, so no record is touched by two threads.
                            unsafe {
                                super::process_doc_row(
                                    entries,
                                    recs,
                                    k,
                                    alpha,
                                    alpha_bar,
                                    beta_bar,
                                    ck,
                                    &mut ws.partial_ck,
                                    &mut ws.scratch,
                                    use_hash,
                                    &mut rng,
                                    &mut probe,
                                    region_cd,
                                    region_ck,
                                );
                            }
                        }
                    }
                });
            }
        })
        .expect("doc-phase worker panicked");

        reduce_partials(&mut self.inner.next_topic_counts, &self.workers, self.num_threads);
        self.inner.swap_topic_counts();
    }
}

/// Merges the per-worker partial `c_k` vectors into `next` by a striped
/// reduction: each reducer owns a contiguous stripe of topics and sums every
/// worker's partial over it, so the phase-boundary merge parallelizes across
/// `num_threads` instead of serializing on one core. Integer addition
/// commutes, so the result is identical to a serial merge. Small topic
/// vectors are merged inline — a thread spawn costs more than the merge.
fn reduce_partials(next: &mut [u32], workers: &[WorkerScratch], num_threads: usize) {
    let k = next.len();
    // Below this many total additions the spawns dominate the merge itself:
    // a scoped-thread spawn plus join costs on the order of 10^2 µs while
    // the inline merge moves ~4 additions per nanosecond, so the crossover
    // sits in the millions of additions, not thousands.
    const PARALLEL_REDUCE_MIN: usize = 1 << 22;
    if num_threads == 1 || k * workers.len() < PARALLEL_REDUCE_MIN {
        for ws in workers {
            for (dst, &src) in next.iter_mut().zip(&ws.partial_ck) {
                *dst += src;
            }
        }
        return;
    }
    let stripe = k.div_ceil(num_threads);
    thread::scope(|scope| {
        for (i, chunk) in next.chunks_mut(stripe).enumerate() {
            let offset = i * stripe;
            scope.spawn(move |_| {
                for ws in workers {
                    let src = &ws.partial_ck[offset..offset + chunk.len()];
                    for (dst, &s) in chunk.iter_mut().zip(src) {
                        *dst += s;
                    }
                }
            });
        }
    })
    .expect("reduction worker panicked");
}

impl Sampler for ParallelWarpLda {
    fn name(&self) -> &'static str {
        "WarpLDA (parallel)"
    }

    fn params(&self) -> &ModelParams {
        &self.inner.params
    }

    fn run_iteration(&mut self) {
        let t0 = std::time::Instant::now();
        self.parallel_word_phase();
        self.last_phase_secs.0 = t0.elapsed().as_secs_f64();
        let t1 = std::time::Instant::now();
        self.parallel_doc_phase();
        self.last_phase_secs.1 = t1.elapsed().as_secs_f64();
        self.inner.iterations += 1;
    }

    fn iterations(&self) -> u64 {
        self.inner.iterations
    }

    fn assignments(&self) -> Vec<u32> {
        self.inner.assignments()
    }

    fn last_iteration_phase_seconds(&self) -> Option<f64> {
        Some(self.last_phase_secs.0 + self.last_phase_secs.1)
    }
}

impl Checkpointable for ParallelWarpLda {
    fn checkpoint_kind(&self) -> &'static str {
        "warplda-parallel"
    }

    fn write_state(&self, enc: &mut Encoder<'_>) -> CodecResult<()> {
        enc.write_u64(self.seed)?;
        self.inner.write_state(enc)
    }

    fn read_state(&mut self, dec: &mut Decoder<'_>) -> CodecResult<()> {
        // Per-entity RNG streams are a pure function of (seed, iteration,
        // phase, entity), so continuation is bit-identical under *any*
        // thread count — unlike the v1 format, which had per-worker streams
        // and had to reject thread-count mismatches.
        let seed = dec.read_u64()?;
        self.inner.read_state(dec)?;
        self.seed = seed;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::log_joint_likelihood;
    use warplda_corpus::{CorpusBuilder, DatasetPreset, DocMajorView, WordMajorView};

    fn themed_corpus() -> Corpus {
        let mut b = CorpusBuilder::new();
        for i in 0..40 {
            if i % 2 == 0 {
                b.push_text_doc(["wine", "grape", "cellar", "cork", "wine", "vineyard"]);
            } else {
                b.push_text_doc(["code", "bug", "compile", "test", "code", "debug"]);
            }
        }
        b.build().unwrap()
    }

    fn ll_of<S: Sampler>(s: &S, corpus: &Corpus) -> f64 {
        let dv = DocMajorView::build(corpus);
        let wv = WordMajorView::build(corpus, &dv);
        log_joint_likelihood(corpus, &dv, &wv, s.params(), &s.assignments())
    }

    #[test]
    fn topic_counts_match_assignments_after_parallel_iterations() {
        let corpus = DatasetPreset::Tiny.generate_scaled(4);
        let params = ModelParams::new(8, 0.5, 0.1);
        let mut s = ParallelWarpLda::new(&corpus, params, WarpLdaConfig::with_mh_steps(2), 3, 4);
        for _ in 0..3 {
            s.run_iteration();
            let hist = super::super::topic_histogram(s.inner());
            assert_eq!(s.inner().topic_counts(), &hist[..]);
        }
    }

    #[test]
    fn parallel_converges_like_serial() {
        let corpus = themed_corpus();
        let params = ModelParams::new(2, 0.5, 0.1);
        let mut serial = WarpLda::new(&corpus, params, WarpLdaConfig::with_mh_steps(4), 7);
        let mut parallel =
            ParallelWarpLda::new(&corpus, params, WarpLdaConfig::with_mh_steps(4), 7, 4);
        for _ in 0..40 {
            serial.run_iteration();
            parallel.run_iteration();
        }
        let ll_s = ll_of(&serial, &corpus);
        let ll_p = ll_of(&parallel, &corpus);
        assert!(
            (ll_s - ll_p).abs() < 0.05 * ll_s.abs(),
            "parallel ({ll_p}) should converge like serial ({ll_s})"
        );
    }

    #[test]
    fn thread_count_does_not_change_assignments() {
        // Per-entity RNG streams make the execution independent of both the
        // worker count and the chunk scheduling: any thread count produces
        // bit-identical assignments.
        let corpus = DatasetPreset::Tiny.generate_scaled(8);
        let params = ModelParams::new(5, 0.5, 0.1);
        let mut reference = ParallelWarpLda::new(&corpus, params, WarpLdaConfig::default(), 11, 1);
        for _ in 0..2 {
            reference.run_iteration();
        }
        for threads in [2usize, 3, 8] {
            let mut other =
                ParallelWarpLda::new(&corpus, params, WarpLdaConfig::default(), 11, threads);
            for _ in 0..2 {
                other.run_iteration();
            }
            assert_eq!(
                reference.assignments(),
                other.assignments(),
                "{threads} threads must match 1 thread bit for bit"
            );
        }
    }

    #[test]
    fn deterministic_for_fixed_seed_and_thread_count() {
        let corpus = DatasetPreset::Tiny.generate_scaled(8);
        let params = ModelParams::new(5, 0.5, 0.1);
        let mut a = ParallelWarpLda::new(&corpus, params, WarpLdaConfig::default(), 13, 3);
        let mut b = ParallelWarpLda::new(&corpus, params, WarpLdaConfig::default(), 13, 3);
        for _ in 0..2 {
            a.run_iteration();
            b.run_iteration();
        }
        assert_eq!(a.assignments(), b.assignments());
    }

    #[test]
    fn checkpoint_resumes_under_a_different_thread_count() {
        use crate::checkpoint::{read_checkpoint, write_checkpoint};
        let corpus = DatasetPreset::Tiny.generate_scaled(4);
        let params = ModelParams::new(4, 0.5, 0.1);
        let mut a = ParallelWarpLda::new(&corpus, params, WarpLdaConfig::default(), 1, 3);
        a.run_iteration();
        let mut buf = Vec::new();
        write_checkpoint(&a, None, &mut buf).unwrap();
        // Per-entity streams make continuation thread-count independent: the
        // 2-thread resume must continue exactly like the 3-thread original.
        let mut b = ParallelWarpLda::new(&corpus, params, WarpLdaConfig::default(), 99, 2);
        read_checkpoint(&mut b, &mut buf.as_slice()).unwrap();
        assert_eq!(a.assignments(), b.assignments());
        a.run_iteration();
        b.run_iteration();
        assert_eq!(a.assignments(), b.assignments(), "continuation must be bit-identical");
    }

    #[test]
    fn striped_reduction_matches_inline_merge() {
        // Large enough that k * workers crosses PARALLEL_REDUCE_MIN, so the
        // striped (spawning) branch actually runs, including its ragged
        // final stripe (num_threads does not divide k).
        let k = 1 << 21;
        let workers: Vec<WorkerScratch> = (0..2u32)
            .map(|w| WorkerScratch {
                partial_ck: (0..k as u32).map(|t| t.wrapping_mul(w + 1) % 97).collect(),
                scratch: PhaseScratch::new(4, 1),
            })
            .collect();
        let mut expected = vec![0u32; k];
        for ws in &workers {
            for (dst, &src) in expected.iter_mut().zip(&ws.partial_ck) {
                *dst += src;
            }
        }
        let mut striped = vec![0u32; k];
        reduce_partials(&mut striped, &workers, 3);
        assert_eq!(striped, expected);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let corpus = DatasetPreset::Tiny.generate_scaled(10);
        let _ = ParallelWarpLda::new(
            &corpus,
            ModelParams::new(4, 0.5, 0.1),
            WarpLdaConfig::default(),
            1,
            0,
        );
    }
}
