//! The per-process building block of *real* (multi-process) distributed
//! WarpLDA training.
//!
//! A [`ShardedWarpLda`] is a full WarpLDA sampler replicated on every
//! process: each worker constructs it from the same corpus, parameters and
//! seed, so all replicas start bit-identical. During an iteration a worker
//! only *advances* its own shard — the columns (word phase) or rows (doc
//! phase) a `GridPartition` assigned to it — and exchanges the changed
//! records plus its partial `c_k` with the coordinator at phase boundaries.
//!
//! The determinism argument mirrors the in-process parallel driver
//! ([`super::parallel`]): every column and row derives its RNG stream purely
//! from `(seed, iteration, phase, entity)` via
//! [`warplda_sampling::split_seed`], within a phase the global `c_k` is
//! read-only and each entity's records are touched exactly once, and the
//! partial `c_k` vectors merge by commutative integer addition. Any
//! partitioning of the entities across processes therefore reproduces
//! [`super::parallel::ParallelWarpLda`] bit for bit, provided every replica
//! installs the same merged `c_k` at each phase boundary and receives the
//! records of entities it does not own before it needs them (word-phase
//! output feeds the doc phase through rows; doc-phase output feeds the next
//! word phase through columns).
//!
//! The sampler also implements [`Sampler`] by running both phases over *all*
//! entities — a one-process cluster — which is what the differential suites
//! compare against the parallel oracle, and [`Checkpointable`] under the
//! same kind and layout as `ParallelWarpLda`, so a checkpoint written by
//! either backend resumes under the other.

use rand::rngs::SmallRng;

use warplda_cachesim::NoProbe;
use warplda_corpus::io::codec::{CodecError, CodecResult, Decoder, Encoder};
use warplda_corpus::Corpus;
use warplda_sampling::{new_rng, split_seed};
use warplda_sparse::PackedRecords;

use crate::checkpoint::Checkpointable;
use crate::params::ModelParams;
use crate::sampler::Sampler;

use super::{process_word_column, RecPtr, WarpLda, WarpLdaConfig};

/// A WarpLDA replica that advances only the columns/rows it is told to own,
/// with explicit record import/export and `c_k` installation for the
/// distributed runtime to drive.
pub struct ShardedWarpLda {
    inner: WarpLda<NoProbe>,
    seed: u64,
}

impl ShardedWarpLda {
    /// Creates a replica. Every process of a cluster must call this with the
    /// same corpus, parameters, configuration and seed so the replicas start
    /// bit-identical (the initial state is a pure function of those inputs).
    pub fn new(corpus: &Corpus, params: ModelParams, config: WarpLdaConfig, seed: u64) -> Self {
        Self { inner: WarpLda::new(corpus, params, config, seed), seed }
    }

    /// The model parameters.
    pub fn params(&self) -> &ModelParams {
        &self.inner.params
    }

    /// The sampler configuration.
    pub fn config(&self) -> &WarpLdaConfig {
        &self.inner.config
    }

    /// The seed the per-entity RNG streams derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Completed iterations (the epoch counter of the distributed protocol).
    pub fn iterations(&self) -> u64 {
        self.inner.iterations
    }

    /// The global topic counts as of the last installed phase boundary.
    pub fn topic_counts(&self) -> &[u32] {
        &self.inner.topic_counts
    }

    /// Number of documents (matrix rows).
    pub fn num_docs(&self) -> usize {
        self.inner.matrix.num_rows()
    }

    /// Number of vocabulary words (matrix columns).
    pub fn num_words(&self) -> usize {
        self.inner.vocab_size
    }

    /// Number of token entries.
    pub fn num_entries(&self) -> usize {
        self.inner.matrix.num_entries()
    }

    /// Words per packed record (`M + 1`).
    pub fn stride(&self) -> usize {
        self.inner.records.stride()
    }

    /// Entry ids of document `d`, in row order.
    pub fn row_entry_ids(&self, d: u32) -> &[u32] {
        self.inner.matrix.row_entry_ids(d)
    }

    /// Word id of each entry of document `d`, aligned with
    /// [`row_entry_ids`](Self::row_entry_ids).
    pub fn row_entry_cols(&self, d: u32) -> &[u32] {
        self.inner.matrix.row_entry_cols(d)
    }

    /// The contiguous entry-id range of word `w`'s column.
    pub fn col_entry_range(&self, w: u32) -> std::ops::Range<usize> {
        self.inner.matrix.col_entry_range(w)
    }

    /// Document id of each entry of word `w`'s column, in entry order.
    pub fn col_entry_rows(&self, w: u32) -> &[u32] {
        self.inner.matrix.col_entry_rows(w)
    }

    /// The full packed record buffer (for building resume payloads).
    pub fn records_slice(&self) -> &[u32] {
        self.inner.records.as_slice()
    }

    /// Runs the word phase over the owned columns `words` only, accumulating
    /// the updated counts of those columns into `partial_ck` (zeroed first).
    /// The global `c_k` read by the MH chains is whatever the last
    /// [`install_topic_counts`](Self::install_topic_counts) installed.
    /// `words` must be distinct; results are independent of their order.
    pub fn run_word_phase_shard(&mut self, words: &[u32], partial_ck: &mut [u32]) {
        let k = self.inner.params.num_topics;
        assert_eq!(partial_ck.len(), k, "partial c_k must have one slot per topic");
        let m = self.inner.config.mh_steps;
        let beta = self.inner.params.beta;
        let beta_bar = self.inner.beta_bar;
        let use_hash = self.inner.config.use_hash_counts;
        let region_cw = self.inner.region_cw;
        let region_ck = self.inner.region_ck;
        // Same stream roots as the parallel driver: the shard boundary must
        // not show up in the sampled values.
        let phase_seed = split_seed(self.seed, self.inner.iterations * 2);
        partial_ck.fill(0);

        let WarpLda { matrix, records, topic_counts, scratch, probe, .. } = &mut self.inner;
        for &w in words {
            let range = matrix.col_entry_range(w);
            if range.is_empty() {
                continue;
            }
            let mut rng: SmallRng = new_rng(split_seed(phase_seed, w as u64));
            let block = records.block_mut(range);
            process_word_column(
                block,
                m,
                k,
                beta,
                beta_bar,
                topic_counts,
                partial_ck,
                scratch,
                use_hash,
                &mut rng,
                probe,
                region_cw,
                region_ck,
            );
        }
    }

    /// Runs the doc phase over the owned rows `docs` only, accumulating into
    /// `partial_ck` (zeroed first). Same contract as
    /// [`run_word_phase_shard`](Self::run_word_phase_shard).
    pub fn run_doc_phase_shard(&mut self, docs: &[u32], partial_ck: &mut [u32]) {
        let k = self.inner.params.num_topics;
        assert_eq!(partial_ck.len(), k, "partial c_k must have one slot per topic");
        let alpha = self.inner.params.alpha;
        let alpha_bar = self.inner.params.alpha_bar();
        let beta_bar = self.inner.beta_bar;
        let use_hash = self.inner.config.use_hash_counts;
        let region_cd = self.inner.region_cd;
        let region_ck = self.inner.region_ck;
        let phase_seed = split_seed(self.seed, self.inner.iterations * 2 + 1);
        partial_ck.fill(0);

        let WarpLda { matrix, records, topic_counts, scratch, probe, .. } = &mut self.inner;
        let recs = RecPtr::new(records);
        for &d in docs {
            let entries = matrix.row_entry_ids(d);
            if entries.is_empty() {
                continue;
            }
            let mut rng: SmallRng = new_rng(split_seed(phase_seed, d as u64));
            // SAFETY: `recs` wraps the exclusively borrowed `records`, the
            // loop is serial and the caller passes distinct rows, so each
            // record is touched once.
            unsafe {
                super::process_doc_row(
                    entries,
                    recs,
                    k,
                    alpha,
                    alpha_bar,
                    beta_bar,
                    topic_counts,
                    partial_ck,
                    scratch,
                    use_hash,
                    &mut rng,
                    probe,
                    region_cd,
                    region_ck,
                );
            }
        }
    }

    /// Installs the merged global `c_k` of a phase boundary (the sum of every
    /// worker's partial). Mirrors the parallel driver's reduce-then-swap.
    pub fn install_topic_counts(&mut self, ck: &[u32]) {
        assert_eq!(ck.len(), self.inner.params.num_topics, "c_k must have one slot per topic");
        self.inner.topic_counts.copy_from_slice(ck);
        self.inner.next_topic_counts.fill(0);
    }

    /// Advances the epoch counter once both phases of an iteration have run
    /// and their boundaries were installed.
    pub fn advance_iteration(&mut self) {
        self.inner.iterations += 1;
    }

    /// Appends the packed records of `entries` (in that order) to `out`
    /// (cleared first): `entries.len() × stride` words.
    pub fn export_records(&self, entries: &[u32], out: &mut Vec<u32>) {
        out.clear();
        out.reserve(entries.len() * self.stride());
        for &e in entries {
            out.extend_from_slice(self.inner.records.record(e as usize));
        }
    }

    /// Overwrites the packed records of `entries` (in that order) with
    /// `words`, the wire form produced by
    /// [`export_records`](Self::export_records) on the owning peer. Length
    /// and topic-range mismatches are typed corruption errors — this is the
    /// validation gate for record payloads arriving off the wire.
    pub fn import_records(&mut self, entries: &[u32], words: &[u32]) -> CodecResult<()> {
        let stride = self.stride();
        if words.len() != entries.len() * stride {
            return Err(CodecError::Corrupt(format!(
                "record delta holds {} words but {} entries × stride {stride} need {}",
                words.len(),
                entries.len(),
                entries.len() * stride,
            )));
        }
        let k = self.inner.params.num_topics;
        if let Some(&bad) = words.iter().find(|&&t| t as usize >= k) {
            return Err(CodecError::Corrupt(format!(
                "record delta topic {bad} out of range (K = {k})"
            )));
        }
        for (rec, &e) in words.chunks_exact(stride).zip(entries) {
            self.inner.records.record_mut(e as usize).copy_from_slice(rec);
        }
        Ok(())
    }

    /// Replaces the full sampler state (epoch, packed records, `c_k`) — how a
    /// worker adopts a resume payload the coordinator read from a checkpoint.
    /// Validates the same structural invariants as checkpoint decoding.
    pub fn restore(
        &mut self,
        iterations: u64,
        records: &[u32],
        topic_counts: &[u32],
    ) -> CodecResult<()> {
        let stride = self.stride();
        let entries = self.num_entries();
        let k = self.inner.params.num_topics;
        if records.len() != entries * stride {
            return Err(CodecError::Corrupt(format!(
                "resume state holds {} record words but the corpus needs {} \
                 ({entries} entries × stride {stride})",
                records.len(),
                entries * stride,
            )));
        }
        if let Some(&bad) = records.iter().find(|&&t| t as usize >= k) {
            return Err(CodecError::Corrupt(format!(
                "resume record topic {bad} out of range (K = {k})"
            )));
        }
        if topic_counts.len() != k {
            return Err(CodecError::Corrupt(format!(
                "resume c_k has {} slots for K = {k}",
                topic_counts.len()
            )));
        }
        let mut hist = vec![0u32; k];
        for &t in records.iter().step_by(stride) {
            hist[t as usize] += 1;
        }
        if topic_counts != hist {
            return Err(CodecError::Corrupt(
                "resume c_k does not match the assignment histogram".to_string(),
            ));
        }
        self.inner.records = PackedRecords::from_raw(records.to_vec(), stride);
        self.inner.topic_counts = topic_counts.to_vec();
        self.inner.next_topic_counts.fill(0);
        self.inner.iterations = iterations;
        Ok(())
    }
}

impl Sampler for ShardedWarpLda {
    fn name(&self) -> &'static str {
        "WarpLDA (sharded)"
    }

    fn params(&self) -> &ModelParams {
        &self.inner.params
    }

    /// A one-process cluster: both phases over all entities, each boundary
    /// installing the (trivially merged) partial. Bit-identical to
    /// [`super::parallel::ParallelWarpLda`] under any thread count.
    fn run_iteration(&mut self) {
        let k = self.inner.params.num_topics;
        let mut partial = vec![0u32; k];
        let all_words: Vec<u32> = (0..self.num_words() as u32).collect();
        self.run_word_phase_shard(&all_words, &mut partial);
        self.install_topic_counts(&partial);
        let all_docs: Vec<u32> = (0..self.num_docs() as u32).collect();
        self.run_doc_phase_shard(&all_docs, &mut partial);
        self.install_topic_counts(&partial);
        self.advance_iteration();
    }

    fn iterations(&self) -> u64 {
        self.inner.iterations
    }

    fn assignments(&self) -> Vec<u32> {
        self.inner.assignments()
    }
}

impl Checkpointable for ShardedWarpLda {
    /// Same kind and layout as `ParallelWarpLda`: a checkpoint written by the
    /// in-process parallel backend resumes under the distributed one and
    /// vice versa (continuation is backend- and worker-count independent).
    fn checkpoint_kind(&self) -> &'static str {
        "warplda-parallel"
    }

    fn write_state(&self, enc: &mut Encoder<'_>) -> CodecResult<()> {
        enc.write_u64(self.seed)?;
        self.inner.write_state(enc)
    }

    fn read_state(&mut self, dec: &mut Decoder<'_>) -> CodecResult<()> {
        let seed = dec.read_u64()?;
        self.inner.read_state(dec)?;
        self.seed = seed;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::parallel::ParallelWarpLda;
    use super::*;
    use crate::checkpoint::{read_checkpoint, write_checkpoint};
    use warplda_corpus::DatasetPreset;

    fn setup() -> (Corpus, ModelParams, WarpLdaConfig) {
        let corpus = DatasetPreset::Tiny.generate_scaled(4);
        (corpus, ModelParams::new(6, 0.5, 0.1), WarpLdaConfig::with_mh_steps(2))
    }

    #[test]
    fn full_ownership_run_matches_the_parallel_oracle() {
        let (corpus, params, config) = setup();
        let mut sharded = ShardedWarpLda::new(&corpus, params, config, 21);
        let mut oracle = ParallelWarpLda::new(&corpus, params, config, 21, 3);
        for _ in 0..3 {
            sharded.run_iteration();
            oracle.run_iteration();
            assert_eq!(sharded.assignments(), oracle.assignments());
            assert_eq!(sharded.topic_counts(), oracle.inner().topic_counts());
        }
    }

    #[test]
    fn two_replicas_with_record_exchange_match_the_oracle() {
        // An in-process rehearsal of the distributed protocol: two replicas,
        // words and docs split between them, records exchanged in full and
        // partials merged at each phase boundary.
        let (corpus, params, config) = setup();
        let seed = 33;
        let mut a = ShardedWarpLda::new(&corpus, params, config, seed);
        let mut b = ShardedWarpLda::new(&corpus, params, config, seed);
        let mut oracle = ParallelWarpLda::new(&corpus, params, config, seed, 2);

        let words_a: Vec<u32> = (0..a.num_words() as u32 / 2).collect();
        let words_b: Vec<u32> = (a.num_words() as u32 / 2..a.num_words() as u32).collect();
        let docs_a: Vec<u32> = (0..a.num_docs() as u32 / 2).collect();
        let docs_b: Vec<u32> = (a.num_docs() as u32 / 2..a.num_docs() as u32).collect();
        let entries_of_words = |s: &ShardedWarpLda, words: &[u32]| -> Vec<u32> {
            words.iter().flat_map(|&w| s.col_entry_range(w)).map(|e| e as u32).collect()
        };
        let entries_of_docs = |s: &ShardedWarpLda, docs: &[u32]| -> Vec<u32> {
            docs.iter().flat_map(|&d| s.row_entry_ids(d).iter().copied()).collect()
        };
        let ea_w = entries_of_words(&a, &words_a);
        let eb_w = entries_of_words(&b, &words_b);
        let ea_d = entries_of_docs(&a, &docs_a);
        let eb_d = entries_of_docs(&b, &docs_b);

        let k = params.num_topics;
        let (mut pa, mut pb) = (vec![0u32; k], vec![0u32; k]);
        let mut wire = Vec::new();
        for _ in 0..3 {
            // Word phase on each replica's shard, then cross-import.
            a.run_word_phase_shard(&words_a, &mut pa);
            b.run_word_phase_shard(&words_b, &mut pb);
            let merged: Vec<u32> = pa.iter().zip(&pb).map(|(x, y)| x + y).collect();
            a.export_records(&ea_w, &mut wire);
            b.import_records(&ea_w, &wire).unwrap();
            b.export_records(&eb_w, &mut wire);
            a.import_records(&eb_w, &wire).unwrap();
            a.install_topic_counts(&merged);
            b.install_topic_counts(&merged);

            // Doc phase, same dance.
            a.run_doc_phase_shard(&docs_a, &mut pa);
            b.run_doc_phase_shard(&docs_b, &mut pb);
            let merged: Vec<u32> = pa.iter().zip(&pb).map(|(x, y)| x + y).collect();
            a.export_records(&ea_d, &mut wire);
            b.import_records(&ea_d, &wire).unwrap();
            b.export_records(&eb_d, &mut wire);
            a.import_records(&eb_d, &wire).unwrap();
            a.install_topic_counts(&merged);
            b.install_topic_counts(&merged);
            a.advance_iteration();
            b.advance_iteration();

            oracle.run_iteration();
            assert_eq!(a.assignments(), oracle.assignments());
            assert_eq!(b.assignments(), oracle.assignments());
            assert_eq!(a.topic_counts(), oracle.inner().topic_counts());
        }
    }

    #[test]
    fn import_rejects_malformed_deltas_with_typed_errors() {
        let (corpus, params, config) = setup();
        let mut s = ShardedWarpLda::new(&corpus, params, config, 5);
        let stride = s.stride();
        // Wrong length.
        let err = s.import_records(&[0, 1], &vec![0u32; stride]).unwrap_err();
        assert!(matches!(err, CodecError::Corrupt(_)), "{err}");
        // Topic out of range.
        let err = s.import_records(&[0], &vec![params.num_topics as u32; stride]).unwrap_err();
        assert!(matches!(err, CodecError::Corrupt(_)), "{err}");
        // Restore with a c_k that is not the assignment histogram.
        let records = s.records_slice().to_vec();
        let mut bad_ck = s.topic_counts().to_vec();
        bad_ck[0] = bad_ck[0].wrapping_add(1);
        let err = s.restore(0, &records, &bad_ck).unwrap_err();
        assert!(matches!(err, CodecError::Corrupt(_)), "{err}");
    }

    #[test]
    fn checkpoints_interoperate_with_the_parallel_backend() {
        let (corpus, params, config) = setup();
        let mut parallel = ParallelWarpLda::new(&corpus, params, config, 9, 3);
        parallel.run_iteration();
        let mut buf = Vec::new();
        write_checkpoint(&parallel, None, &mut buf).unwrap();

        let mut sharded = ShardedWarpLda::new(&corpus, params, config, 777);
        read_checkpoint(&mut sharded, &mut buf.as_slice()).unwrap();
        assert_eq!(sharded.seed(), 9, "the checkpoint seed governs continuation");
        assert_eq!(sharded.assignments(), parallel.assignments());
        sharded.run_iteration();
        parallel.run_iteration();
        assert_eq!(sharded.assignments(), parallel.assignments());

        // And back: a sharded checkpoint resumes the parallel backend.
        let mut buf = Vec::new();
        write_checkpoint(&sharded, None, &mut buf).unwrap();
        let mut parallel2 = ParallelWarpLda::new(&corpus, params, config, 1, 2);
        read_checkpoint(&mut parallel2, &mut buf.as_slice()).unwrap();
        sharded.run_iteration();
        parallel2.run_iteration();
        assert_eq!(sharded.assignments(), parallel2.assignments());
    }
}
