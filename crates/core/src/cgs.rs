//! Plain collapsed Gibbs sampling (Griffiths & Steyvers), the O(K)-per-token
//! reference everything else is measured against (Section 2.1, Eq. 1).

use rand::rngs::SmallRng;

use warplda_corpus::{Corpus, DocMajorView, WordMajorView};
use warplda_sampling::{new_rng, sample_unnormalized};

use crate::checkpoint::{self, Checkpointable};
use crate::params::ModelParams;
use crate::sampler::Sampler;
use crate::state::SamplerState;
use warplda_corpus::io::codec::{CodecResult, Decoder, Encoder};

/// The exact collapsed Gibbs sampler: for every token it removes the token
/// from the counts, evaluates the full conditional
/// `p(z = k) ∝ (C¬_dk + α)(C¬_wk + β)/(C¬_k + β̄)` for all `K` topics and
/// draws from it.
pub struct CollapsedGibbs {
    params: ModelParams,
    doc_view: DocMajorView,
    word_view: WordMajorView,
    state: SamplerState,
    rng: SmallRng,
    iterations: u64,
    beta_bar: f64,
    /// Reusable O(K) weight buffer.
    weights: Vec<f64>,
}

impl CollapsedGibbs {
    /// Creates a sampler with random initial assignments.
    pub fn new(corpus: &Corpus, params: ModelParams, seed: u64) -> Self {
        let doc_view = DocMajorView::build(corpus);
        let word_view = WordMajorView::build(corpus, &doc_view);
        let mut rng = new_rng(seed);
        let state = SamplerState::init_random(corpus, &doc_view, &word_view, params, &mut rng);
        let beta_bar = params.beta_bar(corpus.vocab_size());
        let weights = vec![0.0; params.num_topics];
        Self { params, doc_view, word_view, state, rng, iterations: 0, beta_bar, weights }
    }

    /// The current state (counts + assignments).
    pub fn state(&self) -> &SamplerState {
        &self.state
    }

    /// The document-major view the sampler iterates over.
    pub fn doc_view(&self) -> &DocMajorView {
        &self.doc_view
    }

    /// The word-major view (used by evaluation helpers).
    pub fn word_view(&self) -> &WordMajorView {
        &self.word_view
    }
}

impl Sampler for CollapsedGibbs {
    fn name(&self) -> &'static str {
        "CGS"
    }

    fn params(&self) -> &ModelParams {
        &self.params
    }

    fn run_iteration(&mut self) {
        let k = self.params.num_topics;
        let alpha = self.params.alpha;
        let beta = self.params.beta;
        for d in 0..self.doc_view.num_docs() {
            let d = d as u32;
            for i in self.doc_view.doc_range(d) {
                let w = self.doc_view.word_of(i);
                self.state.remove_token(d, w, i);
                for t in 0..k as u32 {
                    let cdk = self.state.doc_topic(d, t) as f64;
                    let cwk = self.state.word_topic(w, t) as f64;
                    let ck = self.state.topic(t) as f64;
                    self.weights[t as usize] = (cdk + alpha) * (cwk + beta) / (ck + self.beta_bar);
                }
                let new = sample_unnormalized(&mut self.rng, &self.weights) as u32;
                self.state.assign_token(d, w, i, new);
            }
        }
        self.iterations += 1;
    }

    fn iterations(&self) -> u64 {
        self.iterations
    }

    fn assignments(&self) -> Vec<u32> {
        self.state.assignments().to_vec()
    }

    fn assignments_slice(&self) -> Option<&[u32]> {
        Some(self.state.assignments())
    }
}

impl Checkpointable for CollapsedGibbs {
    fn checkpoint_kind(&self) -> &'static str {
        "cgs"
    }

    fn write_state(&self, enc: &mut Encoder<'_>) -> CodecResult<()> {
        checkpoint::write_baseline_body(enc, self.iterations, &self.rng, &self.state)
    }

    fn read_state(&mut self, dec: &mut Decoder<'_>) -> CodecResult<()> {
        let (iterations, rng, z) = checkpoint::read_baseline_body(
            dec,
            self.doc_view.num_tokens(),
            self.params.num_topics,
        )?;
        self.state = SamplerState::from_assignments_with_views(
            &self.doc_view,
            &self.word_view,
            self.params,
            z,
        );
        self.rng = rng;
        self.iterations = iterations;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::log_joint_likelihood_of_state;
    use warplda_corpus::{CorpusBuilder, DatasetPreset};

    fn two_topic_corpus() -> Corpus {
        let mut b = CorpusBuilder::new();
        for _ in 0..30 {
            b.push_text_doc(["cat", "dog", "pet", "kitten", "cat", "dog"]);
            b.push_text_doc(["stock", "bond", "market", "trade", "stock", "bond"]);
        }
        b.build().unwrap()
    }

    #[test]
    fn counts_stay_consistent_across_iterations() {
        let corpus = two_topic_corpus();
        let mut s = CollapsedGibbs::new(&corpus, ModelParams::new(4, 0.5, 0.1), 7);
        for _ in 0..3 {
            s.run_iteration();
            let dv = s.doc_view().clone();
            let wv = s.word_view().clone();
            s.state().assert_consistent(&dv, &wv);
        }
        assert_eq!(s.iterations(), 3);
    }

    #[test]
    fn likelihood_improves_from_random_initialization() {
        let corpus = two_topic_corpus();
        let mut s = CollapsedGibbs::new(&corpus, ModelParams::new(2, 0.5, 0.1), 11);
        let ll0 = log_joint_likelihood_of_state(s.doc_view(), s.word_view(), s.state());
        for _ in 0..20 {
            s.run_iteration();
        }
        let ll1 = log_joint_likelihood_of_state(s.doc_view(), s.word_view(), s.state());
        assert!(ll1 > ll0 + 5.0, "likelihood should improve: {ll0} -> {ll1}");
    }

    #[test]
    fn separates_two_planted_topics() {
        let corpus = two_topic_corpus();
        let mut s = CollapsedGibbs::new(&corpus, ModelParams::new(2, 0.5, 0.1), 13);
        for _ in 0..30 {
            s.run_iteration();
        }
        // "cat" and "stock" should end up dominated by different topics.
        let cat = corpus.vocab().get("cat").unwrap();
        let stock = corpus.vocab().get("stock").unwrap();
        let cat_topic = (0..2u32).max_by_key(|&t| s.state().word_topic(cat, t)).unwrap();
        let stock_topic = (0..2u32).max_by_key(|&t| s.state().word_topic(stock, t)).unwrap();
        assert_ne!(cat_topic, stock_topic, "the two themes should land in different topics");
        // And the dominant topic should hold most of the word's mass.
        let cat_total: u32 = (0..2u32).map(|t| s.state().word_topic(cat, t)).sum();
        assert!(s.state().word_topic(cat, cat_topic) * 10 >= cat_total * 8);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let corpus = DatasetPreset::Tiny.generate_scaled(10);
        let mut a = CollapsedGibbs::new(&corpus, ModelParams::new(5, 0.5, 0.1), 42);
        let mut b = CollapsedGibbs::new(&corpus, ModelParams::new(5, 0.5, 0.1), 42);
        a.run_iteration();
        b.run_iteration();
        assert_eq!(a.assignments(), b.assignments());
    }
}
