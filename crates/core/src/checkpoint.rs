//! Real binary checkpoint persistence for trained models.
//!
//! Until this module existed, "serialization" in the workspace meant the
//! vendored no-op `serde` derives: a checkpoint could be *typed* but not
//! *saved*. This module makes persistence real, built on the framed codec of
//! [`warplda_corpus::io::codec`] (magic number, format version, FNV-1a
//! checksum), and defines what it means for a sampler to be resumable:
//!
//! * [`Checkpointable`] — a [`Sampler`] that can write its complete
//!   resumable state (assignments, counts, RNG stream, iteration counter)
//!   into an [`Encoder`] and restore it from a [`Decoder`]. For WarpLDA
//!   (serial and parallel) restoration is **bit-identical**: a run that is
//!   saved, loaded into a freshly constructed sampler and continued produces
//!   exactly the same assignments as an uninterrupted run.
//! * [`save_checkpoint`] / [`load_checkpoint`] — one-file persistence of a
//!   sampler plus (optionally) the corpus [`Vocabulary`], so a checkpoint can
//!   be inspected (top words per topic) without the original corpus files.
//! * [`write_state_snapshot`] / [`read_state_snapshot`] — persistence of a
//!   bare [`SamplerState`] (a *model*, independent of which sampler produced
//!   it), the exchange format for downstream consumers.
//!
//! A checkpoint can only be loaded into a sampler constructed over the same
//! corpus with the same hyper-parameters and configuration; every mismatch
//! the payload can reveal (topic count, token count, MH steps, …) is rejected
//! with [`CodecError::Corrupt`] rather than silently producing a broken
//! model.

use std::fs::File;
use std::io::{BufReader, Read, Write};
use std::path::Path;

use rand::rngs::SmallRng;

use warplda_corpus::io::codec::{
    read_framed, write_framed, CodecError, CodecResult, Decoder, Encoder,
};
use warplda_corpus::{DocMajorView, Vocabulary, WordMajorView};

use crate::params::ModelParams;
use crate::sampler::Sampler;
use crate::state::SamplerState;

/// Payload tag of a bare [`SamplerState`] snapshot (vs a live sampler).
const STATE_SNAPSHOT_KIND: &str = "sampler-state";

/// A sampler whose complete resumable state can be persisted.
///
/// Implementations write everything their `run_iteration` depends on that the
/// constructor does not deterministically rebuild: topic assignments, any
/// delayed count vectors, pending MH proposals, the RNG state and the
/// iteration counter. Derived caches (alias tables, F+ trees) are *not*
/// persisted — they are rebuilt lazily from the restored counts.
pub trait Checkpointable: Sampler {
    /// Stable identifier written into the checkpoint ("warplda", "cgs", …).
    /// Loading a checkpoint into a sampler of a different kind is rejected.
    fn checkpoint_kind(&self) -> &'static str;

    /// Writes the resumable state into `enc`.
    fn write_state(&self, enc: &mut Encoder<'_>) -> CodecResult<()>;

    /// Restores state previously written by
    /// [`write_state`](Self::write_state) into a sampler constructed over the
    /// same corpus with the same parameters and configuration.
    fn read_state(&mut self, dec: &mut Decoder<'_>) -> CodecResult<()>;
}

/// Writes `params` through an encoder.
pub fn write_model_params(enc: &mut Encoder<'_>, params: &ModelParams) -> CodecResult<()> {
    enc.write_usize(params.num_topics)?;
    enc.write_f64(params.alpha)?;
    enc.write_f64(params.beta)
}

/// Reads [`ModelParams`] previously written by [`write_model_params`].
pub fn read_model_params(dec: &mut Decoder<'_>) -> CodecResult<ModelParams> {
    let num_topics = dec.read_usize()?;
    let alpha = dec.read_f64()?;
    let beta = dec.read_f64()?;
    if num_topics == 0 || !alpha.is_finite() || !beta.is_finite() || alpha <= 0.0 || beta <= 0.0 {
        return Err(CodecError::Corrupt(format!(
            "invalid model parameters: K = {num_topics}, alpha = {alpha}, beta = {beta}"
        )));
    }
    Ok(ModelParams::new(num_topics, alpha, beta))
}

fn check_params_match(found: &ModelParams, expected: &ModelParams) -> CodecResult<()> {
    if found.num_topics != expected.num_topics
        || found.alpha.to_bits() != expected.alpha.to_bits()
        || found.beta.to_bits() != expected.beta.to_bits()
    {
        return Err(CodecError::Corrupt(format!(
            "checkpoint parameters (K = {}, alpha = {}, beta = {}) do not match the sampler \
             (K = {}, alpha = {}, beta = {})",
            found.num_topics,
            found.alpha,
            found.beta,
            expected.num_topics,
            expected.alpha,
            expected.beta,
        )));
    }
    Ok(())
}

/// Serializes `sampler` (and optionally the corpus vocabulary) as one framed
/// checkpoint into `w`.
pub fn write_checkpoint(
    sampler: &dyn Checkpointable,
    vocab: Option<&Vocabulary>,
    w: &mut dyn Write,
) -> CodecResult<()> {
    let mut payload = Vec::new();
    {
        let mut enc = Encoder::new(&mut payload);
        enc.write_str(sampler.checkpoint_kind())?;
        write_model_params(&mut enc, sampler.params())?;
        sampler.write_state(&mut enc)?;
        match vocab {
            Some(v) => {
                enc.write_bool(true)?;
                warplda_corpus::io::codec::write_vocab(&mut enc, v)?;
            }
            None => enc.write_bool(false)?,
        }
    }
    write_framed(w, &payload)
}

/// Restores `sampler` from a framed checkpoint read from `r`; returns the
/// embedded vocabulary when one was saved.
pub fn read_checkpoint(
    sampler: &mut dyn Checkpointable,
    r: &mut dyn Read,
) -> CodecResult<Option<Vocabulary>> {
    let payload = read_framed(r)?;
    let mut cursor = payload.as_slice();
    let mut dec = Decoder::new(&mut cursor);
    let kind = dec.read_string()?;
    if kind != sampler.checkpoint_kind() {
        return Err(CodecError::Corrupt(format!(
            "checkpoint holds a {kind:?} sampler, cannot load into {:?}",
            sampler.checkpoint_kind()
        )));
    }
    let params = read_model_params(&mut dec)?;
    check_params_match(&params, sampler.params())?;
    sampler.read_state(&mut dec)?;
    if dec.read_bool()? {
        Ok(Some(warplda_corpus::io::codec::read_vocab(&mut dec)?))
    } else {
        Ok(None)
    }
}

/// Saves `sampler` (and optionally the vocabulary) to `path`, creating parent
/// directories as needed. The write is crash-safe
/// ([`warplda_corpus::io::atomic_write`]): a crash or I/O error mid-save
/// leaves any previous checkpoint at `path` intact, and a reader can never
/// observe a torn file.
pub fn save_checkpoint(
    sampler: &dyn Checkpointable,
    vocab: Option<&Vocabulary>,
    path: &Path,
) -> CodecResult<()> {
    warplda_corpus::io::atomic_write(path, |w| write_checkpoint(sampler, vocab, w))
}

/// Loads the checkpoint at `path` into `sampler`; returns the embedded
/// vocabulary when one was saved.
pub fn load_checkpoint(
    sampler: &mut dyn Checkpointable,
    path: &Path,
) -> CodecResult<Option<Vocabulary>> {
    let mut r = BufReader::new(File::open(path)?);
    read_checkpoint(sampler, &mut r)
}

/// Writes a bare [`SamplerState`] (model parameters + assignments, counts are
/// recomputed on load) plus an optional vocabulary as one framed snapshot.
pub fn write_state_snapshot(
    state: &SamplerState,
    vocab: Option<&Vocabulary>,
    w: &mut dyn Write,
) -> CodecResult<()> {
    let mut payload = Vec::new();
    {
        let mut enc = Encoder::new(&mut payload);
        enc.write_str(STATE_SNAPSHOT_KIND)?;
        write_model_params(&mut enc, state.params())?;
        enc.write_u32_slice(state.assignments())?;
        match vocab {
            Some(v) => {
                enc.write_bool(true)?;
                warplda_corpus::io::codec::write_vocab(&mut enc, v)?;
            }
            None => enc.write_bool(false)?,
        }
    }
    write_framed(w, &payload)
}

/// Reads a snapshot written by [`write_state_snapshot`], rebuilding the count
/// structures against the given corpus views.
pub fn read_state_snapshot(
    r: &mut dyn Read,
    doc_view: &DocMajorView,
    word_view: &WordMajorView,
) -> CodecResult<(SamplerState, Option<Vocabulary>)> {
    let payload = read_framed(r)?;
    let mut cursor = payload.as_slice();
    let mut dec = Decoder::new(&mut cursor);
    let kind = dec.read_string()?;
    if kind != STATE_SNAPSHOT_KIND {
        return Err(CodecError::Corrupt(format!(
            "expected a {STATE_SNAPSHOT_KIND:?} snapshot, found {kind:?}"
        )));
    }
    let params = read_model_params(&mut dec)?;
    let z = dec.read_u32_vec()?;
    validate_assignments(&z, doc_view.num_tokens(), params.num_topics)?;
    let vocab = if dec.read_bool()? {
        Some(warplda_corpus::io::codec::read_vocab(&mut dec)?)
    } else {
        None
    };
    let state = SamplerState::from_assignments_with_views(doc_view, word_view, params, z);
    Ok((state, vocab))
}

/// Checks a decoded assignment vector against the corpus shape.
pub(crate) fn validate_assignments(
    z: &[u32],
    expected_tokens: usize,
    num_topics: usize,
) -> CodecResult<()> {
    if z.len() != expected_tokens {
        return Err(CodecError::Corrupt(format!(
            "checkpoint holds {} assignments but the corpus has {expected_tokens} tokens",
            z.len()
        )));
    }
    if let Some(&bad) = z.iter().find(|&&t| t as usize >= num_topics) {
        return Err(CodecError::Corrupt(format!(
            "assignment topic {bad} out of range (K = {num_topics})"
        )));
    }
    Ok(())
}

/// Writes the RNG state (4 xoshiro256++ words).
pub(crate) fn write_rng(enc: &mut Encoder<'_>, rng: &SmallRng) -> CodecResult<()> {
    enc.write_u64_slice(&rng.state())
}

/// Reads an RNG state written by [`write_rng`].
pub(crate) fn read_rng(dec: &mut Decoder<'_>) -> CodecResult<SmallRng> {
    let words = dec.read_u64_vec()?;
    let words: [u64; 4] = words
        .try_into()
        .map_err(|w: Vec<u64>| CodecError::Corrupt(format!("RNG state has {} words", w.len())))?;
    Ok(SmallRng::from_state(words))
}

/// Shared checkpoint body of the five [`SamplerState`]-based baselines:
/// iteration counter, RNG stream and doc-major assignments. Counts are
/// rebuilt from the assignments on restore; derived caches (stale alias
/// tables, F+ trees) are rebuilt lazily during the next iteration.
pub(crate) fn write_baseline_body(
    enc: &mut Encoder<'_>,
    iterations: u64,
    rng: &SmallRng,
    state: &SamplerState,
) -> CodecResult<()> {
    enc.write_u64(iterations)?;
    write_rng(enc, rng)?;
    enc.write_u32_slice(state.assignments())
}

/// Decodes (and validates) a body written by [`write_baseline_body`].
pub(crate) fn read_baseline_body(
    dec: &mut Decoder<'_>,
    expected_tokens: usize,
    num_topics: usize,
) -> CodecResult<(u64, SmallRng, Vec<u32>)> {
    let iterations = dec.read_u64()?;
    let rng = read_rng(dec)?;
    let z = dec.read_u32_vec()?;
    validate_assignments(&z, expected_tokens, num_topics)?;
    Ok((iterations, rng, z))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cgs::CollapsedGibbs;
    use crate::warp::{WarpLda, WarpLdaConfig};
    use warplda_corpus::{Corpus, CorpusBuilder, DatasetPreset};

    fn tiny() -> Corpus {
        let mut b = CorpusBuilder::new();
        for _ in 0..10 {
            b.push_text_doc(["sun", "moon", "star", "sun"]);
            b.push_text_doc(["leaf", "tree", "root", "leaf"]);
        }
        b.build().unwrap()
    }

    #[test]
    fn state_snapshot_round_trips_with_vocab() {
        let corpus = tiny();
        let dv = DocMajorView::build(&corpus);
        let wv = WordMajorView::build(&corpus, &dv);
        let params = ModelParams::new(3, 0.5, 0.1);
        let z: Vec<u32> = (0..dv.num_tokens()).map(|i| (i % 3) as u32).collect();
        let state = SamplerState::from_assignments(&corpus, &dv, &wv, params, z.clone());

        let mut buf = Vec::new();
        write_state_snapshot(&state, Some(corpus.vocab()), &mut buf).unwrap();
        let (restored, vocab) = read_state_snapshot(&mut buf.as_slice(), &dv, &wv).unwrap();
        restored.assert_consistent(&dv, &wv);
        assert_eq!(restored.assignments(), &z[..]);
        assert_eq!(vocab.unwrap().word(0), corpus.vocab().word(0));
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        let corpus = tiny();
        let params = ModelParams::new(4, 0.5, 0.1);
        let warp = WarpLda::new(&corpus, params, WarpLdaConfig::default(), 1);
        let mut buf = Vec::new();
        write_checkpoint(&warp, None, &mut buf).unwrap();
        let mut cgs = CollapsedGibbs::new(&corpus, params, 1);
        let err = read_checkpoint(&mut cgs, &mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, CodecError::Corrupt(_)), "{err}");
    }

    #[test]
    fn params_mismatch_is_rejected() {
        let corpus = tiny();
        let a = CollapsedGibbs::new(&corpus, ModelParams::new(4, 0.5, 0.1), 1);
        let mut buf = Vec::new();
        write_checkpoint(&a, None, &mut buf).unwrap();
        let mut b = CollapsedGibbs::new(&corpus, ModelParams::new(5, 0.5, 0.1), 1);
        let err = read_checkpoint(&mut b, &mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, CodecError::Corrupt(_)), "{err}");
    }

    #[test]
    fn wrong_corpus_shape_is_rejected() {
        let corpus = tiny();
        let params = ModelParams::new(4, 0.5, 0.1);
        let a = CollapsedGibbs::new(&corpus, params, 1);
        let mut buf = Vec::new();
        write_checkpoint(&a, None, &mut buf).unwrap();
        let bigger = DatasetPreset::Tiny.generate_scaled(4);
        let mut b = CollapsedGibbs::new(&bigger, params, 1);
        let err = read_checkpoint(&mut b, &mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, CodecError::Corrupt(_)), "{err}");
    }
}
