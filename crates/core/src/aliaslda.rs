//! AliasLDA (Li, Ahmed, Ravi & Smola, KDD 2014).
//!
//! Factorization (Section 3.2 of the WarpLDA paper):
//!
//! ```text
//! p(k) ∝ C_dk · (C_wk + β)/(C_k + β̄)   — enumerated over the non-zeros of c_d
//!      +  α   · (C_wk + β)/(C_k + β̄)   — drawn from a *stale* per-word alias table
//! ```
//!
//! The stale table makes the draw O(1) amortized (it is rebuilt after `L_w`
//! draws so the O(K) build amortizes away); a Metropolis–Hastings correction
//! step removes the bias introduced by the staleness.

use rand::rngs::SmallRng;
use rand::Rng;

use warplda_corpus::{Corpus, DocMajorView, WordMajorView};
use warplda_sampling::{new_rng, AliasTable};

use crate::checkpoint::{self, Checkpointable};
use crate::counts::TopicCounts;
use crate::params::ModelParams;
use crate::sampler::Sampler;
use crate::state::SamplerState;
use warplda_corpus::io::codec::{CodecResult, Decoder, Encoder};

/// A per-word stale alias table over `α(C_wk+β)/(C_k+β̄)` plus the sparse
/// word-topic counts it was built from (needed to evaluate the proposal
/// density in the MH correction).
struct StaleWordTable {
    table: AliasTable,
    /// Total unnormalized mass of the smoothing term at build time.
    total: f64,
    /// Stale sparse `(topic, count)` pairs of the word at build time.
    stale_pairs: Vec<(u32, u32)>,
    /// Draws since the table was built.
    draws: u32,
}

/// The AliasLDA sampler (sparsity-aware + MH, document-by-document, instant
/// count updates).
pub struct AliasLda {
    params: ModelParams,
    doc_view: DocMajorView,
    word_view: WordMajorView,
    state: SamplerState,
    rng: SmallRng,
    iterations: u64,
    beta_bar: f64,
    tables: Vec<Option<StaleWordTable>>,
    /// Number of MH correction steps per token (the original paper uses a
    /// handful; 2 is enough in practice).
    mh_steps: u32,
}

impl AliasLda {
    /// Creates a sampler with random initial assignments.
    pub fn new(corpus: &Corpus, params: ModelParams, seed: u64) -> Self {
        let doc_view = DocMajorView::build(corpus);
        let word_view = WordMajorView::build(corpus, &doc_view);
        let mut rng = new_rng(seed);
        let state = SamplerState::init_random(corpus, &doc_view, &word_view, params, &mut rng);
        let beta_bar = params.beta_bar(corpus.vocab_size());
        let tables = (0..corpus.vocab_size()).map(|_| None).collect();
        Self {
            params,
            doc_view,
            word_view,
            state,
            rng,
            iterations: 0,
            beta_bar,
            tables,
            mh_steps: 2,
        }
    }

    /// The current state (counts + assignments).
    pub fn state(&self) -> &SamplerState {
        &self.state
    }

    /// The document-major view.
    pub fn doc_view(&self) -> &DocMajorView {
        &self.doc_view
    }

    /// The word-major view.
    pub fn word_view(&self) -> &WordMajorView {
        &self.word_view
    }

    /// Builds (or rebuilds) the stale table for `w` from the current counts.
    fn rebuild_table(&mut self, w: u32) {
        let k = self.params.num_topics;
        let alpha = self.params.alpha;
        let beta = self.params.beta;
        let mut weights = vec![0.0f64; k];
        for (t, weight) in weights.iter_mut().enumerate() {
            let cwk = self.state.word_topic(w, t as u32) as f64;
            let ck = self.state.topic(t as u32) as f64;
            *weight = alpha * (cwk + beta) / (ck + self.beta_bar);
        }
        let total: f64 = weights.iter().sum();
        self.tables[w as usize] = Some(StaleWordTable {
            table: AliasTable::new(&weights),
            total,
            stale_pairs: self.state.word_counts(w).to_pairs(),
            draws: 0,
        });
    }

    /// Stale proposal density (unnormalized) of topic `t` for word `w`:
    /// `α (C^stale_wk + β)/(C_k + β̄)`. The global count `C_k` is read fresh —
    /// it is large and slowly varying, the same approximation LightLDA makes.
    fn stale_smoothing_weight(&self, w: u32, t: u32) -> f64 {
        let table = self.tables[w as usize].as_ref().expect("table built before use");
        let stale_cwk =
            table.stale_pairs.iter().find(|&&(topic, _)| topic == t).map_or(0, |&(_, c)| c) as f64;
        self.params.alpha * (stale_cwk + self.params.beta)
            / (self.state.topic(t) as f64 + self.beta_bar)
    }

    /// True (fresh, ¬dn) unnormalized conditional of topic `t`.
    fn target_weight(&self, d: u32, w: u32, t: u32) -> f64 {
        let cdk = self.state.doc_topic(d, t) as f64;
        let cwk = self.state.word_topic(w, t) as f64;
        let ck = self.state.topic(t) as f64;
        (cdk + self.params.alpha) * (cwk + self.params.beta) / (ck + self.beta_bar)
    }

    /// Full proposal density (doc bucket + stale smoothing bucket) of topic `t`.
    fn proposal_weight(&self, d: u32, w: u32, t: u32) -> f64 {
        let cdk = self.state.doc_topic(d, t) as f64;
        let cwk = self.state.word_topic(w, t) as f64;
        let ck = self.state.topic(t) as f64;
        cdk * (cwk + self.params.beta) / (ck + self.beta_bar) + self.stale_smoothing_weight(w, t)
    }
}

impl Sampler for AliasLda {
    fn name(&self) -> &'static str {
        "AliasLDA"
    }

    fn params(&self) -> &ModelParams {
        &self.params
    }

    fn run_iteration(&mut self) {
        let beta = self.params.beta;
        let beta_bar = self.beta_bar;

        for d in 0..self.doc_view.num_docs() {
            let d = d as u32;
            for i in self.doc_view.doc_range(d) {
                let w = self.doc_view.word_of(i);
                let current = self.state.remove_token(d, w, i);

                // Make sure the stale table exists and is not too old.
                let needs_rebuild = match &self.tables[w as usize] {
                    None => true,
                    Some(t) => t.draws as usize >= self.word_view.word_len(w).max(8),
                };
                if needs_rebuild {
                    self.rebuild_table(w);
                }

                // Doc bucket with fresh counts: weights over the non-zeros of c_d.
                let mut doc_weights: Vec<(u32, f64)> = Vec::new();
                let mut doc_total = 0.0;
                self.state.doc_counts(d).for_each(|t, cdk| {
                    let cwk = self.state.word_topic(w, t) as f64;
                    let ck = self.state.topic(t) as f64;
                    let wgt = cdk as f64 * (cwk + beta) / (ck + beta_bar);
                    doc_total += wgt;
                    doc_weights.push((t, wgt));
                });

                let mut z = current;
                for _ in 0..self.mh_steps {
                    // Draw a candidate from the mixture proposal.
                    let (stale_total, candidate) = {
                        let table = self.tables[w as usize].as_mut().expect("built above");
                        table.draws += 1;
                        let stale_total = table.total;
                        let u = self.rng.gen::<f64>() * (doc_total + stale_total);
                        let candidate = if u < doc_total && !doc_weights.is_empty() {
                            let mut acc = 0.0;
                            let mut chosen = doc_weights[doc_weights.len() - 1].0;
                            for &(t, wgt) in &doc_weights {
                                acc += wgt;
                                if u < acc {
                                    chosen = t;
                                    break;
                                }
                            }
                            chosen
                        } else {
                            table.table.sample(&mut self.rng) as u32
                        };
                        (stale_total, candidate)
                    };
                    let _ = stale_total;
                    if candidate == z {
                        continue;
                    }
                    // MH correction: accept with p(t)q(s) / (p(s)q(t)).
                    let num = self.target_weight(d, w, candidate) * self.proposal_weight(d, w, z);
                    let den = self.target_weight(d, w, z) * self.proposal_weight(d, w, candidate);
                    let ratio = if den <= 0.0 { 1.0 } else { num / den };
                    if ratio >= 1.0 || self.rng.gen::<f64>() < ratio {
                        z = candidate;
                    }
                }

                self.state.assign_token(d, w, i, z);
            }
        }
        self.iterations += 1;
    }

    fn iterations(&self) -> u64 {
        self.iterations
    }

    fn assignments(&self) -> Vec<u32> {
        self.state.assignments().to_vec()
    }

    fn assignments_slice(&self) -> Option<&[u32]> {
        Some(self.state.assignments())
    }
}

impl Checkpointable for AliasLda {
    fn checkpoint_kind(&self) -> &'static str {
        "aliaslda"
    }

    fn write_state(&self, enc: &mut Encoder<'_>) -> CodecResult<()> {
        checkpoint::write_baseline_body(enc, self.iterations, &self.rng, &self.state)
    }

    fn read_state(&mut self, dec: &mut Decoder<'_>) -> CodecResult<()> {
        let (iterations, rng, z) = checkpoint::read_baseline_body(
            dec,
            self.doc_view.num_tokens(),
            self.params.num_topics,
        )?;
        self.state = SamplerState::from_assignments_with_views(
            &self.doc_view,
            &self.word_view,
            self.params,
            z,
        );
        // Stale alias tables refer to pre-checkpoint counts; drop them so the
        // next iteration rebuilds from the restored state.
        self.tables.iter_mut().for_each(|t| *t = None);
        self.rng = rng;
        self.iterations = iterations;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cgs::CollapsedGibbs;
    use crate::eval::log_joint_likelihood_of_state;
    use warplda_corpus::CorpusBuilder;

    fn themed_corpus() -> Corpus {
        let mut b = CorpusBuilder::new();
        for _ in 0..25 {
            b.push_text_doc(["sun", "beach", "sand", "wave", "sun"]);
            b.push_text_doc(["snow", "ski", "ice", "cold", "snow"]);
        }
        b.build().unwrap()
    }

    #[test]
    fn counts_stay_consistent() {
        let corpus = themed_corpus();
        let mut s = AliasLda::new(&corpus, ModelParams::new(5, 0.3, 0.05), 3);
        for _ in 0..3 {
            s.run_iteration();
            let dv = s.doc_view().clone();
            let wv = s.word_view().clone();
            s.state().assert_consistent(&dv, &wv);
        }
    }

    #[test]
    fn converges_close_to_cgs() {
        let corpus = themed_corpus();
        let params = ModelParams::new(2, 0.5, 0.1);
        let mut alias = AliasLda::new(&corpus, params, 5);
        let mut cgs = CollapsedGibbs::new(&corpus, params, 5);
        let ll0 = log_joint_likelihood_of_state(alias.doc_view(), alias.word_view(), alias.state());
        for _ in 0..30 {
            alias.run_iteration();
            cgs.run_iteration();
        }
        let ll_alias =
            log_joint_likelihood_of_state(alias.doc_view(), alias.word_view(), alias.state());
        let ll_cgs = log_joint_likelihood_of_state(cgs.doc_view(), cgs.word_view(), cgs.state());
        assert!(ll_alias > ll0, "likelihood should improve: {ll0} -> {ll_alias}");
        assert!(
            (ll_alias - ll_cgs).abs() < 0.05 * ll_cgs.abs(),
            "AliasLDA {ll_alias} should approach CGS {ll_cgs}"
        );
    }

    #[test]
    fn separates_planted_topics() {
        let corpus = themed_corpus();
        let mut s = AliasLda::new(&corpus, ModelParams::new(2, 0.5, 0.1), 29);
        for _ in 0..40 {
            s.run_iteration();
        }
        let sun = corpus.vocab().get("sun").unwrap();
        let snow = corpus.vocab().get("snow").unwrap();
        let sun_topic = (0..2u32).max_by_key(|&t| s.state().word_topic(sun, t)).unwrap();
        let snow_topic = (0..2u32).max_by_key(|&t| s.state().word_topic(snow, t)).unwrap();
        assert_ne!(sun_topic, snow_topic);
    }

    #[test]
    fn stale_tables_are_rebuilt_after_enough_draws() {
        let corpus = themed_corpus();
        let mut s = AliasLda::new(&corpus, ModelParams::new(4, 0.5, 0.1), 31);
        s.run_iteration();
        // Every word seen during the iteration must have a table.
        for w in 0..corpus.vocab_size() as u32 {
            if s.word_view().word_len(w) > 0 {
                assert!(s.tables[w as usize].is_some(), "word {w} should have a table");
            }
        }
    }
}
