//! SparseLDA (Yao, Mimno & McCallum, KDD 2009).
//!
//! The conditional of Eq. 1 is split into three buckets (Section 3.2 of the
//! WarpLDA paper):
//!
//! ```text
//! p(k) ∝  C_wk · (C_dk + α)/(C_k + β̄)     "q" — needs the non-zeros of c_w
//!       +  β · C_dk /(C_k + β̄)             "r" — needs the non-zeros of c_d
//!       +  α · β  /(C_k + β̄)               "s" — dense smoothing, slowly varying
//! ```
//!
//! Sampling costs O(K_d + K_w) per token instead of O(K): draw a uniform in
//! `[0, Q+R+S)` and walk whichever bucket it lands in.

use rand::rngs::SmallRng;
use rand::Rng;

use warplda_corpus::{Corpus, DocMajorView, WordMajorView};
use warplda_sampling::new_rng;

use crate::checkpoint::{self, Checkpointable};
use crate::counts::TopicCounts;
use crate::params::ModelParams;
use crate::sampler::Sampler;
use crate::state::SamplerState;
use warplda_corpus::io::codec::{CodecResult, Decoder, Encoder};

/// The SparseLDA sampler (sparsity-aware, document-by-document, instant count
/// updates).
pub struct SparseLda {
    params: ModelParams,
    doc_view: DocMajorView,
    word_view: WordMajorView,
    state: SamplerState,
    rng: SmallRng,
    iterations: u64,
    beta_bar: f64,
}

impl SparseLda {
    /// Creates a sampler with random initial assignments.
    pub fn new(corpus: &Corpus, params: ModelParams, seed: u64) -> Self {
        let doc_view = DocMajorView::build(corpus);
        let word_view = WordMajorView::build(corpus, &doc_view);
        let mut rng = new_rng(seed);
        let state = SamplerState::init_random(corpus, &doc_view, &word_view, params, &mut rng);
        let beta_bar = params.beta_bar(corpus.vocab_size());
        Self { params, doc_view, word_view, state, rng, iterations: 0, beta_bar }
    }

    /// The current state (counts + assignments).
    pub fn state(&self) -> &SamplerState {
        &self.state
    }

    /// The document-major view.
    pub fn doc_view(&self) -> &DocMajorView {
        &self.doc_view
    }

    /// The word-major view.
    pub fn word_view(&self) -> &WordMajorView {
        &self.word_view
    }

    /// The dense smoothing bucket total `S = Σ_k αβ/(C_k + β̄)`.
    fn smoothing_total(&self) -> f64 {
        let alpha = self.params.alpha;
        let beta = self.params.beta;
        self.state.topic_counts().iter().map(|&ck| alpha * beta / (ck as f64 + self.beta_bar)).sum()
    }

    /// The document bucket total `R = Σ_k β·C_dk/(C_k + β̄)` for document `d`.
    fn doc_bucket_total(&self, d: u32) -> f64 {
        let beta = self.params.beta;
        let mut r = 0.0;
        self.state.doc_counts(d).for_each(|t, c| {
            r += beta * c as f64 / (self.state.topic(t) as f64 + self.beta_bar);
        });
        r
    }
}

impl Sampler for SparseLda {
    fn name(&self) -> &'static str {
        "SparseLDA"
    }

    fn params(&self) -> &ModelParams {
        &self.params
    }

    fn run_iteration(&mut self) {
        let alpha = self.params.alpha;
        let beta = self.params.beta;
        let beta_bar = self.beta_bar;

        for d in 0..self.doc_view.num_docs() {
            let d = d as u32;
            for i in self.doc_view.doc_range(d) {
                let w = self.doc_view.word_of(i);
                self.state.remove_token(d, w, i);

                // Bucket totals with the ¬dn counts. S and R are recomputed here
                // for simplicity and correctness; the classic implementation
                // maintains them incrementally but the bucket *logic* is identical.
                let s_total = self.smoothing_total();
                let r_total = self.doc_bucket_total(d);
                // Q bucket: iterate the non-zeros of c_w.
                let mut q_total = 0.0;
                let word_pairs = self.state.word_counts(w).to_pairs();
                let mut q_weights: Vec<(u32, f64)> = Vec::with_capacity(word_pairs.len());
                for &(t, cwk) in &word_pairs {
                    let weight = cwk as f64 * (self.state.doc_topic(d, t) as f64 + alpha)
                        / (self.state.topic(t) as f64 + beta_bar);
                    q_total += weight;
                    q_weights.push((t, weight));
                }

                let u = self.rng.gen::<f64>() * (q_total + r_total + s_total);
                let new_topic = if u < q_total {
                    // Walk the q bucket.
                    let mut acc = 0.0;
                    let mut chosen = q_weights.last().map(|&(t, _)| t).unwrap_or(0);
                    for &(t, wgt) in &q_weights {
                        acc += wgt;
                        if u < acc {
                            chosen = t;
                            break;
                        }
                    }
                    chosen
                } else if u < q_total + r_total {
                    // Walk the r bucket (non-zeros of c_d).
                    let target = u - q_total;
                    let mut acc = 0.0;
                    let mut chosen = None;
                    let pairs = self.state.doc_counts(d).to_pairs();
                    for &(t, cdk) in &pairs {
                        acc += beta * cdk as f64 / (self.state.topic(t) as f64 + beta_bar);
                        if target < acc {
                            chosen = Some(t);
                            break;
                        }
                    }
                    chosen.or_else(|| pairs.last().map(|&(t, _)| t)).unwrap_or(0)
                } else {
                    // Walk the dense smoothing bucket.
                    let target = u - q_total - r_total;
                    let mut acc = 0.0;
                    let mut chosen = self.params.num_topics as u32 - 1;
                    for (t, &ck) in self.state.topic_counts().iter().enumerate() {
                        acc += alpha * beta / (ck as f64 + beta_bar);
                        if target < acc {
                            chosen = t as u32;
                            break;
                        }
                    }
                    chosen
                };

                self.state.assign_token(d, w, i, new_topic);
            }
        }
        self.iterations += 1;
    }

    fn iterations(&self) -> u64 {
        self.iterations
    }

    fn assignments(&self) -> Vec<u32> {
        self.state.assignments().to_vec()
    }

    fn assignments_slice(&self) -> Option<&[u32]> {
        Some(self.state.assignments())
    }
}

impl Checkpointable for SparseLda {
    fn checkpoint_kind(&self) -> &'static str {
        "sparselda"
    }

    fn write_state(&self, enc: &mut Encoder<'_>) -> CodecResult<()> {
        checkpoint::write_baseline_body(enc, self.iterations, &self.rng, &self.state)
    }

    fn read_state(&mut self, dec: &mut Decoder<'_>) -> CodecResult<()> {
        let (iterations, rng, z) = checkpoint::read_baseline_body(
            dec,
            self.doc_view.num_tokens(),
            self.params.num_topics,
        )?;
        self.state = SamplerState::from_assignments_with_views(
            &self.doc_view,
            &self.word_view,
            self.params,
            z,
        );
        self.rng = rng;
        self.iterations = iterations;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cgs::CollapsedGibbs;
    use crate::eval::log_joint_likelihood_of_state;
    use warplda_corpus::CorpusBuilder;

    fn themed_corpus() -> Corpus {
        let mut b = CorpusBuilder::new();
        for _ in 0..25 {
            b.push_text_doc(["goal", "match", "team", "score", "goal"]);
            b.push_text_doc(["gene", "cell", "protein", "dna", "gene"]);
        }
        b.build().unwrap()
    }

    #[test]
    fn counts_stay_consistent() {
        let corpus = themed_corpus();
        let mut s = SparseLda::new(&corpus, ModelParams::new(6, 0.3, 0.05), 3);
        for _ in 0..3 {
            s.run_iteration();
            let dv = s.doc_view().clone();
            let wv = s.word_view().clone();
            s.state().assert_consistent(&dv, &wv);
        }
    }

    #[test]
    fn likelihood_improves_and_tracks_cgs() {
        let corpus = themed_corpus();
        let params = ModelParams::new(2, 0.5, 0.1);
        let mut sparse = SparseLda::new(&corpus, params, 5);
        let mut cgs = CollapsedGibbs::new(&corpus, params, 5);
        let ll0 =
            log_joint_likelihood_of_state(sparse.doc_view(), sparse.word_view(), sparse.state());
        for _ in 0..25 {
            sparse.run_iteration();
            cgs.run_iteration();
        }
        let ll_sparse =
            log_joint_likelihood_of_state(sparse.doc_view(), sparse.word_view(), sparse.state());
        let ll_cgs = log_joint_likelihood_of_state(cgs.doc_view(), cgs.word_view(), cgs.state());
        assert!(ll_sparse > ll0, "likelihood should improve: {ll0} -> {ll_sparse}");
        // SparseLDA samples from the exact conditional, so it should converge to
        // essentially the same likelihood as CGS (within a small tolerance).
        assert!(
            (ll_sparse - ll_cgs).abs() < 0.05 * ll_cgs.abs(),
            "SparseLDA {ll_sparse} should be close to CGS {ll_cgs}"
        );
    }

    #[test]
    fn separates_planted_topics() {
        let corpus = themed_corpus();
        let mut s = SparseLda::new(&corpus, ModelParams::new(2, 0.5, 0.1), 17);
        for _ in 0..30 {
            s.run_iteration();
        }
        let goal = corpus.vocab().get("goal").unwrap();
        let gene = corpus.vocab().get("gene").unwrap();
        let goal_topic = (0..2u32).max_by_key(|&t| s.state().word_topic(goal, t)).unwrap();
        let gene_topic = (0..2u32).max_by_key(|&t| s.state().word_topic(gene, t)).unwrap();
        assert_ne!(goal_topic, gene_topic);
    }

    #[test]
    fn bucket_totals_are_positive_and_finite() {
        let corpus = themed_corpus();
        let s = SparseLda::new(&corpus, ModelParams::new(8, 0.4, 0.02), 23);
        let smoothing = s.smoothing_total();
        assert!(smoothing.is_finite() && smoothing > 0.0);
        let r = s.doc_bucket_total(0);
        assert!(r.is_finite() && r > 0.0);
    }
}
