//! The common [`Sampler`] interface shared by WarpLDA and all baselines.

use warplda_corpus::{Corpus, DocMajorView, WordMajorView};

use crate::eval;
use crate::params::ModelParams;
use crate::state::SamplerState;

/// An LDA inference algorithm that refines topic assignments iteration by
/// iteration.
///
/// The trait is deliberately small: the experiment harness only needs to run
/// iterations, read back assignments and compute likelihoods; everything else
/// (proposals, count layouts, phases) is an implementation detail of each
/// sampler.
pub trait Sampler {
    /// Short human-readable name used in reports ("WarpLDA", "LightLDA", …).
    fn name(&self) -> &'static str;

    /// The model hyper-parameters.
    fn params(&self) -> &ModelParams;

    /// Runs one full iteration (one pass over all tokens; for WarpLDA one
    /// document phase plus one word phase).
    fn run_iteration(&mut self);

    /// Number of iterations completed so far.
    fn iterations(&self) -> u64;

    /// Current topic assignments, in document-major token order.
    fn assignments(&self) -> Vec<u32>;

    /// Seconds the sampler spent inside its sampling phases during the most
    /// recent [`run_iteration`](Self::run_iteration), measured by the sampler
    /// itself, when it keeps phase clocks (WarpLDA serial and parallel do).
    ///
    /// The harness wall clock around `run_iteration` additionally includes
    /// whatever bookkeeping the caller does between starting its timer and
    /// the phase entry (snapshotting, logging, checkpoint scheduling), so
    /// throughput derived from it mixes harness overhead into the sampler's
    /// number. Phase time excludes that overhead; perf reports record both.
    /// Both clocks are wall time, so CPU contention from other threads of
    /// the process (e.g. an overlapped evaluation worker on a
    /// core-constrained machine) still shows up in either.
    fn last_iteration_phase_seconds(&self) -> Option<f64> {
        None
    }

    /// Borrowed view of the current assignments in document-major token
    /// order, when the sampler stores them contiguously in that order.
    ///
    /// The baseline samplers (CGS, SparseLDA, AliasLDA, F+LDA, LightLDA) keep
    /// their assignments doc-major inside a [`SamplerState`] and return
    /// `Some`, so evaluation never forces the intermediate `Vec<u32>` copy
    /// that [`assignments`](Self::assignments) makes. WarpLDA stores topics in
    /// CSC entry order and must gather, so it returns `None` (the default).
    fn assignments_slice(&self) -> Option<&[u32]> {
        None
    }

    /// Copies the current assignments into `out` (cleared first), going
    /// through the borrowed [`assignments_slice`](Self::assignments_slice)
    /// path when available so slice-backed samplers pay exactly one copy —
    /// not the two the [`assignments`](Self::assignments)-then-store pattern
    /// costs. A caller holding onto `out` across calls also reuses its
    /// allocation; the overlapped evaluator itself hands each snapshot to a
    /// background worker, so it passes a fresh buffer per evaluation.
    fn write_assignments_into(&self, out: &mut Vec<u32>) {
        out.clear();
        match self.assignments_slice() {
            Some(z) => out.extend_from_slice(z),
            None => *out = self.assignments(),
        }
    }

    /// Builds a [`SamplerState`] (counts included) for the current
    /// assignments. Default implementation recounts from scratch, borrowing
    /// the assignments where the sampler allows it.
    fn snapshot_state(
        &self,
        corpus: &Corpus,
        doc_view: &DocMajorView,
        word_view: &WordMajorView,
    ) -> SamplerState {
        let z = match self.assignments_slice() {
            Some(z) => z.to_vec(),
            None => self.assignments(),
        };
        SamplerState::from_assignments(corpus, doc_view, word_view, *self.params(), z)
    }

    /// Log joint likelihood of the current assignments.
    fn log_likelihood(
        &self,
        corpus: &Corpus,
        doc_view: &DocMajorView,
        word_view: &WordMajorView,
    ) -> f64 {
        let state = self.snapshot_state(corpus, doc_view, word_view);
        eval::log_joint_likelihood_of_state(doc_view, word_view, &state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake sampler that flips all assignments to topic 0 on the first
    /// iteration; lets us test the trait's default methods in isolation.
    struct Fake {
        params: ModelParams,
        z: Vec<u32>,
        iters: u64,
    }

    impl Sampler for Fake {
        fn name(&self) -> &'static str {
            "Fake"
        }
        fn params(&self) -> &ModelParams {
            &self.params
        }
        fn run_iteration(&mut self) {
            self.z.iter_mut().for_each(|t| *t = 0);
            self.iters += 1;
        }
        fn iterations(&self) -> u64 {
            self.iters
        }
        fn assignments(&self) -> Vec<u32> {
            self.z.clone()
        }
        fn assignments_slice(&self) -> Option<&[u32]> {
            Some(&self.z)
        }
    }

    #[test]
    fn default_methods_work() {
        let mut b = warplda_corpus::CorpusBuilder::new();
        b.push_text_doc(["p", "q", "p"]);
        b.push_text_doc(["q", "r"]);
        let corpus = b.build().unwrap();
        let dv = DocMajorView::build(&corpus);
        let wv = WordMajorView::build(&corpus, &dv);
        let params = ModelParams::new(2, 0.5, 0.1);
        let mut fake = Fake { params, z: vec![0, 1, 0, 1, 0], iters: 0 };
        let ll_before = fake.log_likelihood(&corpus, &dv, &wv);
        assert!(ll_before.is_finite());
        for _ in 0..3 {
            fake.run_iteration();
        }
        assert_eq!(fake.iterations(), 3);
        assert!(fake.log_likelihood(&corpus, &dv, &wv).is_finite());
        // Snapshot agrees with assignments, whichever path produced it.
        let state = fake.snapshot_state(&corpus, &dv, &wv);
        assert_eq!(state.assignments(), &fake.assignments()[..]);
        assert_eq!(state.assignments(), fake.assignments_slice().unwrap());
        // The buffered copy path matches too.
        let mut buf = vec![99u32; 2];
        fake.write_assignments_into(&mut buf);
        assert_eq!(buf, fake.assignments());
    }
}
