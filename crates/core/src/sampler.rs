//! The common [`Sampler`] interface shared by WarpLDA and all baselines.

use warplda_corpus::{Corpus, DocMajorView, WordMajorView};

use crate::eval;
use crate::params::ModelParams;
use crate::state::SamplerState;

/// An LDA inference algorithm that refines topic assignments iteration by
/// iteration.
///
/// The trait is deliberately small: the experiment harness only needs to run
/// iterations, read back assignments and compute likelihoods; everything else
/// (proposals, count layouts, phases) is an implementation detail of each
/// sampler.
pub trait Sampler {
    /// Short human-readable name used in reports ("WarpLDA", "LightLDA", …).
    fn name(&self) -> &'static str;

    /// The model hyper-parameters.
    fn params(&self) -> &ModelParams;

    /// Runs one full iteration (one pass over all tokens; for WarpLDA one
    /// document phase plus one word phase).
    fn run_iteration(&mut self);

    /// Number of iterations completed so far.
    fn iterations(&self) -> u64;

    /// Current topic assignments, in document-major token order.
    fn assignments(&self) -> Vec<u32>;

    /// Builds a [`SamplerState`] (counts included) for the current
    /// assignments. Default implementation recounts from scratch.
    fn snapshot_state(
        &self,
        corpus: &Corpus,
        doc_view: &DocMajorView,
        word_view: &WordMajorView,
    ) -> SamplerState {
        SamplerState::from_assignments(
            corpus,
            doc_view,
            word_view,
            *self.params(),
            self.assignments(),
        )
    }

    /// Log joint likelihood of the current assignments.
    fn log_likelihood(
        &self,
        corpus: &Corpus,
        doc_view: &DocMajorView,
        word_view: &WordMajorView,
    ) -> f64 {
        let state = self.snapshot_state(corpus, doc_view, word_view);
        eval::log_joint_likelihood_of_state(doc_view, word_view, &state)
    }
}

/// Convenience driver: runs `iterations` iterations and returns the
/// log-likelihood after each one. Used by tests, examples and the convergence
/// benchmarks.
pub fn run_and_trace<S: Sampler>(
    sampler: &mut S,
    corpus: &Corpus,
    doc_view: &DocMajorView,
    word_view: &WordMajorView,
    iterations: usize,
) -> Vec<f64> {
    let mut trace = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        sampler.run_iteration();
        trace.push(sampler.log_likelihood(corpus, doc_view, word_view));
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake sampler that flips all assignments to topic 0 on the first
    /// iteration; lets us test the trait's default methods in isolation.
    struct Fake {
        params: ModelParams,
        z: Vec<u32>,
        iters: u64,
    }

    impl Sampler for Fake {
        fn name(&self) -> &'static str {
            "Fake"
        }
        fn params(&self) -> &ModelParams {
            &self.params
        }
        fn run_iteration(&mut self) {
            self.z.iter_mut().for_each(|t| *t = 0);
            self.iters += 1;
        }
        fn iterations(&self) -> u64 {
            self.iters
        }
        fn assignments(&self) -> Vec<u32> {
            self.z.clone()
        }
    }

    #[test]
    fn default_methods_work() {
        let mut b = warplda_corpus::CorpusBuilder::new();
        b.push_text_doc(["p", "q", "p"]);
        b.push_text_doc(["q", "r"]);
        let corpus = b.build().unwrap();
        let dv = DocMajorView::build(&corpus);
        let wv = WordMajorView::build(&corpus, &dv);
        let params = ModelParams::new(2, 0.5, 0.1);
        let mut fake = Fake { params, z: vec![0, 1, 0, 1, 0], iters: 0 };
        let ll_before = fake.log_likelihood(&corpus, &dv, &wv);
        assert!(ll_before.is_finite());
        let trace = run_and_trace(&mut fake, &corpus, &dv, &wv, 3);
        assert_eq!(trace.len(), 3);
        assert_eq!(fake.iterations(), 3);
        assert!(trace.iter().all(|l| l.is_finite()));
        // Snapshot agrees with assignments.
        let state = fake.snapshot_state(&corpus, &dv, &wv);
        assert_eq!(state.assignments(), &fake.assignments()[..]);
    }
}
