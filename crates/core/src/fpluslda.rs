//! F+LDA (Yu, Hsieh, Yun, Vishwanathan & Dhillon, WWW 2015).
//!
//! Same factorization as AliasLDA, but the tokens are visited **word by
//! word** and the smoothing term `α(C_wk+β)/(C_k+β̄)` is kept in an F+ tree so
//! it can be sampled *exactly* in O(log K) and updated in O(log K) whenever a
//! count changes — no staleness, no MH correction.
//!
//! Because it visits word-by-word, the random accesses go to the
//! document-topic matrix `C_d` (the `O(DK)` matrix of Table 2); the optional
//! [`warplda_cachesim::MemoryProbe`] instrumentation models exactly those
//! accesses for the Table 4 experiment.

use rand::rngs::SmallRng;
use rand::Rng;

use warplda_cachesim::{MemoryProbe, NoProbe, RegionId};
use warplda_corpus::{Corpus, DocMajorView, WordMajorView};
use warplda_sampling::{new_rng, FTree};

use crate::checkpoint::{self, Checkpointable};
use crate::counts::TopicCounts;
use crate::params::ModelParams;
use crate::sampler::Sampler;
use crate::state::SamplerState;
use warplda_corpus::io::codec::{CodecResult, Decoder, Encoder};

/// The F+LDA sampler, generic over an optional memory probe.
pub struct FPlusLda<P: MemoryProbe = NoProbe> {
    params: ModelParams,
    doc_view: DocMajorView,
    word_view: WordMajorView,
    state: SamplerState,
    rng: SmallRng,
    iterations: u64,
    beta_bar: f64,
    probe: P,
    region_cd: RegionId,
    region_cw: RegionId,
    region_ck: RegionId,
}

impl FPlusLda<NoProbe> {
    /// Creates an uninstrumented sampler with random initial assignments.
    pub fn new(corpus: &Corpus, params: ModelParams, seed: u64) -> Self {
        Self::with_probe(corpus, params, seed, NoProbe)
    }
}

impl<P: MemoryProbe> FPlusLda<P> {
    /// Creates a sampler whose count-structure accesses are reported to
    /// `probe`. The probed address space models the canonical layouts of the
    /// original implementation: a dense `D×K` document-topic matrix, a dense
    /// `V×K` word-topic matrix and a length-`K` global vector.
    pub fn with_probe(corpus: &Corpus, params: ModelParams, seed: u64, mut probe: P) -> Self {
        let doc_view = DocMajorView::build(corpus);
        let word_view = WordMajorView::build(corpus, &doc_view);
        let mut rng = new_rng(seed);
        let state = SamplerState::init_random(corpus, &doc_view, &word_view, params, &mut rng);
        let beta_bar = params.beta_bar(corpus.vocab_size());
        let k = params.num_topics;
        let region_cd = probe.register_region("Cd matrix", corpus.num_docs() * k, 4);
        let region_cw = probe.register_region("Cw matrix", corpus.vocab_size() * k, 4);
        let region_ck = probe.register_region("ck vector", k, 4);
        Self {
            params,
            doc_view,
            word_view,
            state,
            rng,
            iterations: 0,
            beta_bar,
            probe,
            region_cd,
            region_cw,
            region_ck,
        }
    }

    /// The current state (counts + assignments).
    pub fn state(&self) -> &SamplerState {
        &self.state
    }

    /// The document-major view.
    pub fn doc_view(&self) -> &DocMajorView {
        &self.doc_view
    }

    /// The word-major view.
    pub fn word_view(&self) -> &WordMajorView {
        &self.word_view
    }

    /// The memory probe (e.g. to read cache statistics after a run).
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Builds the F+ tree of the smoothing term for word `w` from fresh counts.
    fn build_tree(&mut self, w: u32) -> FTree {
        let k = self.params.num_topics;
        let alpha = self.params.alpha;
        let beta = self.params.beta;
        let mut weights = vec![0.0f64; k];
        for (t, weight) in weights.iter_mut().enumerate() {
            let cwk = self.state.word_topic(w, t as u32) as f64;
            let ck = self.state.topic(t as u32) as f64;
            *weight = alpha * (cwk + beta) / (ck + self.beta_bar);
        }
        FTree::new(&weights)
    }

    /// Refreshes the tree entries of the two topics whose counts changed.
    fn refresh_tree(&mut self, tree: &mut FTree, w: u32, topics: [u32; 2]) {
        let alpha = self.params.alpha;
        let beta = self.params.beta;
        for &t in &topics {
            let cwk = self.state.word_topic(w, t) as f64;
            let ck = self.state.topic(t) as f64;
            tree.set(t as usize, alpha * (cwk + beta) / (ck + self.beta_bar));
        }
    }
}

impl<P: MemoryProbe> Sampler for FPlusLda<P> {
    fn name(&self) -> &'static str {
        "F+LDA"
    }

    fn params(&self) -> &ModelParams {
        &self.params
    }

    fn run_iteration(&mut self) {
        let k = self.params.num_topics;
        let beta = self.params.beta;
        let beta_bar = self.beta_bar;

        for w in 0..self.word_view.num_words() {
            let w = w as u32;
            if self.word_view.word_len(w) == 0 {
                continue;
            }
            self.probe.begin_scope();
            let mut tree = self.build_tree(w);
            // Sequential pass over this word's column when building the tree.
            for t in 0..k {
                self.probe.read(self.region_cw, w as usize * k + t);
                self.probe.read(self.region_ck, t);
            }

            let token_indices: Vec<u32> = self.word_view.word_token_indices(w).to_vec();
            let docs: Vec<u32> = self.word_view.word_docs(w).to_vec();
            for (slot, &i) in token_indices.iter().enumerate() {
                let i = i as usize;
                let d = docs[slot];
                let old = self.state.remove_token(d, w, i);
                self.refresh_tree(&mut tree, w, [old, old]);
                self.probe.write(self.region_cd, d as usize * k + old as usize);
                self.probe.write(self.region_cw, w as usize * k + old as usize);
                self.probe.write(self.region_ck, old as usize);

                // Sparse document part with fresh counts: random accesses to the
                // rows of the D×K matrix (the expensive part for F+LDA).
                let mut doc_weights: Vec<(u32, f64)> = Vec::new();
                let mut doc_total = 0.0;
                let pairs = self.state.doc_counts(d).to_pairs();
                for &(t, cdk) in &pairs {
                    self.probe.read(self.region_cd, d as usize * k + t as usize);
                    self.probe.read(self.region_cw, w as usize * k + t as usize);
                    self.probe.read(self.region_ck, t as usize);
                    let cwk = self.state.word_topic(w, t) as f64;
                    let ck = self.state.topic(t) as f64;
                    let wgt = cdk as f64 * (cwk + beta) / (ck + beta_bar);
                    doc_total += wgt;
                    doc_weights.push((t, wgt));
                }

                // Exact draw from doc part + smoothing tree.
                let u = self.rng.gen::<f64>() * (doc_total + tree.total());
                let new = if u < doc_total && !doc_weights.is_empty() {
                    let mut acc = 0.0;
                    let mut chosen = doc_weights[doc_weights.len() - 1].0;
                    for &(t, wgt) in &doc_weights {
                        acc += wgt;
                        if u < acc {
                            chosen = t;
                            break;
                        }
                    }
                    chosen
                } else {
                    tree.sample(&mut self.rng) as u32
                };

                self.state.assign_token(d, w, i, new);
                self.refresh_tree(&mut tree, w, [new, old]);
                self.probe.write(self.region_cd, d as usize * k + new as usize);
                self.probe.write(self.region_cw, w as usize * k + new as usize);
                self.probe.write(self.region_ck, new as usize);
            }
            self.probe.end_scope();
        }
        self.iterations += 1;
    }

    fn iterations(&self) -> u64 {
        self.iterations
    }

    fn assignments(&self) -> Vec<u32> {
        self.state.assignments().to_vec()
    }

    fn assignments_slice(&self) -> Option<&[u32]> {
        Some(self.state.assignments())
    }
}

impl<P: MemoryProbe> Checkpointable for FPlusLda<P> {
    fn checkpoint_kind(&self) -> &'static str {
        "fpluslda"
    }

    fn write_state(&self, enc: &mut Encoder<'_>) -> CodecResult<()> {
        checkpoint::write_baseline_body(enc, self.iterations, &self.rng, &self.state)
    }

    fn read_state(&mut self, dec: &mut Decoder<'_>) -> CodecResult<()> {
        let (iterations, rng, z) = checkpoint::read_baseline_body(
            dec,
            self.doc_view.num_tokens(),
            self.params.num_topics,
        )?;
        self.state = SamplerState::from_assignments_with_views(
            &self.doc_view,
            &self.word_view,
            self.params,
            z,
        );
        self.rng = rng;
        self.iterations = iterations;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cgs::CollapsedGibbs;
    use crate::eval::log_joint_likelihood_of_state;
    use warplda_cachesim::CountingProbe;
    use warplda_corpus::CorpusBuilder;

    fn themed_corpus() -> Corpus {
        let mut b = CorpusBuilder::new();
        for _ in 0..25 {
            b.push_text_doc(["car", "engine", "wheel", "road", "car"]);
            b.push_text_doc(["piano", "violin", "chord", "melody", "piano"]);
        }
        b.build().unwrap()
    }

    #[test]
    fn counts_stay_consistent() {
        let corpus = themed_corpus();
        let mut s = FPlusLda::new(&corpus, ModelParams::new(5, 0.3, 0.05), 3);
        for _ in 0..3 {
            s.run_iteration();
            let dv = s.doc_view().clone();
            let wv = s.word_view().clone();
            s.state().assert_consistent(&dv, &wv);
        }
    }

    #[test]
    fn converges_close_to_cgs() {
        let corpus = themed_corpus();
        let params = ModelParams::new(2, 0.5, 0.1);
        let mut fplus = FPlusLda::new(&corpus, params, 5);
        let mut cgs = CollapsedGibbs::new(&corpus, params, 5);
        let ll0 = log_joint_likelihood_of_state(fplus.doc_view(), fplus.word_view(), fplus.state());
        for _ in 0..30 {
            fplus.run_iteration();
            cgs.run_iteration();
        }
        let ll_f =
            log_joint_likelihood_of_state(fplus.doc_view(), fplus.word_view(), fplus.state());
        let ll_cgs = log_joint_likelihood_of_state(cgs.doc_view(), cgs.word_view(), cgs.state());
        assert!(ll_f > ll0, "likelihood should improve: {ll0} -> {ll_f}");
        assert!(
            (ll_f - ll_cgs).abs() < 0.05 * ll_cgs.abs(),
            "F+LDA {ll_f} should approach CGS {ll_cgs} (exact sampler)"
        );
    }

    #[test]
    fn separates_planted_topics() {
        let corpus = themed_corpus();
        let mut s = FPlusLda::new(&corpus, ModelParams::new(2, 0.5, 0.1), 37);
        for _ in 0..40 {
            s.run_iteration();
        }
        let car = corpus.vocab().get("car").unwrap();
        let piano = corpus.vocab().get("piano").unwrap();
        let car_topic = (0..2u32).max_by_key(|&t| s.state().word_topic(car, t)).unwrap();
        let piano_topic = (0..2u32).max_by_key(|&t| s.state().word_topic(piano, t)).unwrap();
        assert_ne!(car_topic, piano_topic);
    }

    #[test]
    fn probe_sees_doc_matrix_random_accesses() {
        let corpus = themed_corpus();
        let mut s =
            FPlusLda::with_probe(&corpus, ModelParams::new(4, 0.5, 0.1), 41, CountingProbe::new());
        s.run_iteration();
        let report = s.probe().report();
        let cd = report.iter().find(|(name, _, _)| name == "Cd matrix").unwrap();
        assert!(cd.1 + cd.2 > 0, "Cd matrix must be touched");
        let (reads, writes) = s.probe().totals();
        assert!(reads > 0 && writes > 0);
    }
}
