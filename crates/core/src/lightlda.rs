//! LightLDA (Yuan et al., WWW 2015) and its ablation ladder towards WarpLDA.
//!
//! LightLDA samples each token with O(1) Metropolis–Hastings steps that
//! alternate between two cheap proposals (Section 3.2):
//!
//! * the **doc proposal** `q_doc(k) ∝ C_dk + α`, drawn by random positioning
//!   over the document's tokens;
//! * the **word proposal** `q_word(k) ∝ (C_wk + β)/(C_k + β̄)`, drawn from a
//!   stale per-word alias table.
//!
//! Counts are updated instantly (like CGS). The [`LightLdaVariant`] knobs
//! reproduce the ladder of Figure 7 of the WarpLDA paper, which moves
//! LightLDA step by step towards WarpLDA:
//!
//! | Variant | meaning |
//! |---------|---------|
//! | `standard()` | plain LightLDA |
//! | `delayed_word()` | `+DW`: word-topic counts only refreshed at iteration end |
//! | `delayed_word_doc()` | `+DW+DD`: document-topic counts delayed as well |
//! | `warp_like()` | `+DW+DD+SP`: additionally uses WarpLDA's simple proposal `q_word ∝ C_wk + β` |

use rand::rngs::SmallRng;
use rand::Rng;

use warplda_cachesim::{MemoryProbe, NoProbe, RegionId};
use warplda_corpus::{Corpus, DocMajorView, WordMajorView};
use warplda_sampling::{new_rng, AliasTable, Dice};

use crate::checkpoint::{self, Checkpointable};
use crate::counts::{HashCounts, TopicCounts};
use crate::params::ModelParams;
use crate::sampler::Sampler;
use crate::state::SamplerState;
use warplda_corpus::io::codec::{CodecError, CodecResult, Decoder, Encoder};

/// Which of the Figure 7 ablation knobs are enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LightLdaVariant {
    /// `+DW`: the word-topic counts used for sampling are a snapshot taken at
    /// the start of the iteration.
    pub delayed_word_counts: bool,
    /// `+DD`: the document-topic counts used for sampling are a snapshot taken
    /// at the start of the iteration.
    pub delayed_doc_counts: bool,
    /// `+SP`: use WarpLDA's simple word proposal `q_word(k) ∝ C_wk + β`
    /// instead of `(C_wk + β)/(C_k + β̄)`.
    pub simple_word_proposal: bool,
}

impl LightLdaVariant {
    /// Plain LightLDA.
    pub fn standard() -> Self {
        Self::default()
    }

    /// `LightLDA+DW` of Figure 7.
    pub fn delayed_word() -> Self {
        Self { delayed_word_counts: true, ..Self::default() }
    }

    /// `LightLDA+DW+DD` of Figure 7.
    pub fn delayed_word_doc() -> Self {
        Self { delayed_word_counts: true, delayed_doc_counts: true, ..Self::default() }
    }

    /// `LightLDA+DW+DD+SP` of Figure 7 — the closest LightLDA gets to WarpLDA
    /// while still being LightLDA.
    pub fn warp_like() -> Self {
        Self { delayed_word_counts: true, delayed_doc_counts: true, simple_word_proposal: true }
    }

    /// Label used in reports.
    pub fn label(&self) -> &'static str {
        match (self.delayed_word_counts, self.delayed_doc_counts, self.simple_word_proposal) {
            (false, false, false) => "LightLDA",
            (true, false, false) => "LightLDA+DW",
            (true, true, false) => "LightLDA+DW+DD",
            (true, true, true) => "LightLDA+DW+DD+SP",
            _ => "LightLDA (custom)",
        }
    }
}

/// Per-word stale alias table for the word proposal.
struct WordProposalTable {
    table: AliasTable,
    /// Stale sparse counts used to evaluate the proposal density.
    stale_pairs: Vec<(u32, u32)>,
    draws: u32,
}

/// The LightLDA sampler, generic over an optional memory probe.
pub struct LightLda<P: MemoryProbe = NoProbe> {
    params: ModelParams,
    doc_view: DocMajorView,
    word_view: WordMajorView,
    state: SamplerState,
    rng: SmallRng,
    iterations: u64,
    beta_bar: f64,
    mh_steps: u32,
    variant: LightLdaVariant,
    stale_doc: Option<Vec<HashCounts>>,
    stale_word: Option<Vec<HashCounts>>,
    word_tables: Vec<Option<WordProposalTable>>,
    probe: P,
    region_cd: RegionId,
    region_cw: RegionId,
    region_ck: RegionId,
}

impl LightLda<NoProbe> {
    /// Creates a plain LightLDA sampler with `mh_steps` MH steps per token.
    pub fn new(corpus: &Corpus, params: ModelParams, mh_steps: u32, seed: u64) -> Self {
        Self::with_variant_and_probe(
            corpus,
            params,
            mh_steps,
            seed,
            LightLdaVariant::standard(),
            NoProbe,
        )
    }

    /// Creates a sampler with one of the Figure 7 ablation variants.
    pub fn with_variant(
        corpus: &Corpus,
        params: ModelParams,
        mh_steps: u32,
        seed: u64,
        variant: LightLdaVariant,
    ) -> Self {
        Self::with_variant_and_probe(corpus, params, mh_steps, seed, variant, NoProbe)
    }
}

impl<P: MemoryProbe> LightLda<P> {
    /// Fully general constructor: variant + memory probe.
    pub fn with_variant_and_probe(
        corpus: &Corpus,
        params: ModelParams,
        mh_steps: u32,
        seed: u64,
        variant: LightLdaVariant,
        mut probe: P,
    ) -> Self {
        assert!(mh_steps >= 1, "need at least one MH step per token");
        let doc_view = DocMajorView::build(corpus);
        let word_view = WordMajorView::build(corpus, &doc_view);
        let mut rng = new_rng(seed);
        let state = SamplerState::init_random(corpus, &doc_view, &word_view, params, &mut rng);
        let beta_bar = params.beta_bar(corpus.vocab_size());
        let k = params.num_topics;
        let region_cd = probe.register_region("Cd matrix", corpus.num_docs() * k, 4);
        let region_cw = probe.register_region("Cw matrix", corpus.vocab_size() * k, 4);
        let region_ck = probe.register_region("ck vector", k, 4);
        let word_tables = (0..corpus.vocab_size()).map(|_| None).collect();
        Self {
            params,
            doc_view,
            word_view,
            state,
            rng,
            iterations: 0,
            beta_bar,
            mh_steps,
            variant,
            stale_doc: None,
            stale_word: None,
            word_tables,
            probe,
            region_cd,
            region_cw,
            region_ck,
        }
    }

    /// The current (instantly updated) state.
    pub fn state(&self) -> &SamplerState {
        &self.state
    }

    /// The document-major view.
    pub fn doc_view(&self) -> &DocMajorView {
        &self.doc_view
    }

    /// The word-major view.
    pub fn word_view(&self) -> &WordMajorView {
        &self.word_view
    }

    /// The variant in use.
    pub fn variant(&self) -> LightLdaVariant {
        self.variant
    }

    /// The memory probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Document-topic count as seen by the *sampler* (stale when `+DD`).
    #[inline]
    fn s_doc_topic(&self, d: u32, t: u32) -> u32 {
        match &self.stale_doc {
            Some(snapshot) => snapshot[d as usize].get(t),
            None => self.state.doc_topic(d, t),
        }
    }

    /// Word-topic count as seen by the sampler (stale when `+DW`).
    #[inline]
    fn s_word_topic(&self, w: u32, t: u32) -> u32 {
        match &self.stale_word {
            Some(snapshot) => snapshot[w as usize].get(t),
            None => self.state.word_topic(w, t),
        }
    }

    /// Unnormalized target density of topic `t` for token `(d, w)`, using the
    /// sampler-visible counts.
    #[inline]
    fn target_weight(&self, d: u32, w: u32, t: u32) -> f64 {
        let cdk = self.s_doc_topic(d, t) as f64;
        let cwk = self.s_word_topic(w, t) as f64;
        let ck = self.state.topic(t) as f64;
        (cdk + self.params.alpha) * (cwk + self.params.beta) / (ck + self.beta_bar)
    }

    /// Doc-proposal density of topic `t` (unnormalized): `C_dk + α`.
    #[inline]
    fn doc_proposal_weight(&self, d: u32, t: u32) -> f64 {
        self.s_doc_topic(d, t) as f64 + self.params.alpha
    }

    /// Word-proposal density of topic `t` (unnormalized), evaluated with the
    /// stale counts the alias table was built from.
    fn word_proposal_weight(&self, w: u32, t: u32) -> f64 {
        let stale = self.word_tables[w as usize]
            .as_ref()
            .map(|tab| tab.stale_pairs.iter().find(|&&(k, _)| k == t).map_or(0, |&(_, c)| c))
            .unwrap_or_else(|| self.s_word_topic(w, t)) as f64;
        if self.variant.simple_word_proposal {
            stale + self.params.beta
        } else {
            (stale + self.params.beta) / (self.state.topic(t) as f64 + self.beta_bar)
        }
    }

    /// (Re)builds the stale word-proposal alias table for word `w`.
    fn rebuild_word_table(&mut self, w: u32) {
        let k = self.params.num_topics;
        let beta = self.params.beta;
        let mut weights = vec![0.0f64; k];
        for (t, weight) in weights.iter_mut().enumerate() {
            let cwk = self.s_word_topic(w, t as u32) as f64;
            *weight = if self.variant.simple_word_proposal {
                cwk + beta
            } else {
                (cwk + beta) / (self.state.topic(t as u32) as f64 + self.beta_bar)
            };
        }
        let stale_pairs: Vec<(u32, u32)> = match &self.stale_word {
            Some(snapshot) => snapshot[w as usize].to_pairs(),
            None => self.state.word_counts(w).to_pairs(),
        };
        self.word_tables[w as usize] =
            Some(WordProposalTable { table: AliasTable::new(&weights), stale_pairs, draws: 0 });
    }

    /// Draws from the doc proposal `q_doc(k) ∝ C_dk + α` by random positioning
    /// over the document's tokens plus the uniform smoothing component.
    fn draw_doc_proposal(&mut self, d: u32) -> u32 {
        let len = self.doc_view.doc_len(d);
        let alpha_bar = self.params.alpha_bar();
        let k = self.params.num_topics;
        if len > 0 && self.rng.gen::<f64>() < len as f64 / (len as f64 + alpha_bar) {
            let pos = self.rng.dice(len);
            let range = self.doc_view.doc_range(d);
            self.state.topic_of(range.start + pos)
        } else {
            self.rng.dice(k) as u32
        }
    }

    /// Takes the delayed-count snapshots at the start of an iteration.
    fn refresh_snapshots(&mut self) {
        if self.variant.delayed_doc_counts {
            self.stale_doc = Some(
                (0..self.doc_view.num_docs())
                    .map(|d| self.state.doc_counts(d as u32).clone())
                    .collect(),
            );
        }
        if self.variant.delayed_word_counts {
            self.stale_word = Some(
                (0..self.word_view.num_words())
                    .map(|w| self.state.word_counts(w as u32).clone())
                    .collect(),
            );
        }
    }
}

impl<P: MemoryProbe> Sampler for LightLda<P> {
    fn name(&self) -> &'static str {
        self.variant.label()
    }

    fn params(&self) -> &ModelParams {
        &self.params
    }

    fn run_iteration(&mut self) {
        self.refresh_snapshots();
        let k = self.params.num_topics;

        for d in 0..self.doc_view.num_docs() {
            let d = d as u32;
            self.probe.begin_scope();
            for i in self.doc_view.doc_range(d) {
                let w = self.doc_view.word_of(i);
                // Instant (ground-truth) counts always track the assignments; the
                // delayed variants simply *sample* from the stale snapshots.
                let old = self.state.remove_token(d, w, i);
                self.probe.write(self.region_cd, d as usize * k + old as usize);
                self.probe.write(self.region_cw, w as usize * k + old as usize);
                self.probe.write(self.region_ck, old as usize);

                let mut z = old;
                for step in 0..self.mh_steps {
                    // The doc/word proposal alternation is one global cycle that
                    // continues across iterations; with an odd M (notably the
                    // Figure 7 ladder's M = 1) consecutive iterations would
                    // otherwise keep drawing the same proposal kind forever and
                    // never mix over the other dimension.
                    let use_doc_proposal =
                        (self.iterations * self.mh_steps as u64 + step as u64).is_multiple_of(2);
                    let candidate = if use_doc_proposal {
                        self.draw_doc_proposal(d)
                    } else {
                        let needs_rebuild = match &self.word_tables[w as usize] {
                            None => true,
                            Some(t) => t.draws as usize >= self.word_view.word_len(w).max(8),
                        };
                        if needs_rebuild {
                            self.rebuild_word_table(w);
                        }
                        let table = self.word_tables[w as usize].as_mut().expect("just built");
                        table.draws += 1;
                        table.table.sample(&mut self.rng) as u32
                    };

                    // Count-structure accesses for the acceptance ratio.
                    self.probe.read(self.region_cd, d as usize * k + z as usize);
                    self.probe.read(self.region_cd, d as usize * k + candidate as usize);
                    self.probe.read(self.region_cw, w as usize * k + z as usize);
                    self.probe.read(self.region_cw, w as usize * k + candidate as usize);
                    self.probe.read(self.region_ck, z as usize);
                    self.probe.read(self.region_ck, candidate as usize);

                    if candidate == z {
                        continue;
                    }
                    let (q_from, q_to) = if use_doc_proposal {
                        (self.doc_proposal_weight(d, z), self.doc_proposal_weight(d, candidate))
                    } else {
                        (self.word_proposal_weight(w, z), self.word_proposal_weight(w, candidate))
                    };
                    let num = self.target_weight(d, w, candidate) * q_from;
                    let den = self.target_weight(d, w, z) * q_to;
                    let ratio = if den <= 0.0 { 1.0 } else { num / den };
                    if ratio >= 1.0 || self.rng.gen::<f64>() < ratio {
                        z = candidate;
                    }
                }

                self.state.assign_token(d, w, i, z);
                self.probe.write(self.region_cd, d as usize * k + z as usize);
                self.probe.write(self.region_cw, w as usize * k + z as usize);
                self.probe.write(self.region_ck, z as usize);
            }
            self.probe.end_scope();
        }
        self.iterations += 1;
    }

    fn iterations(&self) -> u64 {
        self.iterations
    }

    fn assignments(&self) -> Vec<u32> {
        self.state.assignments().to_vec()
    }

    fn assignments_slice(&self) -> Option<&[u32]> {
        Some(self.state.assignments())
    }
}

impl<P: MemoryProbe> Checkpointable for LightLda<P> {
    fn checkpoint_kind(&self) -> &'static str {
        "lightlda"
    }

    fn write_state(&self, enc: &mut Encoder<'_>) -> CodecResult<()> {
        enc.write_u64(self.mh_steps as u64)?;
        enc.write_bool(self.variant.delayed_word_counts)?;
        enc.write_bool(self.variant.delayed_doc_counts)?;
        enc.write_bool(self.variant.simple_word_proposal)?;
        checkpoint::write_baseline_body(enc, self.iterations, &self.rng, &self.state)
    }

    fn read_state(&mut self, dec: &mut Decoder<'_>) -> CodecResult<()> {
        let mh_steps = dec.read_u64()?;
        let variant = LightLdaVariant {
            delayed_word_counts: dec.read_bool()?,
            delayed_doc_counts: dec.read_bool()?,
            simple_word_proposal: dec.read_bool()?,
        };
        if mh_steps != self.mh_steps as u64 || variant != self.variant {
            return Err(CodecError::Corrupt(format!(
                "checkpoint configuration ({}, M = {mh_steps}) does not match the sampler \
                 ({}, M = {})",
                variant.label(),
                self.variant.label(),
                self.mh_steps,
            )));
        }
        let (iterations, rng, z) = checkpoint::read_baseline_body(
            dec,
            self.doc_view.num_tokens(),
            self.params.num_topics,
        )?;
        self.state = SamplerState::from_assignments_with_views(
            &self.doc_view,
            &self.word_view,
            self.params,
            z,
        );
        // All delayed snapshots and stale proposal tables refer to
        // pre-checkpoint counts; drop them so the next iteration rebuilds.
        self.stale_doc = None;
        self.stale_word = None;
        self.word_tables.iter_mut().for_each(|t| *t = None);
        self.rng = rng;
        self.iterations = iterations;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cgs::CollapsedGibbs;
    use crate::eval::log_joint_likelihood_of_state;
    use warplda_cachesim::CountingProbe;
    use warplda_corpus::CorpusBuilder;

    fn themed_corpus() -> Corpus {
        let mut b = CorpusBuilder::new();
        for _ in 0..25 {
            b.push_text_doc(["bread", "flour", "oven", "yeast", "bread"]);
            b.push_text_doc(["rocket", "orbit", "launch", "fuel", "rocket"]);
        }
        b.build().unwrap()
    }

    #[test]
    fn counts_stay_consistent_for_all_variants() {
        let corpus = themed_corpus();
        for variant in [
            LightLdaVariant::standard(),
            LightLdaVariant::delayed_word(),
            LightLdaVariant::delayed_word_doc(),
            LightLdaVariant::warp_like(),
        ] {
            let mut s =
                LightLda::with_variant(&corpus, ModelParams::new(4, 0.3, 0.05), 2, 3, variant);
            for _ in 0..2 {
                s.run_iteration();
                let dv = s.doc_view().clone();
                let wv = s.word_view().clone();
                s.state().assert_consistent(&dv, &wv);
            }
        }
    }

    #[test]
    fn likelihood_improves_and_approaches_cgs() {
        let corpus = themed_corpus();
        let params = ModelParams::new(2, 0.5, 0.1);
        let mut light = LightLda::new(&corpus, params, 4, 5);
        let mut cgs = CollapsedGibbs::new(&corpus, params, 5);
        let ll0 = log_joint_likelihood_of_state(light.doc_view(), light.word_view(), light.state());
        for _ in 0..40 {
            light.run_iteration();
            cgs.run_iteration();
        }
        let ll_l =
            log_joint_likelihood_of_state(light.doc_view(), light.word_view(), light.state());
        let ll_c = log_joint_likelihood_of_state(cgs.doc_view(), cgs.word_view(), cgs.state());
        assert!(ll_l > ll0, "likelihood should improve: {ll0} -> {ll_l}");
        assert!(
            (ll_l - ll_c).abs() < 0.06 * ll_c.abs(),
            "LightLDA {ll_l} should approach CGS {ll_c}"
        );
    }

    #[test]
    fn all_variants_converge_to_similar_likelihood() {
        // The qualitative claim of Figure 7: delayed updates and the simple
        // proposal do not change the converged quality much.
        let corpus = themed_corpus();
        let params = ModelParams::new(2, 0.5, 0.1);
        let mut finals = Vec::new();
        for variant in [
            LightLdaVariant::standard(),
            LightLdaVariant::delayed_word(),
            LightLdaVariant::delayed_word_doc(),
            LightLdaVariant::warp_like(),
        ] {
            let mut s = LightLda::with_variant(&corpus, params, 2, 7, variant);
            for _ in 0..40 {
                s.run_iteration();
            }
            finals.push(log_joint_likelihood_of_state(s.doc_view(), s.word_view(), s.state()));
        }
        let best = finals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let worst = finals.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            (best - worst).abs() < 0.06 * best.abs(),
            "variants should converge to similar likelihoods: {finals:?}"
        );
    }

    #[test]
    fn variant_labels_match_figure7() {
        assert_eq!(LightLdaVariant::standard().label(), "LightLDA");
        assert_eq!(LightLdaVariant::delayed_word().label(), "LightLDA+DW");
        assert_eq!(LightLdaVariant::delayed_word_doc().label(), "LightLDA+DW+DD");
        assert_eq!(LightLdaVariant::warp_like().label(), "LightLDA+DW+DD+SP");
    }

    #[test]
    fn probe_sees_word_matrix_accesses() {
        let corpus = themed_corpus();
        let mut s = LightLda::with_variant_and_probe(
            &corpus,
            ModelParams::new(4, 0.5, 0.1),
            2,
            11,
            LightLdaVariant::standard(),
            CountingProbe::new(),
        );
        s.run_iteration();
        let report = s.probe().report();
        let cw = report.iter().find(|(name, _, _)| name == "Cw matrix").unwrap();
        assert!(cw.1 > 0, "Cw matrix reads expected");
    }

    #[test]
    #[should_panic(expected = "at least one MH step")]
    fn zero_mh_steps_rejected() {
        let corpus = themed_corpus();
        let _ = LightLda::new(&corpus, ModelParams::new(2, 0.5, 0.1), 0, 1);
    }
}
