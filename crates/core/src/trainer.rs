//! The unified training pipeline: one loop that owns iteration timing,
//! scheduled evaluation and checkpoint persistence for any [`Sampler`].
//!
//! Every consumer of the workspace — the bench binaries behind the paper's
//! tables and figures, the distributed runner, the examples and the
//! integration tests — used to hand-roll the same
//! `run_iteration → time it → maybe evaluate` loop. The [`Trainer`] is that
//! loop, written once, with the two capabilities the hand-rolled copies never
//! grew:
//!
//! * **Overlapped evaluation.** Computing the log joint likelihood walks
//!   every token and is often as expensive as a sampling iteration. The
//!   trainer snapshots the assignments (through the borrowed
//!   [`Sampler::assignments_slice`] path where available) and evaluates the
//!   snapshot on a background thread inside a [`std::thread::scope`], so
//!   sampling iteration `i + 1` runs concurrently with the evaluation of
//!   iteration `i`. Because evaluation is a pure function of the snapshot,
//!   the values are identical to inline evaluation — only the wall clock
//!   differs.
//! * **Checkpoint persistence.** At a configurable cadence the trainer saves
//!   a [`Checkpointable`] sampler through the binary codec
//!   ([`crate::checkpoint`]), and [`Trainer::resume`] continues a saved run —
//!   bit-identically for serial and parallel WarpLDA.
//!
//! The produced [`IterationLog`] is the one report format shared by all
//! call sites: per-iteration sampling time, throughput and (where evaluated)
//! log likelihood, with the derived quantities (time-to-target,
//! iterations-to-target, CSV export) the figure binaries need.

use std::path::{Path, PathBuf};
use std::time::Instant;

use warplda_corpus::io::codec::CodecResult;
use warplda_corpus::{Corpus, DocMajorView, Vocabulary, WordMajorView};

use crate::checkpoint::{self, Checkpointable};
use crate::eval;
use crate::params::ModelParams;
use crate::sampler::Sampler;

/// Schedule and persistence knobs of one training run.
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Number of iterations to run.
    pub iterations: usize,
    /// Evaluate the log likelihood every `eval_every` iterations (`0` means
    /// no periodic evaluation).
    pub eval_every: usize,
    /// Always evaluate after the final iteration, regardless of `eval_every`.
    pub eval_final: bool,
    /// Evaluate on a background worker so sampling is not stalled behind the
    /// likelihood computation. Values are identical either way.
    pub overlap_eval: bool,
    /// Save a checkpoint every `checkpoint_every` iterations (`0` means
    /// never; the final iteration is always saved when a cadence is set).
    pub checkpoint_every: usize,
    /// Directory checkpoints are written to (required when
    /// `checkpoint_every > 0` in [`Trainer::train_checkpointed`]).
    pub checkpoint_dir: Option<PathBuf>,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            iterations: 100,
            eval_every: 10,
            eval_final: true,
            overlap_eval: true,
            checkpoint_every: 0,
            checkpoint_dir: None,
        }
    }
}

impl TrainerConfig {
    /// A run of `iterations` iterations with the default schedule (evaluate
    /// every 10, overlapped, no checkpoints).
    pub fn new(iterations: usize) -> Self {
        Self { iterations, ..Self::default() }
    }

    /// A run that only samples: no periodic evaluation, no final evaluation,
    /// no checkpoints. Used for warm-up and throughput measurements.
    pub fn sampling_only(iterations: usize) -> Self {
        Self { iterations, eval_every: 0, eval_final: false, ..Self::default() }
    }

    /// Sets the evaluation cadence.
    pub fn eval_every(mut self, every: usize) -> Self {
        self.eval_every = every;
        self
    }

    /// Disables the forced evaluation after the final iteration.
    pub fn no_final_eval(mut self) -> Self {
        self.eval_final = false;
        self
    }

    /// Forces evaluations to run inline on the sampling thread (the
    /// behaviour of the old hand-rolled loops).
    pub fn inline_eval(mut self) -> Self {
        self.overlap_eval = false;
        self
    }

    /// Enables checkpoints every `every` iterations into `dir`.
    pub fn checkpoint_into(mut self, dir: impl Into<PathBuf>, every: usize) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self.checkpoint_every = every;
        self
    }

    fn wants_eval(&self, iteration_in_run: usize) -> bool {
        (self.eval_every > 0 && iteration_in_run.is_multiple_of(self.eval_every))
            || (self.eval_final && iteration_in_run == self.iterations)
    }

    fn wants_checkpoint(&self, iteration_in_run: usize) -> bool {
        self.checkpoint_every > 0
            && (iteration_in_run.is_multiple_of(self.checkpoint_every)
                || iteration_in_run == self.iterations)
    }
}

/// One trained iteration as recorded by the [`Trainer`] (or adapted from a
/// distributed iteration report).
#[derive(Debug, Clone, Copy)]
pub struct IterationRecord {
    /// Absolute iteration number (1-based, continues across resumes).
    pub iteration: u64,
    /// Cumulative sampling seconds up to and including this iteration
    /// (excludes evaluation — overlapped or not).
    pub seconds: f64,
    /// Sampling throughput of this iteration, tokens/second, derived from
    /// the trainer's wall clock around `run_iteration`.
    pub tokens_per_sec: f64,
    /// Seconds this iteration spent inside the sampler's own phases, when
    /// the sampler measures them ([`Sampler::last_iteration_phase_seconds`]).
    /// Unlike `seconds`/`tokens_per_sec` this excludes trainer bookkeeping
    /// (snapshotting, logging, checkpoint scheduling). It is still wall
    /// time: CPU stolen by other threads of the process — e.g. the
    /// overlapped evaluation worker on a core-constrained machine — affects
    /// both clocks equally.
    pub phase_seconds: Option<f64>,
    /// Log joint likelihood after this iteration, when evaluated.
    pub log_likelihood: Option<f64>,
    /// Fold-in held-out metric after this iteration (by convention a
    /// per-token perplexity on held-out documents), when the trainer was
    /// given a held-out evaluation via [`Trainer::with_held_out_fn`].
    /// Follows the same schedule as `log_likelihood` and runs on the same
    /// overlapped background worker. `None` everywhere otherwise — the
    /// metric is strictly opt-in because it costs a model freeze plus an
    /// inference pass per evaluation point.
    pub held_out: Option<f64>,
}

impl IterationRecord {
    /// Phase-time-only throughput of this iteration, tokens/second, when the
    /// sampler reported its phase clock.
    pub fn phase_tokens_per_sec(&self, tokens_per_iteration: u64) -> Option<f64> {
        self.phase_seconds.map(|s| tokens_per_iteration as f64 / s.max(1e-12))
    }
}

/// The per-iteration history of a training run: the one report format shared
/// by the bench harness, the distributed runner, the examples and the tests.
#[derive(Debug, Clone)]
pub struct IterationLog {
    name: String,
    tokens_per_iteration: u64,
    records: Vec<IterationRecord>,
}

impl IterationLog {
    /// An empty log for a sampler processing `tokens_per_iteration` tokens
    /// per iteration.
    pub fn new(name: impl Into<String>, tokens_per_iteration: u64) -> Self {
        Self { name: name.into(), tokens_per_iteration, records: Vec::new() }
    }

    /// Display name of the run.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Tokens processed per iteration (the corpus token count for
    /// single-pass samplers).
    pub fn tokens_per_iteration(&self) -> u64 {
        self.tokens_per_iteration
    }

    /// All records, in iteration order.
    pub fn records(&self) -> &[IterationRecord] {
        &self.records
    }

    /// Appends a record (used by adapters like the distributed driver).
    pub fn push(&mut self, record: IterationRecord) {
        self.records.push(record);
    }

    /// The records that carry a likelihood, in iteration order — the points
    /// of a convergence curve.
    pub fn eval_points(&self) -> impl Iterator<Item = &IterationRecord> {
        self.records.iter().filter(|r| r.log_likelihood.is_some())
    }

    /// The evaluated likelihood at iteration `iteration`, if any.
    pub fn likelihood_at(&self, iteration: u64) -> Option<f64> {
        self.records.iter().find(|r| r.iteration == iteration).and_then(|r| r.log_likelihood)
    }

    /// The last evaluated log likelihood (`-inf` when nothing was evaluated,
    /// so comparisons still order sensibly).
    pub fn final_ll(&self) -> f64 {
        self.eval_points().last().and_then(|r| r.log_likelihood).unwrap_or(f64::NEG_INFINITY)
    }

    /// Total sampling seconds over the run.
    pub fn total_seconds(&self) -> f64 {
        self.records.last().map_or(0.0, |r| r.seconds)
    }

    /// Mean sampling throughput over the run, tokens/second.
    pub fn mean_tokens_per_sec(&self) -> f64 {
        let total = self.total_seconds();
        self.tokens_per_iteration as f64 * self.records.len() as f64 / total.max(1e-12)
    }

    /// Mean *phase-time-only* throughput over the iterations that reported a
    /// phase clock, tokens/second. `None` when no record carries one.
    pub fn mean_phase_tokens_per_sec(&self) -> Option<f64> {
        let mut secs = 0.0;
        let mut n = 0u64;
        for r in &self.records {
            if let Some(s) = r.phase_seconds {
                secs += s;
                n += 1;
            }
        }
        (n > 0).then(|| self.tokens_per_iteration as f64 * n as f64 / secs.max(1e-12))
    }

    /// First evaluated iteration whose likelihood reaches `target`, if any.
    pub fn iterations_to_reach(&self, target: f64) -> Option<u64> {
        self.eval_points().find(|r| r.log_likelihood.unwrap() >= target).map(|r| r.iteration)
    }

    /// Sampling seconds needed to reach `target`, if ever reached.
    pub fn seconds_to_reach(&self, target: f64) -> Option<f64> {
        self.eval_points().find(|r| r.log_likelihood.unwrap() >= target).map(|r| r.seconds)
    }

    /// CSV rows (`name,iteration,seconds,log_likelihood`) of the evaluated
    /// points, matching the experiment harness file format.
    pub fn csv_rows(&self) -> Vec<String> {
        self.eval_points()
            .map(|r| {
                format!(
                    "{},{},{:.4},{:.3}",
                    self.name,
                    r.iteration,
                    r.seconds,
                    r.log_likelihood.unwrap()
                )
            })
            .collect()
    }

    /// The records that carry a held-out metric, in iteration order.
    pub fn held_out_points(&self) -> impl Iterator<Item = &IterationRecord> {
        self.records.iter().filter(|r| r.held_out.is_some())
    }

    fn set_evaluation(&mut self, iteration: u64, ll: f64, held_out: Option<f64>) {
        if let Some(r) = self.records.iter_mut().find(|r| r.iteration == iteration) {
            r.log_likelihood = Some(ll);
            r.held_out = held_out;
        }
    }
}

/// Everything an evaluation function may look at: the corpus, its two views,
/// the model parameters and the snapshotted assignments.
pub struct EvalInput<'a> {
    /// The training corpus.
    pub corpus: &'a Corpus,
    /// Document-major view of the corpus.
    pub doc_view: &'a DocMajorView,
    /// Word-major view of the corpus.
    pub word_view: &'a WordMajorView,
    /// Model hyper-parameters.
    pub params: ModelParams,
    /// Snapshot of the topic assignments (doc-major token order).
    pub assignments: &'a [u32],
}

/// A replaceable evaluation metric; the default computes the log joint
/// likelihood of the snapshot.
pub type EvalFn = Box<dyn Fn(EvalInput<'_>) -> f64 + Send + Sync>;

/// Internal hook that saves a checkpoint of `S` at an iteration and returns
/// the written path.
type SaveHook<'a, S> = &'a dyn Fn(&S, u64) -> CodecResult<PathBuf>;

fn default_eval(input: EvalInput<'_>) -> f64 {
    eval::log_joint_likelihood(
        input.corpus,
        input.doc_view,
        input.word_view,
        &input.params,
        input.assignments,
    )
}

/// The outcome of a checkpointed training run.
#[derive(Debug)]
pub struct TrainOutcome {
    /// The per-iteration history.
    pub log: IterationLog,
    /// Paths of every checkpoint written, in iteration order.
    pub checkpoints: Vec<PathBuf>,
}

/// The unified training loop (see the module docs).
pub struct Trainer<'a> {
    corpus: &'a Corpus,
    doc_view: DocMajorView,
    word_view: WordMajorView,
    eval_fn: Option<EvalFn>,
    held_out_fn: Option<EvalFn>,
}

impl<'a> Trainer<'a> {
    /// Creates a trainer over `corpus`, building the two views.
    pub fn new(corpus: &'a Corpus) -> Self {
        let doc_view = DocMajorView::build(corpus);
        let word_view = WordMajorView::build(corpus, &doc_view);
        Self::with_views(corpus, doc_view, word_view)
    }

    /// Creates a trainer reusing existing views (they must belong to
    /// `corpus`).
    pub fn with_views(
        corpus: &'a Corpus,
        doc_view: DocMajorView,
        word_view: WordMajorView,
    ) -> Self {
        assert_eq!(
            doc_view.num_tokens() as u64,
            corpus.num_tokens(),
            "views must belong to the corpus"
        );
        Self { corpus, doc_view, word_view, eval_fn: None, held_out_fn: None }
    }

    /// Replaces the evaluation metric (default: log joint likelihood).
    pub fn with_eval_fn(mut self, f: EvalFn) -> Self {
        self.eval_fn = Some(f);
        self
    }

    /// Opts into a fold-in held-out evaluation, recorded into
    /// [`IterationRecord::held_out`] at the same schedule as the likelihood
    /// and computed on the same overlapped background worker.
    ///
    /// The function receives the usual [`EvalInput`] snapshot of the
    /// *training* corpus; a held-out evaluator is expected to rebuild the
    /// model's counts from the snapshot (freeze a serving model) and score
    /// its own held-out documents against them — the `warplda-serve` crate
    /// provides exactly that closure.
    pub fn with_held_out_fn(mut self, f: EvalFn) -> Self {
        self.held_out_fn = Some(f);
        self
    }

    /// The document-major view the trainer evaluates against.
    pub fn doc_view(&self) -> &DocMajorView {
        &self.doc_view
    }

    /// The word-major view the trainer evaluates against.
    pub fn word_view(&self) -> &WordMajorView {
        &self.word_view
    }

    /// Runs `config.iterations` iterations of `sampler`, returning the log.
    ///
    /// Evaluations follow `config`'s schedule and — unless
    /// [`TrainerConfig::inline_eval`] — run on a background worker overlapped
    /// with the next sampling iterations.
    pub fn train(
        &self,
        config: &TrainerConfig,
        name: &str,
        sampler: &mut (dyn Sampler + '_),
    ) -> IterationLog {
        let (log, _) = self
            .train_impl(config, name, sampler, None)
            .expect("training without checkpoints cannot fail");
        log
    }

    /// Like [`train`](Self::train), additionally saving checkpoints at
    /// `config`'s cadence into `config.checkpoint_dir`.
    ///
    /// `vocab` (usually `Some(corpus.vocab())`) is embedded into every
    /// checkpoint so saved models can be inspected standalone.
    ///
    /// # Panics
    /// Panics if `config.checkpoint_every > 0` without a `checkpoint_dir` —
    /// writing to an implicit CWD-relative directory would scatter checkpoint
    /// files wherever the process happens to run.
    pub fn train_checkpointed(
        &self,
        config: &TrainerConfig,
        name: &str,
        sampler: &mut (dyn Checkpointable + '_),
        vocab: Option<&Vocabulary>,
    ) -> CodecResult<TrainOutcome> {
        assert!(
            config.checkpoint_every == 0 || config.checkpoint_dir.is_some(),
            "TrainerConfig sets a checkpoint cadence but no checkpoint_dir \
             (use TrainerConfig::checkpoint_into)"
        );
        let dir = config.checkpoint_dir.clone().unwrap_or_default();
        let file_stem = sanitize_name(name);
        let saver = move |s: &(dyn Checkpointable + '_), iteration: u64| -> CodecResult<PathBuf> {
            let path = dir.join(format!("{file_stem}-iter{iteration:06}.ckpt"));
            checkpoint::save_checkpoint(s, vocab, &path)?;
            Ok(path)
        };
        let (log, checkpoints) = self.train_impl(config, name, sampler, Some(&saver))?;
        Ok(TrainOutcome { log, checkpoints })
    }

    /// Loads the checkpoint at `path` into `sampler` and continues training
    /// under `config`. Continuation is bit-identical to an uninterrupted run
    /// for serial and parallel WarpLDA (and deterministic for every sampler).
    ///
    /// When `vocab` is `None`, checkpoints written by the continued run reuse
    /// the vocabulary embedded in the loaded checkpoint (if any), so a
    /// crash/resume cycle does not silently drop it.
    pub fn resume(
        &self,
        config: &TrainerConfig,
        name: &str,
        sampler: &mut (dyn Checkpointable + '_),
        path: &Path,
        vocab: Option<&Vocabulary>,
    ) -> CodecResult<TrainOutcome> {
        let embedded = checkpoint::load_checkpoint(sampler, path)?;
        self.train_checkpointed(config, name, sampler, vocab.or(embedded.as_ref()))
    }

    /// Measures mean sampling throughput: runs `warmup` unmeasured iterations
    /// (the first iteration pays allocation costs) followed by `iterations`
    /// measured ones, and returns tokens/second given that one iteration
    /// processes `tokens_per_iteration` tokens (WarpLDA visits every token
    /// twice per iteration, so its callers pass `2 * T`).
    pub fn measure_throughput(
        &self,
        sampler: &mut (dyn Sampler + '_),
        iterations: usize,
        warmup: usize,
        tokens_per_iteration: u64,
    ) -> f64 {
        assert!(iterations >= 1, "need at least one measurement iteration");
        for _ in 0..warmup {
            sampler.run_iteration();
        }
        let t0 = Instant::now();
        for _ in 0..iterations {
            sampler.run_iteration();
        }
        let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
        tokens_per_iteration as f64 * iterations as f64 / elapsed
    }

    /// The single implementation behind [`train`](Self::train) and
    /// [`train_checkpointed`](Self::train_checkpointed), generic over whether
    /// the sampler type supports saving.
    fn train_impl<S: Sampler + ?Sized>(
        &self,
        config: &TrainerConfig,
        name: &str,
        sampler: &mut S,
        saver: Option<SaveHook<'_, S>>,
    ) -> CodecResult<(IterationLog, Vec<PathBuf>)> {
        let tokens_per_iter = self.doc_view.num_tokens() as u64;
        let mut log = IterationLog::new(name, tokens_per_iter);
        let mut checkpoints = Vec::new();
        let params = *sampler.params();
        let corpus = self.corpus;
        let doc_view = &self.doc_view;
        let word_view = &self.word_view;
        let eval_fn: &(dyn Fn(EvalInput<'_>) -> f64 + Send + Sync) = match &self.eval_fn {
            Some(f) => f.as_ref(),
            None => &default_eval,
        };
        let held_out_fn: Option<&(dyn Fn(EvalInput<'_>) -> f64 + Send + Sync)> =
            self.held_out_fn.as_deref();
        // One evaluation = likelihood plus (opt-in) held-out metric, computed
        // from the same snapshot so both describe the same iteration.
        let evaluate = move |input: EvalInput<'_>| -> (f64, Option<f64>) {
            let held = held_out_fn.map(|f| {
                f(EvalInput {
                    corpus: input.corpus,
                    doc_view: input.doc_view,
                    word_view: input.word_view,
                    params: input.params,
                    assignments: input.assignments,
                })
            });
            (eval_fn(input), held)
        };

        let mut result = Ok(());
        std::thread::scope(|scope| {
            // At most one evaluation is in flight; joining the previous one
            // before spawning the next bounds memory and keeps results in
            // iteration order. By the time the next evaluation is due, the
            // previous worker has typically long finished.
            type EvalHandle<'s> = std::thread::ScopedJoinHandle<'s, (f64, Option<f64>)>;
            let mut pending: Option<(u64, EvalHandle<'_>)> = None;
            let mut evals: Vec<(u64, f64, Option<f64>)> = Vec::new();
            let mut sampling_secs = 0.0;

            for it in 1..=config.iterations {
                let t0 = Instant::now();
                sampler.run_iteration();
                let iter_secs = t0.elapsed().as_secs_f64();
                sampling_secs += iter_secs;
                let iteration = sampler.iterations();
                log.push(IterationRecord {
                    iteration,
                    seconds: sampling_secs,
                    tokens_per_sec: tokens_per_iter as f64 / iter_secs.max(1e-12),
                    phase_seconds: sampler.last_iteration_phase_seconds(),
                    log_likelihood: None,
                    held_out: None,
                });

                if config.wants_eval(it) {
                    let mut snapshot = Vec::new();
                    sampler.write_assignments_into(&mut snapshot);
                    if config.overlap_eval {
                        if let Some((i, handle)) = pending.take() {
                            let (ll, held) = handle.join().expect("evaluation worker panicked");
                            evals.push((i, ll, held));
                        }
                        let handle = scope.spawn(move || {
                            evaluate(EvalInput {
                                corpus,
                                doc_view,
                                word_view,
                                params,
                                assignments: &snapshot,
                            })
                        });
                        pending = Some((iteration, handle));
                    } else {
                        let (ll, held) = evaluate(EvalInput {
                            corpus,
                            doc_view,
                            word_view,
                            params,
                            assignments: &snapshot,
                        });
                        evals.push((iteration, ll, held));
                    }
                }

                if let Some(saver) = saver {
                    if config.wants_checkpoint(it) {
                        match saver(sampler, iteration) {
                            Ok(path) => checkpoints.push(path),
                            Err(e) => {
                                result = Err(e);
                                break;
                            }
                        }
                    }
                }
            }

            if let Some((i, handle)) = pending.take() {
                let (ll, held) = handle.join().expect("evaluation worker panicked");
                evals.push((i, ll, held));
            }
            for (iteration, ll, held) in evals {
                log.set_evaluation(iteration, ll, held);
            }
        });
        result.map(|()| (log, checkpoints))
    }
}

/// Maps a run name to a filesystem-safe checkpoint file stem.
fn sanitize_name(name: &str) -> String {
    let stem: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
        .collect();
    if stem.is_empty() {
        "run".to_string()
    } else {
        stem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::warp::{WarpLda, WarpLdaConfig};
    use crate::ParallelWarpLda;
    use warplda_corpus::DatasetPreset;

    fn corpus() -> Corpus {
        DatasetPreset::Tiny.generate_scaled(8)
    }

    #[test]
    fn schedule_evaluates_on_cadence_and_final() {
        let corpus = corpus();
        let trainer = Trainer::new(&corpus);
        let mut s =
            WarpLda::new(&corpus, ModelParams::paper_defaults(6), WarpLdaConfig::default(), 1);
        let log = trainer.train(&TrainerConfig::new(7).eval_every(3), "warp", &mut s);
        assert_eq!(log.records().len(), 7);
        let evaluated: Vec<u64> = log.eval_points().map(|r| r.iteration).collect();
        assert_eq!(evaluated, vec![3, 6, 7], "cadence 3 plus the forced final evaluation");
        assert!(log.final_ll().is_finite());
        assert!(log.total_seconds() > 0.0);
        assert!(log.mean_tokens_per_sec() > 0.0);
        assert_eq!(log.csv_rows().len(), 3);
        // WarpLDA keeps phase clocks, so every record must carry the
        // phase-time-only view and it must never exceed the wall measurement.
        assert!(log.records().iter().all(|r| r.phase_seconds.is_some()));
        let phase_tps = log.mean_phase_tokens_per_sec().expect("phase clocks present");
        assert!(phase_tps >= log.mean_tokens_per_sec());
    }

    #[test]
    fn sampling_only_never_evaluates() {
        let corpus = corpus();
        let trainer = Trainer::new(&corpus);
        let mut s =
            WarpLda::new(&corpus, ModelParams::paper_defaults(6), WarpLdaConfig::default(), 1);
        let log = trainer.train(&TrainerConfig::sampling_only(4), "warp", &mut s);
        assert_eq!(log.records().len(), 4);
        assert_eq!(log.eval_points().count(), 0);
        assert_eq!(log.final_ll(), f64::NEG_INFINITY);
        assert_eq!(s.iterations(), 4);
    }

    #[test]
    fn overlapped_matches_inline_likelihoods_exactly() {
        let corpus = corpus();
        let params = ModelParams::paper_defaults(8);
        let trainer = Trainer::new(&corpus);

        let mut a = WarpLda::new(&corpus, params, WarpLdaConfig::default(), 3);
        let overlapped = trainer.train(&TrainerConfig::new(10).eval_every(2), "overlapped", &mut a);
        let mut b = WarpLda::new(&corpus, params, WarpLdaConfig::default(), 3);
        let inline =
            trainer.train(&TrainerConfig::new(10).eval_every(2).inline_eval(), "inline", &mut b);

        let lls_a: Vec<(u64, f64)> =
            overlapped.eval_points().map(|r| (r.iteration, r.log_likelihood.unwrap())).collect();
        let lls_b: Vec<(u64, f64)> =
            inline.eval_points().map(|r| (r.iteration, r.log_likelihood.unwrap())).collect();
        assert_eq!(lls_a.len(), 5, "iterations 2, 4, 6, 8, 10");
        for ((ia, la), (ib, lb)) in lls_a.iter().zip(&lls_b) {
            assert_eq!(ia, ib);
            assert_eq!(la.to_bits(), lb.to_bits(), "iteration {ia}: {la} vs {lb}");
        }
        // Overlapped evaluation must not perturb the chain either.
        assert_eq!(a.assignments(), b.assignments());
    }

    #[test]
    fn trainer_works_through_dyn_sampler_for_parallel_runs() {
        let corpus = corpus();
        let params = ModelParams::paper_defaults(6);
        let trainer = Trainer::new(&corpus);
        let mut s = ParallelWarpLda::new(&corpus, params, WarpLdaConfig::default(), 5, 3);
        let log = trainer.train(&TrainerConfig::new(3).eval_every(1), "parallel", &mut s);
        assert_eq!(log.eval_points().count(), 3);
        assert!(log.final_ll().is_finite());
    }

    #[test]
    fn held_out_metric_is_opt_in_and_follows_the_eval_schedule() {
        let corpus = corpus();
        let params = ModelParams::paper_defaults(6);
        // Without the opt-in, no record carries a held-out value.
        let trainer = Trainer::new(&corpus);
        let mut s = WarpLda::new(&corpus, params, WarpLdaConfig::default(), 3);
        let log = trainer.train(&TrainerConfig::new(4).eval_every(2), "plain", &mut s);
        assert_eq!(log.held_out_points().count(), 0);

        // With it, every evaluated iteration carries one, and the values are
        // identical whether the evaluation is overlapped or inline (the
        // metric is a pure function of the snapshot).
        let metric: fn(EvalInput<'_>) -> f64 =
            |input| input.assignments.iter().map(|&t| t as f64).sum::<f64>();
        let mut runs = Vec::new();
        for inline in [false, true] {
            let trainer = Trainer::new(&corpus).with_held_out_fn(Box::new(metric));
            let mut s = WarpLda::new(&corpus, params, WarpLdaConfig::default(), 3);
            let mut config = TrainerConfig::new(4).eval_every(2);
            if inline {
                config = config.inline_eval();
            }
            let log = trainer.train(&config, "held-out", &mut s);
            let points: Vec<(u64, f64)> =
                log.held_out_points().map(|r| (r.iteration, r.held_out.unwrap())).collect();
            assert_eq!(points.iter().map(|p| p.0).collect::<Vec<_>>(), vec![2, 4]);
            for &(it, v) in &points {
                assert!(log.likelihood_at(it).is_some());
                assert!(v.is_finite(), "iteration {it}: {v}");
            }
            runs.push(points);
        }
        assert_eq!(runs[0], runs[1], "overlapped and inline held-out values must agree");
    }

    #[test]
    fn custom_eval_fn_replaces_the_metric() {
        let corpus = corpus();
        let trainer =
            Trainer::new(&corpus).with_eval_fn(Box::new(|input| input.assignments.len() as f64));
        let mut s =
            WarpLda::new(&corpus, ModelParams::paper_defaults(4), WarpLdaConfig::default(), 1);
        let log = trainer.train(&TrainerConfig::new(2).eval_every(1), "custom", &mut s);
        for p in log.eval_points() {
            assert_eq!(p.log_likelihood.unwrap(), corpus.num_tokens() as f64);
        }
    }

    #[test]
    fn measure_throughput_is_positive_and_scales_with_token_definition() {
        let corpus = corpus();
        let trainer = Trainer::new(&corpus);
        let mut s =
            WarpLda::new(&corpus, ModelParams::paper_defaults(4), WarpLdaConfig::default(), 1);
        let tps = trainer.measure_throughput(&mut s, 2, 1, corpus.num_tokens());
        assert!(tps > 0.0);
    }

    #[test]
    #[should_panic(expected = "no checkpoint_dir")]
    fn checkpoint_cadence_without_dir_is_rejected() {
        let corpus = corpus();
        let trainer = Trainer::new(&corpus);
        let mut s =
            WarpLda::new(&corpus, ModelParams::paper_defaults(4), WarpLdaConfig::default(), 1);
        let config = TrainerConfig { checkpoint_every: 2, ..TrainerConfig::new(4) };
        let _ = trainer.train_checkpointed(&config, "bad", &mut s, None);
    }

    #[test]
    fn targets_helpers_find_crossings() {
        let mut log = IterationLog::new("x", 100);
        for (it, ll) in [(1u64, -100.0), (2, -50.0), (3, -25.0)] {
            log.push(IterationRecord {
                iteration: it,
                seconds: it as f64,
                tokens_per_sec: 100.0,
                phase_seconds: Some(0.5),
                log_likelihood: Some(ll),
                held_out: None,
            });
        }
        assert_eq!(log.iterations_to_reach(-60.0), Some(2));
        assert_eq!(log.seconds_to_reach(-60.0), Some(2.0));
        assert_eq!(log.iterations_to_reach(0.0), None);
        assert_eq!(log.likelihood_at(3), Some(-25.0));
        assert_eq!(log.records()[0].phase_tokens_per_sec(100), Some(200.0));
        assert_eq!(log.mean_phase_tokens_per_sec(), Some(200.0));
    }
}
