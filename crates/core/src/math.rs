//! Numerical helpers: the log-gamma function needed by the likelihood.
//!
//! Implemented in-crate (Lanczos approximation) to avoid an extra dependency;
//! the likelihood only needs `ln Γ(x)` for `x > 0`.

/// Lanczos coefficients for g = 7, n = 9.
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function for strictly positive arguments.
///
/// Accuracy is ~1e-12 relative over the range used by the likelihood
/// (arguments from `β = 0.01` up to corpus-size counts).
///
/// # Panics
/// Panics (in debug builds) if `x` is not strictly positive.
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln Γ(x + n) − ln Γ(x)` computed stably; for small integer `n` this is just
/// the log of a rising factorial, which avoids cancellation for large `x`.
pub fn ln_gamma_ratio(x: f64, n: u64) -> f64 {
    if n <= 32 {
        let mut acc = 0.0;
        for i in 0..n {
            acc += (x + i as f64).ln();
        }
        acc
    } else {
        ln_gamma(x + n as f64) - ln_gamma(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = sqrt(pi).
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn satisfies_recurrence() {
        // ln Γ(x+1) = ln Γ(x) + ln x over a wide range.
        for &x in &[0.01, 0.1, 0.9, 1.5, 10.0, 123.456, 1e4, 1e7] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = ln_gamma(x) + x.ln();
            assert!((lhs - rhs).abs() < 1e-8 * lhs.abs().max(1.0), "x = {x}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn factorials_match() {
        let mut fact = 1.0f64;
        for n in 1..20u32 {
            fact *= n as f64;
            assert!((ln_gamma(n as f64 + 1.0) - fact.ln()).abs() < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn ratio_matches_direct_difference() {
        for &x in &[0.01, 0.5, 3.0, 100.0] {
            for &n in &[0u64, 1, 5, 31, 32, 100, 1000] {
                let direct = ln_gamma(x + n as f64) - ln_gamma(x);
                let ratio = ln_gamma_ratio(x, n);
                assert!(
                    (direct - ratio).abs() < 1e-7 * direct.abs().max(1.0),
                    "x={x} n={n}: {direct} vs {ratio}"
                );
            }
        }
    }

    #[test]
    fn stirling_regime_is_sane() {
        // For large x, ln Γ(x) ≈ x ln x − x − 0.5 ln(x / 2π).
        let x: f64 = 1e8;
        let approx = x * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI / x).ln();
        assert!((ln_gamma(x) - approx).abs() / approx.abs() < 1e-8);
    }
}
