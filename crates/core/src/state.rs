//! Shared sampler state: topic assignments and count matrices.
//!
//! All the *baseline* samplers (CGS, SparseLDA, AliasLDA, F+LDA, LightLDA)
//! maintain the canonical CGS state: one topic per token, the sparse
//! document–topic matrix `Cd`, the sparse word–topic matrix `Cw`, and the
//! dense global topic vector `ck`. WarpLDA deliberately does *not* use this
//! struct for its hot path (it never materializes `Cd`/`Cw`, see Section 4.4)
//! but produces one on demand for evaluation.

use rand::Rng;

use warplda_corpus::{Corpus, DocMajorView, WordMajorView};

use crate::counts::{HashCounts, TopicCounts};
use crate::params::ModelParams;

/// Topic assignments plus the three count structures of collapsed LDA.
#[derive(Debug, Clone)]
pub struct SamplerState {
    params: ModelParams,
    /// Topic of each token, indexed by the document-major token index.
    z: Vec<u32>,
    /// Per-document topic counts (sparse rows).
    doc_counts: Vec<HashCounts>,
    /// Per-word topic counts (sparse rows).
    word_counts: Vec<HashCounts>,
    /// Global topic counts `c_k`.
    topic_counts: Vec<u32>,
}

impl SamplerState {
    /// Creates a state with uniformly random topic assignments and consistent
    /// counts.
    pub fn init_random<R: Rng>(
        corpus: &Corpus,
        doc_view: &DocMajorView,
        word_view: &WordMajorView,
        params: ModelParams,
        rng: &mut R,
    ) -> Self {
        let k = params.num_topics;
        let num_tokens = doc_view.num_tokens();
        let z: Vec<u32> = (0..num_tokens).map(|_| rng.gen_range(0..k as u32)).collect();
        Self::from_assignments(corpus, doc_view, word_view, params, z)
    }

    /// Creates a state from existing topic assignments (doc-major token order).
    pub fn from_assignments(
        corpus: &Corpus,
        doc_view: &DocMajorView,
        word_view: &WordMajorView,
        params: ModelParams,
        z: Vec<u32>,
    ) -> Self {
        debug_assert_eq!(corpus.vocab_size(), word_view.num_words());
        Self::from_assignments_with_views(doc_view, word_view, params, z)
    }

    /// Like [`from_assignments`](Self::from_assignments) but without needing
    /// the `Corpus` itself — the two views carry everything the counts need.
    /// Used by checkpoint restoration, which operates on views alone.
    pub fn from_assignments_with_views(
        doc_view: &DocMajorView,
        word_view: &WordMajorView,
        params: ModelParams,
        z: Vec<u32>,
    ) -> Self {
        assert_eq!(z.len(), doc_view.num_tokens(), "one topic per token required");
        assert!(z.iter().all(|&t| (t as usize) < params.num_topics), "topic out of range");
        let k = params.num_topics;
        let mut doc_counts: Vec<HashCounts> = (0..doc_view.num_docs())
            .map(|d| HashCounts::with_expected(doc_view.doc_len(d as u32), k))
            .collect();
        let mut word_counts: Vec<HashCounts> = (0..word_view.num_words())
            .map(|w| HashCounts::with_expected(word_view.word_len(w as u32), k))
            .collect();
        let mut topic_counts = vec![0u32; k];
        for (d, counts) in doc_counts.iter_mut().enumerate() {
            for i in doc_view.doc_range(d as u32) {
                let topic = z[i];
                let word = doc_view.word_of(i);
                counts.increment(topic);
                word_counts[word as usize].increment(topic);
                topic_counts[topic as usize] += 1;
            }
        }
        Self { params, z, doc_counts, word_counts, topic_counts }
    }

    /// Model hyper-parameters.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// Topic of token `token_index`.
    #[inline]
    pub fn topic_of(&self, token_index: usize) -> u32 {
        self.z[token_index]
    }

    /// All topic assignments, indexed by doc-major token index.
    pub fn assignments(&self) -> &[u32] {
        &self.z
    }

    /// Number of documents the state tracks counts for.
    pub fn num_docs(&self) -> usize {
        self.doc_counts.len()
    }

    /// Number of words the state tracks counts for (the vocabulary size of
    /// the corpus the state was built over).
    pub fn num_words(&self) -> usize {
        self.word_counts.len()
    }

    /// Per-document sparse counts.
    pub fn doc_counts(&self, doc: u32) -> &HashCounts {
        &self.doc_counts[doc as usize]
    }

    /// Per-word sparse counts.
    pub fn word_counts(&self, word: u32) -> &HashCounts {
        &self.word_counts[word as usize]
    }

    /// Global topic counts.
    pub fn topic_counts(&self) -> &[u32] {
        &self.topic_counts
    }

    /// Count of `topic` in document `doc` (`C_dk`).
    #[inline]
    pub fn doc_topic(&self, doc: u32, topic: u32) -> u32 {
        self.doc_counts[doc as usize].get(topic)
    }

    /// Count of `topic` for word `word` (`C_wk`).
    #[inline]
    pub fn word_topic(&self, word: u32, topic: u32) -> u32 {
        self.word_counts[word as usize].get(topic)
    }

    /// Count of `topic` globally (`C_k`).
    #[inline]
    pub fn topic(&self, topic: u32) -> u32 {
        self.topic_counts[topic as usize]
    }

    /// Removes the current assignment of a token from all counts (the `¬dn`
    /// exclusion of Eq. 1).
    #[inline]
    pub fn remove_token(&mut self, doc: u32, word: u32, token_index: usize) -> u32 {
        let topic = self.z[token_index];
        self.doc_counts[doc as usize].decrement(topic);
        self.word_counts[word as usize].decrement(topic);
        self.topic_counts[topic as usize] -= 1;
        topic
    }

    /// Assigns `topic` to a token and adds it to all counts.
    #[inline]
    pub fn assign_token(&mut self, doc: u32, word: u32, token_index: usize, topic: u32) {
        self.z[token_index] = topic;
        self.doc_counts[doc as usize].increment(topic);
        self.word_counts[word as usize].increment(topic);
        self.topic_counts[topic as usize] += 1;
    }

    /// Overwrites the topic of a token *without* touching the counts. Used by
    /// delayed-update samplers, which recompute counts at iteration
    /// boundaries via [`rebuild_counts`](Self::rebuild_counts).
    #[inline]
    pub fn set_topic_only(&mut self, token_index: usize, topic: u32) {
        self.z[token_index] = topic;
    }

    /// Recomputes every count from the assignments (used by delayed-update
    /// samplers at iteration boundaries, and by tests).
    pub fn rebuild_counts(&mut self, doc_view: &DocMajorView) {
        for c in &mut self.doc_counts {
            c.clear();
        }
        for c in &mut self.word_counts {
            c.clear();
        }
        self.topic_counts.fill(0);
        for d in 0..doc_view.num_docs() {
            for i in doc_view.doc_range(d as u32) {
                let topic = self.z[i];
                let word = doc_view.word_of(i);
                self.doc_counts[d].increment(topic);
                self.word_counts[word as usize].increment(topic);
                self.topic_counts[topic as usize] += 1;
            }
        }
    }

    /// Verifies the internal consistency invariants:
    /// `Σ_k C_dk = L_d`, `Σ_k C_wk = L_w`, `Σ_d C_dk = Σ_w C_wk = C_k`, and
    /// `Σ_k C_k = T`. Panics with a description if any is violated.
    pub fn assert_consistent(&self, doc_view: &DocMajorView, word_view: &WordMajorView) {
        let k = self.params.num_topics;
        let mut from_docs = vec![0u64; k];
        for (d, counts) in self.doc_counts.iter().enumerate() {
            assert_eq!(
                counts.total() as usize,
                doc_view.doc_len(d as u32),
                "doc {d}: row total != document length"
            );
            counts.for_each(|t, c| from_docs[t as usize] += c as u64);
        }
        let mut from_words = vec![0u64; k];
        for (w, counts) in self.word_counts.iter().enumerate() {
            assert_eq!(
                counts.total() as usize,
                word_view.word_len(w as u32),
                "word {w}: row total != term frequency"
            );
            counts.for_each(|t, c| from_words[t as usize] += c as u64);
        }
        for t in 0..k {
            assert_eq!(from_docs[t], self.topic_counts[t] as u64, "topic {t}: Cd sum != ck");
            assert_eq!(from_words[t], self.topic_counts[t] as u64, "topic {t}: Cw sum != ck");
        }
        let total: u64 = self.topic_counts.iter().map(|&c| c as u64).sum();
        assert_eq!(total as usize, doc_view.num_tokens(), "Σ ck != number of tokens");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warplda_corpus::CorpusBuilder;

    fn small() -> (Corpus, DocMajorView, WordMajorView) {
        let mut b = CorpusBuilder::new();
        b.push_text_doc(["a", "b", "a", "c"]);
        b.push_text_doc(["b", "b", "d"]);
        b.push_text_doc(["a", "d", "e", "e", "a"]);
        let corpus = b.build().unwrap();
        let dv = DocMajorView::build(&corpus);
        let wv = WordMajorView::build(&corpus, &dv);
        (corpus, dv, wv)
    }

    #[test]
    fn random_init_is_consistent() {
        let (corpus, dv, wv) = small();
        let params = ModelParams::new(7, 0.5, 0.1);
        let mut rng = warplda_sampling::new_rng(3);
        let state = SamplerState::init_random(&corpus, &dv, &wv, params, &mut rng);
        state.assert_consistent(&dv, &wv);
        assert_eq!(state.assignments().len(), 12);
    }

    #[test]
    fn remove_and_assign_keep_consistency() {
        let (corpus, dv, wv) = small();
        let params = ModelParams::new(4, 0.5, 0.1);
        let mut rng = warplda_sampling::new_rng(5);
        let mut state = SamplerState::init_random(&corpus, &dv, &wv, params, &mut rng);
        // Resample every token a few times with arbitrary topics.
        for round in 0..3u32 {
            for d in 0..dv.num_docs() {
                for i in dv.doc_range(d as u32) {
                    let w = dv.word_of(i);
                    let _old = state.remove_token(d as u32, w, i);
                    let new = (i as u32 + round) % 4;
                    state.assign_token(d as u32, w, i, new);
                }
            }
            state.assert_consistent(&dv, &wv);
        }
    }

    #[test]
    fn rebuild_counts_matches_incremental_updates() {
        let (corpus, dv, wv) = small();
        let params = ModelParams::new(5, 0.5, 0.1);
        let mut rng = warplda_sampling::new_rng(9);
        let mut a = SamplerState::init_random(&corpus, &dv, &wv, params, &mut rng);
        let mut b = a.clone();
        // Mutate `a` incrementally and `b` lazily, then rebuild `b`.
        for i in 0..dv.num_tokens() {
            let d = (0..dv.num_docs() as u32).find(|&d| dv.doc_range(d).contains(&i)).unwrap();
            let w = dv.word_of(i);
            let new = (i as u32 * 3 + 1) % 5;
            a.remove_token(d, w, i);
            a.assign_token(d, w, i, new);
            b.set_topic_only(i, new);
        }
        b.rebuild_counts(&dv);
        a.assert_consistent(&dv, &wv);
        b.assert_consistent(&dv, &wv);
        assert_eq!(a.assignments(), b.assignments());
        assert_eq!(a.topic_counts(), b.topic_counts());
        for d in 0..3u32 {
            let mut pa = a.doc_counts(d).to_pairs();
            let mut pb = b.doc_counts(d).to_pairs();
            pa.sort_unstable();
            pb.sort_unstable();
            assert_eq!(pa, pb);
        }
    }

    #[test]
    fn from_assignments_counts_are_exact() {
        let (corpus, dv, wv) = small();
        let params = ModelParams::new(3, 0.5, 0.1);
        let z = vec![0, 1, 2, 0, 1, 1, 2, 0, 0, 0, 2, 1];
        let state = SamplerState::from_assignments(&corpus, &dv, &wv, params, z);
        state.assert_consistent(&dv, &wv);
        // Document 0 = [a b a c] with topics [0 1 2 0].
        assert_eq!(state.doc_topic(0, 0), 2);
        assert_eq!(state.doc_topic(0, 1), 1);
        assert_eq!(state.doc_topic(0, 2), 1);
        // Word "a" appears at token indices 0, 2, 7, 11 → topics 0, 2, 0, 1.
        let a = corpus.vocab().get("a").unwrap();
        assert_eq!(state.word_topic(a, 0), 2);
        assert_eq!(state.word_topic(a, 1), 1);
        assert_eq!(state.word_topic(a, 2), 1);
    }

    #[test]
    #[should_panic(expected = "one topic per token")]
    fn wrong_assignment_length_panics() {
        let (corpus, dv, wv) = small();
        let params = ModelParams::new(3, 0.5, 0.1);
        let _ = SamplerState::from_assignments(&corpus, &dv, &wv, params, vec![0; 3]);
    }

    #[test]
    #[should_panic(expected = "topic out of range")]
    fn out_of_range_topic_panics() {
        let (corpus, dv, wv) = small();
        let params = ModelParams::new(3, 0.5, 0.1);
        let _ = SamplerState::from_assignments(&corpus, &dv, &wv, params, vec![7; 12]);
    }
}
