//! The analytical memory-access model behind Table 2 of the paper.
//!
//! Table 2 is not a measurement — it summarizes, per algorithm, the amount of
//! sequential accesses per token, the number of random accesses per token, the
//! size of the randomly accessed memory region per document (or word), and the
//! visiting order. The first two columns are expressed in terms of `K`, `K_d`
//! (mean distinct topics per document) and `K_w` (mean distinct topics per
//! word); the third in terms of `K`, `KV` and `DK`.
//!
//! This module evaluates those expressions for a *concrete* corpus and model
//! state, which is what the `table2_access_analysis` harness binary prints:
//! the same rows as the paper, but with the symbolic quantities instantiated
//! (e.g. `K_d = 38.2`) so the asymptotic claims can be checked numerically.

use warplda_corpus::{Corpus, DocMajorView, WordMajorView};

use crate::counts::TopicCounts;
use crate::state::SamplerState;

/// One row of Table 2, instantiated for a concrete corpus/model state.
#[derive(Debug, Clone)]
pub struct AccessProfile {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Algorithm class ("SA" sparsity-aware, "MH", or "exact").
    pub class: &'static str,
    /// Mean number of sequential accesses per token.
    pub sequential_per_token: f64,
    /// Mean number of random accesses per token.
    pub random_per_token: f64,
    /// Size of the randomly accessed memory per document (or word), in bytes,
    /// assuming 4-byte counts.
    pub random_region_bytes: u64,
    /// Human-readable symbolic size ("K", "KV", "DK"), as printed in Table 2.
    pub random_region_symbolic: &'static str,
    /// Visiting order ("doc", "word", or "doc&word").
    pub order: &'static str,
}

impl AccessProfile {
    /// Whether the per-document randomly accessed region fits a cache of
    /// `cache_bytes` (the Table 1 L3 is 30 MB).
    pub fn fits_cache(&self, cache_bytes: u64) -> bool {
        self.random_region_bytes <= cache_bytes
    }
}

/// Mean number of distinct topics per document (`K_d`) and per word (`K_w`)
/// for a given state.
pub fn mean_distinct_topics(
    state: &SamplerState,
    doc_view: &DocMajorView,
    word_view: &WordMajorView,
) -> (f64, f64) {
    let num_docs = doc_view.num_docs().max(1);
    let kd: f64 =
        (0..num_docs).map(|d| state.doc_counts(d as u32).num_nonzero() as f64).sum::<f64>()
            / num_docs as f64;
    let words_with_tokens: Vec<usize> =
        (0..word_view.num_words()).filter(|&w| word_view.word_len(w as u32) > 0).collect();
    let kw: f64 = if words_with_tokens.is_empty() {
        0.0
    } else {
        words_with_tokens
            .iter()
            .map(|&w| state.word_counts(w as u32).num_nonzero() as f64)
            .sum::<f64>()
            / words_with_tokens.len() as f64
    };
    (kd, kw)
}

/// Builds all rows of Table 2 for a concrete corpus and sampler state,
/// using `mh_steps` as the per-token number of MH proposals for the MH-based
/// algorithms.
pub fn table2_profiles(
    corpus: &Corpus,
    doc_view: &DocMajorView,
    word_view: &WordMajorView,
    state: &SamplerState,
    mh_steps: usize,
) -> Vec<AccessProfile> {
    let k = state.params().num_topics as f64;
    let v = corpus.vocab_size() as u64;
    let d = corpus.num_docs() as u64;
    let k_u64 = state.params().num_topics as u64;
    let (kd, kw) = mean_distinct_topics(state, doc_view, word_view);
    let count_bytes = 4u64;
    let m = mh_steps.max(1) as f64;

    vec![
        AccessProfile {
            algorithm: "CGS",
            class: "exact",
            sequential_per_token: k,
            random_per_token: 0.0,
            random_region_bytes: k_u64 * v * count_bytes,
            random_region_symbolic: "KV",
            order: "doc",
        },
        AccessProfile {
            algorithm: "SparseLDA",
            class: "SA",
            sequential_per_token: kd + kw,
            random_per_token: kd + kw,
            random_region_bytes: k_u64 * v * count_bytes,
            random_region_symbolic: "KV",
            order: "doc",
        },
        AccessProfile {
            algorithm: "AliasLDA",
            class: "SA&MH",
            sequential_per_token: kd,
            random_per_token: kd,
            random_region_bytes: k_u64 * v * count_bytes,
            random_region_symbolic: "KV",
            order: "doc",
        },
        AccessProfile {
            algorithm: "F+LDA",
            class: "SA",
            sequential_per_token: kd,
            random_per_token: kd,
            random_region_bytes: d * k_u64 * count_bytes,
            random_region_symbolic: "DK",
            order: "word",
        },
        AccessProfile {
            algorithm: "LightLDA",
            class: "MH",
            sequential_per_token: 0.0,
            random_per_token: m,
            random_region_bytes: k_u64 * v * count_bytes,
            random_region_symbolic: "KV",
            order: "doc",
        },
        AccessProfile {
            algorithm: "WarpLDA",
            class: "MH",
            sequential_per_token: 0.0,
            random_per_token: m,
            random_region_bytes: k_u64 * count_bytes,
            random_region_symbolic: "K",
            order: "doc&word",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ModelParams;
    use warplda_corpus::DatasetPreset;
    use warplda_sampling::new_rng;

    fn setup() -> (Corpus, DocMajorView, WordMajorView, SamplerState) {
        let corpus = DatasetPreset::Tiny.generate_scaled(4);
        let dv = DocMajorView::build(&corpus);
        let wv = WordMajorView::build(&corpus, &dv);
        let mut rng = new_rng(1);
        let state =
            SamplerState::init_random(&corpus, &dv, &wv, ModelParams::new(64, 0.5, 0.1), &mut rng);
        (corpus, dv, wv, state)
    }

    #[test]
    fn kd_and_kw_are_bounded_by_lengths_and_k() {
        let (_, dv, wv, state) = setup();
        let (kd, kw) = mean_distinct_topics(&state, &dv, &wv);
        assert!(kd > 0.0 && kw > 0.0);
        assert!(kd <= 64.0 && kw <= 64.0, "distinct topics cannot exceed K");
        let mean_len = dv.num_tokens() as f64 / dv.num_docs() as f64;
        assert!(kd <= mean_len + 1e-9, "distinct topics cannot exceed document length");
    }

    #[test]
    fn only_warplda_fits_the_l3_cache() {
        // The central claim of the paper's analysis, instantiated on a corpus
        // whose K·V matrix exceeds the 30 MB L3.
        let corpus = DatasetPreset::NyTimesLike.generate_scaled(2);
        let dv = DocMajorView::build(&corpus);
        let wv = WordMajorView::build(&corpus, &dv);
        let mut rng = new_rng(2);
        let params = ModelParams::paper_defaults(10_000);
        let state = SamplerState::init_random(&corpus, &dv, &wv, params, &mut rng);
        let rows = table2_profiles(&corpus, &dv, &wv, &state, 1);
        let l3 = 30 * 1024 * 1024;
        for row in &rows {
            if row.algorithm == "WarpLDA" {
                assert!(row.fits_cache(l3), "WarpLDA region must fit L3: {row:?}");
            } else {
                assert!(!row.fits_cache(l3), "{} region should exceed L3: {row:?}", row.algorithm);
            }
        }
    }

    #[test]
    fn table_has_all_six_algorithms_in_paper_order() {
        let (corpus, dv, wv, state) = setup();
        let rows = table2_profiles(&corpus, &dv, &wv, &state, 2);
        let names: Vec<_> = rows.iter().map(|r| r.algorithm).collect();
        assert_eq!(names, vec!["CGS", "SparseLDA", "AliasLDA", "F+LDA", "LightLDA", "WarpLDA"]);
        // Orders match Table 2.
        assert_eq!(rows[3].order, "word");
        assert_eq!(rows[5].order, "doc&word");
        assert_eq!(rows[5].random_region_symbolic, "K");
    }

    #[test]
    fn mh_algorithms_have_constant_access_counts() {
        let (corpus, dv, wv, state) = setup();
        let rows = table2_profiles(&corpus, &dv, &wv, &state, 4);
        let light = rows.iter().find(|r| r.algorithm == "LightLDA").unwrap();
        let warp = rows.iter().find(|r| r.algorithm == "WarpLDA").unwrap();
        assert_eq!(light.random_per_token, 4.0);
        assert_eq!(warp.random_per_token, 4.0);
        let cgs = rows.iter().find(|r| r.algorithm == "CGS").unwrap();
        assert_eq!(cgs.sequential_per_token, 64.0);
    }
}
