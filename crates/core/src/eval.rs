//! Model-quality evaluation.
//!
//! The paper measures quality by the **log joint likelihood** (Section 6.1):
//!
//! ```text
//! L = log p(W, Z | α, β)
//!   = Σ_d [ ln Γ(ᾱ) − ln Γ(ᾱ + L_d) + Σ_k ( ln Γ(α_k + C_dk) − ln Γ(α_k) ) ]
//!   + Σ_k [ ln Γ(β̄) − ln Γ(β̄ + C_k) + Σ_w ( ln Γ(β + C_kw) − ln Γ(β) ) ]
//! ```
//!
//! Only non-zero counts contribute to the inner sums, so the cost is
//! O(non-zeros), not O(DK + KV).

use warplda_corpus::{Corpus, DocMajorView, WordMajorView};

use crate::counts::TopicCounts;
use crate::math::ln_gamma_ratio;
use crate::params::ModelParams;
use crate::state::SamplerState;

/// Computes `log p(W, Z | α, β)` for arbitrary topic assignments `z`
/// (doc-major token order).
pub fn log_joint_likelihood(
    corpus: &Corpus,
    doc_view: &DocMajorView,
    word_view: &WordMajorView,
    params: &ModelParams,
    z: &[u32],
) -> f64 {
    let state = SamplerState::from_assignments(corpus, doc_view, word_view, *params, z.to_vec());
    log_joint_likelihood_of_state(doc_view, word_view, &state)
}

/// Computes the log joint likelihood from an existing [`SamplerState`]
/// (avoids re-counting when the caller already maintains counts).
pub fn log_joint_likelihood_of_state(
    doc_view: &DocMajorView,
    word_view: &WordMajorView,
    state: &SamplerState,
) -> f64 {
    let params = state.params();
    let k = params.num_topics;
    let vocab_size = word_view.num_words();
    let alpha = params.alpha;
    let alpha_bar = params.alpha_bar();
    let beta = params.beta;
    let beta_bar = params.beta_bar(vocab_size);

    let mut ll = 0.0;

    // Document part.
    for d in 0..doc_view.num_docs() {
        let len = doc_view.doc_len(d as u32) as u64;
        ll -= ln_gamma_ratio(alpha_bar, len);
        state.doc_counts(d as u32).for_each(|_, c| {
            ll += ln_gamma_ratio(alpha, c as u64);
        });
    }

    // Word part: Σ_k Σ_w ln Γ(β + C_kw) − ln Γ(β), grouped by word rows.
    for w in 0..vocab_size {
        state.word_counts(w as u32).for_each(|_, c| {
            ll += ln_gamma_ratio(beta, c as u64);
        });
    }
    for t in 0..k {
        let ck = state.topic_counts()[t] as u64;
        ll -= ln_gamma_ratio(beta_bar, ck);
    }
    ll
}

/// Per-token perplexity `exp(−L / T)` of the joint likelihood; a scale-free
/// number that is easier to compare across corpora than raw log likelihood.
///
/// Returns `None` for an empty corpus (`num_tokens == 0`): perplexity is
/// undefined without tokens, and the old behaviour of silently yielding `NaN`
/// poisoned every downstream aggregate.
pub fn perplexity_per_token(log_likelihood: f64, num_tokens: u64) -> Option<f64> {
    if num_tokens == 0 {
        return None;
    }
    Some((-log_likelihood / num_tokens as f64).exp())
}

/// Log likelihood of one held-out document under a **fold-in** evaluation:
/// `Σ_i ln Σ_k θ_k · φ(w_i, k)`, where `θ` is the document–topic mixture
/// estimated for the held-out document (by an inference engine the trained
/// model cannot see the document through) and `φ(w, k)` is the frozen
/// topic–word probability.
///
/// This is the standard held-out metric of the serving literature: unlike the
/// joint likelihood above it scores *unseen* documents, so it detects
/// overfitting that the training likelihood cannot. Feed the summed result
/// over all held-out documents to [`perplexity_per_token`] with the held-out
/// token count.
pub fn fold_in_token_log_likelihood(
    theta: &[f64],
    words: &[u32],
    phi: impl Fn(u32, usize) -> f64,
) -> f64 {
    let mut ll = 0.0;
    for &w in words {
        let p: f64 = theta.iter().enumerate().map(|(k, &t)| t * phi(w, k)).sum();
        // A structurally valid model gives every word positive probability
        // (β-smoothing); clamp anyway so one rounding underflow cannot turn
        // the whole evaluation into -inf.
        ll += p.max(f64::MIN_POSITIVE).ln();
    }
    ll
}

/// Returns, for each topic, the `top_n` highest-count words as
/// `(word_id, count)` pairs — the standard qualitative inspection of a topic
/// model.
pub fn top_words(state: &SamplerState, vocab_size: usize, top_n: usize) -> Vec<Vec<(u32, u32)>> {
    let k = state.params().num_topics;
    let mut per_topic: Vec<Vec<(u32, u32)>> = vec![Vec::new(); k];
    for w in 0..vocab_size {
        state.word_counts(w as u32).for_each(|t, c| {
            per_topic[t as usize].push((w as u32, c));
        });
    }
    for list in &mut per_topic {
        list.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        list.truncate(top_n);
    }
    per_topic
}

/// Renders the top words of every topic using the corpus vocabulary; one line
/// per topic. Used by the examples.
pub fn format_topics(corpus: &Corpus, state: &SamplerState, top_n: usize) -> String {
    let lists = top_words(state, corpus.vocab_size(), top_n);
    let mut out = String::new();
    for (topic, list) in lists.iter().enumerate() {
        if list.is_empty() {
            continue;
        }
        out.push_str(&format!("topic {topic:>4}:"));
        for &(w, c) in list {
            let word = corpus.vocab().word(w).unwrap_or("?");
            out.push_str(&format!(" {word}({c})"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::ln_gamma;
    use warplda_corpus::CorpusBuilder;

    fn tiny() -> (Corpus, DocMajorView, WordMajorView) {
        let mut b = CorpusBuilder::new();
        b.push_text_doc(["x", "y", "x"]);
        b.push_text_doc(["y", "z"]);
        let corpus = b.build().unwrap();
        let dv = DocMajorView::build(&corpus);
        let wv = WordMajorView::build(&corpus, &dv);
        (corpus, dv, wv)
    }

    /// Brute-force likelihood straight from the formula, with dense loops over
    /// all (d, k) and (k, w) pairs — the ground truth for the sparse version.
    fn brute_force_ll(corpus: &Corpus, dv: &DocMajorView, params: &ModelParams, z: &[u32]) -> f64 {
        let k = params.num_topics;
        let v = corpus.vocab_size();
        let d_count = corpus.num_docs();
        let mut cdk = vec![vec![0u64; k]; d_count];
        let mut ckw = vec![vec![0u64; v]; k];
        let mut ck = vec![0u64; k];
        for (d, row) in cdk.iter_mut().enumerate() {
            for i in dv.doc_range(d as u32) {
                let t = z[i] as usize;
                let w = dv.word_of(i) as usize;
                row[t] += 1;
                ckw[t][w] += 1;
                ck[t] += 1;
            }
        }
        let alpha = params.alpha;
        let alpha_bar = params.alpha_bar();
        let beta = params.beta;
        let beta_bar = params.beta_bar(v);
        let mut ll = 0.0;
        for row in &cdk {
            let len: u64 = row.iter().sum();
            ll += ln_gamma(alpha_bar) - ln_gamma(alpha_bar + len as f64);
            for &c in row {
                ll += ln_gamma(alpha + c as f64) - ln_gamma(alpha);
            }
        }
        for (t, row) in ckw.iter().enumerate() {
            ll += ln_gamma(beta_bar) - ln_gamma(beta_bar + ck[t] as f64);
            for &c in row {
                ll += ln_gamma(beta + c as f64) - ln_gamma(beta);
            }
        }
        ll
    }

    #[test]
    fn sparse_likelihood_matches_brute_force() {
        let (corpus, dv, wv) = tiny();
        let params = ModelParams::new(3, 0.4, 0.05);
        for z in [vec![0u32, 1, 0, 2, 1], vec![0, 0, 0, 0, 0], vec![2, 1, 0, 2, 1]] {
            let fast = log_joint_likelihood(&corpus, &dv, &wv, &params, &z);
            let slow = brute_force_ll(&corpus, &dv, &params, &z);
            assert!((fast - slow).abs() < 1e-8, "z={z:?}: {fast} vs {slow}");
        }
    }

    #[test]
    fn coherent_assignment_beats_random_assignment() {
        // Two "topics" with disjoint vocabularies; assigning by vocabulary must
        // score higher than mixing them.
        let mut b = CorpusBuilder::new();
        for _ in 0..20 {
            b.push_text_doc(["cat", "dog", "pet", "cat"]);
            b.push_text_doc(["stock", "bond", "market", "stock"]);
        }
        let corpus = b.build().unwrap();
        let dv = DocMajorView::build(&corpus);
        let wv = WordMajorView::build(&corpus, &dv);
        let params = ModelParams::new(2, 0.5, 0.1);
        let coherent: Vec<u32> =
            (0..dv.num_tokens()).map(|i| if (i / 4) % 2 == 0 { 0 } else { 1 }).collect();
        let mixed: Vec<u32> = (0..dv.num_tokens()).map(|i| (i % 2) as u32).collect();
        let ll_coherent = log_joint_likelihood(&corpus, &dv, &wv, &params, &coherent);
        let ll_mixed = log_joint_likelihood(&corpus, &dv, &wv, &params, &mixed);
        assert!(
            ll_coherent > ll_mixed + 10.0,
            "coherent {ll_coherent} should beat mixed {ll_mixed}"
        );
    }

    #[test]
    fn perplexity_is_monotone_in_likelihood() {
        let p1 = perplexity_per_token(-1000.0, 100).unwrap();
        let p2 = perplexity_per_token(-900.0, 100).unwrap();
        assert!(p2 < p1);
        assert_eq!(perplexity_per_token(-10.0, 0), None);
    }

    #[test]
    fn fold_in_likelihood_matches_hand_computation() {
        // Two topics, two words; θ = (0.75, 0.25), φ columns sum to 1.
        let theta = [0.75, 0.25];
        let phi = |w: u32, k: usize| match (w, k) {
            (0, 0) => 0.9,
            (0, 1) => 0.2,
            (1, 0) => 0.1,
            (1, 1) => 0.8,
            _ => unreachable!(),
        };
        let words = [0u32, 1, 0];
        let p0: f64 = 0.75 * 0.9 + 0.25 * 0.2; // word 0
        let p1: f64 = 0.75 * 0.1 + 0.25 * 0.8; // word 1
        let expected = p0.ln() + p1.ln() + p0.ln();
        let got = fold_in_token_log_likelihood(&theta, &words, phi);
        assert!((got - expected).abs() < 1e-12, "{got} vs {expected}");
        // A θ concentrated on the topic that likes the words scores higher.
        let better = fold_in_token_log_likelihood(&[1.0, 0.0], &[0, 0, 0], phi);
        let worse = fold_in_token_log_likelihood(&[0.0, 1.0], &[0, 0, 0], phi);
        assert!(better > worse);
        // Zero probability is clamped, not -inf.
        let clamped = fold_in_token_log_likelihood(&[0.0, 0.0], &[0], phi);
        assert!(clamped.is_finite());
    }

    #[test]
    fn top_words_orders_by_count() {
        let (corpus, dv, wv) = tiny();
        let params = ModelParams::new(2, 0.5, 0.1);
        // x→topic0 (2 occurrences), y→topic1 (2), z→topic0 (1).
        let z = vec![0u32, 1, 0, 1, 0];
        let state = SamplerState::from_assignments(&corpus, &dv, &wv, params, z);
        let tops = top_words(&state, corpus.vocab_size(), 2);
        let x = corpus.vocab().get("x").unwrap();
        assert_eq!(tops[0][0].0, x);
        assert_eq!(tops[0][0].1, 2);
        let rendered = format_topics(&corpus, &state, 2);
        assert!(rendered.contains("topic"));
        assert!(rendered.contains("x(2)"));
    }
}
