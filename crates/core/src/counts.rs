//! Topic-count vectors.
//!
//! Section 5.4 of the paper: "It is more effective to use hash tables rather
//! than dense arrays for the counts `c_d` and `c_w` … an open addressing hash
//! table with linear probing … the capacity is set to the minimum power of 2
//! that is larger than `min{K, 2·L_d}`".
//!
//! Two implementations share the [`TopicCounts`] interface:
//!
//! * [`HashCounts`] — the paper's open-addressing table, with an
//!   occupied-slot list so clearing and iteration cost O(distinct topics)
//!   rather than O(capacity);
//! * [`DenseCounts`] — a plain `Vec<u32>` with a touched-topic list so
//!   clearing stays proportional to the number of distinct topics, used when
//!   `2·L ≥ K` (and by the ablation benchmark).
//!
//! The sampling hot paths never construct these per document/word: a
//! [`CountPool`] keeps one reusable table per capacity class (plus one dense
//! vector) per worker, so steady-state iterations perform no heap
//! allocation.

/// Common interface of the count-vector implementations.
pub trait TopicCounts {
    /// Count of `topic`.
    fn get(&self, topic: u32) -> u32;
    /// Adds `delta` (may be negative) to the count of `topic`.
    fn add(&mut self, topic: u32, delta: i32);
    /// Increments the count of `topic`.
    fn increment(&mut self, topic: u32) {
        self.add(topic, 1);
    }
    /// Decrements the count of `topic`.
    fn decrement(&mut self, topic: u32) {
        self.add(topic, -1);
    }
    /// Removes all counts.
    fn clear(&mut self);
    /// Calls `f(topic, count)` for every non-zero topic (order unspecified).
    fn for_each(&self, f: impl FnMut(u32, u32));
    /// Number of distinct topics with a non-zero count.
    fn num_nonzero(&self) -> usize;
    /// Sum of all counts.
    fn total(&self) -> u64;
    /// Collects the non-zero `(topic, count)` pairs (order unspecified).
    fn to_pairs(&self) -> Vec<(u32, u32)> {
        let mut v = Vec::with_capacity(self.num_nonzero());
        self.for_each(|t, c| v.push((t, c)));
        v
    }
}

/// Open-addressing hash table with linear probing, keyed by topic id.
///
/// The capacity is a power of two; the hash is the multiplicative Fibonacci
/// hash (the paper uses "a simple and function", i.e. masking — Fibonacci
/// hashing keeps that cost while behaving better on consecutive topic ids).
#[derive(Debug, Clone)]
pub struct HashCounts {
    /// Slot keys; `u32::MAX` marks an empty slot.
    keys: Vec<u32>,
    /// Slot values.
    values: Vec<u32>,
    /// Slots holding a live key, in insertion order: clearing and iteration
    /// touch O(distinct topics) memory instead of the whole table.
    occupied: Vec<u32>,
    mask: usize,
    len: usize,
    total: u64,
}

const EMPTY: u32 = u32::MAX;

impl HashCounts {
    /// Creates a table sized for `expected` distinct topics by the paper's
    /// rule (Section 5.4): the minimum power of two above `min{K, 2·L}`.
    pub fn with_expected(expected: usize, num_topics: usize) -> Self {
        let capacity = Self::capacity_for(expected, num_topics);
        Self {
            keys: vec![EMPTY; capacity],
            values: vec![0; capacity],
            occupied: Vec::with_capacity(capacity),
            mask: capacity - 1,
            len: 0,
            total: 0,
        }
    }

    /// The paper's sizing rule: the minimum power of two that accommodates
    /// `min{K, 2·L}` entries, where `L` is the expected number of distinct
    /// topics (the row/column length). A sparse count vector holds at most
    /// `min{K, L}` distinct topics, so this capacity keeps the load factor at
    /// or below 1/2 without ever growing — while staying a factor of two
    /// smaller in the worst case than capping at `2·K`.
    pub fn capacity_for(expected: usize, num_topics: usize) -> usize {
        num_topics.min(expected.saturating_mul(2)).max(4).next_power_of_two()
    }

    /// Current slot capacity.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    #[inline]
    fn slot_of(&self, topic: u32) -> usize {
        // Fibonacci hashing: multiply by 2^32 / φ and mask.
        ((topic.wrapping_mul(2_654_435_769)) as usize) & self.mask
    }

    #[inline]
    fn find_slot(&self, topic: u32) -> usize {
        let mut slot = self.slot_of(topic);
        loop {
            let k = self.keys[slot];
            if k == topic || k == EMPTY {
                return slot;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let pairs = self.to_pairs();
        let new_capacity = self.keys.len() * 2;
        self.keys = vec![EMPTY; new_capacity];
        self.values = vec![0; new_capacity];
        self.occupied = Vec::with_capacity(new_capacity);
        self.mask = new_capacity - 1;
        self.len = 0;
        self.total = 0;
        for (t, c) in pairs {
            self.add(t, c as i32);
        }
    }
}

impl TopicCounts for HashCounts {
    #[inline]
    fn get(&self, topic: u32) -> u32 {
        let slot = self.find_slot(topic);
        if self.keys[slot] == topic {
            self.values[slot]
        } else {
            0
        }
    }

    #[inline]
    fn add(&mut self, topic: u32, delta: i32) {
        if delta == 0 {
            return;
        }
        debug_assert_ne!(topic, EMPTY, "topic id u32::MAX is reserved");
        let slot = self.find_slot(topic);
        if self.keys[slot] == EMPTY {
            debug_assert!(delta > 0, "decrementing a zero count for topic {topic}");
            // Keep the load factor below 1/2 so probes stay short.
            if (self.len + 1) * 2 > self.keys.len() {
                self.grow();
                return self.add(topic, delta);
            }
            self.keys[slot] = topic;
            self.values[slot] = delta as u32;
            self.occupied.push(slot as u32);
            self.len += 1;
            self.total += delta as u64;
            return;
        }
        let v = &mut self.values[slot];
        if delta > 0 {
            *v += delta as u32;
            self.total += delta as u64;
        } else {
            let d = (-delta) as u32;
            debug_assert!(*v >= d, "count of topic {topic} would go negative");
            // Zero-count keys stay in place: tombstone-free deletion is not worth
            // it for per-document lifetimes (the table is cleared after each
            // document/word anyway) and `num_nonzero` filters them out.
            let applied = d.min(*v);
            *v -= applied;
            self.total -= applied as u64;
        }
    }

    fn clear(&mut self) {
        for &slot in &self.occupied {
            self.keys[slot as usize] = EMPTY;
            self.values[slot as usize] = 0;
        }
        self.occupied.clear();
        self.len = 0;
        self.total = 0;
    }

    fn for_each(&self, mut f: impl FnMut(u32, u32)) {
        for &slot in &self.occupied {
            let v = self.values[slot as usize];
            if v > 0 {
                f(self.keys[slot as usize], v);
            }
        }
    }

    fn num_nonzero(&self) -> usize {
        self.occupied.iter().filter(|&&slot| self.values[slot as usize] > 0).count()
    }

    fn total(&self) -> u64 {
        self.total
    }
}

/// Dense count vector with a touched list for cheap clearing.
#[derive(Debug, Clone)]
pub struct DenseCounts {
    values: Vec<u32>,
    /// Topics that have been touched since the last clear (each listed once).
    touched: Vec<u32>,
    /// Whether a topic is already on the touched list.
    listed: Vec<bool>,
    total: u64,
}

impl DenseCounts {
    /// Creates a dense vector over `num_topics` topics.
    pub fn new(num_topics: usize) -> Self {
        Self {
            values: vec![0; num_topics],
            touched: Vec::new(),
            listed: vec![false; num_topics],
            total: 0,
        }
    }

    /// The underlying dense slice.
    pub fn as_slice(&self) -> &[u32] {
        &self.values
    }
}

impl TopicCounts for DenseCounts {
    #[inline]
    fn get(&self, topic: u32) -> u32 {
        self.values[topic as usize]
    }

    #[inline]
    fn add(&mut self, topic: u32, delta: i32) {
        if delta == 0 {
            return;
        }
        let v = &mut self.values[topic as usize];
        if delta > 0 && !self.listed[topic as usize] {
            self.listed[topic as usize] = true;
            self.touched.push(topic);
        }
        if delta > 0 {
            *v += delta as u32;
            self.total += delta as u64;
        } else {
            let d = (-delta) as u32;
            debug_assert!(*v >= d, "count of topic {topic} would go negative");
            let applied = d.min(*v);
            *v -= applied;
            self.total -= applied as u64;
        }
    }

    fn clear(&mut self) {
        for &t in &self.touched {
            self.values[t as usize] = 0;
            self.listed[t as usize] = false;
        }
        self.touched.clear();
        self.total = 0;
    }

    fn for_each(&self, mut f: impl FnMut(u32, u32)) {
        for &t in &self.touched {
            let v = self.values[t as usize];
            if v > 0 {
                f(t, v);
            }
        }
    }

    fn num_nonzero(&self) -> usize {
        self.touched.iter().filter(|&&t| self.values[t as usize] > 0).count()
    }

    fn total(&self) -> u64 {
        self.total
    }
}

/// A count vector that picks the hash or dense representation depending on the
/// expected number of distinct topics (the paper's `min{K, 2L}` heuristic).
#[derive(Debug, Clone)]
pub enum CountVector {
    /// Hash-table backed (sparse) counts.
    Hash(HashCounts),
    /// Dense counts.
    Dense(DenseCounts),
}

impl CountVector {
    /// Chooses a representation: hash when `2·expected < num_topics`, dense
    /// otherwise.
    pub fn auto(expected: usize, num_topics: usize) -> Self {
        if expected.saturating_mul(2) < num_topics {
            CountVector::Hash(HashCounts::with_expected(expected, num_topics))
        } else {
            CountVector::Dense(DenseCounts::new(num_topics))
        }
    }
}

impl TopicCounts for CountVector {
    fn get(&self, topic: u32) -> u32 {
        match self {
            CountVector::Hash(h) => h.get(topic),
            CountVector::Dense(d) => d.get(topic),
        }
    }

    fn add(&mut self, topic: u32, delta: i32) {
        match self {
            CountVector::Hash(h) => h.add(topic, delta),
            CountVector::Dense(d) => d.add(topic, delta),
        }
    }

    fn clear(&mut self) {
        match self {
            CountVector::Hash(h) => h.clear(),
            CountVector::Dense(d) => d.clear(),
        }
    }

    fn for_each(&self, f: impl FnMut(u32, u32)) {
        match self {
            CountVector::Hash(h) => h.for_each(f),
            CountVector::Dense(d) => d.for_each(f),
        }
    }

    fn num_nonzero(&self) -> usize {
        match self {
            CountVector::Hash(h) => h.num_nonzero(),
            CountVector::Dense(d) => d.num_nonzero(),
        }
    }

    fn total(&self) -> u64 {
        match self {
            CountVector::Hash(h) => h.total(),
            CountVector::Dense(d) => d.total(),
        }
    }
}

/// A per-worker pool of reusable count vectors: one [`DenseCounts`] over all
/// topics plus one [`HashCounts`] per power-of-two capacity class.
///
/// The sampling hot paths ask for a cleared table per document/word; the pool
/// hands back the cached instance of the right class instead of allocating.
/// Classes are built on first use, and because a row/column's length — and
/// therefore its class — never changes, every class a corpus needs exists
/// after one full pass: steady-state iterations hit only cached tables.
#[derive(Debug)]
pub struct CountPool {
    num_topics: usize,
    dense: DenseCounts,
    /// `hash[c]` has capacity `1 << c`.
    hash: Vec<Option<HashCounts>>,
}

impl CountPool {
    /// A pool for count vectors over `num_topics` topics.
    pub fn new(num_topics: usize) -> Self {
        // Largest class the sizing rule can ever yield for this K.
        let max_class = HashCounts::capacity_for(usize::MAX / 2, num_topics).trailing_zeros();
        Self {
            num_topics,
            dense: DenseCounts::new(num_topics),
            hash: (0..=max_class).map(|_| None).collect(),
        }
    }

    /// Returns `true` when the paper's heuristic picks the hash
    /// representation for a row/column of `len` entries (`2·L < K`).
    pub fn prefers_hash(&self, len: usize) -> bool {
        len.saturating_mul(2) < self.num_topics
    }

    /// The cleared dense vector over all topics.
    pub fn dense(&mut self) -> &mut DenseCounts {
        self.dense.clear();
        &mut self.dense
    }

    /// A cleared hash table sized by the paper's rule for a row/column of
    /// `len` entries.
    pub fn hash_for(&mut self, len: usize) -> &mut HashCounts {
        let class = HashCounts::capacity_for(len, self.num_topics).trailing_zeros() as usize;
        let table =
            self.hash[class].get_or_insert_with(|| HashCounts::with_expected(len, self.num_topics));
        table.clear();
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn reference_model<C: TopicCounts>(mut counts: C, ops: &[(u32, i32)]) {
        let mut reference: HashMap<u32, i64> = HashMap::new();
        for &(topic, delta) in ops {
            // Skip deltas that would drive the reference negative (the real
            // structures assume callers never do that).
            let entry = reference.entry(topic).or_insert(0);
            if *entry + i64::from(delta) < 0 {
                continue;
            }
            *entry += delta as i64;
            counts.add(topic, delta);
        }
        for (&topic, &expected) in &reference {
            assert_eq!(counts.get(topic) as i64, expected, "topic {topic}");
        }
        let expected_total: i64 = reference.values().sum();
        assert_eq!(counts.total() as i64, expected_total);
        let expected_nonzero = reference.values().filter(|&&v| v > 0).count();
        assert_eq!(counts.num_nonzero(), expected_nonzero);
        let mut sum_from_iter = 0u64;
        counts.for_each(|t, c| {
            assert_eq!(c as i64, reference[&t]);
            sum_from_iter += c as u64;
        });
        assert_eq!(sum_from_iter as i64, expected_total);
    }

    fn mixed_ops(seed: u64, n: usize, num_topics: u32) -> Vec<(u32, i32)> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let topic = rng.gen_range(0..num_topics);
                let delta = if rng.gen_bool(0.7) { 1 } else { -1 };
                (topic, delta)
            })
            .collect()
    }

    #[test]
    fn hash_counts_match_reference_model() {
        reference_model(HashCounts::with_expected(8, 1000), &mixed_ops(1, 5000, 200));
    }

    #[test]
    fn dense_counts_match_reference_model() {
        reference_model(DenseCounts::new(200), &mixed_ops(2, 5000, 200));
    }

    #[test]
    fn auto_counts_match_reference_model() {
        reference_model(CountVector::auto(10, 10_000), &mixed_ops(3, 5000, 200));
        reference_model(CountVector::auto(500, 100), &mixed_ops(4, 5000, 100));
    }

    #[test]
    fn auto_picks_hash_for_sparse_and_dense_for_long_docs() {
        assert!(matches!(CountVector::auto(10, 10_000), CountVector::Hash(_)));
        assert!(matches!(CountVector::auto(600, 1_000), CountVector::Dense(_)));
    }

    #[test]
    fn hash_capacity_is_power_of_two_and_bounded() {
        let h = HashCounts::with_expected(100, 1_000_000);
        assert!(h.capacity().is_power_of_two());
        assert!(h.capacity() >= 200);
        let h = HashCounts::with_expected(1_000_000, 64);
        assert!(h.capacity() <= 64, "capacity should be bounded by K, got {}", h.capacity());
    }

    #[test]
    fn capacity_follows_the_papers_min_k_2l_rule() {
        // Section 5.4: "the capacity is set to the minimum power of 2 that is
        // larger than min{K, 2·L_d}". In particular the bound is K — not the
        // 2·K an earlier revision used, which doubled the worst-case table.
        assert_eq!(HashCounts::capacity_for(10, 1024), 32); // 2L = 20 -> 32
        assert_eq!(HashCounts::capacity_for(600, 1024), 1024); // min{1024, 1200}
        assert_eq!(HashCounts::capacity_for(1_000_000, 64), 64); // min{64, 2M}
        assert_eq!(HashCounts::capacity_for(0, 1024), 4); // floor of 4 slots
        assert_eq!(HashCounts::capacity_for(33, 1024), 128); // 2L = 66 -> 128
        for (expected, k) in [(3usize, 7usize), (100, 1000), (7, 8), (1, 2)] {
            let cap = HashCounts::capacity_for(expected, k);
            assert!(cap.is_power_of_two());
            assert!(cap >= k.min(2 * expected).max(4));
            assert!(cap < 2 * k.min(2 * expected).max(4).next_power_of_two());
            assert_eq!(HashCounts::with_expected(expected, k).capacity(), cap);
        }
    }

    #[test]
    fn sized_by_rule_tables_never_grow_in_sparse_use() {
        // When the auto heuristic picks the hash representation (2L < K),
        // a column of length L holds at most L distinct topics; the paper's
        // capacity must absorb all of them without a resize.
        for l in [1usize, 5, 31, 32, 100] {
            let k = 4 * l + 2; // ensures 2L < K
            let mut h = HashCounts::with_expected(l, k);
            let initial = h.capacity();
            for t in 0..l as u32 {
                h.increment(t * 3 + 1);
            }
            assert_eq!(h.capacity(), initial, "L = {l} must not trigger growth");
            assert_eq!(h.num_nonzero(), l);
        }
    }

    #[test]
    fn count_pool_reuses_tables_per_class() {
        let mut pool = CountPool::new(1024);
        assert!(pool.prefers_hash(10));
        assert!(!pool.prefers_hash(512));
        let cap_small = {
            let h = pool.hash_for(10);
            h.increment(3);
            h.capacity()
        };
        assert_eq!(cap_small, HashCounts::capacity_for(10, 1024));
        // Same class comes back cleared, same capacity (same instance).
        let h = pool.hash_for(12); // 2·12 = 24 -> same class as 2·10 = 20
        assert_eq!(h.capacity(), cap_small);
        assert_eq!(h.num_nonzero(), 0, "pool must hand back cleared tables");
        // A different class is a different table.
        assert_ne!(pool.hash_for(500).capacity(), cap_small);
        // The dense vector also comes back cleared.
        pool.dense().increment(7);
        assert_eq!(pool.dense().get(7), 0);
    }

    #[test]
    fn hash_grows_when_overfull() {
        let mut h = HashCounts::with_expected(2, 1_000_000);
        let initial = h.capacity();
        for t in 0..100u32 {
            h.increment(t * 7919);
        }
        assert!(h.capacity() > initial);
        for t in 0..100u32 {
            assert_eq!(h.get(t * 7919), 1);
        }
        assert_eq!(h.total(), 100);
    }

    #[test]
    fn clear_resets_everything() {
        let mut h = HashCounts::with_expected(4, 100);
        h.increment(3);
        h.increment(3);
        h.increment(7);
        h.clear();
        assert_eq!(h.get(3), 0);
        assert_eq!(h.total(), 0);
        assert_eq!(h.num_nonzero(), 0);

        let mut d = DenseCounts::new(100);
        d.increment(5);
        d.clear();
        assert_eq!(d.get(5), 0);
        assert_eq!(d.total(), 0);
    }

    #[test]
    fn increment_then_decrement_returns_to_zero() {
        let mut h = HashCounts::with_expected(4, 100);
        h.increment(42);
        h.decrement(42);
        assert_eq!(h.get(42), 0);
        assert_eq!(h.num_nonzero(), 0);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn dense_exposes_slice() {
        let mut d = DenseCounts::new(5);
        d.add(2, 3);
        assert_eq!(d.as_slice(), &[0, 0, 3, 0, 0]);
    }

    #[test]
    fn to_pairs_round_trips() {
        let mut h = HashCounts::with_expected(4, 1000);
        h.add(10, 2);
        h.add(999, 5);
        let mut pairs = h.to_pairs();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(10, 2), (999, 5)]);
    }
}
