//! WarpLDA and its baselines: the core library of the reproduction.
//!
//! The crate implements six samplers for Latent Dirichlet Allocation, all
//! operating on the corpus structures of [`warplda_corpus`]:
//!
//! | Sampler | Type | Per-token cost | Visiting order | Paper section |
//! |---------|------|----------------|----------------|---------------|
//! | [`cgs::CollapsedGibbs`] | exact CGS | O(K) | doc | §2.1 |
//! | [`sparselda::SparseLda`] | sparsity-aware | O(Kd + Kw) | doc | §3.2 |
//! | [`aliaslda::AliasLda`] | sparsity-aware + MH | O(Kd) amortized | doc | §3.2 |
//! | [`fpluslda::FPlusLda`] | sparsity-aware | O(Kd · log K) | word | §3.2 |
//! | [`lightlda::LightLda`] | MH | O(1) | doc | §3.2 |
//! | [`warp::WarpLda`] | MH + MCEM | O(1) | doc & word | §4 |
//!
//! WarpLDA is the paper's contribution: a Monte-Carlo EM algorithm whose
//! delayed count updates let the document and word phases be *reordered* so
//! that each phase randomly accesses only one O(K) count vector at a time
//! (Section 4.4), instead of an O(DK)/O(KV) count matrix.
//!
//! Besides the samplers the crate provides:
//! * [`trainer`] — the unified train/evaluate/checkpoint pipeline: one loop
//!   with overlapped (background-thread) evaluation and checkpoint cadence,
//!   shared by the bench harness, the distributed runner, the examples and
//!   the tests;
//! * [`checkpoint`] — real binary persistence of resumable sampler state
//!   (bit-identical save/load/continue for WarpLDA) over the framed codec of
//!   [`warplda_corpus::io::codec`];
//! * [`eval`] — the log joint likelihood `log p(W, Z | α, β)` used in every
//!   convergence figure, plus perplexity and top-word extraction;
//! * [`counts`] — the open-addressing topic-count tables of Section 5.4;
//! * [`access`] — the analytical memory-access model behind Table 2;
//! * instrumented variants of the Table 4 samplers via
//!   [`warplda_cachesim::MemoryProbe`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod access;
pub mod aliaslda;
pub mod cgs;
pub mod checkpoint;
pub mod counts;
pub mod eval;
pub mod fpluslda;
pub mod lightlda;
pub mod math;
pub mod params;
pub mod sampler;
pub mod sparselda;
pub mod state;
pub mod trainer;
pub mod warp;

pub use aliaslda::AliasLda;
pub use cgs::CollapsedGibbs;
pub use checkpoint::{load_checkpoint, save_checkpoint, Checkpointable};
pub use eval::{log_joint_likelihood, perplexity_per_token, top_words};
pub use fpluslda::FPlusLda;
pub use lightlda::{LightLda, LightLdaVariant};
pub use params::ModelParams;
pub use sampler::Sampler;
pub use sparselda::SparseLda;
pub use state::SamplerState;
pub use trainer::{IterationLog, IterationRecord, TrainOutcome, Trainer, TrainerConfig};
pub use warp::parallel::ParallelWarpLda;
pub use warp::shard::ShardedWarpLda;
pub use warp::{WarpLda, WarpLdaConfig};
