//! Model hyper-parameters.

/// Hyper-parameters of the LDA model: the number of topics `K` and the
/// symmetric Dirichlet parameters `α` (document–topic) and `β` (topic–word).
///
/// The paper's experiments use `α = 50/K` and `β = 0.01` (Section 6.1);
/// [`ModelParams::paper_defaults`] reproduces that.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelParams {
    /// Number of topics `K`.
    pub num_topics: usize,
    /// Symmetric document–topic Dirichlet parameter `α`.
    pub alpha: f64,
    /// Symmetric topic–word Dirichlet parameter `β`.
    pub beta: f64,
}

impl ModelParams {
    /// Creates parameters with explicit values.
    ///
    /// # Panics
    /// Panics if `num_topics` is zero or either hyper-parameter is not
    /// strictly positive.
    pub fn new(num_topics: usize, alpha: f64, beta: f64) -> Self {
        assert!(num_topics > 0, "need at least one topic");
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive, got {alpha}");
        assert!(beta > 0.0 && beta.is_finite(), "beta must be positive, got {beta}");
        Self { num_topics, alpha, beta }
    }

    /// The paper's settings: `α = 50/K`, `β = 0.01`.
    pub fn paper_defaults(num_topics: usize) -> Self {
        Self::new(num_topics, 50.0 / num_topics as f64, 0.01)
    }

    /// `ᾱ = Σ_k α_k = K·α` for the symmetric prior.
    pub fn alpha_bar(&self) -> f64 {
        self.alpha * self.num_topics as f64
    }

    /// `β̄ = V·β` for a vocabulary of size `vocab_size`.
    pub fn beta_bar(&self, vocab_size: usize) -> f64 {
        self.beta * vocab_size as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_follow_section_6_1() {
        let p = ModelParams::paper_defaults(1000);
        assert_eq!(p.num_topics, 1000);
        assert!((p.alpha - 0.05).abs() < 1e-12);
        assert!((p.beta - 0.01).abs() < 1e-12);
        assert!((p.alpha_bar() - 50.0).abs() < 1e-9);
        assert!((p.beta_bar(102_000) - 1020.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one topic")]
    fn zero_topics_rejected() {
        let _ = ModelParams::new(0, 0.1, 0.1);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn non_positive_alpha_rejected() {
        let _ = ModelParams::new(10, 0.0, 0.1);
    }

    #[test]
    #[should_panic(expected = "beta must be positive")]
    fn non_positive_beta_rejected() {
        let _ = ModelParams::new(10, 0.1, -1.0);
    }
}
