//! A trace-driven memory-hierarchy simulator.
//!
//! The paper's central argument (Sections 1 and 3) is about the *size of the
//! randomly accessed memory region*: if the region a sampler touches while
//! processing one document (or one word) fits in the 30 MB L3 cache, random
//! accesses are ~6× cheaper than if they spread over a multi-gigabyte count
//! matrix. Table 4 backs this with hardware cache-miss counters (PAPI).
//!
//! We do not have the paper's hardware counters, so this crate provides the
//! substitute described in DESIGN.md: a set-associative, LRU, inclusive
//! three-level cache simulator configured with the Ivy Bridge geometry of
//! Table 1. The LDA samplers expose an optional [`MemoryProbe`] hook; when
//! instrumented with a [`CacheProbe`] every logical access to the count
//! matrices/vectors is replayed through the simulator, producing the L3 miss
//! rates of Table 4 and the estimated memory-stall cycles used in the
//! analysis benchmarks.
//!
//! The crate also provides a [`WorkingSetProbe`] that measures the number of
//! distinct bytes randomly accessed per document/word scope — the quantity
//! tabulated in Table 2.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod hierarchy;
pub mod probe;
pub mod working_set;

pub use cache::{AccessOutcome, SetAssociativeCache};
pub use hierarchy::{CacheLevelConfig, HierarchyConfig, HierarchyStats, MemoryHierarchy};
pub use probe::{CacheProbe, CountingProbe, MemoryProbe, NoProbe, RegionId};
pub use working_set::{ScopeKind, WorkingSetProbe, WorkingSetReport};
