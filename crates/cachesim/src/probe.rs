//! The [`MemoryProbe`] hook the LDA samplers use to expose their memory
//! access patterns.
//!
//! Samplers are generic over a probe type; the default [`NoProbe`] compiles to
//! nothing, so uninstrumented runs pay zero cost. Instrumented runs plug in a
//! [`CacheProbe`] (cache simulation, Table 4) or a
//! [`crate::WorkingSetProbe`] (working-set measurement, Table 2).
//!
//! Accesses are expressed as `(region, element index)` pairs; each region
//! (e.g. "the Cw matrix", "the cd vector") is registered once with its element
//! size, and the probe lays regions out in a synthetic address space so that
//! the cache simulator sees realistic line sharing within a region and no
//! false sharing across regions.

use crate::hierarchy::{HierarchyConfig, HierarchyStats, MemoryHierarchy};

/// Identifier of a registered memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionId(pub u32);

/// The instrumentation hook. All methods must be cheap; the samplers call
/// them inside their innermost loops.
pub trait MemoryProbe {
    /// Registers a logical region of `elements` elements of `elem_size` bytes
    /// and returns its id. Called once per data structure, outside hot loops.
    fn register_region(&mut self, name: &str, elements: usize, elem_size: usize) -> RegionId;

    /// Records a read of element `index` of `region`.
    fn read(&mut self, region: RegionId, index: usize);

    /// Records a write of element `index` of `region`.
    fn write(&mut self, region: RegionId, index: usize);

    /// Marks the start of a per-document or per-word scope (used by the
    /// working-set probe; the cache probe ignores it).
    fn begin_scope(&mut self) {}

    /// Marks the end of the current scope.
    fn end_scope(&mut self) {}
}

/// The no-op probe: every call is empty and inlined away.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProbe;

impl MemoryProbe for NoProbe {
    #[inline(always)]
    fn register_region(&mut self, _name: &str, _elements: usize, _elem_size: usize) -> RegionId {
        RegionId(0)
    }

    #[inline(always)]
    fn read(&mut self, _region: RegionId, _index: usize) {}

    #[inline(always)]
    fn write(&mut self, _region: RegionId, _index: usize) {}
}

/// Metadata of a registered region.
#[derive(Debug, Clone)]
pub struct RegionInfo {
    /// Name supplied at registration (for reports).
    pub name: String,
    /// Base byte address assigned in the synthetic address space.
    pub base: u64,
    /// Element size in bytes.
    pub elem_size: u64,
    /// Number of elements.
    pub elements: u64,
}

/// Shared region registry used by the concrete probes.
#[derive(Debug, Clone, Default)]
pub struct RegionTable {
    regions: Vec<RegionInfo>,
    next_base: u64,
}

impl RegionTable {
    /// Registers a region, aligning its base to a fresh 4 KiB page so regions
    /// never share cache lines.
    pub fn register(&mut self, name: &str, elements: usize, elem_size: usize) -> RegionId {
        let id = RegionId(self.regions.len() as u32);
        let base = (self.next_base + 4095) & !4095;
        let bytes = (elements.max(1) as u64) * (elem_size.max(1) as u64);
        self.regions.push(RegionInfo {
            name: name.to_owned(),
            base,
            elem_size: elem_size.max(1) as u64,
            elements: elements.max(1) as u64,
        });
        self.next_base = base + bytes;
        id
    }

    /// Byte address of `(region, index)`.
    pub fn address(&self, region: RegionId, index: usize) -> u64 {
        let info = &self.regions[region.0 as usize];
        info.base + (index as u64) * info.elem_size
    }

    /// All registered regions.
    pub fn regions(&self) -> &[RegionInfo] {
        &self.regions
    }
}

/// A probe that replays every access through a [`MemoryHierarchy`].
#[derive(Debug, Clone)]
pub struct CacheProbe {
    table: RegionTable,
    hierarchy: MemoryHierarchy,
    reads: u64,
    writes: u64,
}

impl CacheProbe {
    /// Creates a probe backed by the given hierarchy configuration.
    pub fn new(config: HierarchyConfig) -> Self {
        Self {
            table: RegionTable::default(),
            hierarchy: MemoryHierarchy::new(config),
            reads: 0,
            writes: 0,
        }
    }

    /// Creates a probe with the Table 1 Ivy Bridge hierarchy.
    pub fn ivy_bridge() -> Self {
        Self::new(HierarchyConfig::ivy_bridge())
    }

    /// The accumulated hierarchy statistics.
    pub fn stats(&self) -> HierarchyStats {
        self.hierarchy.stats()
    }

    /// Number of recorded reads.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of recorded writes.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Resets the statistics (keeps cache contents, e.g. after a warm-up
    /// iteration).
    pub fn reset_stats(&mut self) {
        self.hierarchy.reset_stats();
        self.reads = 0;
        self.writes = 0;
    }

    /// The registered regions.
    pub fn regions(&self) -> &[RegionInfo] {
        self.table.regions()
    }
}

impl MemoryProbe for CacheProbe {
    fn register_region(&mut self, name: &str, elements: usize, elem_size: usize) -> RegionId {
        self.table.register(name, elements, elem_size)
    }

    #[inline]
    fn read(&mut self, region: RegionId, index: usize) {
        self.reads += 1;
        let addr = self.table.address(region, index);
        self.hierarchy.access(addr);
    }

    #[inline]
    fn write(&mut self, region: RegionId, index: usize) {
        self.writes += 1;
        let addr = self.table.address(region, index);
        self.hierarchy.access(addr);
    }
}

/// A probe that just counts accesses per region (no cache simulation); used by
/// the Table 2 access-count analysis and as a cheap sanity check in tests.
#[derive(Debug, Clone, Default)]
pub struct CountingProbe {
    table: RegionTable,
    /// `(reads, writes)` per region.
    counts: Vec<(u64, u64)>,
}

impl CountingProbe {
    /// Creates an empty counting probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads and writes recorded for a region.
    pub fn counts(&self, region: RegionId) -> (u64, u64) {
        self.counts[region.0 as usize]
    }

    /// Total reads and writes across all regions.
    pub fn totals(&self) -> (u64, u64) {
        self.counts.iter().fold((0, 0), |(r, w), &(cr, cw)| (r + cr, w + cw))
    }

    /// `(name, reads, writes)` for every region, in registration order.
    pub fn report(&self) -> Vec<(String, u64, u64)> {
        self.table
            .regions()
            .iter()
            .zip(&self.counts)
            .map(|(info, &(r, w))| (info.name.clone(), r, w))
            .collect()
    }
}

impl MemoryProbe for CountingProbe {
    fn register_region(&mut self, name: &str, elements: usize, elem_size: usize) -> RegionId {
        let id = self.table.register(name, elements, elem_size);
        self.counts.push((0, 0));
        id
    }

    #[inline]
    fn read(&mut self, region: RegionId, _index: usize) {
        self.counts[region.0 as usize].0 += 1;
    }

    #[inline]
    fn write(&mut self, region: RegionId, _index: usize) {
        self.counts[region.0 as usize].1 += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let mut t = RegionTable::default();
        let a = t.register("a", 100, 8);
        let b = t.register("b", 50, 4);
        let a_end = t.address(a, 99) + 8;
        let b_start = t.address(b, 0);
        assert!(b_start >= a_end, "regions must not overlap");
        assert_eq!(b_start % 4096, 0, "regions are page aligned");
    }

    #[test]
    fn cache_probe_detects_small_vs_large_working_sets() {
        // Small region accessed randomly → should mostly hit L3;
        // huge region accessed randomly → should mostly miss L3.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);

        // "Small" here means: bigger than L1+L2 so accesses actually reach L3,
        // but comfortably inside the 16 KiB L3 of the test hierarchy.
        let mut small = CacheProbe::new(HierarchyConfig::tiny_for_tests());
        let r = small.register_region("small", 2048, 4); // 8 KiB region
        for _ in 0..50_000 {
            let i = rng.gen_range(0..2048);
            small.read(r, i);
        }
        assert!(small.stats().l3_miss_rate() < 0.05, "{:?}", small.stats());

        let mut large = CacheProbe::new(HierarchyConfig::tiny_for_tests());
        let r = large.register_region("large", 1 << 20, 4); // 4 MiB region vs 16 KiB L3
        for _ in 0..50_000 {
            let i = rng.gen_range(0..1 << 20);
            large.read(r, i);
        }
        assert!(large.stats().l3_miss_rate() > 0.9, "{:?}", large.stats());
    }

    #[test]
    fn counting_probe_counts_reads_and_writes_per_region() {
        let mut p = CountingProbe::new();
        let a = p.register_region("cd", 10, 4);
        let b = p.register_region("cw", 10, 4);
        p.read(a, 0);
        p.read(a, 1);
        p.write(b, 2);
        assert_eq!(p.counts(a), (2, 0));
        assert_eq!(p.counts(b), (0, 1));
        assert_eq!(p.totals(), (2, 1));
        let report = p.report();
        assert_eq!(report[0].0, "cd");
        assert_eq!(report[1].0, "cw");
    }

    #[test]
    fn no_probe_is_trivially_usable() {
        let mut p = NoProbe;
        let r = p.register_region("x", 10, 4);
        p.read(r, 3);
        p.write(r, 3);
        p.begin_scope();
        p.end_scope();
    }

    #[test]
    fn cache_probe_counts_reads_writes() {
        let mut p = CacheProbe::new(HierarchyConfig::tiny_for_tests());
        let r = p.register_region("v", 16, 4);
        for i in 0..16 {
            p.read(r, i);
        }
        p.write(r, 0);
        assert_eq!(p.reads(), 16);
        assert_eq!(p.writes(), 1);
        assert_eq!(p.stats().accesses, 17);
        assert_eq!(p.regions().len(), 1);
    }
}
