//! The three-level memory hierarchy of Table 1.

use crate::cache::{AccessOutcome, SetAssociativeCache};

/// Configuration of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLevelConfig {
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes.
    pub line_size: u64,
    /// Associativity (ways per set).
    pub associativity: usize,
    /// Access latency in cycles.
    pub latency_cycles: u64,
}

/// Configuration of the whole hierarchy (three cache levels + main memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 data cache.
    pub l1: CacheLevelConfig,
    /// L2 cache.
    pub l2: CacheLevelConfig,
    /// L3 (last-level) cache.
    pub l3: CacheLevelConfig,
    /// Main-memory latency in cycles.
    pub memory_latency_cycles: u64,
}

impl HierarchyConfig {
    /// The Intel Ivy Bridge configuration of Table 1 of the paper:
    /// L1D 32 KB / 5 cycles, L2 256 KB / 12 cycles, L3 30 MB / 30 cycles,
    /// main memory 180+ cycles. Line size 64 B throughout.
    pub fn ivy_bridge() -> Self {
        Self {
            l1: CacheLevelConfig {
                size_bytes: 32 * 1024,
                line_size: 64,
                associativity: 8,
                latency_cycles: 5,
            },
            l2: CacheLevelConfig {
                size_bytes: 256 * 1024,
                line_size: 64,
                associativity: 8,
                latency_cycles: 12,
            },
            l3: CacheLevelConfig {
                size_bytes: 30 * 1024 * 1024,
                line_size: 64,
                associativity: 20,
                latency_cycles: 30,
            },
            memory_latency_cycles: 180,
        }
    }

    /// A deliberately small hierarchy for fast unit tests.
    pub fn tiny_for_tests() -> Self {
        Self {
            l1: CacheLevelConfig {
                size_bytes: 1024,
                line_size: 64,
                associativity: 2,
                latency_cycles: 5,
            },
            l2: CacheLevelConfig {
                size_bytes: 4 * 1024,
                line_size: 64,
                associativity: 4,
                latency_cycles: 12,
            },
            l3: CacheLevelConfig {
                size_bytes: 16 * 1024,
                line_size: 64,
                associativity: 4,
                latency_cycles: 30,
            },
            memory_latency_cycles: 180,
        }
    }
}

/// Hit/miss/latency statistics accumulated by a [`MemoryHierarchy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses served by L1.
    pub l1_hits: u64,
    /// Accesses served by L2.
    pub l2_hits: u64,
    /// Accesses served by L3.
    pub l3_hits: u64,
    /// Accesses served by main memory (L3 misses).
    pub memory_accesses: u64,
    /// Total estimated latency in cycles.
    pub total_cycles: u64,
}

impl HierarchyStats {
    /// L3 miss rate: the fraction of accesses *reaching L3* that miss there.
    /// This matches the PAPI-style measurement quoted in Table 4.
    pub fn l3_miss_rate(&self) -> f64 {
        let l3_accesses = self.l3_hits + self.memory_accesses;
        if l3_accesses == 0 {
            0.0
        } else {
            self.memory_accesses as f64 / l3_accesses as f64
        }
    }

    /// Overall miss rate relative to all accesses.
    pub fn memory_access_fraction(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.memory_accesses as f64 / self.accesses as f64
        }
    }

    /// Average latency per access in cycles.
    pub fn mean_latency_cycles(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.accesses as f64
        }
    }
}

/// An inclusive three-level cache hierarchy.
///
/// Every access walks L1 → L2 → L3 → memory until it hits, fills the missing
/// levels on the way back (inclusive), and charges the latency of the level
/// that served it.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    config: HierarchyConfig,
    l1: SetAssociativeCache,
    l2: SetAssociativeCache,
    l3: SetAssociativeCache,
    stats: HierarchyStats,
}

impl MemoryHierarchy {
    /// Builds a hierarchy from a configuration.
    pub fn new(config: HierarchyConfig) -> Self {
        let mk = |c: CacheLevelConfig| {
            SetAssociativeCache::new(c.size_bytes, c.line_size, c.associativity)
        };
        Self {
            config,
            l1: mk(config.l1),
            l2: mk(config.l2),
            l3: mk(config.l3),
            stats: HierarchyStats::default(),
        }
    }

    /// The Table 1 hierarchy.
    pub fn ivy_bridge() -> Self {
        Self::new(HierarchyConfig::ivy_bridge())
    }

    /// The configuration in use.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> HierarchyStats {
        self.stats
    }

    /// Resets statistics but keeps cache contents (useful after warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = HierarchyStats::default();
        self.l1.reset_stats();
        self.l2.reset_stats();
        self.l3.reset_stats();
    }

    /// Drops all cached lines and statistics.
    pub fn clear(&mut self) {
        self.l1.clear();
        self.l2.clear();
        self.l3.clear();
        self.stats = HierarchyStats::default();
    }

    /// Performs one access to byte address `addr`.
    pub fn access(&mut self, addr: u64) {
        self.stats.accesses += 1;
        if self.l1.access(addr) == AccessOutcome::Hit {
            self.stats.l1_hits += 1;
            self.stats.total_cycles += self.config.l1.latency_cycles;
            return;
        }
        if self.l2.access(addr) == AccessOutcome::Hit {
            self.stats.l2_hits += 1;
            self.stats.total_cycles += self.config.l2.latency_cycles;
            return;
        }
        if self.l3.access(addr) == AccessOutcome::Hit {
            self.stats.l3_hits += 1;
            self.stats.total_cycles += self.config.l3.latency_cycles;
            return;
        }
        self.stats.memory_accesses += 1;
        self.stats.total_cycles += self.config.memory_latency_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ivy_bridge_matches_table1() {
        let cfg = HierarchyConfig::ivy_bridge();
        assert_eq!(cfg.l1.size_bytes, 32 * 1024);
        assert_eq!(cfg.l1.latency_cycles, 5);
        assert_eq!(cfg.l2.size_bytes, 256 * 1024);
        assert_eq!(cfg.l2.latency_cycles, 12);
        assert_eq!(cfg.l3.size_bytes, 30 * 1024 * 1024);
        assert_eq!(cfg.l3.latency_cycles, 30);
        assert_eq!(cfg.memory_latency_cycles, 180);
    }

    #[test]
    fn small_working_set_stays_in_l1() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::tiny_for_tests());
        // 512 B working set < 1 KiB L1.
        for _ in 0..200 {
            for addr in (0..512u64).step_by(64) {
                h.access(addr);
            }
        }
        let s = h.stats();
        assert!(s.l1_hits as f64 / s.accesses as f64 > 0.9, "{s:?}");
        assert_eq!(s.memory_accesses as f64, s.accesses as f64 * 0.0 + s.memory_accesses as f64);
        assert!(s.memory_access_fraction() < 0.05);
    }

    #[test]
    fn medium_working_set_falls_to_l3() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::tiny_for_tests());
        // 8 KiB working set: bigger than L1 (1K) and L2 (4K), fits L3 (16K).
        for _ in 0..20 {
            for addr in (0..8 * 1024u64).step_by(64) {
                h.access(addr);
            }
        }
        let s = h.stats();
        assert!(s.l3_hits > 0, "{s:?}");
        assert!(s.l3_miss_rate() < 0.2, "after warm-up L3 should absorb the set: {s:?}");
    }

    #[test]
    fn huge_random_working_set_misses_l3() {
        use rand::{Rng, SeedableRng};
        let mut h = MemoryHierarchy::new(HierarchyConfig::tiny_for_tests());
        let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
        // Random accesses over 16 MiB >> 16 KiB L3.
        for _ in 0..50_000 {
            let addr: u64 = rng.gen_range(0..16 * 1024 * 1024);
            h.access(addr);
        }
        assert!(h.stats().l3_miss_rate() > 0.9, "{:?}", h.stats());
    }

    #[test]
    fn latency_accounting_uses_level_latencies() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::tiny_for_tests());
        h.access(0); // cold: memory, 180 cycles
        h.access(0); // L1 hit, 5 cycles
        let s = h.stats();
        assert_eq!(s.total_cycles, 185);
        assert!((s.mean_latency_cycles() - 92.5).abs() < 1e-9);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::tiny_for_tests());
        h.access(0);
        h.reset_stats();
        assert_eq!(h.stats().accesses, 0);
        h.access(0);
        assert_eq!(h.stats().l1_hits, 1, "line should still be cached");
    }

    #[test]
    fn stats_with_no_accesses_are_zero() {
        let h = MemoryHierarchy::ivy_bridge();
        assert_eq!(h.stats().l3_miss_rate(), 0.0);
        assert_eq!(h.stats().mean_latency_cycles(), 0.0);
    }
}
