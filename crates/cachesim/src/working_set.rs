//! Working-set measurement: the "size of randomly accessed memory
//! per-document" column of Table 2.
//!
//! The probe tracks, inside each *scope* (one document in a document phase,
//! one word in a word phase), the set of distinct cache lines touched in each
//! region, and classifies every access as sequential (next address within the
//! same line or the immediately following one, relative to the previous access
//! to the same region) or random.

use std::collections::HashSet;

use crate::probe::{MemoryProbe, RegionId, RegionTable};

/// What kind of scope the per-scope statistics correspond to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeKind {
    /// Scopes are documents (document-by-document visiting order).
    Document,
    /// Scopes are words (word-by-word visiting order).
    Word,
}

/// Aggregated report of a [`WorkingSetProbe`] run.
#[derive(Debug, Clone)]
pub struct WorkingSetReport {
    /// What the scopes were.
    pub scope_kind: ScopeKind,
    /// Number of scopes observed.
    pub scopes: u64,
    /// Mean number of distinct bytes randomly accessed per scope.
    pub mean_random_bytes_per_scope: f64,
    /// Largest per-scope randomly-accessed working set, in bytes.
    pub max_random_bytes_per_scope: u64,
    /// Total sequential accesses.
    pub sequential_accesses: u64,
    /// Total random accesses.
    pub random_accesses: u64,
}

impl WorkingSetReport {
    /// Ratio of random to total accesses.
    pub fn random_fraction(&self) -> f64 {
        let total = self.sequential_accesses + self.random_accesses;
        if total == 0 {
            0.0
        } else {
            self.random_accesses as f64 / total as f64
        }
    }
}

/// A [`MemoryProbe`] that measures per-scope working sets.
#[derive(Debug, Clone)]
pub struct WorkingSetProbe {
    table: RegionTable,
    scope_kind: ScopeKind,
    line_size: u64,
    /// Regions whose accesses count as "random" (matrix/vector regions); other
    /// regions (e.g. the token stream itself, which is scanned sequentially)
    /// can be registered as sequential and excluded from the working set.
    random_regions: HashSet<u32>,
    /// Last accessed address per region (for sequential classification).
    last_addr: Vec<Option<u64>>,
    /// Lines touched randomly in the current scope.
    current_lines: HashSet<u64>,
    // Aggregates.
    scopes: u64,
    sum_random_bytes: u64,
    max_random_bytes: u64,
    sequential_accesses: u64,
    random_accesses: u64,
}

impl WorkingSetProbe {
    /// Creates a probe with a 64-byte line size.
    pub fn new(scope_kind: ScopeKind) -> Self {
        Self {
            table: RegionTable::default(),
            scope_kind,
            line_size: 64,
            random_regions: HashSet::new(),
            last_addr: Vec::new(),
            current_lines: HashSet::new(),
            scopes: 0,
            sum_random_bytes: 0,
            max_random_bytes: 0,
            sequential_accesses: 0,
            random_accesses: 0,
        }
    }

    /// Marks a region as inherently sequential (it will never contribute to
    /// the random working set, e.g. the token array scanned front to back).
    pub fn mark_sequential(&mut self, region: RegionId) {
        self.random_regions.remove(&region.0);
    }

    /// Produces the aggregated report.
    pub fn report(&self) -> WorkingSetReport {
        WorkingSetReport {
            scope_kind: self.scope_kind,
            scopes: self.scopes,
            mean_random_bytes_per_scope: if self.scopes == 0 {
                0.0
            } else {
                self.sum_random_bytes as f64 / self.scopes as f64
            },
            max_random_bytes_per_scope: self.max_random_bytes,
            sequential_accesses: self.sequential_accesses,
            random_accesses: self.random_accesses,
        }
    }

    fn record(&mut self, region: RegionId, index: usize) {
        let addr = self.table.address(region, index);
        let slot = region.0 as usize;
        let elem = self.table.regions()[slot].elem_size;
        let sequential = match self.last_addr[slot] {
            Some(prev) => addr >= prev && addr <= prev + elem.max(self.line_size),
            None => false,
        };
        self.last_addr[slot] = Some(addr);
        if sequential || !self.random_regions.contains(&region.0) {
            self.sequential_accesses += 1;
        } else {
            self.random_accesses += 1;
            self.current_lines.insert(addr / self.line_size);
        }
    }
}

impl MemoryProbe for WorkingSetProbe {
    fn register_region(&mut self, name: &str, elements: usize, elem_size: usize) -> RegionId {
        let id = self.table.register(name, elements, elem_size);
        self.last_addr.push(None);
        // Regions are random by default; callers opt out via `mark_sequential`.
        self.random_regions.insert(id.0);
        id
    }

    #[inline]
    fn read(&mut self, region: RegionId, index: usize) {
        self.record(region, index);
    }

    #[inline]
    fn write(&mut self, region: RegionId, index: usize) {
        self.record(region, index);
    }

    fn begin_scope(&mut self) {
        self.current_lines.clear();
        for a in &mut self.last_addr {
            *a = None;
        }
    }

    fn end_scope(&mut self) {
        let bytes = self.current_lines.len() as u64 * self.line_size;
        self.scopes += 1;
        self.sum_random_bytes += bytes;
        self.max_random_bytes = self.max_random_bytes.max(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_scans_are_not_counted_as_random() {
        let mut p = WorkingSetProbe::new(ScopeKind::Document);
        let tokens = p.register_region("tokens", 1000, 4);
        p.mark_sequential(tokens);
        p.begin_scope();
        for i in 0..1000 {
            p.read(tokens, i);
        }
        p.end_scope();
        let r = p.report();
        assert_eq!(r.random_accesses, 0);
        assert_eq!(r.sequential_accesses, 1000);
        assert_eq!(r.mean_random_bytes_per_scope, 0.0);
    }

    #[test]
    fn random_accesses_to_small_vector_have_small_working_set() {
        let mut p = WorkingSetProbe::new(ScopeKind::Document);
        let cd = p.register_region("cd", 1000, 4); // a K=1000 count vector
        p.begin_scope();
        // Touch 100 random-ish entries (stride large enough to defeat the
        // sequential classifier).
        for i in 0..100 {
            p.read(cd, (i * 37) % 1000);
        }
        p.end_scope();
        let r = p.report();
        assert!(r.random_accesses > 0);
        // Working set is bounded by the vector size (1000 * 4 B rounded to lines).
        assert!(r.max_random_bytes_per_scope <= 1008 * 64 / 16 + 64 * 2);
        assert!(r.max_random_bytes_per_scope <= 4096 + 128);
    }

    #[test]
    fn random_accesses_to_matrix_have_large_working_set() {
        let mut p = WorkingSetProbe::new(ScopeKind::Document);
        let cw = p.register_region("cw", 1 << 22, 4); // a 16 MiB matrix
        p.begin_scope();
        for i in 0..1000u64 {
            // Scatter widely: different cache lines almost every time.
            p.read(cw, ((i * 2_654_435_761) % (1 << 22)) as usize);
        }
        p.end_scope();
        let r = p.report();
        assert!(
            r.max_random_bytes_per_scope > 900 * 64,
            "expected ~1000 distinct lines, got {} bytes",
            r.max_random_bytes_per_scope
        );
    }

    #[test]
    fn per_scope_statistics_average_over_scopes() {
        let mut p = WorkingSetProbe::new(ScopeKind::Word);
        let v = p.register_region("v", 4096, 4);
        for scope in 0..4 {
            p.begin_scope();
            for i in 0..(scope + 1) * 10 {
                p.read(v, (i * 101) % 4096);
            }
            p.end_scope();
        }
        let r = p.report();
        assert_eq!(r.scopes, 4);
        assert_eq!(r.scope_kind, ScopeKind::Word);
        assert!(r.mean_random_bytes_per_scope > 0.0);
        assert!(r.max_random_bytes_per_scope as f64 >= r.mean_random_bytes_per_scope);
    }

    #[test]
    fn random_fraction_reflects_mix() {
        let mut p = WorkingSetProbe::new(ScopeKind::Document);
        let seq = p.register_region("seq", 100, 4);
        p.mark_sequential(seq);
        let rnd = p.register_region("rnd", 100_000, 4);
        p.begin_scope();
        for i in 0..50 {
            p.read(seq, i);
            p.read(rnd, (i * 9973) % 100_000);
        }
        p.end_scope();
        let r = p.report();
        assert!((r.random_fraction() - 0.5).abs() < 0.05, "{}", r.random_fraction());
    }
}
