//! A single set-associative cache level with LRU replacement.

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was not present and has been filled (possibly evicting
    /// another line).
    Miss,
}

/// A set-associative cache with true-LRU replacement.
///
/// Addresses are byte addresses; the cache operates on lines of
/// `line_size` bytes. Sizes and associativity must be powers of two only in
/// the sense that the number of sets is derived by integer division — any
/// positive configuration works, which keeps the simulator flexible for
/// sensitivity experiments.
#[derive(Debug, Clone)]
pub struct SetAssociativeCache {
    line_size: u64,
    num_sets: u64,
    associativity: usize,
    /// `tags[set * associativity + way]`; `u64::MAX` marks an empty way.
    tags: Vec<u64>,
    /// LRU clock per way (higher = more recently used).
    stamps: Vec<u64>,
    clock: u64,
    accesses: u64,
    misses: u64,
}

impl SetAssociativeCache {
    /// Creates a cache of `size_bytes` with the given line size and
    /// associativity.
    ///
    /// # Panics
    /// Panics if any parameter is zero or the configuration yields zero sets.
    pub fn new(size_bytes: u64, line_size: u64, associativity: usize) -> Self {
        assert!(
            size_bytes > 0 && line_size > 0 && associativity > 0,
            "cache parameters must be positive"
        );
        let num_lines = size_bytes / line_size;
        let num_sets = num_lines / associativity as u64;
        assert!(num_sets > 0, "cache too small for the requested associativity");
        Self {
            line_size,
            num_sets,
            associativity,
            tags: vec![u64::MAX; (num_sets as usize) * associativity],
            stamps: vec![0; (num_sets as usize) * associativity],
            clock: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// Cache capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.num_sets * self.associativity as u64 * self.line_size
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate (0 when no accesses have been made).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Resets the statistics but keeps the cache contents.
    pub fn reset_stats(&mut self) {
        self.accesses = 0;
        self.misses = 0;
    }

    /// Clears contents and statistics.
    pub fn clear(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
        self.clock = 0;
        self.reset_stats();
    }

    /// Accesses the byte address `addr` and returns whether it hit.
    pub fn access(&mut self, addr: u64) -> AccessOutcome {
        self.accesses += 1;
        self.clock += 1;
        let line = addr / self.line_size;
        let set = (line % self.num_sets) as usize;
        let tag = line / self.num_sets;
        let base = set * self.associativity;
        let ways = &mut self.tags[base..base + self.associativity];

        // Hit?
        if let Some(way) = ways.iter().position(|&t| t == tag) {
            self.stamps[base + way] = self.clock;
            return AccessOutcome::Hit;
        }

        // Miss: fill an empty way, or evict the LRU way.
        self.misses += 1;
        let victim = (0..self.associativity)
            .min_by_key(|&w| {
                if self.tags[base + w] == u64::MAX {
                    (0, 0)
                } else {
                    (1, self.stamps[base + w])
                }
            })
            .expect("associativity > 0");
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = self.clock;
        AccessOutcome::Miss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits_after_first_miss() {
        let mut c = SetAssociativeCache::new(1024, 64, 2);
        assert_eq!(c.access(0), AccessOutcome::Miss);
        assert_eq!(c.access(0), AccessOutcome::Hit);
        assert_eq!(c.access(8), AccessOutcome::Hit, "same line");
        assert_eq!(c.access(64), AccessOutcome::Miss, "next line");
        assert_eq!(c.misses(), 2);
        assert_eq!(c.accesses(), 4);
    }

    #[test]
    fn working_set_larger_than_cache_always_misses_on_stream() {
        // 1 KiB cache, stream over 64 KiB repeatedly: every access to a new line misses.
        let mut c = SetAssociativeCache::new(1024, 64, 4);
        let lines = 1024u64; // 64 KiB / 64 B
        for _round in 0..3 {
            for l in 0..lines {
                c.access(l * 64);
            }
        }
        // After the first round the cache can hold only 16 lines of 1024, so the
        // miss rate stays essentially 1.
        assert!(c.miss_rate() > 0.95, "miss rate {}", c.miss_rate());
    }

    #[test]
    fn working_set_smaller_than_cache_hits_after_warmup() {
        let mut c = SetAssociativeCache::new(64 * 1024, 64, 8);
        let lines = 256u64; // 16 KiB working set.
        for l in 0..lines {
            c.access(l * 64);
        }
        c.reset_stats();
        for _ in 0..10 {
            for l in 0..lines {
                c.access(l * 64);
            }
        }
        assert_eq!(c.misses(), 0, "everything should fit");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Direct-mapped-ish: 2 ways, 1 set => capacity 2 lines.
        let mut c = SetAssociativeCache::new(128, 64, 2);
        c.access(0); // line A
        c.access(64); // line B
        c.access(0); // touch A so B is LRU
        c.access(128); // line C evicts B
        assert_eq!(c.access(0), AccessOutcome::Hit, "A stays");
        assert_eq!(c.access(64), AccessOutcome::Miss, "B was evicted");
    }

    #[test]
    fn capacity_and_line_size_are_reported() {
        let c = SetAssociativeCache::new(30 * 1024 * 1024, 64, 20);
        // 30 MiB / 64 B / 20 ways = 24576 sets; capacity is sets*ways*line.
        assert_eq!(c.capacity_bytes(), 24576 * 20 * 64);
        assert_eq!(c.line_size(), 64);
    }

    #[test]
    fn clear_resets_contents() {
        let mut c = SetAssociativeCache::new(1024, 64, 2);
        c.access(0);
        c.clear();
        assert_eq!(c.accesses(), 0);
        assert_eq!(c.access(0), AccessOutcome::Miss);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_panics() {
        let _ = SetAssociativeCache::new(0, 64, 2);
    }

    #[test]
    fn miss_rate_zero_without_accesses() {
        let c = SetAssociativeCache::new(1024, 64, 2);
        assert_eq!(c.miss_rate(), 0.0);
    }
}
