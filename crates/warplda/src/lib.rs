//! # WarpLDA in Rust
//!
//! A from-scratch reproduction of *"WarpLDA: a Cache Efficient O(1) Algorithm
//! for Latent Dirichlet Allocation"* (Chen, Li, Zhu & Chen, VLDB 2016).
//!
//! This facade crate re-exports the full public API of the workspace so that
//! applications only need a single dependency:
//!
//! * [`corpus`] — corpora, vocabularies, bag-of-words I/O, synthetic
//!   generators and the Table 3 dataset presets;
//! * [`sampling`] — alias tables, F+ trees and Metropolis–Hastings helpers;
//! * [`sparse`] — the `VisitByRow`/`VisitByColumn` sparse-matrix framework and
//!   balanced partitioning;
//! * [`cachesim`] — the Ivy Bridge cache simulator and memory probes used by
//!   the memory-efficiency experiments;
//! * [`lda`] — WarpLDA itself plus the CGS / SparseLDA / AliasLDA / F+LDA /
//!   LightLDA baselines and the evaluation utilities;
//! * [`dist`] — the distributed runtime: the simulated cluster model plus the
//!   real multi-process coordinator/worker backend;
//! * [`net`] — the shared length-prefixed framing and connection layer used
//!   by both the query server and the distributed backend;
//! * [`serve`] — online serving: frozen [`TopicModel`](serve::TopicModel)
//!   artifacts, the fold-in inference engine and the TCP query server.
//!
//! ## Quick start
//!
//! ```
//! use warplda::prelude::*;
//!
//! // A small synthetic corpus with planted topics.
//! let corpus = DatasetPreset::Tiny.generate_scaled(4);
//!
//! // Train WarpLDA for a few iterations.
//! let params = ModelParams::paper_defaults(16);
//! let mut sampler = WarpLda::new(&corpus, params, WarpLdaConfig::with_mh_steps(2), 42);
//! for _ in 0..5 {
//!     sampler.run_iteration();
//! }
//!
//! // Evaluate the model.
//! let doc_view = DocMajorView::build(&corpus);
//! let word_view = WordMajorView::build(&corpus, &doc_view);
//! let ll = sampler.log_likelihood(&corpus, &doc_view, &word_view);
//! assert!(ll.is_finite());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use warplda_cachesim as cachesim;
pub use warplda_core as lda;
pub use warplda_corpus as corpus;
pub use warplda_dist as dist;
pub use warplda_net as net;
pub use warplda_sampling as sampling;
pub use warplda_serve as serve;
pub use warplda_sparse as sparse;

/// The most commonly used items, re-exported flat for `use warplda::prelude::*`.
pub mod prelude {
    pub use warplda_cachesim::{CacheProbe, CountingProbe, HierarchyConfig, MemoryProbe, NoProbe};
    pub use warplda_core::eval::{
        format_topics, log_joint_likelihood, perplexity_per_token, top_words,
    };
    pub use warplda_core::{
        load_checkpoint, save_checkpoint, AliasLda, Checkpointable, CollapsedGibbs, FPlusLda,
        IterationLog, IterationRecord, LightLda, LightLdaVariant, ModelParams, ParallelWarpLda,
        Sampler, SamplerState, ShardedWarpLda, SparseLda, TrainOutcome, Trainer, TrainerConfig,
        WarpLda, WarpLdaConfig,
    };
    pub use warplda_corpus::{
        Corpus, CorpusBuilder, CorpusStats, DatasetPreset, DocMajorView, Document, LdaGenerator,
        OovPolicy, SyntheticConfig, Vocabulary, WordMajorView, ZipfGenerator,
    };
    pub use warplda_dist::{
        ClusterConfig, DistError, DistributedWarpLda, FaultAction, FaultEvent, FaultPhase,
        FaultPlan, GridPartition, ProcessCluster, ProcessClusterConfig, ProcessIterationReport,
        ShardPlan,
    };
    pub use warplda_serve::{
        fold_in_perplexity, held_out_eval_fn, Client, HeldOutSet, InferConfig, InferScratch,
        InferenceEngine, LatencyStats, ServeCounters, Server, ServerConfig, ServerHandle,
        TopicModel,
    };
    pub use warplda_sparse::PartitionStrategy;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_a_working_pipeline() {
        let corpus = DatasetPreset::Tiny.generate_scaled(8);
        let params = ModelParams::paper_defaults(8);
        let mut sampler = WarpLda::new(&corpus, params, WarpLdaConfig::default(), 1);
        sampler.run_iteration();
        assert_eq!(sampler.assignments().len() as u64, corpus.num_tokens());
    }
}
