//! The event-loop TCP query server.
//!
//! One **event-loop thread** owns the listener and every connection through a
//! vendored `poll(2)` readiness shim (the `mio` API subset under `vendor/`):
//! nonblocking sockets, per-connection [`FrameBuffer`]s and output buffers
//! all live on the loop, and only *ready, complete request frames* are
//! dispatched to the fixed **worker pool**. Idle keep-alive connections
//! therefore cost one fd each and zero workers — the connection count is no
//! longer capped by the thread count.
//!
//! Serving mechanics worth naming:
//!
//! * **Admission control.** The job queue between the loop and the workers is
//!   bounded ([`ServerConfig::max_pending`]); a frame arriving over that
//!   bound is answered immediately with a typed overload
//!   [`Response::Error`](crate::wire::Response) instead of queueing forever.
//!   Connections beyond [`ServerConfig::max_connections`] get a typed
//!   capacity error and are closed.
//! * **Per-request deadlines.** Every job carries its admission time; a
//!   worker that claims a job past [`ServerConfig::request_deadline`] answers
//!   with a typed deadline error instead of doing stale work.
//! * **Partial writes, never blocking.** Responses go to a per-connection
//!   output buffer flushed on write readiness; a slow reader delays only its
//!   own bytes. A reader that stops draining while output is pending beyond
//!   [`ServerConfig::write_stall_timeout`] is disconnected
//!   (counted in [`ServeCounters::stalled_disconnects`]) — a stalled client
//!   can wedge neither a worker nor the loop, and shutdown stays prompt.
//! * **Accept-error backoff.** Transient accept failures (e.g. fd
//!   exhaustion) pause the listener with exponential backoff instead of
//!   hot-spinning, surfaced via [`ServeCounters::accept_errors`].
//! * **Pipelining with strict ordering.** Many frames of one connection may
//!   be in flight across workers at once; completions are re-sequenced by a
//!   per-connection sequence number, so responses always come back in
//!   request order.
//! * **Atomic hot swap** and **latency accounting** as before: the live
//!   model is an `Arc` slot behind a [`ModelHandle`], and per-request time
//!   (admission → response encoded, i.e. queue wait included) accumulates in
//!   a lock-free log-scale histogram ([`ServerHandle::latency`]).
//!
//! Buffers recycle through a shared pool, so a warm request costs no
//! steady-state allocation growth; θ stays a pure function of (model,
//! config, document, seed) — bit-identical to the single-threaded
//! [`InferenceEngine`] for any worker count.

use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mio::{Events, Interest, Poll, Token, Waker};
use warplda_corpus::{tokenize_query_into, OovPolicy};

use crate::infer::{InferConfig, InferScratch, InferenceEngine};
use crate::model::{ModelHandle, TopicModel};
use crate::wire::{
    decode_request, decode_response, encode_error_response, encode_ok_response, encode_request,
    FrameBuffer, Request, RequestBody, RequestBodyView, Response, WireError,
};

/// Typed message of an admission-control shed reply.
pub const OVERLOAD_MSG: &str = "server overloaded: admission queue full, retry later";
/// Typed message sent when the connection cap is reached.
pub const CAPACITY_MSG: &str = "server at connection capacity, retry later";
/// Typed message of a request that waited past its deadline.
pub const DEADLINE_MSG: &str = "request deadline exceeded before service";

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads running inference (the event loop is one extra thread).
    pub workers: usize,
    /// What to do with out-of-vocabulary query words.
    pub oov_policy: OovPolicy,
    /// Fold-in inference configuration.
    pub infer: InferConfig,
    /// Admission bound: complete frames queued for the workers beyond this
    /// are shed with a typed overload error instead of queueing forever.
    pub max_pending: usize,
    /// A request that has not reached a worker within this deadline is
    /// answered with a typed deadline error instead of stale work.
    pub request_deadline: Duration,
    /// A connection with pending output that accepts no bytes for this long
    /// is disconnected (a stalled reader must not pin buffers forever).
    pub write_stall_timeout: Duration,
    /// Open-connection cap; connections beyond it get a typed capacity error.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            oov_policy: OovPolicy::Skip,
            infer: InferConfig::default(),
            max_pending: 1024,
            request_deadline: Duration::from_secs(2),
            write_stall_timeout: Duration::from_secs(5),
            max_connections: 8192,
        }
    }
}

impl ServerConfig {
    /// A config with a specific worker count.
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn with_workers(workers: usize) -> Self {
        assert!(workers >= 1, "need at least one server worker");
        Self { workers, ..Self::default() }
    }
}

// ---------------------------------------------------------------------------
// Latency histogram
// ---------------------------------------------------------------------------

/// Sub-buckets per power of two (12.5% bucket resolution).
const SUBBUCKETS: usize = 8;
/// 64 exponents × 8 sub-buckets cover the whole u64 microsecond range.
const NUM_BUCKETS: usize = 64 * SUBBUCKETS;

/// Lock-free log-scale histogram of per-request service times.
#[derive(Debug)]
struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl LatencyHistogram {
    fn new() -> Self {
        Self {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    fn bucket_of(us: u64) -> usize {
        if us < SUBBUCKETS as u64 {
            return us as usize; // exact below 8µs
        }
        let e = 63 - us.leading_zeros() as u64; // e >= 3 here
        let sub = (us >> (e - 3)) & 0b111; // top 3 bits below the leader
        ((e - 3) as usize) * SUBBUCKETS + SUBBUCKETS + sub as usize
    }

    /// Upper edge of a bucket: percentiles err on the conservative side.
    fn bucket_upper(idx: usize) -> u64 {
        if idx < SUBBUCKETS {
            return idx as u64;
        }
        let e = (idx - SUBBUCKETS) / SUBBUCKETS + 3;
        let sub = ((idx - SUBBUCKETS) % SUBBUCKETS) as u64;
        (8 + sub + 1) << (e - 3)
    }

    fn record_us(&self, us: u64) {
        self.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    fn percentile_us(&self, counts: &[u64], total: u64, p: f64) -> u64 {
        if total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (idx, &c) in counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                // The bucket's upper edge, clamped to the exact maximum: the
                // edge can otherwise exceed max_us when the top-rank sample
                // shares a bucket with the true max (p99 > max would then
                // fail the schema's monotonicity check).
                return Self::bucket_upper(idx).min(self.max_us.load(Ordering::Relaxed));
            }
        }
        self.max_us.load(Ordering::Relaxed)
    }

    fn stats(&self) -> LatencyStats {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        let sum = self.sum_us.load(Ordering::Relaxed);
        LatencyStats {
            count: total,
            mean_us: if total == 0 { 0.0 } else { sum as f64 / total as f64 },
            p50_us: self.percentile_us(&counts, total, 50.0),
            p95_us: self.percentile_us(&counts, total, 95.0),
            p99_us: self.percentile_us(&counts, total, 99.0),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of the per-server latency accounting (microseconds).
/// Per-request time runs from admission (the frame was complete on the loop)
/// to response encoded, so queue wait under load is part of the number.
/// Percentiles come from a log-scale histogram with 12.5% bucket resolution,
/// reported at the bucket's upper edge (conservative).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Requests served.
    pub count: u64,
    /// Mean service time.
    pub mean_us: f64,
    /// Median service time.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Worst request.
    pub max_us: u64,
}

// ---------------------------------------------------------------------------
// Serving counters
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct Counters {
    accepted: AtomicU64,
    open_connections: AtomicU64,
    shed_overload: AtomicU64,
    deadline_expired: AtomicU64,
    stalled_disconnects: AtomicU64,
    accept_errors: AtomicU64,
    rejected_at_capacity: AtomicU64,
}

/// A snapshot of the server's failure-mode and admission accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeCounters {
    /// Connections accepted over the server's lifetime.
    pub accepted: u64,
    /// Connections currently open on the event loop.
    pub open_connections: u64,
    /// Requests shed with the typed overload error (admission bound hit).
    pub shed_overload: u64,
    /// Requests answered with the typed deadline error.
    pub deadline_expired: u64,
    /// Connections dropped because a stalled reader stopped draining output.
    pub stalled_disconnects: u64,
    /// Accept errors absorbed with backoff (fd exhaustion and kin).
    pub accept_errors: u64,
    /// Connections refused with the typed capacity error.
    pub rejected_at_capacity: u64,
}

// ---------------------------------------------------------------------------
// Job queue, completions, buffer pool
// ---------------------------------------------------------------------------

/// One ready, complete request frame, dispatched to the worker pool.
struct Job {
    conn: usize,
    gen: u64,
    seq: u64,
    payload: Vec<u8>,
    enqueued: Instant,
}

/// An encoded response on its way back to the event loop.
struct Completion {
    conn: usize,
    gen: u64,
    seq: u64,
    buf: Vec<u8>,
}

/// The bounded work queue feeding the fixed worker pool (complete frames
/// instead of connections — the same claim-when-free discipline as the
/// training [`ChunkCursor`](warplda_sparse::ChunkCursor), but admission-
/// controlled: the event loop sheds instead of pushing past the bound).
#[derive(Default)]
struct JobQueue {
    pending: Mutex<VecDeque<Job>>,
    ready: Condvar,
}

impl JobQueue {
    fn len(&self) -> usize {
        self.pending.lock().expect("queue poisoned").len()
    }

    fn push(&self, job: Job) {
        self.pending.lock().expect("queue poisoned").push_back(job);
        self.ready.notify_one();
    }

    fn pop(&self, shutdown: &AtomicBool) -> Option<Job> {
        let mut q = self.pending.lock().expect("queue poisoned");
        loop {
            if shutdown.load(Ordering::Acquire) {
                return None;
            }
            if let Some(job) = q.pop_front() {
                return Some(job);
            }
            let (guard, _) =
                self.ready.wait_timeout(q, Duration::from_millis(100)).expect("queue poisoned");
            q = guard;
        }
    }

    fn wake_all(&self) {
        self.ready.notify_all();
    }
}

/// Recycles payload/response buffers between the loop and the workers so the
/// steady state allocates nothing new.
#[derive(Default)]
struct BufferPool {
    free: Mutex<Vec<Vec<u8>>>,
}

/// Buffers kept beyond this are dropped instead of pooled.
const POOL_CAP: usize = 1024;

impl BufferPool {
    fn get(&self) -> Vec<u8> {
        self.free.lock().expect("pool poisoned").pop().unwrap_or_default()
    }

    fn put(&self, mut buf: Vec<u8>) {
        buf.clear();
        let mut free = self.free.lock().expect("pool poisoned");
        if free.len() < POOL_CAP {
            free.push(buf);
        }
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

struct Shared {
    model: ModelHandle,
    jobs: JobQueue,
    completions: Mutex<Vec<Completion>>,
    pool: BufferPool,
    latency: LatencyHistogram,
    config: ServerConfig,
    shutdown: AtomicBool,
    waker: Waker,
    counters: Counters,
}

/// The query server. [`Server::bind`] spawns the event loop and the worker
/// pool and returns a [`ServerHandle`].
pub struct Server;

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral loopback port),
    /// serving `model` under `config`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        model: Arc<TopicModel>,
        config: ServerConfig,
    ) -> std::io::Result<ServerHandle> {
        assert!(config.workers >= 1, "need at least one server worker");
        assert!(config.max_pending >= 1, "admission bound must admit at least one request");
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let poll = Poll::new()?;
        let waker = Waker::new(&poll, WAKER_TOKEN)?;
        let shared = Arc::new(Shared {
            model: ModelHandle::new(model),
            jobs: JobQueue::default(),
            completions: Mutex::new(Vec::new()),
            pool: BufferPool::default(),
            latency: LatencyHistogram::new(),
            config,
            shutdown: AtomicBool::new(false),
            waker,
            counters: Counters::default(),
        });

        let event_loop = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || EventLoop::new(shared, listener, poll).run())
        };
        let workers = (0..config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        Ok(ServerHandle { addr: local_addr, shared, event_loop: Some(event_loop), workers })
    }
}

/// Handle to a running server: address, hot swap, latency, counters,
/// shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    event_loop: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (connect clients here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Atomically promotes `model`; in-flight requests finish on the model
    /// they started with, every later request sees the new one. Returns the
    /// replaced model.
    pub fn swap_model(&self, model: Arc<TopicModel>) -> Arc<TopicModel> {
        self.shared.model.swap(model)
    }

    /// Number of hot swaps performed so far (echoed in every response).
    pub fn model_epoch(&self) -> u32 {
        self.shared.model.epoch()
    }

    /// Snapshot of the per-server latency accounting.
    pub fn latency(&self) -> LatencyStats {
        self.shared.latency.stats()
    }

    /// Snapshot of the admission/failure-mode counters.
    pub fn counters(&self) -> ServeCounters {
        let c = &self.shared.counters;
        ServeCounters {
            accepted: c.accepted.load(Ordering::Relaxed),
            open_connections: c.open_connections.load(Ordering::Relaxed),
            shed_overload: c.shed_overload.load(Ordering::Relaxed),
            deadline_expired: c.deadline_expired.load(Ordering::Relaxed),
            stalled_disconnects: c.stalled_disconnects.load(Ordering::Relaxed),
            accept_errors: c.accept_errors.load(Ordering::Relaxed),
            rejected_at_capacity: c.rejected_at_capacity.load(Ordering::Relaxed),
        }
    }

    /// Stops the event loop and the workers and joins all threads. Nothing in
    /// the server blocks on a socket, so this returns promptly even with
    /// stalled readers attached; responses not yet flushed are dropped with
    /// their connections.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        if self.event_loop.is_none() {
            return;
        }
        self.shared.shutdown.store(true, Ordering::Release);
        let _ = self.shared.waker.wake();
        self.shared.jobs.wake_all();
        if let Some(event_loop) = self.event_loop.take() {
            let _ = event_loop.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

const LISTENER_TOKEN: Token = Token(0);
const WAKER_TOKEN: Token = Token(1);
/// Connection slot `i` registers under `Token(i + CONN_TOKEN_BASE)`.
const CONN_TOKEN_BASE: usize = 2;

/// Maintenance tick: stall checks, accept-backoff expiry, shutdown polling.
const TICK: Duration = Duration::from_millis(20);
const INITIAL_ACCEPT_BACKOFF: Duration = Duration::from_millis(10);
const MAX_ACCEPT_BACKOFF: Duration = Duration::from_secs(1);

/// One connection, owned entirely by the event loop.
struct Conn {
    stream: TcpStream,
    frames: FrameBuffer,
    /// Encoded responses awaiting the socket, in order; `written` bytes of
    /// the front are already gone.
    out: Vec<u8>,
    written: usize,
    /// Out-of-order completions, re-sequenced before hitting `out`.
    pending_out: BTreeMap<u64, Vec<u8>>,
    /// Sequence number the next dispatched frame gets.
    next_dispatch_seq: u64,
    /// Sequence number whose response may enter `out` next.
    next_flush_seq: u64,
    /// Jobs dispatched whose completions have not come back yet.
    in_flight: usize,
    /// Interest currently registered with the poll (`None` = deregistered).
    registered: Option<Interest>,
    /// Set when a write found the socket full; cleared on any progress.
    stalled_since: Option<Instant>,
    /// EOF seen or framing poisoned: dispatch stops, the connection closes
    /// once every owed response is flushed.
    read_closed: bool,
}

/// A connection slot; `gen` guards stale completions after slot reuse.
struct Slot {
    gen: u64,
    conn: Option<Conn>,
}

struct EventLoop {
    shared: Arc<Shared>,
    listener: TcpListener,
    poll: Poll,
    slots: Vec<Slot>,
    free: Vec<usize>,
    accept_paused_until: Option<Instant>,
    accept_backoff: Duration,
    /// Scratch for draining the completion queue without holding its lock.
    completions_scratch: Vec<Completion>,
}

impl EventLoop {
    fn new(shared: Arc<Shared>, listener: TcpListener, poll: Poll) -> Self {
        Self {
            shared,
            listener,
            poll,
            slots: Vec::new(),
            free: Vec::new(),
            accept_paused_until: None,
            accept_backoff: INITIAL_ACCEPT_BACKOFF,
            completions_scratch: Vec::new(),
        }
    }

    fn run(mut self) {
        if self.listener.set_nonblocking(true).is_err() {
            return;
        }
        if self.poll.register(&self.listener, LISTENER_TOKEN, Interest::READABLE).is_err() {
            return;
        }
        let mut events = Events::with_capacity(256);
        while !self.shared.shutdown.load(Ordering::Acquire) {
            if self.poll.poll(&mut events, Some(TICK)).is_err() {
                break;
            }
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            let now = Instant::now();
            if let Some(until) = self.accept_paused_until {
                if now >= until {
                    self.accept_paused_until = None;
                    let _ = self.poll.register(&self.listener, LISTENER_TOKEN, Interest::READABLE);
                }
            }
            let mut accept_pending = false;
            let mut waker_pending = false;
            let mut ready: Vec<(usize, bool, bool)> = Vec::new();
            for ev in &events {
                match ev.token() {
                    LISTENER_TOKEN => accept_pending = true,
                    WAKER_TOKEN => waker_pending = true,
                    Token(t) => {
                        ready.push((t - CONN_TOKEN_BASE, ev.is_readable(), ev.is_writable()))
                    }
                }
            }
            if waker_pending {
                self.shared.waker.drain();
            }
            if accept_pending && self.accept_paused_until.is_none() {
                self.accept_ready(now);
            }
            for (idx, readable, writable) in ready {
                self.conn_ready(idx, readable, writable, now);
            }
            // Completions may arrive while we were busy even without a fresh
            // waker event; always drain.
            self.drain_completions();
            self.check_stalls(now);
        }
        // Teardown: recycle whatever the workers still send back, then drop
        // every connection (unflushed responses go down with them).
        self.shared.jobs.wake_all();
    }

    // -- accept ------------------------------------------------------------

    fn accept_ready(&mut self, now: Instant) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
                    self.accept_backoff = INITIAL_ACCEPT_BACKOFF;
                    let open =
                        self.shared.counters.open_connections.load(Ordering::Relaxed) as usize;
                    if open >= self.shared.config.max_connections {
                        self.shared.counters.rejected_at_capacity.fetch_add(1, Ordering::Relaxed);
                        // Best-effort typed refusal; the socket is dropped
                        // either way, so a full send buffer loses nothing.
                        let _ = stream.set_nonblocking(true);
                        let mut buf = self.shared.pool.get();
                        encode_error_response(&mut buf, CAPACITY_MSG);
                        let _ = (&stream).write(&buf);
                        self.shared.pool.put(buf);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.open_conn(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Transient accept failure (EMFILE & kin): pause the
                    // listener with exponential backoff instead of spinning.
                    self.shared.counters.accept_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = self.poll.deregister(&self.listener);
                    self.accept_paused_until = Some(now + self.accept_backoff);
                    self.accept_backoff = (self.accept_backoff * 2).min(MAX_ACCEPT_BACKOFF);
                    break;
                }
            }
        }
    }

    fn open_conn(&mut self, stream: TcpStream) {
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.slots.push(Slot { gen: 0, conn: None });
                self.slots.len() - 1
            }
        };
        let token = Token(idx + CONN_TOKEN_BASE);
        if self.poll.register(&stream, token, Interest::READABLE).is_err() {
            self.free.push(idx); // fd vanished under us; drop it
            return;
        }
        self.slots[idx].conn = Some(Conn {
            stream,
            frames: FrameBuffer::new(4096),
            out: Vec::new(),
            written: 0,
            pending_out: BTreeMap::new(),
            next_dispatch_seq: 0,
            next_flush_seq: 0,
            in_flight: 0,
            registered: Some(Interest::READABLE),
            stalled_since: None,
            read_closed: false,
        });
        self.shared.counters.open_connections.fetch_add(1, Ordering::Relaxed);
    }

    fn close_conn(&mut self, idx: usize) {
        let slot = &mut self.slots[idx];
        let Some(conn) = slot.conn.take() else { return };
        if conn.registered.is_some() {
            let _ = self.poll.deregister(&conn.stream);
        }
        for (_, buf) in conn.pending_out {
            self.shared.pool.put(buf);
        }
        slot.gen += 1;
        self.free.push(idx);
        self.shared.counters.open_connections.fetch_sub(1, Ordering::Relaxed);
    }

    // -- readiness ---------------------------------------------------------

    fn conn_ready(&mut self, idx: usize, readable: bool, writable: bool, now: Instant) {
        let Some(slot) = self.slots.get_mut(idx) else { return };
        let Some(conn) = slot.conn.as_mut() else { return };
        let gen = slot.gen;
        if readable && !conn.read_closed {
            let mut alive = true;
            loop {
                match conn.frames.fill_from(&mut conn.stream) {
                    Ok(0) => {
                        // EOF (possibly a half-close: the client may still be
                        // reading); finish what we owe, then close.
                        conn.read_closed = true;
                        break;
                    }
                    Ok(_) => {
                        Self::extract_frames(&self.shared, conn, idx, gen);
                        if conn.read_closed {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        alive = false;
                        break;
                    }
                }
            }
            if !alive {
                self.close_conn(idx);
                return;
            }
        }
        let conn = self.slots[idx].conn.as_mut().expect("checked above");
        if (writable || !conn.out.is_empty()) && !Self::try_write(conn, now) {
            self.close_conn(idx);
            return;
        }
        self.finish_conn_pass(idx);
    }

    /// Takes every complete frame out of `conn.frames`: dispatch within the
    /// admission bound, shed (typed, sequenced) beyond it, poison the
    /// connection on a framing error.
    fn extract_frames(shared: &Shared, conn: &mut Conn, idx: usize, gen: u64) {
        loop {
            match conn.frames.take_frame() {
                Ok(Some(range)) => {
                    let seq = conn.next_dispatch_seq;
                    conn.next_dispatch_seq += 1;
                    if shared.jobs.len() >= shared.config.max_pending {
                        shared.counters.shed_overload.fetch_add(1, Ordering::Relaxed);
                        let mut buf = shared.pool.get();
                        encode_error_response(&mut buf, OVERLOAD_MSG);
                        conn.pending_out.insert(seq, buf);
                    } else {
                        let mut payload = shared.pool.get();
                        payload.extend_from_slice(conn.frames.payload(range));
                        conn.in_flight += 1;
                        shared.jobs.push(Job {
                            conn: idx,
                            gen,
                            seq,
                            payload,
                            enqueued: Instant::now(),
                        });
                    }
                }
                Ok(None) => break,
                // Oversized/garbage framing: the stream cannot be re-synced.
                // Stop reading; owed responses still flush, then it closes.
                Err(_) => {
                    conn.read_closed = true;
                    break;
                }
            }
        }
        Self::flush_ready(shared, conn);
    }

    /// Moves in-order completed responses into the connection's out buffer.
    fn flush_ready(shared: &Shared, conn: &mut Conn) {
        while let Some(buf) = conn.pending_out.remove(&conn.next_flush_seq) {
            conn.out.extend_from_slice(&buf);
            shared.pool.put(buf);
            conn.next_flush_seq += 1;
        }
    }

    /// Writes as much pending output as the socket takes without blocking.
    /// Returns `false` when the connection died.
    fn try_write(conn: &mut Conn, now: Instant) -> bool {
        while conn.written < conn.out.len() {
            match conn.stream.write(&conn.out[conn.written..]) {
                Ok(0) => return false,
                Ok(n) => {
                    conn.written += n;
                    conn.stalled_since = None;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if conn.stalled_since.is_none() {
                        conn.stalled_since = Some(now);
                    }
                    break;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if conn.written == conn.out.len() {
            conn.out.clear();
            conn.written = 0;
            conn.stalled_since = None;
            // Bound the retained high-water mark: a burst to a slow reader
            // must not pin megabytes on an idle keep-alive connection.
            if conn.out.capacity() > 1 << 20 {
                conn.out.shrink_to(1 << 16);
            }
        }
        true
    }

    /// Re-registers interest to match buffered state and closes connections
    /// that owe nothing and can receive nothing.
    fn finish_conn_pass(&mut self, idx: usize) {
        let slot = &self.slots[idx];
        let Some(conn) = slot.conn.as_ref() else { return };
        let done = conn.read_closed
            && conn.in_flight == 0
            && conn.pending_out.is_empty()
            && conn.out.is_empty();
        if done {
            self.close_conn(idx);
            return;
        }
        let want_read = !conn.read_closed;
        let want_write = !conn.out.is_empty();
        let want = match (want_read, want_write) {
            (true, true) => Some(Interest::READABLE | Interest::WRITABLE),
            (true, false) => Some(Interest::READABLE),
            (false, true) => Some(Interest::WRITABLE),
            // Waiting only on worker completions: nothing to poll for (and
            // keeping a closed-read fd registered would spin on POLLIN).
            (false, false) => None,
        };
        let conn = self.slots[idx].conn.as_mut().expect("checked above");
        if want == conn.registered {
            return;
        }
        let token = Token(idx + CONN_TOKEN_BASE);
        let ok = match (conn.registered, want) {
            (None, Some(interest)) => self.poll.register(&conn.stream, token, interest).is_ok(),
            (Some(_), Some(interest)) => {
                self.poll.reregister(&conn.stream, token, interest).is_ok()
            }
            (Some(_), None) => self.poll.deregister(&conn.stream).is_ok(),
            (None, None) => true,
        };
        if ok {
            conn.registered = want;
        } else {
            self.close_conn(idx);
        }
    }

    // -- completions and maintenance ---------------------------------------

    fn drain_completions(&mut self) {
        debug_assert!(self.completions_scratch.is_empty());
        {
            let mut q = self.shared.completions.lock().expect("completions poisoned");
            std::mem::swap(&mut *q, &mut self.completions_scratch);
        }
        let mut touched: Vec<usize> = Vec::new();
        for completion in self.completions_scratch.drain(..) {
            let Some(slot) = self.slots.get_mut(completion.conn) else {
                self.shared.pool.put(completion.buf);
                continue;
            };
            if slot.gen != completion.gen || slot.conn.is_none() {
                // The connection died while the worker was busy.
                self.shared.pool.put(completion.buf);
                continue;
            }
            let conn = slot.conn.as_mut().expect("checked above");
            conn.in_flight -= 1;
            conn.pending_out.insert(completion.seq, completion.buf);
            Self::flush_ready(&self.shared, conn);
            if !touched.contains(&completion.conn) {
                touched.push(completion.conn);
            }
        }
        let now = Instant::now();
        for idx in touched {
            if let Some(conn) = self.slots[idx].conn.as_mut() {
                if !Self::try_write(conn, now) {
                    self.close_conn(idx);
                    continue;
                }
            }
            self.finish_conn_pass(idx);
        }
    }

    /// Disconnects stalled readers: pending output, zero progress past the
    /// configured timeout.
    fn check_stalls(&mut self, now: Instant) {
        let timeout = self.shared.config.write_stall_timeout;
        for idx in 0..self.slots.len() {
            let Some(conn) = self.slots[idx].conn.as_ref() else { continue };
            if let Some(since) = conn.stalled_since {
                if now.duration_since(since) >= timeout {
                    self.shared.counters.stalled_disconnects.fetch_add(1, Ordering::Relaxed);
                    self.close_conn(idx);
                }
            }
        }
    }
}

impl Drop for EventLoop {
    fn drop(&mut self) {
        for idx in 0..self.slots.len() {
            self.close_conn(idx);
        }
    }
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

/// Everything a worker reuses across requests; the reason a warm request is
/// allocation-free on the worker side.
struct WorkerScratch {
    tokens: Vec<u32>,
    normalize: String,
    infer: InferScratch,
}

fn worker_loop(shared: &Shared) {
    let mut scratch =
        WorkerScratch { tokens: Vec::new(), normalize: String::new(), infer: InferScratch::new() };
    while let Some(job) = shared.jobs.pop(&shared.shutdown) {
        let mut out = shared.pool.get();
        if job.enqueued.elapsed() > shared.config.request_deadline {
            shared.counters.deadline_expired.fetch_add(1, Ordering::Relaxed);
            encode_error_response(&mut out, DEADLINE_MSG);
        } else {
            handle_request(shared, &mut scratch, &job.payload, &mut out);
        }
        shared.latency.record_us(job.enqueued.elapsed().as_micros() as u64);
        shared.pool.put(job.payload);
        shared.completions.lock().expect("completions poisoned").push(Completion {
            conn: job.conn,
            gen: job.gen,
            seq: job.seq,
            buf: out,
        });
        let _ = shared.waker.wake();
    }
}

/// Decodes, infers and encodes exactly one response frame into `out`.
fn handle_request(shared: &Shared, scratch: &mut WorkerScratch, payload: &[u8], out: &mut Vec<u8>) {
    let WorkerScratch { tokens, normalize, infer } = scratch;
    let request = match decode_request(payload, tokens) {
        Ok(r) => r,
        Err(_) => {
            encode_error_response(out, "malformed request");
            return;
        }
    };
    let (model, epoch) = shared.model.current();
    let mut oov_dropped = 0u32;
    match request.body {
        RequestBodyView::Text(text) => {
            let Some(vocab) = model.vocab() else {
                encode_error_response(out, "model has no vocabulary; send token-id queries");
                return;
            };
            match tokenize_query_into(vocab, text, shared.config.oov_policy, normalize, tokens) {
                Ok(oov) => oov_dropped = oov as u32,
                Err(e) => {
                    encode_error_response(out, &e.to_string());
                    return;
                }
            }
        }
        RequestBodyView::Tokens => {
            let limit = model.num_words() as u32;
            if tokens.iter().any(|&t| t >= limit) {
                encode_error_response(out, "token id out of range for the model vocabulary");
                return;
            }
        }
    }
    let engine = InferenceEngine::new(&model, shared.config.infer);
    engine.infer_into(tokens, request.seed, infer);
    let top = infer.top_topics();
    let top = &top[..top.len().min(request.top_n as usize)];
    encode_ok_response(out, epoch, tokens.len() as u32, oov_dropped, infer.theta(), top);
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// A small blocking client for the wire protocol, supporting pipelining
/// ([`send`](Self::send) several requests, then [`recv`](Self::recv) the
/// responses in order) and optional deadlines so a dead or wedged server
/// surfaces as a typed timeout instead of hanging `recv` forever.
pub struct Client {
    stream: TcpStream,
    frames: FrameBuffer,
    out: Vec<u8>,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream, frames: FrameBuffer::new(4096), out: Vec::new() })
    }

    /// Connects with a bound on the connect itself *and* installs the same
    /// bound as the I/O deadline (see [`set_deadline`](Self::set_deadline)).
    pub fn connect_timeout(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        let mut client = Self { stream, frames: FrameBuffer::new(4096), out: Vec::new() };
        client.set_deadline(Some(timeout))?;
        Ok(client)
    }

    /// Bounds every subsequent socket read and write: past the deadline,
    /// [`recv`](Self::recv) returns a typed [`WireError::Io`] with kind
    /// `WouldBlock`/`TimedOut` instead of blocking forever. `None` removes
    /// the bound.
    pub fn set_deadline(&mut self, deadline: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(deadline)?;
        self.stream.set_write_timeout(deadline)
    }

    /// Sends a request without waiting for the response.
    pub fn send(&mut self, request: &Request) -> Result<(), WireError> {
        self.out.clear();
        encode_request(request, &mut self.out);
        self.stream.write_all(&self.out)?;
        Ok(())
    }

    /// Receives the next response.
    pub fn recv(&mut self) -> Result<Response, WireError> {
        loop {
            if let Some(range) = self.frames.take_frame()? {
                let payload = self.frames.payload(range);
                return decode_response(payload);
            }
            if self.frames.fill_from(&mut self.stream)? == 0 {
                return Err(WireError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )));
            }
        }
    }

    /// Round trip of one raw-text query.
    pub fn query_text(&mut self, text: &str, seed: u64, top_n: u32) -> Result<Response, WireError> {
        self.send(&Request { seed, top_n, body: RequestBody::Text(text.to_owned()) })?;
        self.recv()
    }

    /// Round trip of one pre-tokenized query.
    pub fn query_tokens(
        &mut self,
        tokens: &[u32],
        seed: u64,
        top_n: u32,
    ) -> Result<Response, WireError> {
        self.send(&Request { seed, top_n, body: RequestBody::Tokens(tokens.to_vec()) })?;
        self.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warplda_core::{ModelParams, Sampler, WarpLda, WarpLdaConfig};
    use warplda_corpus::CorpusBuilder;

    fn trained() -> Arc<TopicModel> {
        let mut b = CorpusBuilder::new();
        for _ in 0..30 {
            b.push_text_doc(["river", "lake", "water", "fish"]);
            b.push_text_doc(["desert", "sand", "dune", "heat"]);
        }
        let corpus = b.build().unwrap();
        let mut s =
            WarpLda::new(&corpus, ModelParams::new(2, 0.5, 0.1), WarpLdaConfig::default(), 5);
        for _ in 0..40 {
            s.run_iteration();
        }
        Arc::new(TopicModel::freeze_sampler(&s, &corpus))
    }

    #[test]
    fn serves_text_and_token_queries_with_oov_accounting() {
        let model = trained();
        let handle = Server::bind("127.0.0.1:0", Arc::clone(&model), ServerConfig::default())
            .expect("bind loopback");
        let mut client = Client::connect(handle.addr()).unwrap();
        client.set_deadline(Some(Duration::from_secs(30))).unwrap();

        let resp = client.query_text("river water zeppelin fish", 7, 4).unwrap();
        let Response::Ok(reply) = resp else { panic!("expected ok: {resp:?}") };
        assert_eq!(reply.model_epoch, 0);
        assert_eq!(reply.tokens_used, 3);
        assert_eq!(reply.oov_dropped, 1, "\"zeppelin\" is OOV");
        assert_eq!(reply.theta.len(), 2);
        assert!((reply.theta.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(!reply.top.is_empty());

        // The same query, pre-tokenized, with the same seed: θ bit-identical.
        let vocab_ids: Vec<u32> = ["river", "water", "fish"]
            .iter()
            .map(|w| model.vocab().unwrap().get(w).unwrap())
            .collect();
        let resp = client.query_tokens(&vocab_ids, 7, 4).unwrap();
        let Response::Ok(tok_reply) = resp else { panic!("expected ok") };
        assert_eq!(
            tok_reply.theta.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            reply.theta.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );

        // Out-of-range token ids are rejected, the connection survives.
        let resp = client.query_tokens(&[9_999_999], 1, 1).unwrap();
        assert!(matches!(resp, Response::Error(_)));
        let resp = client.query_tokens(&vocab_ids, 7, 4).unwrap();
        assert!(matches!(resp, Response::Ok(_)));

        let stats = handle.latency();
        assert_eq!(stats.count, 4);
        assert!(stats.p50_us <= stats.p95_us && stats.p95_us <= stats.p99_us);
        assert!(stats.p99_us <= stats.max_us, "{stats:?}");
        let counters = handle.counters();
        assert_eq!(counters.accepted, 1);
        assert_eq!(counters.shed_overload, 0);
        assert_eq!(counters.stalled_disconnects, 0);
        handle.shutdown();
    }

    #[test]
    fn reject_policy_refuses_oov_queries() {
        let model = trained();
        let config = ServerConfig { oov_policy: OovPolicy::Reject, ..ServerConfig::default() };
        let handle = Server::bind("127.0.0.1:0", model, config).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        match client.query_text("river zeppelin", 1, 2).unwrap() {
            Response::Error(msg) => assert!(msg.contains("zeppelin"), "{msg}"),
            other => panic!("expected rejection, got {other:?}"),
        }
        handle.shutdown();
    }

    #[test]
    fn pipelined_requests_are_answered_in_order() {
        let model = trained();
        let handle = Server::bind("127.0.0.1:0", model, ServerConfig::with_workers(1)).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        for seed in 0..8u64 {
            client
                .send(&Request { seed, top_n: 1, body: RequestBody::Text("river water".into()) })
                .unwrap();
        }
        let mut thetas = Vec::new();
        for _ in 0..8 {
            let Response::Ok(reply) = client.recv().unwrap() else { panic!("expected ok") };
            thetas.push(reply.theta);
        }
        drop(client);
        // Order preserved: seed s must reproduce its own direct query.
        let mut check = Client::connect(handle.addr()).unwrap();
        for (seed, theta) in thetas.iter().enumerate() {
            let Response::Ok(reply) = check.query_text("river water", seed as u64, 1).unwrap()
            else {
                panic!("expected ok")
            };
            assert_eq!(
                reply.theta.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                theta.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "response for seed {seed} out of order"
            );
        }
        assert_eq!(handle.latency().count, 16);
        handle.shutdown();
    }

    #[test]
    fn pipelined_ordering_holds_across_many_workers() {
        // 4 workers race on one connection's pipelined burst; the sequence
        // reassembly must still deliver responses in request order.
        let model = trained();
        let handle = Server::bind("127.0.0.1:0", model, ServerConfig::with_workers(4)).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        let n = 64u64;
        for seed in 0..n {
            client
                .send(&Request { seed, top_n: 1, body: RequestBody::Text("river water".into()) })
                .unwrap();
        }
        let mut thetas = Vec::new();
        for _ in 0..n {
            let Response::Ok(reply) = client.recv().unwrap() else { panic!("expected ok") };
            thetas.push(reply.theta);
        }
        drop(client);
        let mut check = Client::connect(handle.addr()).unwrap();
        for (seed, theta) in thetas.iter().enumerate() {
            let Response::Ok(reply) = check.query_text("river water", seed as u64, 1).unwrap()
            else {
                panic!("expected ok")
            };
            assert_eq!(
                reply.theta.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                theta.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "response for seed {seed} out of order under 4 workers"
            );
        }
        handle.shutdown();
    }

    #[test]
    fn hot_swap_changes_the_epoch_without_dropping_the_connection() {
        let model = trained();
        let handle = Server::bind("127.0.0.1:0", model, ServerConfig::default()).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        let Response::Ok(before) = client.query_text("river", 1, 1).unwrap() else {
            panic!("expected ok")
        };
        assert_eq!(before.model_epoch, 0);
        handle.swap_model(trained());
        assert_eq!(handle.model_epoch(), 1);
        let Response::Ok(after) = client.query_text("river", 1, 1).unwrap() else {
            panic!("expected ok")
        };
        assert_eq!(after.model_epoch, 1, "same connection must see the promoted model");
        handle.shutdown();
    }

    #[test]
    fn malformed_bytes_do_not_wedge_the_server() {
        let model = trained();
        let handle = Server::bind("127.0.0.1:0", model, ServerConfig::default()).unwrap();
        // A frame whose payload is garbage gets an error response.
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.write_all(&3u32.to_le_bytes()).unwrap();
        stream.write_all(&[0xFF, 0xFE, 0xFD]).unwrap();
        let mut fb = FrameBuffer::new(64);
        let resp = loop {
            if let Some(range) = fb.take_frame().unwrap() {
                break decode_response(fb.payload(range)).unwrap();
            }
            assert!(fb.fill_from(&mut stream).unwrap() > 0, "server closed early");
        };
        assert!(matches!(resp, Response::Error(_)));
        drop(stream);
        // And a fresh client still gets served.
        let mut client = Client::connect(handle.addr()).unwrap();
        assert!(matches!(client.query_text("river", 1, 1).unwrap(), Response::Ok(_)));
        handle.shutdown();
    }

    #[test]
    fn oversized_frame_closes_the_connection_after_flushing_owed_responses() {
        let model = trained();
        let handle = Server::bind("127.0.0.1:0", model, ServerConfig::default()).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        // One good request, then a poisoned length prefix in the same burst.
        client
            .send(&Request { seed: 1, top_n: 1, body: RequestBody::Text("river".into()) })
            .unwrap();
        client.stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
        // The owed response still arrives…
        assert!(matches!(client.recv().unwrap(), Response::Ok(_)));
        // …then the server closes: recv sees EOF, not a hang.
        match client.recv() {
            Err(WireError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof, "{e:?}")
            }
            other => panic!("expected EOF after poisoned framing, got {other:?}"),
        }
        handle.shutdown();
    }

    #[test]
    fn latency_histogram_buckets_are_monotone() {
        let h = LatencyHistogram::new();
        for us in [0u64, 1, 5, 7, 8, 9, 100, 1_000, 65_537, u32::MAX as u64] {
            let idx = LatencyHistogram::bucket_of(us);
            assert!(idx < NUM_BUCKETS, "{us}µs -> bucket {idx}");
            assert!(LatencyHistogram::bucket_upper(idx) >= us, "upper edge below sample for {us}");
            h.record_us(us);
        }
        let stats = h.stats();
        assert_eq!(stats.count, 10);
        assert!(stats.p50_us <= stats.p99_us);
        assert!(stats.p99_us <= stats.max_us, "{stats:?}");
        assert_eq!(stats.max_us, u32::MAX as u64);
        // Percentiles are clamped to the exact maximum: a bucket shared by
        // the top-rank sample and the true max must not report p99 > max.
        let h = LatencyHistogram::new();
        h.record_us(9);
        h.record_us(9);
        let stats = h.stats();
        assert_eq!(stats.max_us, 9);
        assert_eq!(stats.p99_us, 9, "upper edge must clamp to the observed max");
        // Exact small buckets: a 5µs sample reports exactly 5µs at p-low.
        let h = LatencyHistogram::new();
        h.record_us(5);
        assert_eq!(h.stats().p50_us, 5);
    }
}
