//! The multi-threaded TCP query server.
//!
//! Deliberately std-only (the workspace has no async runtime to vendor):
//! an acceptor thread pushes connections onto a condvar queue; a **fixed
//! worker pool** drains it — the serving-side analogue of the training
//! work-queue ([`ChunkCursor`](warplda_sparse::ChunkCursor)) discipline:
//! no static assignment of connections to workers, whoever is free claims
//! the next one.
//!
//! Three serving mechanics worth naming:
//!
//! * **Request batching.** Workers read through an incremental
//!   [`FrameBuffer`]; after serving a request, any frames a pipelining
//!   client already delivered are served back-to-back and the staged
//!   responses flushed with a single write.
//! * **Atomic hot swap.** The live model is an `Arc` slot behind a
//!   [`ModelHandle`]; [`ServerHandle::swap_model`] promotes a new model
//!   between requests without dropping in-flight ones, and responses carry
//!   the model epoch so clients can observe the promotion.
//! * **Latency accounting.** Per-request service time accumulates in a
//!   lock-free log-scale histogram; [`ServerHandle::latency`] reports
//!   p50/p95/p99/max, which the bench harness serializes into its JSON
//!   schema.
//!
//! A warm worker serves a request with **zero heap allocations**: frame
//! buffer, token vector, normalization scratch, inference scratch and
//! response buffer are all worker-owned and reused (error responses may
//! format a message — rejection is not the steady state).

use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use warplda_corpus::{tokenize_query_into, OovPolicy};

use crate::infer::{InferConfig, InferScratch, InferenceEngine};
use crate::model::{ModelHandle, TopicModel};
use crate::wire::{
    decode_request, decode_response, encode_error_response, encode_ok_response, encode_request,
    FrameBuffer, Request, RequestBody, RequestBodyView, Response, WireError,
};

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads serving connections.
    pub workers: usize,
    /// What to do with out-of-vocabulary query words.
    pub oov_policy: OovPolicy,
    /// Fold-in inference configuration.
    pub infer: InferConfig,
    /// Socket read timeout; bounds how long a worker blocks on an idle
    /// connection before polling the shutdown flag. Purely an internal
    /// responsiveness knob — timeouts never drop buffered bytes.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            oov_policy: OovPolicy::Skip,
            infer: InferConfig::default(),
            read_timeout: Duration::from_millis(50),
        }
    }
}

impl ServerConfig {
    /// A config with a specific worker count.
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn with_workers(workers: usize) -> Self {
        assert!(workers >= 1, "need at least one server worker");
        Self { workers, ..Self::default() }
    }
}

// ---------------------------------------------------------------------------
// Latency histogram
// ---------------------------------------------------------------------------

/// Sub-buckets per power of two (12.5% bucket resolution).
const SUBBUCKETS: usize = 8;
/// 64 exponents × 8 sub-buckets cover the whole u64 microsecond range.
const NUM_BUCKETS: usize = 64 * SUBBUCKETS;

/// Lock-free log-scale histogram of per-request service times.
#[derive(Debug)]
struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl LatencyHistogram {
    fn new() -> Self {
        Self {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    fn bucket_of(us: u64) -> usize {
        if us < SUBBUCKETS as u64 {
            return us as usize; // exact below 8µs
        }
        let e = 63 - us.leading_zeros() as u64; // e >= 3 here
        let sub = (us >> (e - 3)) & 0b111; // top 3 bits below the leader
        ((e - 3) as usize) * SUBBUCKETS + SUBBUCKETS + sub as usize
    }

    /// Upper edge of a bucket: percentiles err on the conservative side.
    fn bucket_upper(idx: usize) -> u64 {
        if idx < SUBBUCKETS {
            return idx as u64;
        }
        let e = (idx - SUBBUCKETS) / SUBBUCKETS + 3;
        let sub = ((idx - SUBBUCKETS) % SUBBUCKETS) as u64;
        (8 + sub + 1) << (e - 3)
    }

    fn record_us(&self, us: u64) {
        self.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    fn percentile_us(&self, counts: &[u64], total: u64, p: f64) -> u64 {
        if total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (idx, &c) in counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                // The bucket's upper edge, clamped to the exact maximum: the
                // edge can otherwise exceed max_us when the top-rank sample
                // shares a bucket with the true max (p99 > max would then
                // fail the schema's monotonicity check).
                return Self::bucket_upper(idx).min(self.max_us.load(Ordering::Relaxed));
            }
        }
        self.max_us.load(Ordering::Relaxed)
    }

    fn stats(&self) -> LatencyStats {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        let sum = self.sum_us.load(Ordering::Relaxed);
        LatencyStats {
            count: total,
            mean_us: if total == 0 { 0.0 } else { sum as f64 / total as f64 },
            p50_us: self.percentile_us(&counts, total, 50.0),
            p95_us: self.percentile_us(&counts, total, 95.0),
            p99_us: self.percentile_us(&counts, total, 99.0),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of the per-server latency accounting (microseconds).
/// Percentiles come from a log-scale histogram with 12.5% bucket resolution,
/// reported at the bucket's upper edge (conservative).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Requests served.
    pub count: u64,
    /// Mean service time.
    pub mean_us: f64,
    /// Median service time.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Worst request.
    pub max_us: u64,
}

// ---------------------------------------------------------------------------
// Connection queue
// ---------------------------------------------------------------------------

/// The dynamic work queue feeding the fixed worker pool (connections instead
/// of row/column chunks, a condvar instead of an atomic cursor — same
/// claim-when-free discipline as [`warplda_sparse::ChunkCursor`]).
#[derive(Debug)]
struct ConnQueue {
    pending: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
}

impl ConnQueue {
    fn new() -> Self {
        Self { pending: Mutex::new(VecDeque::new()), ready: Condvar::new() }
    }

    fn push(&self, stream: TcpStream) {
        self.pending.lock().expect("queue poisoned").push_back(stream);
        self.ready.notify_one();
    }

    fn pop(&self, shutdown: &AtomicBool) -> Option<TcpStream> {
        let mut q = self.pending.lock().expect("queue poisoned");
        loop {
            if let Some(stream) = q.pop_front() {
                return Some(stream);
            }
            if shutdown.load(Ordering::Acquire) {
                return None;
            }
            let (guard, _) =
                self.ready.wait_timeout(q, Duration::from_millis(100)).expect("queue poisoned");
            q = guard;
        }
    }

    fn wake_all(&self) {
        self.ready.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

struct Shared {
    model: ModelHandle,
    queue: ConnQueue,
    latency: LatencyHistogram,
    config: ServerConfig,
    shutdown: AtomicBool,
}

/// The query server. [`Server::bind`] spawns the acceptor and the worker
/// pool and returns a [`ServerHandle`].
pub struct Server;

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral loopback port),
    /// serving `model` under `config`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        model: Arc<TopicModel>,
        config: ServerConfig,
    ) -> std::io::Result<ServerHandle> {
        assert!(config.workers >= 1, "need at least one server worker");
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            model: ModelHandle::new(model),
            queue: ConnQueue::new(),
            latency: LatencyHistogram::new(),
            config,
            shutdown: AtomicBool::new(false),
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        shared.queue.push(stream);
                    }
                }
            })
        };
        let workers = (0..config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        Ok(ServerHandle { addr: local_addr, shared, acceptor: Some(acceptor), workers })
    }
}

/// Handle to a running server: address, hot swap, latency, shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (connect clients here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Atomically promotes `model`; in-flight requests finish on the model
    /// they started with, every later request sees the new one. Returns the
    /// replaced model.
    pub fn swap_model(&self, model: Arc<TopicModel>) -> Arc<TopicModel> {
        self.shared.model.swap(model)
    }

    /// Number of hot swaps performed so far (echoed in every response).
    pub fn model_epoch(&self) -> u32 {
        self.shared.model.epoch()
    }

    /// Snapshot of the per-server latency accounting.
    pub fn latency(&self) -> LatencyStats {
        self.shared.latency.stats()
    }

    /// Stops accepting, drains the workers and joins all threads. Workers
    /// finish the connection they are serving (they notice the flag at the
    /// next read-timeout tick at the latest).
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        if self.acceptor.is_none() {
            return;
        }
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.queue.wake_all();
        // Unblock the acceptor's blocking `accept` with a throwaway
        // connection; it checks the flag before queueing anything.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

/// Everything a worker reuses across requests and connections; the reason a
/// warm request is allocation-free.
struct WorkerScratch {
    frames: FrameBuffer,
    out: Vec<u8>,
    tokens: Vec<u32>,
    normalize: String,
    infer: InferScratch,
}

fn worker_loop(shared: &Shared) {
    let mut scratch = WorkerScratch {
        frames: FrameBuffer::new(4096),
        out: Vec::with_capacity(4096),
        tokens: Vec::new(),
        normalize: String::new(),
        infer: InferScratch::new(),
    };
    while let Some(stream) = shared.queue.pop(&shared.shutdown) {
        // Connection-level errors only poison that connection.
        let _ = serve_connection(stream, shared, &mut scratch);
    }
}

fn serve_connection(
    mut stream: TcpStream,
    shared: &Shared,
    scratch: &mut WorkerScratch,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(shared.config.read_timeout))?;
    scratch.frames.reset(); // discard any previous connection's tail
    scratch.out.clear();
    loop {
        // Serve every already-buffered frame as one batch…
        loop {
            match scratch.frames.take_frame() {
                Ok(Some(range)) => {
                    let t0 = Instant::now();
                    handle_request(shared, scratch, range);
                    shared.latency.record_us(t0.elapsed().as_micros() as u64);
                }
                Ok(None) => break,
                // Oversized/garbage framing: drop the connection (after
                // flushing what we owe), the stream cannot be re-synced.
                Err(_) => {
                    let _ = stream.write_all(&scratch.out);
                    scratch.out.clear();
                    return Ok(());
                }
            }
        }
        // …then flush the batch with one write.
        if !scratch.out.is_empty() {
            stream.write_all(&scratch.out)?;
            scratch.out.clear();
        }
        match scratch.frames.fill_from(&mut stream) {
            Ok(0) => return Ok(()), // clean EOF
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::Acquire) {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Decodes, infers and appends exactly one response frame to `scratch.out`.
fn handle_request(shared: &Shared, scratch: &mut WorkerScratch, range: std::ops::Range<usize>) {
    let WorkerScratch { frames, out, tokens, normalize, infer } = scratch;
    let payload = frames.payload(range);
    let request = match decode_request(payload, tokens) {
        Ok(r) => r,
        Err(_) => {
            encode_error_response(out, "malformed request");
            return;
        }
    };
    let (model, epoch) = shared.model.current();
    let mut oov_dropped = 0u32;
    match request.body {
        RequestBodyView::Text(text) => {
            let Some(vocab) = model.vocab() else {
                encode_error_response(out, "model has no vocabulary; send token-id queries");
                return;
            };
            match tokenize_query_into(vocab, text, shared.config.oov_policy, normalize, tokens) {
                Ok(oov) => oov_dropped = oov as u32,
                Err(e) => {
                    encode_error_response(out, &e.to_string());
                    return;
                }
            }
        }
        RequestBodyView::Tokens => {
            let limit = model.num_words() as u32;
            if tokens.iter().any(|&t| t >= limit) {
                encode_error_response(out, "token id out of range for the model vocabulary");
                return;
            }
        }
    }
    let engine = InferenceEngine::new(&model, shared.config.infer);
    engine.infer_into(tokens, request.seed, infer);
    let top = infer.top_topics();
    let top = &top[..top.len().min(request.top_n as usize)];
    encode_ok_response(out, epoch, tokens.len() as u32, oov_dropped, infer.theta(), top);
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// A small blocking client for the wire protocol, supporting pipelining
/// ([`send`](Self::send) several requests, then [`recv`](Self::recv) the
/// responses in order).
pub struct Client {
    stream: TcpStream,
    frames: FrameBuffer,
    out: Vec<u8>,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream, frames: FrameBuffer::new(4096), out: Vec::new() })
    }

    /// Sends a request without waiting for the response.
    pub fn send(&mut self, request: &Request) -> Result<(), WireError> {
        self.out.clear();
        encode_request(request, &mut self.out);
        self.stream.write_all(&self.out)?;
        Ok(())
    }

    /// Receives the next response.
    pub fn recv(&mut self) -> Result<Response, WireError> {
        loop {
            if let Some(range) = self.frames.take_frame()? {
                let payload = self.frames.payload(range);
                return decode_response(payload);
            }
            if self.frames.fill_from(&mut self.stream)? == 0 {
                return Err(WireError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )));
            }
        }
    }

    /// Round trip of one raw-text query.
    pub fn query_text(&mut self, text: &str, seed: u64, top_n: u32) -> Result<Response, WireError> {
        self.send(&Request { seed, top_n, body: RequestBody::Text(text.to_owned()) })?;
        self.recv()
    }

    /// Round trip of one pre-tokenized query.
    pub fn query_tokens(
        &mut self,
        tokens: &[u32],
        seed: u64,
        top_n: u32,
    ) -> Result<Response, WireError> {
        self.send(&Request { seed, top_n, body: RequestBody::Tokens(tokens.to_vec()) })?;
        self.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warplda_core::{ModelParams, Sampler, WarpLda, WarpLdaConfig};
    use warplda_corpus::CorpusBuilder;

    fn trained() -> Arc<TopicModel> {
        let mut b = CorpusBuilder::new();
        for _ in 0..30 {
            b.push_text_doc(["river", "lake", "water", "fish"]);
            b.push_text_doc(["desert", "sand", "dune", "heat"]);
        }
        let corpus = b.build().unwrap();
        let mut s =
            WarpLda::new(&corpus, ModelParams::new(2, 0.5, 0.1), WarpLdaConfig::default(), 5);
        for _ in 0..40 {
            s.run_iteration();
        }
        Arc::new(TopicModel::freeze_sampler(&s, &corpus))
    }

    #[test]
    fn serves_text_and_token_queries_with_oov_accounting() {
        let model = trained();
        let handle = Server::bind("127.0.0.1:0", Arc::clone(&model), ServerConfig::default())
            .expect("bind loopback");
        let mut client = Client::connect(handle.addr()).unwrap();

        let resp = client.query_text("river water zeppelin fish", 7, 4).unwrap();
        let Response::Ok(reply) = resp else { panic!("expected ok: {resp:?}") };
        assert_eq!(reply.model_epoch, 0);
        assert_eq!(reply.tokens_used, 3);
        assert_eq!(reply.oov_dropped, 1, "\"zeppelin\" is OOV");
        assert_eq!(reply.theta.len(), 2);
        assert!((reply.theta.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(!reply.top.is_empty());

        // The same query, pre-tokenized, with the same seed: θ bit-identical.
        let vocab_ids: Vec<u32> = ["river", "water", "fish"]
            .iter()
            .map(|w| model.vocab().unwrap().get(w).unwrap())
            .collect();
        let resp = client.query_tokens(&vocab_ids, 7, 4).unwrap();
        let Response::Ok(tok_reply) = resp else { panic!("expected ok") };
        assert_eq!(
            tok_reply.theta.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            reply.theta.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );

        // Out-of-range token ids are rejected, the connection survives.
        let resp = client.query_tokens(&[9_999_999], 1, 1).unwrap();
        assert!(matches!(resp, Response::Error(_)));
        let resp = client.query_tokens(&vocab_ids, 7, 4).unwrap();
        assert!(matches!(resp, Response::Ok(_)));

        let stats = handle.latency();
        assert_eq!(stats.count, 4);
        assert!(stats.p50_us <= stats.p95_us && stats.p95_us <= stats.p99_us);
        assert!(stats.p99_us <= stats.max_us, "{stats:?}");
        handle.shutdown();
    }

    #[test]
    fn reject_policy_refuses_oov_queries() {
        let model = trained();
        let config = ServerConfig { oov_policy: OovPolicy::Reject, ..ServerConfig::default() };
        let handle = Server::bind("127.0.0.1:0", model, config).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        match client.query_text("river zeppelin", 1, 2).unwrap() {
            Response::Error(msg) => assert!(msg.contains("zeppelin"), "{msg}"),
            other => panic!("expected rejection, got {other:?}"),
        }
        handle.shutdown();
    }

    #[test]
    fn pipelined_requests_are_answered_in_order() {
        let model = trained();
        let handle = Server::bind("127.0.0.1:0", model, ServerConfig::with_workers(1)).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        for seed in 0..8u64 {
            client
                .send(&Request { seed, top_n: 1, body: RequestBody::Text("river water".into()) })
                .unwrap();
        }
        let mut thetas = Vec::new();
        for _ in 0..8 {
            let Response::Ok(reply) = client.recv().unwrap() else { panic!("expected ok") };
            thetas.push(reply.theta);
        }
        // Free the single worker before opening the next connection.
        drop(client);
        // Order preserved: seed s must reproduce its own direct query.
        let mut check = Client::connect(handle.addr()).unwrap();
        for (seed, theta) in thetas.iter().enumerate() {
            let Response::Ok(reply) = check.query_text("river water", seed as u64, 1).unwrap()
            else {
                panic!("expected ok")
            };
            assert_eq!(
                reply.theta.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                theta.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "response for seed {seed} out of order"
            );
        }
        assert_eq!(handle.latency().count, 16);
        handle.shutdown();
    }

    #[test]
    fn hot_swap_changes_the_epoch_without_dropping_the_connection() {
        let model = trained();
        let handle = Server::bind("127.0.0.1:0", model, ServerConfig::default()).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        let Response::Ok(before) = client.query_text("river", 1, 1).unwrap() else {
            panic!("expected ok")
        };
        assert_eq!(before.model_epoch, 0);
        handle.swap_model(trained());
        assert_eq!(handle.model_epoch(), 1);
        let Response::Ok(after) = client.query_text("river", 1, 1).unwrap() else {
            panic!("expected ok")
        };
        assert_eq!(after.model_epoch, 1, "same connection must see the promoted model");
        handle.shutdown();
    }

    #[test]
    fn malformed_bytes_do_not_wedge_the_server() {
        let model = trained();
        let handle = Server::bind("127.0.0.1:0", model, ServerConfig::default()).unwrap();
        // A frame whose payload is garbage gets an error response.
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.write_all(&3u32.to_le_bytes()).unwrap();
        stream.write_all(&[0xFF, 0xFE, 0xFD]).unwrap();
        let mut fb = FrameBuffer::new(64);
        let resp = loop {
            if let Some(range) = fb.take_frame().unwrap() {
                break decode_response(fb.payload(range)).unwrap();
            }
            assert!(fb.fill_from(&mut stream).unwrap() > 0, "server closed early");
        };
        assert!(matches!(resp, Response::Error(_)));
        drop(stream);
        // And a fresh client still gets served.
        let mut client = Client::connect(handle.addr()).unwrap();
        assert!(matches!(client.query_text("river", 1, 1).unwrap(), Response::Ok(_)));
        handle.shutdown();
    }

    #[test]
    fn latency_histogram_buckets_are_monotone() {
        let h = LatencyHistogram::new();
        for us in [0u64, 1, 5, 7, 8, 9, 100, 1_000, 65_537, u32::MAX as u64] {
            let idx = LatencyHistogram::bucket_of(us);
            assert!(idx < NUM_BUCKETS, "{us}µs -> bucket {idx}");
            assert!(LatencyHistogram::bucket_upper(idx) >= us, "upper edge below sample for {us}");
            h.record_us(us);
        }
        let stats = h.stats();
        assert_eq!(stats.count, 10);
        assert!(stats.p50_us <= stats.p99_us);
        assert!(stats.p99_us <= stats.max_us, "{stats:?}");
        assert_eq!(stats.max_us, u32::MAX as u64);
        // Percentiles are clamped to the exact maximum: a bucket shared by
        // the top-rank sample and the true max must not report p99 > max.
        let h = LatencyHistogram::new();
        h.record_us(9);
        h.record_us(9);
        let stats = h.stats();
        assert_eq!(stats.max_us, 9);
        assert_eq!(stats.p99_us, 9, "upper edge must clamp to the observed max");
        // Exact small buckets: a 5µs sample reports exactly 5µs at p-low.
        let h = LatencyHistogram::new();
        h.record_us(5);
        assert_eq!(h.stats().p50_us, 5);
    }
}
