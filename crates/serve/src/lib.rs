//! Online inference and serving for trained WarpLDA models.
//!
//! Training (the rest of the workspace) answers "what topics exist in this
//! corpus?". This crate closes the loop to the production question: **"what
//! topics is this *unseen* document about?"** — the core query of every
//! deployed LDA system. It separates the read path from the write/train path
//! the way a serving system must:
//!
//! * [`model`] — [`TopicModel`]: a **frozen**, read-optimized artifact. A
//!   trained sampler's counts are converted once into smoothed word–topic
//!   distributions φ plus one pre-built [`SparseAliasTable`] per word, so
//!   query-time sampling reuses the paper's O(1) MH machinery with zero
//!   rebuild cost. Models persist as `WLDAMODL` framed sections of the
//!   workspace's binary codec (magic, version, checksum).
//! * [`infer`] — [`InferenceEngine`]: **fold-in** inference. A few MH sweeps
//!   alternate word-proposals (from the frozen alias tables) and
//!   doc-proposals (random positioning over the partial θ_d) over the unseen
//!   document, exactly the proposal/acceptance structure of WarpLDA training
//!   but with φ held fixed. Per-request scratch comes from a reusable
//!   [`InferScratch`], so steady-state inference is allocation-free, and each
//!   request derives its own RNG stream from its seed — results are
//!   bit-identical for a fixed request seed regardless of how many server
//!   workers run.
//! * [`server`] — [`Server`]: an event-loop TCP query server. One
//!   readiness-loop thread (a vendored `poll(2)` shim) owns the listener and
//!   every connection and dispatches only ready, complete frames to a fixed
//!   worker pool — thousands of idle keep-alive connections cost zero
//!   workers. Admission control sheds typed overload errors past a bounded
//!   queue, per-request deadlines bound stale work, partial writes keep slow
//!   readers from blocking anything, the live model is an atomically
//!   hot-swappable `Arc` (promote a freshly trained checkpoint without
//!   dropping a request), and per-server latency percentiles (p50/p95/p99)
//!   accumulate in a lock-free log-scale histogram.
//! * [`wire`] — the length-prefixed binary wire protocol shared by server
//!   and client.
//! * [`holdout`] — fold-in **held-out perplexity**: freeze the current
//!   training state, infer θ for held-out documents, score per-token
//!   perplexity. Plugs into the [`Trainer`](warplda_core::Trainer)'s opt-in
//!   held-out metric.
//!
//! [`SparseAliasTable`]: warplda_sampling::SparseAliasTable

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod holdout;
pub mod infer;
pub mod model;
pub mod server;
pub mod wire;

pub use holdout::{fold_in_perplexity, held_out_eval_fn, HeldOutSet};
pub use infer::{InferConfig, InferScratch, InferenceEngine, InferenceResult};
pub use model::{ModelHandle, TopicModel};
pub use server::{Client, LatencyStats, ServeCounters, Server, ServerConfig, ServerHandle};
pub use wire::{Request, Response};
