//! The frozen, read-optimized serving model.
//!
//! Training state is write-optimized: counts live in per-row hash tables that
//! samplers mutate millions of times a second. A serving model is the
//! opposite — it is read by many threads, mutated never — so
//! [`TopicModel::freeze`] converts the counts **once** into:
//!
//! * a CSR-style word→(topic, count) layout, sorted by topic within each
//!   word, so `C_wk` lookups are a binary search over a contiguous slice;
//! * one pre-built [`SparseAliasTable`] per word over the non-zero counts, so
//!   the word-proposal `q_word(k) ∝ C_wk + β` of the paper's MH machinery
//!   samples in O(1) at query time with **zero rebuild cost** (training has
//!   to rebuild these tables every iteration; serving never does);
//! * the dense global topic vector `c_k` and the smoothing constants.
//!
//! Models persist as [`MODEL_MAGIC`] (`WLDAMODL`) framed sections of the
//! workspace codec — same container discipline as checkpoints (version,
//! length, FNV-1a checksum), different magic, so a checkpoint can never be
//! misread as a model. Alias tables are derived data and are rebuilt
//! deterministically at load time rather than persisted.

use std::fs::File;
use std::io::{BufReader, Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, RwLock};

use warplda_corpus::io::codec::{
    read_framed_section, write_framed_section, CodecError, CodecResult, Decoder, Encoder,
    MODEL_MAGIC,
};
use warplda_corpus::{Corpus, DocMajorView, Vocabulary, WordMajorView};

use rand::rngs::SmallRng;
use rand::Rng;

use warplda_core::checkpoint::{read_model_params, write_model_params};
use warplda_core::counts::TopicCounts;
use warplda_core::{ModelParams, Sampler, SamplerState};
use warplda_sampling::{Dice, SparseAliasTable};

/// Payload tag distinguishing model payloads from any future section kinds.
const MODEL_KIND: &str = "topic-model";

/// An immutable, read-optimized topic model frozen from a trained sampler.
#[derive(Debug)]
pub struct TopicModel {
    params: ModelParams,
    /// Total training tokens (`Σ_k c_k`); the mass behind the φ estimates.
    num_train_tokens: u64,
    /// Global topic counts `c_k`.
    topic_counts: Vec<u32>,
    /// `word_offsets[w]..word_offsets[w+1]` indexes the pair arrays.
    word_offsets: Vec<u32>,
    /// Topics with non-zero count, sorted ascending within each word.
    pair_topics: Vec<u32>,
    /// Counts parallel to `pair_topics`.
    pair_counts: Vec<u32>,
    /// Term frequency `L_w` of each word (sum of its pair counts).
    word_totals: Vec<u32>,
    /// Pre-built word-proposal alias table per word (`None` for words the
    /// training corpus never contained — their proposal is pure smoothing).
    alias: Vec<Option<SparseAliasTable>>,
    /// `β̄ = V·β`, cached.
    beta_bar: f64,
    /// The frozen vocabulary, when the model serves raw-text queries.
    vocab: Option<Vocabulary>,
}

impl TopicModel {
    /// Freezes a trained [`SamplerState`] (counts included) into a serving
    /// model. `vocab` enables raw-text queries; pass the training corpus
    /// vocabulary (or the one embedded in a checkpoint).
    ///
    /// # Panics
    /// Panics if `vocab` is supplied but its size differs from the state's
    /// word count — that is a model/vocabulary mix-up, not a runtime input.
    pub fn freeze(state: &SamplerState, vocab: Option<&Vocabulary>) -> Self {
        let params = *state.params();
        let num_words = state.num_words();
        if let Some(v) = vocab {
            assert_eq!(v.len(), num_words, "vocabulary size does not match the model's word count");
        }
        let mut word_offsets = Vec::with_capacity(num_words + 1);
        let mut pair_topics = Vec::new();
        let mut pair_counts = Vec::new();
        word_offsets.push(0u32);
        for w in 0..num_words {
            let mut pairs = state.word_counts(w as u32).to_pairs();
            pairs.sort_unstable_by_key(|&(t, _)| t);
            for (t, c) in pairs {
                pair_topics.push(t);
                pair_counts.push(c);
            }
            word_offsets.push(pair_topics.len() as u32);
        }
        Self::from_parts(
            params,
            state.topic_counts().to_vec(),
            word_offsets,
            pair_topics,
            pair_counts,
            vocab.cloned(),
        )
        .expect("a consistent SamplerState freezes cleanly")
    }

    /// Freezes the current state of any live [`Sampler`] trained on `corpus`
    /// (snapshots assignments, recounts, embeds the corpus vocabulary). Also
    /// the path for v2 checkpoints: load the checkpoint into a sampler over
    /// its corpus, then freeze the sampler.
    pub fn freeze_sampler(sampler: &dyn Sampler, corpus: &Corpus) -> Self {
        let doc_view = DocMajorView::build(corpus);
        let word_view = WordMajorView::build(corpus, &doc_view);
        let state = sampler.snapshot_state(corpus, &doc_view, &word_view);
        Self::freeze(&state, Some(corpus.vocab()))
    }

    /// Assembles (and fully validates) a model from its raw columns — the
    /// shared back end of [`freeze`](Self::freeze) and the codec reader.
    fn from_parts(
        params: ModelParams,
        topic_counts: Vec<u32>,
        word_offsets: Vec<u32>,
        pair_topics: Vec<u32>,
        pair_counts: Vec<u32>,
        vocab: Option<Vocabulary>,
    ) -> CodecResult<Self> {
        let k = params.num_topics;
        if topic_counts.len() != k {
            return Err(CodecError::Corrupt(format!(
                "model has {} topic counts but K = {k}",
                topic_counts.len()
            )));
        }
        if word_offsets.first() != Some(&0) || word_offsets.is_empty() {
            return Err(CodecError::Corrupt("word offsets must start at 0".into()));
        }
        if pair_topics.len() != pair_counts.len()
            || word_offsets.last().copied().unwrap_or(0) as usize != pair_topics.len()
        {
            return Err(CodecError::Corrupt(format!(
                "pair arrays ({} topics, {} counts) do not match the final offset {:?}",
                pair_topics.len(),
                pair_counts.len(),
                word_offsets.last()
            )));
        }
        let num_words = word_offsets.len() - 1;
        if let Some(v) = &vocab {
            if v.len() != num_words {
                return Err(CodecError::Corrupt(format!(
                    "embedded vocabulary has {} words but the model has {num_words}",
                    v.len()
                )));
            }
        }
        let mut from_pairs = vec![0u64; k];
        let mut word_totals = vec![0u32; num_words];
        let mut alias = Vec::with_capacity(num_words);
        let mut entries: Vec<(u32, f64)> = Vec::new();
        for w in 0..num_words {
            let (start, end) = (word_offsets[w] as usize, word_offsets[w + 1] as usize);
            if start > end {
                return Err(CodecError::Corrupt(format!("word {w}: offsets not monotonic")));
            }
            let mut total = 0u64;
            entries.clear();
            for i in start..end {
                let (t, c) = (pair_topics[i], pair_counts[i]);
                if t as usize >= k {
                    return Err(CodecError::Corrupt(format!(
                        "word {w}: topic {t} out of range (K = {k})"
                    )));
                }
                if i > start && pair_topics[i - 1] >= t {
                    return Err(CodecError::Corrupt(format!(
                        "word {w}: topics not strictly ascending"
                    )));
                }
                if c == 0 {
                    return Err(CodecError::Corrupt(format!(
                        "word {w}: zero count for topic {t} (frozen models store only non-zeros)"
                    )));
                }
                from_pairs[t as usize] += c as u64;
                total += c as u64;
                entries.push((t, c as f64));
            }
            word_totals[w] = u32::try_from(total).map_err(|_| {
                CodecError::Corrupt(format!("word {w}: term frequency overflows u32"))
            })?;
            alias.push((!entries.is_empty()).then(|| SparseAliasTable::new(&entries)));
        }
        for (t, (&have, &want)) in from_pairs.iter().zip(&topic_counts).enumerate() {
            if have != want as u64 {
                return Err(CodecError::Corrupt(format!(
                    "topic {t}: word counts sum to {have} but c_k says {want}"
                )));
            }
        }
        let num_train_tokens = topic_counts.iter().map(|&c| c as u64).sum();
        let beta_bar = params.beta_bar(num_words);
        Ok(Self {
            params,
            num_train_tokens,
            topic_counts,
            word_offsets,
            pair_topics,
            pair_counts,
            word_totals,
            alias,
            beta_bar,
            vocab,
        })
    }

    /// Model hyper-parameters.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// Number of topics `K`.
    pub fn num_topics(&self) -> usize {
        self.params.num_topics
    }

    /// Vocabulary size `V`.
    pub fn num_words(&self) -> usize {
        self.word_totals.len()
    }

    /// Total training tokens behind the frozen counts.
    pub fn num_train_tokens(&self) -> u64 {
        self.num_train_tokens
    }

    /// The frozen vocabulary, when one was embedded.
    pub fn vocab(&self) -> Option<&Vocabulary> {
        self.vocab.as_ref()
    }

    /// Global topic counts `c_k`.
    pub fn topic_counts(&self) -> &[u32] {
        &self.topic_counts
    }

    /// `β̄ = V·β`.
    pub fn beta_bar(&self) -> f64 {
        self.beta_bar
    }

    /// Term frequency `L_w` of `word` in the training corpus.
    pub fn word_total(&self, word: u32) -> u32 {
        self.word_totals[word as usize]
    }

    /// Frozen count `C_wk` (binary search over the word's sorted topics).
    #[inline]
    pub fn word_topic_count(&self, word: u32, topic: u32) -> u32 {
        let range = self.word_offsets[word as usize] as usize
            ..self.word_offsets[word as usize + 1] as usize;
        let topics = &self.pair_topics[range.clone()];
        match topics.binary_search(&topic) {
            Ok(i) => self.pair_counts[range.start + i],
            Err(_) => 0,
        }
    }

    /// Smoothed topic–word probability `φ_wk = (C_wk + β) / (c_k + β̄)`.
    #[inline]
    pub fn phi(&self, word: u32, topic: usize) -> f64 {
        (self.word_topic_count(word, topic as u32) as f64 + self.params.beta)
            / (self.topic_counts[topic] as f64 + self.beta_bar)
    }

    /// Draws from the word proposal `q_word(k) ∝ C_wk + β` in O(1): the
    /// paper's mixture of the pre-built count alias table (mass `L_w`) and
    /// the uniform smoothing part (mass `K·β`).
    #[inline]
    pub fn sample_word_proposal(&self, word: u32, rng: &mut SmallRng) -> u32 {
        let k = self.params.num_topics;
        let count_mass = self.word_totals[word as usize] as f64;
        let p_count = count_mass / (count_mass + k as f64 * self.params.beta);
        match &self.alias[word as usize] {
            Some(table) if rng.gen::<f64>() < p_count => table.sample(rng),
            _ => rng.dice(k) as u32,
        }
    }

    /// Log likelihood `Σ_i ln p(w_i | θ, φ)` of one document under this
    /// frozen model — the serving-side fast path of
    /// [`warplda_core::eval::fold_in_token_log_likelihood`] (which stays the
    /// model-agnostic reference). Instead of an O(K) scan with a binary
    /// search per (token, topic), each token walks only its word's non-zero
    /// CSR slice:
    ///
    /// ```text
    /// p(w) = β · Σ_k θ_k / (c_k + β̄)   (per-document, computed once)
    ///      + Σ_{(k, C_wk) ∈ pairs(w)} θ_k · C_wk / (c_k + β̄)
    /// ```
    ///
    /// Agrees with the reference up to floating-point summation order.
    pub fn fold_in_doc_log_likelihood(&self, theta: &[f64], words: &[u32]) -> f64 {
        assert_eq!(theta.len(), self.params.num_topics, "θ must have one weight per topic");
        let smooth: f64 = self.params.beta
            * theta
                .iter()
                .zip(&self.topic_counts)
                .map(|(&t, &c)| t / (c as f64 + self.beta_bar))
                .sum::<f64>();
        let mut ll = 0.0;
        for &w in words {
            let range =
                self.word_offsets[w as usize] as usize..self.word_offsets[w as usize + 1] as usize;
            let mut p = smooth;
            for i in range {
                let k = self.pair_topics[i] as usize;
                p += theta[k] * self.pair_counts[i] as f64
                    / (self.topic_counts[k] as f64 + self.beta_bar);
            }
            // Clamped like the reference: β-smoothing makes p positive, but
            // one rounding underflow must not poison the evaluation.
            ll += p.max(f64::MIN_POSITIVE).ln();
        }
        ll
    }

    /// The `top_n` highest-count words per topic as `(word, count)` pairs —
    /// the qualitative view of the frozen model, no training state needed.
    pub fn top_words(&self, top_n: usize) -> Vec<Vec<(u32, u32)>> {
        let mut per_topic: Vec<Vec<(u32, u32)>> = vec![Vec::new(); self.params.num_topics];
        for w in 0..self.num_words() {
            let range = self.word_offsets[w] as usize..self.word_offsets[w + 1] as usize;
            for i in range {
                per_topic[self.pair_topics[i] as usize].push((w as u32, self.pair_counts[i]));
            }
        }
        for list in &mut per_topic {
            list.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            list.truncate(top_n);
        }
        per_topic
    }

    /// Serializes the model as one `WLDAMODL` framed section.
    pub fn write(&self, w: &mut dyn Write) -> CodecResult<()> {
        let mut payload = Vec::new();
        {
            let mut enc = Encoder::new(&mut payload);
            enc.write_str(MODEL_KIND)?;
            write_model_params(&mut enc, &self.params)?;
            enc.write_u32_slice(&self.topic_counts)?;
            enc.write_u32_slice(&self.word_offsets)?;
            enc.write_u32_slice(&self.pair_topics)?;
            enc.write_u32_slice(&self.pair_counts)?;
            match &self.vocab {
                Some(v) => {
                    enc.write_bool(true)?;
                    warplda_corpus::io::codec::write_vocab(&mut enc, v)?;
                }
                None => enc.write_bool(false)?,
            }
        }
        write_framed_section(w, MODEL_MAGIC, &payload)
    }

    /// Reads a model written by [`write`](Self::write), rejecting anything
    /// structurally inconsistent (wrong magic, bad checksum, count columns
    /// that do not sum to `c_k`, …) with a typed [`CodecError`]. Alias
    /// tables are rebuilt deterministically from the counts.
    pub fn read(r: &mut dyn Read) -> CodecResult<Self> {
        let payload = read_framed_section(r, MODEL_MAGIC)?;
        let mut cursor = payload.as_slice();
        let mut dec = Decoder::new(&mut cursor);
        let kind = dec.read_string()?;
        if kind != MODEL_KIND {
            return Err(CodecError::Corrupt(format!(
                "expected a {MODEL_KIND:?} payload, found {kind:?}"
            )));
        }
        let params = read_model_params(&mut dec)?;
        let topic_counts = dec.read_u32_vec()?;
        let word_offsets = dec.read_u32_vec()?;
        let pair_topics = dec.read_u32_vec()?;
        let pair_counts = dec.read_u32_vec()?;
        let vocab = if dec.read_bool()? {
            Some(warplda_corpus::io::codec::read_vocab(&mut dec)?)
        } else {
            None
        };
        Self::from_parts(params, topic_counts, word_offsets, pair_topics, pair_counts, vocab)
    }

    /// Saves the model to `path`, creating parent directories as needed. The
    /// write is crash-safe ([`warplda_corpus::io::atomic_write`]): a crash
    /// mid-save leaves any previous model at `path` intact and serve nodes
    /// can never load a torn artifact.
    pub fn save(&self, path: &Path) -> CodecResult<()> {
        warplda_corpus::io::atomic_write(path, |w| self.write(w))
    }

    /// Loads a model saved by [`save`](Self::save).
    pub fn load(path: &Path) -> CodecResult<Self> {
        let mut r = BufReader::new(File::open(path)?);
        Self::read(&mut r)
    }
}

/// The hot-swappable slot a server reads its live model from.
///
/// Readers take the read lock only long enough to clone the `Arc` (no
/// allocation, no contention with other readers), so in-flight requests keep
/// the model they started with while [`swap`](Self::swap) promotes a new one
/// — a freshly trained checkpoint goes live without dropping a request.
#[derive(Debug)]
pub struct ModelHandle {
    slot: RwLock<Arc<TopicModel>>,
    /// Bumped on every swap; responses echo it so clients can observe
    /// promotions.
    epoch: AtomicU32,
}

impl ModelHandle {
    /// Creates a handle serving `model` at epoch 0.
    pub fn new(model: Arc<TopicModel>) -> Self {
        Self { slot: RwLock::new(model), epoch: AtomicU32::new(0) }
    }

    /// The live model and the epoch it was promoted at.
    pub fn current(&self) -> (Arc<TopicModel>, u32) {
        let guard = self.slot.read().expect("model slot poisoned");
        // The epoch is read under the same lock the slot is, so a response
        // never pairs an old model with a new epoch.
        (Arc::clone(&guard), self.epoch.load(Ordering::Acquire))
    }

    /// Number of swaps performed so far.
    pub fn epoch(&self) -> u32 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Atomically promotes `model`, returning the one it replaced.
    pub fn swap(&self, model: Arc<TopicModel>) -> Arc<TopicModel> {
        let mut guard = self.slot.write().expect("model slot poisoned");
        let old = std::mem::replace(&mut *guard, model);
        self.epoch.fetch_add(1, Ordering::AcqRel);
        old
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warplda_core::{WarpLda, WarpLdaConfig};
    use warplda_corpus::CorpusBuilder;

    fn trained_model() -> (Corpus, TopicModel) {
        let mut b = CorpusBuilder::new();
        for _ in 0..20 {
            b.push_text_doc(["river", "lake", "water", "fish"]);
            b.push_text_doc(["desert", "sand", "dune", "heat"]);
        }
        let corpus = b.build().unwrap();
        let mut sampler =
            WarpLda::new(&corpus, ModelParams::new(2, 0.5, 0.1), WarpLdaConfig::default(), 7);
        for _ in 0..30 {
            sampler.run_iteration();
        }
        let model = TopicModel::freeze_sampler(&sampler, &corpus);
        (corpus, model)
    }

    #[test]
    fn freeze_preserves_counts_and_phi_normalizes() {
        let (corpus, model) = trained_model();
        assert_eq!(model.num_words(), corpus.vocab_size());
        assert_eq!(model.num_train_tokens(), corpus.num_tokens());
        // Each φ_·k is a probability distribution over the vocabulary.
        for k in 0..model.num_topics() {
            let total: f64 = (0..model.num_words()).map(|w| model.phi(w as u32, k)).sum();
            assert!((total - 1.0).abs() < 1e-9, "topic {k} sums to {total}");
        }
        // Per-word totals are the term frequencies.
        let tf = corpus.term_frequencies();
        for (w, &f) in tf.iter().enumerate() {
            assert_eq!(model.word_total(w as u32) as u64, f, "word {w}");
        }
    }

    #[test]
    fn word_proposal_matches_the_smoothed_distribution() {
        let (_, model) = trained_model();
        let w = 0u32;
        let mut rng = warplda_sampling::new_rng(3);
        let mut hist = vec![0u64; model.num_topics()];
        let draws = 200_000;
        for _ in 0..draws {
            hist[model.sample_word_proposal(w, &mut rng) as usize] += 1;
        }
        let k = model.num_topics() as f64;
        let total_mass = model.word_total(w) as f64 + k * model.params().beta;
        for (t, &h) in hist.iter().enumerate() {
            let expect =
                (model.word_topic_count(w, t as u32) as f64 + model.params().beta) / total_mass;
            let got = h as f64 / draws as f64;
            assert!((got - expect).abs() < 0.01, "topic {t}: {got} vs {expect}");
        }
    }

    #[test]
    fn save_load_round_trips_bit_exactly() {
        let (_, model) = trained_model();
        let mut buf = Vec::new();
        model.write(&mut buf).unwrap();
        let back = TopicModel::read(&mut buf.as_slice()).unwrap();
        assert_eq!(back.topic_counts, model.topic_counts);
        assert_eq!(back.word_offsets, model.word_offsets);
        assert_eq!(back.pair_topics, model.pair_topics);
        assert_eq!(back.pair_counts, model.pair_counts);
        assert_eq!(back.word_totals, model.word_totals);
        assert_eq!(back.num_train_tokens, model.num_train_tokens);
        assert_eq!(back.vocab.as_ref().map(|v| v.len()), model.vocab.as_ref().map(|v| v.len()));
        // The rebuilt alias tables draw the same stream as the originals.
        let mut a = warplda_sampling::new_rng(11);
        let mut b = warplda_sampling::new_rng(11);
        for _ in 0..2_000 {
            assert_eq!(model.sample_word_proposal(0, &mut a), back.sample_word_proposal(0, &mut b));
        }
    }

    #[test]
    fn corrupted_models_are_rejected() {
        let (_, model) = trained_model();
        let mut good = Vec::new();
        model.write(&mut good).unwrap();
        // Checksum: flip one payload byte.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert!(matches!(
            TopicModel::read(&mut bad.as_slice()),
            Err(CodecError::ChecksumMismatch { .. })
        ));
        // Magic: a checkpoint-magic file is not a model.
        let mut bad = good.clone();
        bad[..8].copy_from_slice(b"WLDACKPT");
        assert!(matches!(TopicModel::read(&mut bad.as_slice()), Err(CodecError::BadMagic)));
        // Truncation.
        let mut bad = good.clone();
        bad.truncate(bad.len() - 6);
        assert!(matches!(TopicModel::read(&mut bad.as_slice()), Err(CodecError::Io(_))));
    }

    #[test]
    fn inconsistent_columns_are_rejected() {
        let (_, model) = trained_model();
        // c_k no longer matches the per-word counts.
        let mut counts = model.topic_counts.clone();
        counts[0] += 1;
        let err = TopicModel::from_parts(
            model.params,
            counts,
            model.word_offsets.clone(),
            model.pair_topics.clone(),
            model.pair_counts.clone(),
            None,
        )
        .unwrap_err();
        assert!(matches!(err, CodecError::Corrupt(_)), "{err}");
        // Unsorted topics within a word (hand-built: word 0 lists topic 1
        // before topic 0; the per-topic sums are kept consistent so only the
        // ordering check can catch it).
        let err = TopicModel::from_parts(
            ModelParams::new(2, 0.5, 0.1),
            vec![3, 2],
            vec![0, 2, 3],
            vec![1, 0, 0],
            vec![2, 1, 2],
            None,
        )
        .unwrap_err();
        assert!(matches!(err, CodecError::Corrupt(_)), "{err}");
        // Zero-count pairs are rejected too.
        let err = TopicModel::from_parts(
            ModelParams::new(2, 0.5, 0.1),
            vec![1, 0],
            vec![0, 2],
            vec![0, 1],
            vec![1, 0],
            None,
        )
        .unwrap_err();
        assert!(matches!(err, CodecError::Corrupt(_)), "{err}");
    }

    #[test]
    fn handle_swaps_atomically_and_bumps_the_epoch() {
        let (_, model) = trained_model();
        let handle = ModelHandle::new(Arc::new(model));
        let (m0, e0) = handle.current();
        assert_eq!(e0, 0);
        let (_, second) = trained_model();
        let old = handle.swap(Arc::new(second));
        assert!(Arc::ptr_eq(&m0, &old));
        let (m1, e1) = handle.current();
        assert_eq!(e1, 1);
        assert!(!Arc::ptr_eq(&m0, &m1));
    }
}
