//! Fold-in held-out perplexity.
//!
//! The training likelihood (`warplda_core::eval`) scores the documents the
//! model was fit on; it cannot see overfitting. The held-out metric here is
//! the serving-side complement: freeze the model, estimate θ for documents
//! the sampler never saw (through the [`InferenceEngine`], i.e. the exact
//! code path production queries take), and score
//! `exp(−Σ ln p(w | θ, φ) / T_heldout)` — per-token perplexity on unseen
//! data.
//!
//! [`held_out_eval_fn`] packages the whole procedure as a
//! [`Trainer`](warplda_core::Trainer) evaluation closure, so training runs
//! can report held-out perplexity next to the joint likelihood (opt-in via
//! [`Trainer::with_held_out_fn`](warplda_core::Trainer::with_held_out_fn)).

use std::sync::Arc;

use warplda_core::eval::perplexity_per_token;
use warplda_core::trainer::{EvalFn, EvalInput};
use warplda_core::SamplerState;
use warplda_corpus::Corpus;

use crate::infer::{InferConfig, InferenceEngine};
use crate::model::TopicModel;

/// A held-out document set: token ids under the *training* vocabulary.
#[derive(Debug, Clone)]
pub struct HeldOutSet {
    docs: Vec<Vec<u32>>,
    num_tokens: u64,
}

impl HeldOutSet {
    /// Builds the set from a corpus. The corpus must share the training
    /// vocabulary (build it with
    /// [`CorpusBuilder::with_vocab`](warplda_corpus::CorpusBuilder::with_vocab),
    /// which also makes genuinely unseen words impossible to smuggle in) —
    /// ids outside the model vocabulary panic at inference time.
    pub fn from_corpus(corpus: &Corpus) -> Self {
        Self::from_docs(corpus.docs().iter().map(|d| d.tokens().to_vec()).collect())
    }

    /// Builds the set from raw token-id documents.
    pub fn from_docs(docs: Vec<Vec<u32>>) -> Self {
        let num_tokens = docs.iter().map(|d| d.len() as u64).sum();
        Self { docs, num_tokens }
    }

    /// Number of held-out documents.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// Total held-out tokens.
    pub fn num_tokens(&self) -> u64 {
        self.num_tokens
    }

    /// The documents.
    pub fn docs(&self) -> &[Vec<u32>] {
        &self.docs
    }
}

/// Fold-in held-out perplexity of `model` on `set`: θ is estimated per
/// document by the inference engine (document `i` on stream
/// `split_seed(seed, i)`, so the value is deterministic and thread-count
/// independent), then every held-out token is scored against `θ·φ`.
///
/// Returns `None` for an empty set (perplexity is undefined without tokens).
/// Lower is better; a model that learned nothing scores near the vocabulary
/// size.
pub fn fold_in_perplexity(
    model: &TopicModel,
    config: InferConfig,
    set: &HeldOutSet,
    seed: u64,
    num_threads: usize,
) -> Option<f64> {
    if set.num_tokens == 0 {
        return None;
    }
    let engine = InferenceEngine::new(model, config);
    let thetas = engine.infer_batch(&set.docs, seed, num_threads);
    let mut ll = 0.0;
    for (doc, theta) in set.docs.iter().zip(&thetas) {
        // The CSR fast path (O(nnz_w) per token); the model-agnostic
        // reference scorer lives in warplda_core::eval.
        ll += model.fold_in_doc_log_likelihood(theta, doc);
    }
    perplexity_per_token(ll, set.num_tokens)
}

/// Packages [`fold_in_perplexity`] as a [`Trainer`](warplda_core::Trainer)
/// evaluation closure: at each evaluation point the current assignment
/// snapshot is recounted into a [`SamplerState`], frozen into a
/// [`TopicModel`], and scored on `set`. Runs on the trainer's overlapped
/// background worker like any other metric.
pub fn held_out_eval_fn(set: Arc<HeldOutSet>, config: InferConfig, seed: u64) -> EvalFn {
    Box::new(move |input: EvalInput<'_>| {
        let state = SamplerState::from_assignments_with_views(
            input.doc_view,
            input.word_view,
            input.params,
            input.assignments.to_vec(),
        );
        let model = TopicModel::freeze(&state, None);
        fold_in_perplexity(&model, config, &set, seed, 1).unwrap_or(f64::NAN)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use warplda_core::eval::fold_in_token_log_likelihood;
    use warplda_core::{ModelParams, Sampler, Trainer, TrainerConfig, WarpLda, WarpLdaConfig};
    use warplda_corpus::CorpusBuilder;

    /// Training corpus with two planted themes plus held-out docs drawn from
    /// the same themes, sharing one vocabulary.
    fn split_corpora() -> (Corpus, Corpus) {
        let mut b = CorpusBuilder::new();
        for _ in 0..40 {
            b.push_text_doc(["river", "lake", "water", "fish", "boat", "river"]);
            b.push_text_doc(["desert", "sand", "dune", "cactus", "heat", "desert"]);
        }
        let train = b.build().unwrap();
        let mut h = CorpusBuilder::with_vocab(train.vocab().clone());
        for _ in 0..10 {
            h.push_text_doc(["water", "fish", "river", "lake"]);
            h.push_text_doc(["heat", "dune", "sand", "desert"]);
        }
        let held = h.build().unwrap();
        (train, held)
    }

    #[test]
    fn training_lowers_held_out_perplexity() {
        let (train, held) = split_corpora();
        let set = HeldOutSet::from_corpus(&held);
        assert_eq!(set.num_docs(), 20);
        let params = ModelParams::new(2, 0.5, 0.1);
        let mut sampler = WarpLda::new(&train, params, WarpLdaConfig::with_mh_steps(4), 7);
        let untrained = TopicModel::freeze_sampler(&sampler, &train);
        for _ in 0..60 {
            sampler.run_iteration();
        }
        let trained = TopicModel::freeze_sampler(&sampler, &train);
        let cfg = InferConfig::default();
        let ppl_untrained = fold_in_perplexity(&untrained, cfg, &set, 1, 1).unwrap();
        let ppl_trained = fold_in_perplexity(&trained, cfg, &set, 1, 1).unwrap();
        assert!(
            ppl_trained < ppl_untrained * 0.8,
            "training should cut held-out perplexity: {ppl_untrained} -> {ppl_trained}"
        );
        // A themed model on a 12-word vocabulary concentrates each doc on
        // ~6 words; perplexity must be far below the vocabulary size.
        assert!(ppl_trained < 12.0, "{ppl_trained}");
        // Deterministic and thread-count independent.
        let a = fold_in_perplexity(&trained, cfg, &set, 9, 1).unwrap();
        let b = fold_in_perplexity(&trained, cfg, &set, 9, 3).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn fast_path_matches_the_reference_scorer() {
        let (train, held) = split_corpora();
        let mut sampler =
            WarpLda::new(&train, ModelParams::new(2, 0.5, 0.1), WarpLdaConfig::default(), 3);
        for _ in 0..20 {
            sampler.run_iteration();
        }
        let model = TopicModel::freeze_sampler(&sampler, &train);
        let engine = InferenceEngine::new(&model, InferConfig::with_sweeps(8));
        for (i, doc) in held.docs().iter().enumerate() {
            let theta = engine.infer(doc.tokens(), i as u64).theta;
            let fast = model.fold_in_doc_log_likelihood(&theta, doc.tokens());
            let reference =
                fold_in_token_log_likelihood(&theta, doc.tokens(), |w, k| model.phi(w, k));
            assert!(
                (fast - reference).abs() <= 1e-9 * reference.abs(),
                "doc {i}: fast {fast} vs reference {reference}"
            );
        }
    }

    #[test]
    fn empty_set_has_no_perplexity() {
        let (train, _) = split_corpora();
        let sampler =
            WarpLda::new(&train, ModelParams::new(2, 0.5, 0.1), WarpLdaConfig::default(), 1);
        let model = TopicModel::freeze_sampler(&sampler, &train);
        let set = HeldOutSet::from_docs(Vec::new());
        assert!(fold_in_perplexity(&model, InferConfig::default(), &set, 1, 1).is_none());
    }

    #[test]
    fn trainer_reports_the_metric_through_iteration_log() {
        let (train, held) = split_corpora();
        let set = Arc::new(HeldOutSet::from_corpus(&held));
        let trainer = Trainer::new(&train).with_held_out_fn(held_out_eval_fn(
            set,
            InferConfig::with_sweeps(8),
            13,
        ));
        let params = ModelParams::new(2, 0.5, 0.1);
        let mut sampler = WarpLda::new(&train, params, WarpLdaConfig::with_mh_steps(4), 7);
        let log = trainer.train(&TrainerConfig::new(20).eval_every(10), "held-out", &mut sampler);
        let points: Vec<f64> = log.held_out_points().map(|r| r.held_out.unwrap()).collect();
        assert_eq!(points.len(), 2, "iterations 10 and 20");
        for p in &points {
            assert!(p.is_finite() && *p > 1.0, "perplexity {p}");
        }
    }
}
