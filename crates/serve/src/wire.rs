//! The length-prefixed binary wire protocol of the query server.
//!
//! Every message is one **frame**: a little-endian `u32` payload length
//! followed by the payload. Requests and responses are versioned by a leading
//! opcode/status byte, all integers little-endian, `f64` as IEEE-754 bit
//! patterns (θ crosses the wire bit-exactly, which is what makes the
//! end-to-end determinism tests meaningful).
//!
//! Request payload:
//!
//! ```text
//! u8  opcode      1 = text query, 2 = token-id query
//! u64 seed        request RNG stream (same seed ⇒ bit-identical θ)
//! u32 top_n       max top topics to return
//! --- opcode 1: u32 byte length + UTF-8 text
//! --- opcode 2: u32 count + count × u32 word ids
//! ```
//!
//! Response payload:
//!
//! ```text
//! u8 status       0 = ok, 1 = error
//! --- status 1: u32 byte length + UTF-8 message
//! --- status 0:
//! u32 model_epoch     hot-swap generation that served the request
//! u32 tokens_used     query tokens actually folded in
//! u32 oov_dropped     out-of-vocabulary words dropped (Skip policy)
//! u32 k               number of topics
//! k × f64             θ (bit-exact)
//! u32 top_count       then top_count × (u32 topic, f64 weight)
//! ```
//!
//! The server decodes requests and encodes responses against reusable
//! buffers, so a warm worker serves requests without heap allocation; the
//! framing itself (incremental [`FrameBuffer`], length-prefix encoding, the
//! bounds-checked payload cursor) lives in the shared `warplda-net` crate and
//! is re-exported here so existing `serve::wire` paths keep working.

use warplda_net::{begin_frame, end_frame, PayloadReader};

pub use warplda_net::{FrameBuffer, WireError};

/// Frames larger than this are rejected before any allocation happens — a
/// corrupt or hostile length prefix must not OOM the server. This is the
/// shared default bound; see [`warplda_net::DEFAULT_MAX_FRAME_BYTES`].
pub const MAX_FRAME_BYTES: u32 = warplda_net::DEFAULT_MAX_FRAME_BYTES;

/// Opcode of a raw-text query (tokenized server-side against the frozen
/// vocabulary).
pub const OP_QUERY_TEXT: u8 = 1;
/// Opcode of a pre-tokenized query (client already holds word ids).
pub const OP_QUERY_TOKENS: u8 = 2;

/// Response status: success.
pub const STATUS_OK: u8 = 0;
/// Response status: the request was rejected; the payload carries a message.
pub const STATUS_ERROR: u8 = 1;

/// A query request (the owning, client-side form).
#[derive(Debug, Clone)]
pub struct Request {
    /// RNG stream of the request; a fixed seed reproduces θ bit-exactly.
    pub seed: u64,
    /// Maximum number of top topics to return.
    pub top_n: u32,
    /// The query body.
    pub body: RequestBody,
}

/// The two query forms.
#[derive(Debug, Clone)]
pub enum RequestBody {
    /// Raw text, tokenized server-side against the frozen vocabulary.
    Text(String),
    /// Pre-tokenized word ids.
    Tokens(Vec<u32>),
}

/// A decoded response (client side).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The inference succeeded.
    Ok(InferReply),
    /// The server rejected the request.
    Error(String),
}

/// The success payload of a [`Response`].
#[derive(Debug, Clone, PartialEq)]
pub struct InferReply {
    /// Hot-swap generation of the model that served the request.
    pub model_epoch: u32,
    /// Query tokens actually folded in.
    pub tokens_used: u32,
    /// Out-of-vocabulary words dropped under the Skip policy.
    pub oov_dropped: u32,
    /// θ, bit-exact as computed by the server.
    pub theta: Vec<f64>,
    /// Top topics as `(topic, θ_topic)`, best first.
    pub top: Vec<(u32, f64)>,
}

// ---------------------------------------------------------------------------
// Encoding (appends one complete frame to `out`; allocation-free once `out`
// has grown to its high-water mark).
// ---------------------------------------------------------------------------

/// Appends an encoded request frame to `out`.
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    let at = begin_frame(out);
    match &req.body {
        RequestBody::Text(text) => {
            out.push(OP_QUERY_TEXT);
            out.extend_from_slice(&req.seed.to_le_bytes());
            out.extend_from_slice(&req.top_n.to_le_bytes());
            out.extend_from_slice(&(text.len() as u32).to_le_bytes());
            out.extend_from_slice(text.as_bytes());
        }
        RequestBody::Tokens(tokens) => {
            out.push(OP_QUERY_TOKENS);
            out.extend_from_slice(&req.seed.to_le_bytes());
            out.extend_from_slice(&req.top_n.to_le_bytes());
            out.extend_from_slice(&(tokens.len() as u32).to_le_bytes());
            for &t in tokens {
                out.extend_from_slice(&t.to_le_bytes());
            }
        }
    }
    end_frame(out, at);
}

/// Appends a success-response frame to `out`.
pub fn encode_ok_response(
    out: &mut Vec<u8>,
    model_epoch: u32,
    tokens_used: u32,
    oov_dropped: u32,
    theta: &[f64],
    top: &[(u32, f64)],
) {
    let at = begin_frame(out);
    out.push(STATUS_OK);
    out.extend_from_slice(&model_epoch.to_le_bytes());
    out.extend_from_slice(&tokens_used.to_le_bytes());
    out.extend_from_slice(&oov_dropped.to_le_bytes());
    out.extend_from_slice(&(theta.len() as u32).to_le_bytes());
    for &v in theta {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out.extend_from_slice(&(top.len() as u32).to_le_bytes());
    for &(t, w) in top {
        out.extend_from_slice(&t.to_le_bytes());
        out.extend_from_slice(&w.to_bits().to_le_bytes());
    }
    end_frame(out, at);
}

/// Appends an error-response frame to `out`.
pub fn encode_error_response(out: &mut Vec<u8>, message: &str) {
    let at = begin_frame(out);
    out.push(STATUS_ERROR);
    out.extend_from_slice(&(message.len() as u32).to_le_bytes());
    out.extend_from_slice(message.as_bytes());
    end_frame(out, at);
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// The borrowed, server-side view of a request. Token-id queries decode into
/// the caller's reusable buffer so the server's hot path never allocates.
#[derive(Debug)]
pub(crate) struct RequestView<'a> {
    pub seed: u64,
    pub top_n: u32,
    pub body: RequestBodyView<'a>,
}

#[derive(Debug)]
pub(crate) enum RequestBodyView<'a> {
    Text(&'a str),
    /// Tokens were appended to the caller's buffer.
    Tokens,
}

/// Decodes a request payload; token queries are written into `tokens_out`
/// (cleared first).
pub(crate) fn decode_request<'a>(
    payload: &'a [u8],
    tokens_out: &mut Vec<u32>,
) -> Result<RequestView<'a>, WireError> {
    let mut r = PayloadReader::new(payload);
    let opcode = r.u8()?;
    let seed = r.u64()?;
    let top_n = r.u32()?;
    match opcode {
        OP_QUERY_TEXT => {
            let text = r.str_field()?;
            r.finish()?;
            Ok(RequestView { seed, top_n, body: RequestBodyView::Text(text) })
        }
        OP_QUERY_TOKENS => {
            let count = r.u32()? as usize;
            tokens_out.clear();
            for _ in 0..count {
                tokens_out.push(r.u32()?);
            }
            r.finish()?;
            Ok(RequestView { seed, top_n, body: RequestBodyView::Tokens })
        }
        _ => Err(WireError::Malformed("unknown request opcode")),
    }
}

/// Decodes a response payload (client side; allocates the owned vectors).
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut r = PayloadReader::new(payload);
    match r.u8()? {
        STATUS_OK => {
            let model_epoch = r.u32()?;
            let tokens_used = r.u32()?;
            let oov_dropped = r.u32()?;
            let k = r.u32()? as usize;
            let mut theta = Vec::with_capacity(k.min(1 << 16));
            for _ in 0..k {
                theta.push(r.f64()?);
            }
            let top_count = r.u32()? as usize;
            let mut top = Vec::with_capacity(top_count.min(1 << 16));
            for _ in 0..top_count {
                let t = r.u32()?;
                let w = r.f64()?;
                top.push((t, w));
            }
            r.finish()?;
            Ok(Response::Ok(InferReply { model_epoch, tokens_used, oov_dropped, theta, top }))
        }
        STATUS_ERROR => {
            let msg = r.str_field()?.to_owned();
            r.finish()?;
            Ok(Response::Error(msg))
        }
        _ => Err(WireError::Malformed("unknown response status")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_both_bodies() {
        for body in [
            RequestBody::Text("what topics is this about".into()),
            RequestBody::Tokens(vec![3, 1, 4, 1, 5]),
        ] {
            let req = Request { seed: 0xDEAD_BEEF, top_n: 5, body };
            let mut out = Vec::new();
            encode_request(&req, &mut out);
            // Frame length prefix is exact.
            let len = u32::from_le_bytes(out[..4].try_into().unwrap()) as usize;
            assert_eq!(len, out.len() - 4);
            let mut tokens = Vec::new();
            let view = decode_request(&out[4..], &mut tokens).unwrap();
            assert_eq!(view.seed, 0xDEAD_BEEF);
            assert_eq!(view.top_n, 5);
            match (&req.body, &view.body) {
                (RequestBody::Text(t), RequestBodyView::Text(v)) => assert_eq!(t, v),
                (RequestBody::Tokens(t), RequestBodyView::Tokens) => assert_eq!(t, &tokens),
                _ => panic!("body kind changed in flight"),
            }
        }
    }

    #[test]
    fn response_round_trips_bit_exactly() {
        let theta = vec![0.5, 0.25, 0.25f64.sqrt(), f64::MIN_POSITIVE];
        let top = vec![(2u32, 0.25f64.sqrt()), (0, 0.5)];
        let mut out = Vec::new();
        encode_ok_response(&mut out, 7, 11, 2, &theta, &top);
        let resp = decode_response(&out[4..]).unwrap();
        let Response::Ok(reply) = resp else { panic!("expected ok") };
        assert_eq!(reply.model_epoch, 7);
        assert_eq!(reply.tokens_used, 11);
        assert_eq!(reply.oov_dropped, 2);
        assert_eq!(
            reply.theta.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            theta.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(reply.top, top);

        let mut out = Vec::new();
        encode_error_response(&mut out, "unknown word \"qux\"");
        match decode_response(&out[4..]).unwrap() {
            Response::Error(msg) => assert!(msg.contains("qux")),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        let mut tokens = Vec::new();
        assert!(decode_request(&[], &mut tokens).is_err());
        assert!(decode_request(&[99], &mut tokens).is_err());
        // Token count promising more data than present.
        let mut out = Vec::new();
        encode_request(
            &Request { seed: 1, top_n: 1, body: RequestBody::Tokens(vec![1, 2, 3]) },
            &mut out,
        );
        assert!(decode_request(&out[4..out.len() - 4], &mut tokens).is_err());
        // Trailing garbage.
        let mut out = Vec::new();
        encode_request(
            &Request { seed: 1, top_n: 1, body: RequestBody::Text("x".into()) },
            &mut out,
        );
        out.push(0);
        assert!(decode_request(&out[4..], &mut tokens).is_err());
        assert!(decode_response(&[9]).is_err());
    }

    #[test]
    fn frame_buffer_reassembles_split_and_batched_frames() {
        // Three frames, delivered in adversarial chunk sizes.
        let mut stream = Vec::new();
        for (i, text) in ["alpha", "beta", "gamma"].iter().enumerate() {
            encode_request(
                &Request { seed: i as u64, top_n: 1, body: RequestBody::Text((*text).into()) },
                &mut stream,
            );
        }
        for chunk_size in [1usize, 3, 7, stream.len()] {
            let mut fb = FrameBuffer::new(8);
            let mut seen = Vec::new();
            let mut cursor = 0;
            while cursor < stream.len() || fb.has_complete_frame() {
                while let Some(range) = fb.take_frame().unwrap() {
                    let mut tokens = Vec::new();
                    let view = decode_request(fb.payload(range), &mut tokens).unwrap();
                    seen.push(view.seed);
                }
                if cursor < stream.len() {
                    let end = (cursor + chunk_size).min(stream.len());
                    let mut src = &stream[cursor..end];
                    let n = fb.fill_from(&mut src).unwrap();
                    cursor += n;
                }
            }
            assert_eq!(seen, vec![0, 1, 2], "chunk size {chunk_size}");
        }
    }

    #[test]
    fn oversized_frame_is_rejected_without_buffering_it() {
        let mut fb = FrameBuffer::new(16);
        let huge = (MAX_FRAME_BYTES + 1).to_le_bytes();
        let mut src = &huge[..];
        fb.fill_from(&mut src).unwrap();
        assert!(matches!(fb.take_frame(), Err(WireError::FrameTooLarge { .. })));
    }
}
