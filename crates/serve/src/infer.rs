//! Fold-in inference: estimating θ_d for an unseen document under a frozen
//! model.
//!
//! The engine runs the same Metropolis–Hastings machinery WarpLDA trains
//! with, but with the topic–word side frozen: each sweep alternates, per
//! token,
//!
//! * a **word proposal** `q_word(k) ∝ C_wk + β`, drawn in O(1) from the
//!   model's pre-built alias tables. Its acceptance ratio only needs the
//!   partial `c_d` and the frozen `c_k` — the `C_wk` factors of the target
//!   and the proposal cancel, exactly the cancellation the paper exploits;
//! * a **doc proposal** `q_doc(k) ∝ C_dk + α`, drawn by random positioning
//!   over the document's current assignments. Its acceptance needs the
//!   frozen `φ` ratio (two binary-searched `C_wk` lookups) plus the `¬i`
//!   exclusion on `c_d`.
//!
//! After the sweeps, `θ_k = (C_dk + α) / (L_d + ᾱ)`.
//!
//! **Determinism.** Every request derives its RNG stream purely from its own
//! seed, and all working state lives in the caller's [`InferScratch`] (fully
//! reset per request). A request therefore produces bit-identical θ no matter
//! which server worker runs it, how many workers exist, or what ran on the
//! scratch before — the same discipline that makes parallel training
//! thread-count independent.
//!
//! **Allocation.** Steady-state inference performs zero heap allocations:
//! the scratch buffers grow to their high-water marks and are reused (pinned
//! by the workspace's counting-allocator suite).

use rand::Rng;

use warplda_core::counts::{DenseCounts, TopicCounts};
use warplda_sampling::{new_rng, split_seed, Dice};
use warplda_sparse::{ChunkCursor, SendPtr};

use crate::model::TopicModel;

/// Stream index separating fold-in RNG streams from every training stream.
const INFER_STREAM: u64 = 0x5EDE_D0C5;

/// Tuning knobs of fold-in inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InferConfig {
    /// Number of MH sweeps over the document. Fold-in burn-in is fast —
    /// 8–32 sweeps is the usual range; more sweeps sharpen θ at linear cost.
    pub sweeps: usize,
    /// Word-proposal/doc-proposal pairs per token per sweep (the `M` of the
    /// training configuration).
    pub mh_steps: usize,
}

impl Default for InferConfig {
    fn default() -> Self {
        Self { sweeps: 16, mh_steps: 2 }
    }
}

impl InferConfig {
    /// A config with a specific sweep count.
    ///
    /// # Panics
    /// Panics if `sweeps` is zero.
    pub fn with_sweeps(sweeps: usize) -> Self {
        assert!(sweeps >= 1, "need at least one fold-in sweep");
        Self { sweeps, ..Self::default() }
    }
}

/// Reusable per-request working state. One scratch serves any number of
/// sequential requests (each fully resets it); a server worker owns one, so
/// steady-state request handling allocates nothing.
#[derive(Debug)]
pub struct InferScratch {
    /// Current topic of each query token.
    z: Vec<u32>,
    /// Partial document–topic counts `c_d`.
    cd: DenseCounts,
    /// Number of topics `cd`/`theta` are sized for.
    k: usize,
    /// The estimated document–topic mixture, written by the last request.
    theta: Vec<f64>,
    /// Topics with non-zero counts, sorted by weight (descending).
    top: Vec<(u32, f64)>,
}

impl InferScratch {
    /// An empty scratch; buffers size themselves on first use.
    pub fn new() -> Self {
        Self { z: Vec::new(), cd: DenseCounts::new(0), k: 0, theta: Vec::new(), top: Vec::new() }
    }

    fn ensure_topics(&mut self, k: usize) {
        if self.k != k {
            // Only on first use or after a hot swap to a model with a
            // different K — never in the per-request steady state.
            self.cd = DenseCounts::new(k);
            self.theta = vec![0.0; k];
            self.k = k;
        }
    }

    /// The θ estimated by the most recent request (length `K`).
    pub fn theta(&self) -> &[f64] {
        &self.theta
    }

    /// The topics the most recent request actually assigned tokens to, as
    /// `(topic, θ_topic)` pairs sorted by weight (descending, ties by topic
    /// id). Topics carrying only the α-smoothing mass are omitted — they tie
    /// at `α / (L + ᾱ)` and say nothing about the document.
    pub fn top_topics(&self) -> &[(u32, f64)] {
        &self.top
    }
}

impl Default for InferScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// θ plus top topics of one inference, as owned data (the allocating
/// convenience form of [`InferScratch`]'s borrowed views).
#[derive(Debug, Clone)]
pub struct InferenceResult {
    /// The estimated document–topic mixture (length `K`, sums to 1).
    pub theta: Vec<f64>,
    /// Topics with assigned tokens, by descending θ.
    pub top: Vec<(u32, f64)>,
}

/// The fold-in inference engine: a cheap view pairing a frozen model with an
/// inference configuration. Construct one per request batch (it is two
/// pointers) or keep one around — it holds no mutable state.
#[derive(Debug, Clone, Copy)]
pub struct InferenceEngine<'m> {
    model: &'m TopicModel,
    config: InferConfig,
}

impl<'m> InferenceEngine<'m> {
    /// Creates an engine over a frozen model.
    pub fn new(model: &'m TopicModel, config: InferConfig) -> Self {
        assert!(config.sweeps >= 1, "need at least one fold-in sweep");
        assert!(config.mh_steps >= 1, "need at least one MH pair per token");
        Self { model, config }
    }

    /// The frozen model.
    pub fn model(&self) -> &'m TopicModel {
        self.model
    }

    /// The inference configuration.
    pub fn config(&self) -> &InferConfig {
        &self.config
    }

    /// Infers θ for `words` (token ids of the unseen document, OOV already
    /// removed), writing θ and the top-topic list into `scratch`. The result
    /// is a pure function of `(model, config, words, seed)`.
    ///
    /// # Panics
    /// Panics if any word id is outside the model vocabulary — servers
    /// validate ids at the protocol boundary, so an out-of-range id here is
    /// caller error, not runtime input.
    pub fn infer_into(&self, words: &[u32], seed: u64, scratch: &mut InferScratch) {
        let model = self.model;
        let k = model.num_topics();
        let num_words = model.num_words() as u32;
        assert!(
            words.iter().all(|&w| w < num_words),
            "word id out of range for the model vocabulary"
        );
        scratch.ensure_topics(k);
        let params = model.params();
        let (alpha, alpha_bar) = (params.alpha, params.alpha_bar());
        let beta_bar = model.beta_bar();
        let ck = model.topic_counts();
        let len = words.len();

        scratch.top.clear();
        if len == 0 {
            // No evidence: θ is the prior mean.
            scratch.theta.fill(1.0 / k as f64);
            return;
        }

        let mut rng = new_rng(split_seed(seed, INFER_STREAM));
        let z = &mut scratch.z;
        let cd = &mut scratch.cd;
        cd.clear();

        // Initialize each token from its word proposal: the document starts
        // at the word-side posterior mode instead of uniform noise, which
        // shortens burn-in.
        z.clear();
        for &w in words {
            let t = model.sample_word_proposal(w, &mut rng);
            z.push(t);
            cd.increment(t);
        }

        let p_doc_count = len as f64 / (len as f64 + alpha_bar);
        for _sweep in 0..self.config.sweeps {
            for i in 0..len {
                let w = words[i];
                for _ in 0..self.config.mh_steps {
                    // Word proposal: the C_wk factors of target and proposal
                    // cancel; acceptance needs only c_d (¬i) and c_k.
                    let t = model.sample_word_proposal(w, &mut rng);
                    let cur = z[i];
                    if t != cur {
                        let cd_cur_excl = (cd.get(cur) - 1) as f64;
                        let ratio = (cd.get(t) as f64 + alpha) / (cd_cur_excl + alpha)
                            * (ck[cur as usize] as f64 + beta_bar)
                            / (ck[t as usize] as f64 + beta_bar);
                        if ratio >= 1.0 || rng.gen::<f64>() < ratio {
                            cd.decrement(cur);
                            cd.increment(t);
                            z[i] = t;
                        }
                    }
                    // Doc proposal by random positioning over the current
                    // assignments; acceptance needs the frozen φ ratio plus
                    // the ¬i exclusion on c_d.
                    let t = if rng.gen::<f64>() < p_doc_count {
                        z[rng.dice(len)]
                    } else {
                        rng.dice(k) as u32
                    };
                    let cur = z[i];
                    if t != cur {
                        let cd_cur = cd.get(cur) as f64;
                        let ratio = (model.word_topic_count(w, t) as f64 + params.beta)
                            / (model.word_topic_count(w, cur) as f64 + params.beta)
                            * (ck[cur as usize] as f64 + beta_bar)
                            / (ck[t as usize] as f64 + beta_bar)
                            * (cd_cur + alpha)
                            / (cd_cur - 1.0 + alpha);
                        if ratio >= 1.0 || rng.gen::<f64>() < ratio {
                            cd.decrement(cur);
                            cd.increment(t);
                            z[i] = t;
                        }
                    }
                }
            }
        }

        // θ_k = (C_dk + α) / (L + ᾱ), and the non-zero topics sorted for the
        // top-topics view.
        let denom = len as f64 + alpha_bar;
        for (t, slot) in scratch.theta.iter_mut().enumerate() {
            *slot = (cd.get(t as u32) as f64 + alpha) / denom;
        }
        let (theta, top) = (&scratch.theta, &mut scratch.top);
        cd.for_each(|t, _| top.push((t, theta[t as usize])));
        top.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    }

    /// Allocating convenience wrapper around
    /// [`infer_into`](Self::infer_into).
    pub fn infer(&self, words: &[u32], seed: u64) -> InferenceResult {
        let mut scratch = InferScratch::new();
        self.infer_into(words, seed, &mut scratch);
        InferenceResult { theta: scratch.theta, top: scratch.top }
    }

    /// Infers θ for a batch of documents across `num_threads` workers pulling
    /// document chunks from a [`ChunkCursor`] (the training work queue,
    /// reused for serving-side batches). Document `i` uses the stream
    /// `split_seed(base_seed, i)`, so the returned θ rows are bit-identical
    /// for any thread count.
    pub fn infer_batch(
        &self,
        docs: &[Vec<u32>],
        base_seed: u64,
        num_threads: usize,
    ) -> Vec<Vec<f64>> {
        let k = self.model.num_topics();
        let n = docs.len();
        let num_threads = num_threads.max(1);
        let mut flat = vec![0.0f64; n * k];
        if n == 0 {
            return Vec::new();
        }
        if num_threads == 1 || n == 1 {
            let mut scratch = InferScratch::new();
            for (i, doc) in docs.iter().enumerate() {
                self.infer_into(doc, split_seed(base_seed, i as u64), &mut scratch);
                flat[i * k..(i + 1) * k].copy_from_slice(scratch.theta());
            }
        } else {
            let cursor = ChunkCursor::for_workers(n, num_threads);
            let flat_ptr = SendPtr(flat.as_mut_ptr());
            crossbeam::thread::scope(|scope| {
                for _ in 0..num_threads {
                    let cursor = &cursor;
                    scope.spawn(move |_| {
                        let flat_ptr = flat_ptr;
                        let mut scratch = InferScratch::new();
                        while let Some(chunk) = cursor.claim() {
                            for i in chunk {
                                self.infer_into(
                                    &docs[i],
                                    split_seed(base_seed, i as u64),
                                    &mut scratch,
                                );
                                // SAFETY: each document index is claimed by
                                // exactly one worker, so the k-wide output
                                // slots never overlap.
                                let row = unsafe {
                                    std::slice::from_raw_parts_mut(flat_ptr.0.add(i * k), k)
                                };
                                row.copy_from_slice(scratch.theta());
                            }
                        }
                    });
                }
            })
            .expect("batch inference worker panicked");
        }
        flat.chunks_exact(k).map(<[f64]>::to_vec).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warplda_core::{ModelParams, Sampler, WarpLda, WarpLdaConfig};
    use warplda_corpus::{Corpus, CorpusBuilder};

    fn themed() -> (Corpus, TopicModel) {
        let mut b = CorpusBuilder::new();
        for _ in 0..40 {
            b.push_text_doc(["river", "lake", "water", "fish", "boat", "river"]);
            b.push_text_doc(["desert", "sand", "dune", "cactus", "heat", "desert"]);
        }
        let corpus = b.build().unwrap();
        let mut sampler = WarpLda::new(
            &corpus,
            ModelParams::new(2, 0.5, 0.1),
            WarpLdaConfig::with_mh_steps(4),
            7,
        );
        for _ in 0..60 {
            sampler.run_iteration();
        }
        let model = TopicModel::freeze_sampler(&sampler, &corpus);
        (corpus, model)
    }

    fn ids(corpus: &Corpus, words: &[&str]) -> Vec<u32> {
        words.iter().map(|w| corpus.vocab().get(w).unwrap()).collect()
    }

    #[test]
    fn theta_is_a_distribution_and_finds_the_planted_topic() {
        let (corpus, model) = themed();
        let engine = InferenceEngine::new(&model, InferConfig::default());
        let water_doc = ids(&corpus, &["river", "water", "lake", "fish", "water"]);
        let desert_doc = ids(&corpus, &["sand", "dune", "desert", "heat"]);
        let a = engine.infer(&water_doc, 1);
        let b = engine.infer(&desert_doc, 1);
        for r in [&a, &b] {
            let total: f64 = r.theta.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "θ sums to {total}");
            assert!(!r.top.is_empty());
        }
        // The two documents peak on different topics, each decisively.
        assert_ne!(a.top[0].0, b.top[0].0, "a: {:?}, b: {:?}", a.top, b.top);
        assert!(a.theta[a.top[0].0 as usize] > 0.7, "{:?}", a.theta);
        assert!(b.theta[b.top[0].0 as usize] > 0.7, "{:?}", b.theta);
    }

    #[test]
    fn fixed_seed_is_bit_identical_and_scratch_reuse_is_clean() {
        let (corpus, model) = themed();
        let engine = InferenceEngine::new(&model, InferConfig::default());
        let doc = ids(&corpus, &["river", "boat", "fish"]);
        let other = ids(&corpus, &["desert", "heat", "sand", "dune", "cactus"]);
        let fresh = engine.infer(&doc, 99);
        // Run an unrelated query through the same scratch first: the reused
        // buffers must not leak into the next request.
        let mut scratch = InferScratch::new();
        engine.infer_into(&other, 5, &mut scratch);
        engine.infer_into(&doc, 99, &mut scratch);
        assert_eq!(
            fresh.theta.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            scratch.theta().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(fresh.top, scratch.top_topics());
        // Different seeds explore differently.
        let again = engine.infer(&doc, 100);
        assert_eq!(fresh.theta.len(), again.theta.len());
    }

    #[test]
    fn empty_document_returns_the_prior_mean() {
        let (_, model) = themed();
        let engine = InferenceEngine::new(&model, InferConfig::default());
        let r = engine.infer(&[], 3);
        for &v in &r.theta {
            assert_eq!(v, 1.0 / model.num_topics() as f64);
        }
        assert!(r.top.is_empty());
    }

    #[test]
    fn batch_inference_is_thread_count_independent() {
        let (corpus, model) = themed();
        let engine = InferenceEngine::new(&model, InferConfig::with_sweeps(8));
        let docs: Vec<Vec<u32>> = (0..17)
            .map(|i| {
                if i % 2 == 0 {
                    ids(&corpus, &["river", "lake", "boat"])
                } else {
                    ids(&corpus, &["sand", "heat", "cactus", "dune"])
                }
            })
            .collect();
        let reference = engine.infer_batch(&docs, 42, 1);
        for threads in [2usize, 4] {
            let got = engine.infer_batch(&docs, 42, threads);
            for (i, (a, b)) in reference.iter().zip(&got).enumerate() {
                let a: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
                let b: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
                assert_eq!(a, b, "doc {i} differs under {threads} threads");
            }
        }
    }

    #[test]
    #[should_panic(expected = "word id out of range")]
    fn out_of_vocabulary_id_panics() {
        let (_, model) = themed();
        let engine = InferenceEngine::new(&model, InferConfig::default());
        let _ = engine.infer(&[u32::MAX], 1);
    }
}
