//! Metropolis–Hastings helpers (Algorithm 1 of the paper).

use rand::Rng;

use crate::rng::Dice;

/// Computes acceptance and applies it: returns `proposal` with probability
/// `min(1, ratio)`, otherwise `current`.
///
/// `ratio` is the MH ratio `p(x̂) q(x|x̂) / (p(x) q(x̂|x))` already assembled by
/// the caller (the LDA samplers assemble it from count vectors, Eq. 7).
#[inline]
pub fn accept<R: Rng>(rng: &mut R, current: u32, proposal: u32, ratio: f64) -> u32 {
    if ratio >= 1.0 || rng.flip(ratio) {
        proposal
    } else {
        current
    }
}

/// A generic Metropolis–Hastings chain driver over discrete states
/// (Algorithm 1): repeatedly draws proposals and accepts/rejects them.
///
/// The LDA samplers inline this logic for speed; the driver exists for tests
/// (verifying that the proposal/acceptance pairs used by the samplers leave
/// the target distribution invariant) and for documentation value.
#[derive(Debug, Clone)]
pub struct MhChain {
    state: u32,
    steps: u64,
    accepted: u64,
}

impl MhChain {
    /// Starts a chain at `initial`.
    pub fn new(initial: u32) -> Self {
        Self { state: initial, steps: 0, accepted: 0 }
    }

    /// Current state.
    pub fn state(&self) -> u32 {
        self.state
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Fraction of proposals accepted so far.
    pub fn acceptance_rate(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.accepted as f64 / self.steps as f64
        }
    }

    /// Runs one MH step.
    ///
    /// * `propose` draws a candidate state (possibly depending on the current
    ///   state).
    /// * `target` is the unnormalized target density.
    /// * `proposal_density` is the unnormalized proposal density
    ///   `q(candidate | from)`.
    pub fn step<R: Rng>(
        &mut self,
        rng: &mut R,
        propose: impl FnOnce(&mut R, u32) -> u32,
        target: impl Fn(u32) -> f64,
        proposal_density: impl Fn(u32, u32) -> f64,
    ) {
        let current = self.state;
        let candidate = propose(rng, current);
        let num = target(candidate) * proposal_density(current, candidate);
        let den = target(current) * proposal_density(candidate, current);
        let ratio = if den <= 0.0 { 1.0 } else { num / den };
        self.steps += 1;
        let next = accept(rng, current, candidate, ratio);
        if next != current || candidate == current {
            self.accepted += 1;
        }
        self.state = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::new_rng;

    #[test]
    fn accept_is_deterministic_for_ratio_ge_one() {
        let mut rng = new_rng(3);
        for _ in 0..100 {
            assert_eq!(accept(&mut rng, 1, 2, 1.0), 2);
            assert_eq!(accept(&mut rng, 1, 2, 10.0), 2);
        }
    }

    #[test]
    fn accept_rejects_zero_ratio() {
        let mut rng = new_rng(4);
        for _ in 0..100 {
            assert_eq!(accept(&mut rng, 1, 2, 0.0), 1);
        }
    }

    #[test]
    fn accept_rate_matches_ratio() {
        let mut rng = new_rng(5);
        let n = 100_000;
        let accepted = (0..n).filter(|_| accept(&mut rng, 0, 1, 0.4) == 1).count();
        let rate = accepted as f64 / n as f64;
        assert!((rate - 0.4).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn chain_converges_to_target_with_uniform_proposal() {
        // Target: p(k) ∝ k+1 over {0,1,2,3}; proposal: uniform (symmetric).
        let target = |k: u32| (k + 1) as f64;
        let mut rng = new_rng(6);
        let mut chain = MhChain::new(0);
        let n = 200_000usize;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            chain.step(&mut rng, |r, _| r.gen_range(0..4u32), target, |_, _| 1.0);
            counts[chain.state() as usize] += 1;
        }
        let total: f64 = (1..=4).map(|x| x as f64).sum();
        for (k, &c) in counts.iter().enumerate() {
            let f = c as f64 / n as f64;
            let p = (k + 1) as f64 / total;
            assert!((f - p).abs() < 0.02, "state {k}: {f} vs {p}");
        }
        assert!(chain.acceptance_rate() > 0.3);
        assert_eq!(chain.steps(), n as u64);
    }

    #[test]
    fn chain_with_asymmetric_proposal_still_targets_p() {
        // Proposal q(k) ∝ 4-k (favours small states); target p(k) ∝ k+1.
        // With the correct Hastings correction the stationary distribution must
        // still be p.
        let target = |k: u32| (k + 1) as f64;
        let q = |candidate: u32, _from: u32| (4 - candidate) as f64;
        let weights = [4.0, 3.0, 2.0, 1.0];
        let mut rng = new_rng(8);
        let mut chain = MhChain::new(3);
        let n = 300_000usize;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            chain.step(
                &mut rng,
                |r, _| crate::discrete::sample_unnormalized(r, &weights) as u32,
                target,
                q,
            );
            counts[chain.state() as usize] += 1;
        }
        let total: f64 = (1..=4).map(|x| x as f64).sum();
        for (k, &c) in counts.iter().enumerate() {
            let f = c as f64 / n as f64;
            let p = (k + 1) as f64 / total;
            assert!((f - p).abs() < 0.02, "state {k}: {f} vs {p}");
        }
    }
}
