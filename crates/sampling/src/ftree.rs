//! The F+ tree used by F+LDA.
//!
//! A complete binary tree stored flat in an array: leaf `i` holds the weight
//! of outcome `i`, every internal node holds the sum of its children. Point
//! updates and exact draws from the current (unnormalized) distribution both
//! cost O(log K). Unlike the alias table it supports *incremental* updates,
//! which is what lets F+LDA keep its sampling structure exact as counts change
//! token by token.

use rand::Rng;

/// A sum-tree over `len` non-negative weights supporting O(log K) updates and
/// O(log K) sampling.
#[derive(Debug, Clone)]
pub struct FTree {
    /// Number of leaves (outcomes).
    len: usize,
    /// Number of leaf slots (next power of two ≥ len).
    leaf_base: usize,
    /// Flat tree: `tree[1]` is the root, children of `i` are `2i` / `2i+1`,
    /// leaves start at `leaf_base`.
    tree: Vec<f64>,
}

impl FTree {
    /// Builds a tree from initial weights in O(K).
    ///
    /// # Panics
    /// Panics if `weights` is empty or any weight is negative/non-finite.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "FTree needs at least one outcome");
        let len = weights.len();
        let leaf_base = len.next_power_of_two();
        let mut tree = vec![0.0f64; 2 * leaf_base];
        for (i, &w) in weights.iter().enumerate() {
            assert!(w.is_finite() && w >= 0.0, "weights must be finite and non-negative, got {w}");
            tree[leaf_base + i] = w;
        }
        for i in (1..leaf_base).rev() {
            tree[i] = tree[2 * i] + tree[2 * i + 1];
        }
        Self { len, leaf_base, tree }
    }

    /// Builds a tree of `len` zero weights.
    pub fn zeros(len: usize) -> Self {
        Self::new(&vec![0.0; len.max(1)])
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the tree has no outcomes (never for constructed trees).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The current weight of `outcome`.
    pub fn weight(&self, outcome: usize) -> f64 {
        assert!(outcome < self.len, "outcome {outcome} out of range");
        self.tree[self.leaf_base + outcome]
    }

    /// The sum of all weights.
    pub fn total(&self) -> f64 {
        self.tree[1]
    }

    /// Sets the weight of `outcome` to `weight` in O(log K).
    pub fn set(&mut self, outcome: usize, weight: f64) {
        assert!(outcome < self.len, "outcome {outcome} out of range");
        assert!(weight.is_finite() && weight >= 0.0, "weight must be finite and non-negative");
        let mut i = self.leaf_base + outcome;
        self.tree[i] = weight;
        i /= 2;
        while i >= 1 {
            self.tree[i] = self.tree[2 * i] + self.tree[2 * i + 1];
            if i == 1 {
                break;
            }
            i /= 2;
        }
    }

    /// Adds `delta` (possibly negative) to the weight of `outcome` in O(log K).
    /// The resulting weight is clamped at zero to absorb floating-point noise.
    pub fn add(&mut self, outcome: usize, delta: f64) {
        let w = (self.weight(outcome) + delta).max(0.0);
        self.set(outcome, w);
    }

    /// Draws an outcome with probability proportional to its weight, O(log K).
    ///
    /// If the total weight is zero, falls back to a uniform draw.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let total = self.total();
        if total <= 0.0 {
            return rng.gen_range(0..self.len);
        }
        let mut u = rng.gen::<f64>() * total;
        let mut i = 1usize;
        while i < self.leaf_base {
            let left = self.tree[2 * i];
            if u < left {
                i *= 2;
            } else {
                u -= left;
                i = 2 * i + 1;
            }
        }
        (i - self.leaf_base).min(self.len - 1)
    }

    /// Prefix sum of weights `0..=outcome`, O(log K). Used in tests and by the
    /// exact samplers that need CDF queries.
    pub fn prefix_sum(&self, outcome: usize) -> f64 {
        assert!(outcome < self.len, "outcome {outcome} out of range");
        let mut i = self.leaf_base + outcome;
        let mut acc = self.tree[i];
        while i > 1 {
            if i % 2 == 1 {
                acc += self.tree[i - 1];
            }
            i /= 2;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::new_rng;

    #[test]
    fn total_and_weights_after_build() {
        let t = FTree::new(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(t.len(), 5);
        assert!((t.total() - 15.0).abs() < 1e-12);
        assert!((t.weight(2) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn set_and_add_update_totals() {
        let mut t = FTree::new(&[1.0, 1.0, 1.0]);
        t.set(1, 5.0);
        assert!((t.total() - 7.0).abs() < 1e-12);
        t.add(0, 2.0);
        assert!((t.total() - 9.0).abs() < 1e-12);
        t.add(2, -1.0);
        assert!((t.total() - 8.0).abs() < 1e-12);
        assert_eq!(t.weight(2), 0.0);
    }

    #[test]
    fn add_clamps_at_zero() {
        let mut t = FTree::new(&[1.0]);
        t.add(0, -5.0);
        assert_eq!(t.weight(0), 0.0);
        assert_eq!(t.total(), 0.0);
    }

    #[test]
    fn prefix_sums_match_naive() {
        let weights = [0.5, 2.0, 0.0, 3.0, 1.5, 4.0, 0.25];
        let t = FTree::new(&weights);
        let mut acc = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            acc += w;
            assert!((t.prefix_sum(i) - acc).abs() < 1e-12, "prefix {i}");
        }
    }

    #[test]
    fn sampling_matches_distribution() {
        let weights = [1.0, 0.0, 2.0, 7.0];
        let t = FTree::new(&weights);
        let mut rng = new_rng(29);
        let n = 200_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        let total: f64 = weights.iter().sum();
        for i in [0usize, 2, 3] {
            let f = counts[i] as f64 / n as f64;
            assert!((f - weights[i] / total).abs() < 0.01, "outcome {i}: {f}");
        }
    }

    #[test]
    fn sampling_after_updates_tracks_new_distribution() {
        let mut t = FTree::new(&[1.0, 1.0]);
        t.set(0, 0.0);
        t.set(1, 3.0);
        let mut rng = new_rng(31);
        for _ in 0..1000 {
            assert_eq!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn zero_total_falls_back_to_uniform() {
        let t = FTree::zeros(4);
        let mut rng = new_rng(37);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[t.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn non_power_of_two_sizes() {
        for n in [1usize, 2, 3, 5, 6, 7, 9, 100, 1000, 1023, 1025] {
            let weights: Vec<f64> = (0..n).map(|i| (i % 13) as f64 + 0.5).collect();
            let t = FTree::new(&weights);
            let naive: f64 = weights.iter().sum();
            assert!((t.total() - naive).abs() < 1e-9, "n={n}");
            let mut rng = new_rng(n as u64);
            for _ in 0..100 {
                assert!(t.sample(&mut rng) < n);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_access_panics() {
        let t = FTree::new(&[1.0, 2.0]);
        let _ = t.weight(2);
    }
}
