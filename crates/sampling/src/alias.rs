//! Walker's alias method (Section 2.2 of the paper).
//!
//! The alias table turns a K-outcome discrete distribution into K bins of
//! equal probability, each holding at most two outcomes, so a sample costs one
//! uniform bin choice plus one biased coin flip — O(1) — after an O(K) build.

use rand::Rng;

/// Reusable worklists for [`AliasTable::rebuild`] /
/// [`SparseAliasTable::rebuild`]: once the buffers have grown to the largest
/// distribution a caller builds, rebuilding tables allocates nothing. One
/// scratch can serve any number of tables (WarpLDA keeps one per worker).
#[derive(Debug, Clone, Default)]
pub struct AliasBuildScratch {
    /// Weights scaled to mean 1.0 per bin.
    scaled: Vec<f64>,
    /// Bins below the mean, awaiting an alias donor.
    small: Vec<u32>,
    /// Bins above the mean, donating probability mass.
    large: Vec<u32>,
    /// Staging for the weight column of sparse `(label, weight)` entries.
    weights: Vec<f64>,
}

impl AliasBuildScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch pre-sized for distributions of up to `n` outcomes, so no
    /// rebuild of that size or smaller ever allocates.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            scaled: Vec::with_capacity(n),
            small: Vec::with_capacity(n),
            large: Vec::with_capacity(n),
            weights: Vec::with_capacity(n),
        }
    }
}

/// An alias table over outcomes `0..len`.
///
/// Built from unnormalized, non-negative weights. Zero-weight outcomes are
/// never returned (unless every weight is zero, in which case the table falls
/// back to the uniform distribution so that sampling always succeeds).
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Probability of keeping the bin's own outcome (vs. taking the alias).
    prob: Vec<f64>,
    /// The alias outcome of each bin.
    alias: Vec<u32>,
    /// Total weight the table was built from (before normalization).
    total_weight: f64,
}

impl AliasTable {
    /// Builds an alias table from unnormalized weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty or contains a negative or non-finite value.
    pub fn new(weights: &[f64]) -> Self {
        let mut table = Self::with_capacity(weights.len());
        table.rebuild(weights, &mut AliasBuildScratch::with_capacity(weights.len()));
        table
    }

    /// An empty table whose buffers are pre-sized for distributions of up to
    /// `n` outcomes. [`rebuild`](Self::rebuild) must run before
    /// [`sample`](Self::sample) can be used.
    pub fn with_capacity(n: usize) -> Self {
        Self { prob: Vec::with_capacity(n), alias: Vec::with_capacity(n), total_weight: 0.0 }
    }

    /// Rebuilds the table in place from unnormalized weights, reusing this
    /// table's bins and `scratch`'s worklists. Once both have grown to the
    /// largest distribution seen, rebuilding performs no heap allocation.
    /// The resulting table is identical to `AliasTable::new(weights)`.
    ///
    /// # Panics
    /// Panics if `weights` is empty or contains a negative or non-finite value.
    pub fn rebuild(&mut self, weights: &[f64], scratch: &mut AliasBuildScratch) {
        assert!(!weights.is_empty(), "alias table needs at least one outcome");
        let n = weights.len();
        let mut total = 0.0f64;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "weights must be finite and non-negative, got {w}");
            total += w;
        }
        self.prob.clear();
        self.prob.resize(n, 1.0);
        self.alias.clear();
        self.alias.extend(0..n as u32);
        if total <= 0.0 {
            // Degenerate: uniform fallback.
            self.total_weight = 0.0;
            return;
        }
        let prob = &mut self.prob;
        let alias = &mut self.alias;

        // Scaled weights: mean 1.0 per bin.
        let scale = n as f64 / total;
        let scaled = &mut scratch.scaled;
        scaled.clear();
        scaled.extend(weights.iter().map(|&w| w * scale));

        // Split indices into "small" (< 1) and "large" (>= 1) worklists.
        let small = &mut scratch.small;
        let large = &mut scratch.large;
        small.clear();
        large.clear();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }

        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            // Donate the remainder of the large bin.
            scaled[l as usize] = (scaled[l as usize] + scaled[s as usize]) - 1.0;
            if scaled[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers: everything remaining gets probability 1 of itself.
        for i in small.drain(..).chain(large.drain(..)) {
            prob[i as usize] = 1.0;
            alias[i as usize] = i;
        }

        self.total_weight = total;
    }

    /// Builds an alias table from unnormalized `u32` counts (the common case
    /// for topic-count vectors), avoiding an intermediate `Vec<f64>` allocation
    /// at call sites.
    pub fn from_counts(counts: &[u32], smoothing: f64) -> Self {
        let weights: Vec<f64> = counts.iter().map(|&c| c as f64 + smoothing).collect();
        Self::new(&weights)
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Returns `true` if the table has no outcomes (never true for a
    /// successfully constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Total (unnormalized) weight the table was built from.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Draws one outcome in O(1).
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let n = self.prob.len();
        let bin = rng.gen_range(0..n);
        if rng.gen::<f64>() < self.prob[bin] {
            bin
        } else {
            self.alias[bin] as usize
        }
    }

    /// The probability assigned to `outcome` by the table (reconstructed from
    /// the bins; exact up to floating-point error). Mostly useful in tests.
    pub fn probability(&self, outcome: usize) -> f64 {
        let n = self.prob.len() as f64;
        let mut p = self.prob[outcome] / n;
        for (bin, &a) in self.alias.iter().enumerate() {
            if a as usize == outcome && bin != outcome {
                p += (1.0 - self.prob[bin]) / n;
            }
        }
        // Bins that alias to themselves contribute their complement to themselves.
        if self.alias[outcome] as usize == outcome {
            p += (1.0 - self.prob[outcome]) / n;
        }
        p
    }
}

/// A sparse alias table: outcomes are arbitrary `u32` labels (e.g. the
/// non-zero topics of a document), weights are given per label.
///
/// AliasLDA builds these over the non-zero entries of the document-topic
/// vector `c_d`; WarpLDA builds them over the word-topic vector `c_w`.
#[derive(Debug, Clone)]
pub struct SparseAliasTable {
    labels: Vec<u32>,
    table: AliasTable,
}

impl SparseAliasTable {
    /// Builds from `(label, weight)` pairs.
    ///
    /// # Panics
    /// Panics if `entries` is empty.
    pub fn new(entries: &[(u32, f64)]) -> Self {
        let mut table = Self::with_capacity(entries.len());
        table.rebuild(entries, &mut AliasBuildScratch::with_capacity(entries.len()));
        table
    }

    /// An empty table pre-sized for up to `n` entries;
    /// [`rebuild`](Self::rebuild) must run before sampling.
    pub fn with_capacity(n: usize) -> Self {
        Self { labels: Vec::with_capacity(n), table: AliasTable::with_capacity(n) }
    }

    /// Rebuilds the table in place from `(label, weight)` pairs, reusing this
    /// table's buffers and `scratch`'s worklists (no heap allocation once
    /// both have grown to the largest distribution seen). The rebuilt table
    /// draws exactly the same labels as a freshly constructed
    /// `SparseAliasTable::new(entries)` given the same RNG stream.
    ///
    /// # Panics
    /// Panics if `entries` is empty.
    pub fn rebuild(&mut self, entries: &[(u32, f64)], scratch: &mut AliasBuildScratch) {
        assert!(!entries.is_empty(), "sparse alias table needs at least one entry");
        self.labels.clear();
        self.labels.extend(entries.iter().map(|&(l, _)| l));
        // The weight column stages through the scratch; taking the buffer out
        // sidesteps borrowing `scratch` twice and moves no heap data.
        let mut weights = std::mem::take(&mut scratch.weights);
        weights.clear();
        weights.extend(entries.iter().map(|&(_, w)| w));
        self.table.rebuild(&weights, scratch);
        scratch.weights = weights;
    }

    /// Number of (label, weight) entries.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` when the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Total unnormalized weight.
    pub fn total_weight(&self) -> f64 {
        self.table.total_weight()
    }

    /// Draws one label in O(1).
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u32 {
        self.labels[self.table.sample(rng)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::new_rng;

    fn empirical(table: &AliasTable, draws: usize, seed: u64) -> Vec<f64> {
        let mut rng = new_rng(seed);
        let mut counts = vec![0usize; table.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.into_iter().map(|c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn matches_target_distribution() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let table = AliasTable::new(&weights);
        let freq = empirical(&table, 200_000, 7);
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            assert!(
                (freq[i] - w / total).abs() < 0.01,
                "outcome {i}: {} vs {}",
                freq[i],
                w / total
            );
        }
    }

    #[test]
    fn zero_weight_outcomes_never_sampled() {
        let table = AliasTable::new(&[0.0, 5.0, 0.0, 5.0]);
        let mut rng = new_rng(11);
        for _ in 0..10_000 {
            let s = table.sample(&mut rng);
            assert!(s == 1 || s == 3);
        }
    }

    #[test]
    fn all_zero_weights_fall_back_to_uniform() {
        let table = AliasTable::new(&[0.0, 0.0, 0.0]);
        let freq = empirical(&table, 30_000, 13);
        for f in freq {
            assert!((f - 1.0 / 3.0).abs() < 0.02);
        }
    }

    #[test]
    fn single_outcome() {
        let table = AliasTable::new(&[42.0]);
        let mut rng = new_rng(5);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn probability_reconstruction_sums_to_one() {
        let weights = [0.5, 0.0, 3.0, 1.5, 2.0];
        let table = AliasTable::new(&weights);
        let total: f64 = (0..weights.len()).map(|i| table.probability(i)).sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
        let wsum: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            assert!((table.probability(i) - w / wsum).abs() < 1e-9);
        }
    }

    #[test]
    fn from_counts_applies_smoothing() {
        let table = AliasTable::from_counts(&[0, 10], 1.0);
        let freq = empirical(&table, 100_000, 3);
        assert!((freq[0] - 1.0 / 12.0).abs() < 0.01);
        assert!((freq[1] - 11.0 / 12.0).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "at least one outcome")]
    fn empty_weights_panic() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_panic() {
        let _ = AliasTable::new(&[1.0, -0.5]);
    }

    #[test]
    fn sparse_table_returns_labels() {
        let table = SparseAliasTable::new(&[(7, 1.0), (100, 3.0)]);
        let mut rng = new_rng(17);
        let mut saw_7 = 0;
        let mut saw_100 = 0;
        for _ in 0..40_000 {
            match table.sample(&mut rng) {
                7 => saw_7 += 1,
                100 => saw_100 += 1,
                other => panic!("unexpected label {other}"),
            }
        }
        let frac = saw_100 as f64 / (saw_7 + saw_100) as f64;
        assert!((frac - 0.75).abs() < 0.02);
        assert_eq!(table.len(), 2);
        assert!((table.total_weight() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn rebuild_reuses_buffers_and_matches_fresh_builds() {
        let mut scratch = AliasBuildScratch::with_capacity(8);
        let mut reused = SparseAliasTable::with_capacity(8);
        let distributions: [&[(u32, f64)]; 4] = [
            &[(3, 1.0), (9, 2.0), (17, 0.0), (4, 5.5)],
            &[(100, 0.25)],
            &[(0, 0.0), (1, 0.0)],
            &[(8, 4.0), (2, 4.0), (5, 1.0), (6, 0.5), (7, 9.0), (11, 3.25), (12, 0.75), (13, 2.0)],
        ];
        for entries in distributions {
            reused.rebuild(entries, &mut scratch);
            let fresh = SparseAliasTable::new(entries);
            assert_eq!(reused.len(), fresh.len());
            assert_eq!(reused.total_weight().to_bits(), fresh.total_weight().to_bits());
            let mut a = new_rng(31);
            let mut b = new_rng(31);
            for _ in 0..2_000 {
                assert_eq!(reused.sample(&mut a), fresh.sample(&mut b));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn rebuild_with_no_entries_panics() {
        let mut t = SparseAliasTable::with_capacity(4);
        t.rebuild(&[], &mut AliasBuildScratch::new());
    }

    #[test]
    fn large_table_builds_and_normalizes() {
        let weights: Vec<f64> = (0..10_000).map(|i| (i % 97) as f64).collect();
        let table = AliasTable::new(&weights);
        assert_eq!(table.len(), 10_000);
        let mut rng = new_rng(23);
        for _ in 0..1000 {
            assert!(table.sample(&mut rng) < 10_000);
        }
    }
}
