//! Deterministic RNG helpers.
//!
//! All samplers and experiments take explicit seeds so every figure and table
//! in the harness is reproducible. Worker threads derive their own streams
//! with [`split_seed`] (a SplitMix64 step), which keeps parallel runs
//! deterministic for a fixed thread count.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Creates the workspace-standard RNG from a seed.
pub fn new_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Derives an independent stream seed from a base seed and a stream index
/// using SplitMix64 finalization. Used to give each worker/thread/document
/// batch its own reproducible RNG.
pub fn split_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The `Dice(K)` primitive from Algorithm 2: a uniform draw from `0..k`.
pub trait Dice {
    /// Draws uniformly from `0..k`. `k` must be positive.
    fn dice(&mut self, k: usize) -> usize;
    /// Draws a uniform f64 in `[0, 1)`.
    fn unit(&mut self) -> f64;
    /// Flips a coin that is true with probability `p`.
    fn flip(&mut self, p: f64) -> bool;
}

impl<R: Rng> Dice for R {
    #[inline]
    fn dice(&mut self, k: usize) -> usize {
        debug_assert!(k > 0, "Dice(0) is undefined");
        self.gen_range(0..k)
    }

    #[inline]
    fn unit(&mut self) -> f64 {
        self.gen::<f64>()
    }

    #[inline]
    fn flip(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_seed_streams_differ() {
        let s0 = split_seed(42, 0);
        let s1 = split_seed(42, 1);
        let s2 = split_seed(43, 0);
        assert_ne!(s0, s1);
        assert_ne!(s0, s2);
        // Deterministic.
        assert_eq!(split_seed(42, 1), s1);
    }

    #[test]
    fn dice_stays_in_range_and_covers_values() {
        let mut rng = new_rng(1);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v = rng.dice(6);
            assert!(v < 6);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all faces should appear in 1000 rolls");
    }

    #[test]
    fn unit_is_in_half_open_interval() {
        let mut rng = new_rng(2);
        for _ in 0..1000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn flip_matches_probability_roughly() {
        let mut rng = new_rng(3);
        let n = 50_000;
        let heads = (0..n).filter(|_| rng.flip(0.3)).count();
        let rate = heads as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = new_rng(99);
        let mut b = new_rng(99);
        for _ in 0..100 {
            assert_eq!(a.dice(1000), b.dice(1000));
        }
    }
}
