//! Mixture-of-two-terms sampling (Section 2.2 of the paper).
//!
//! A distribution of the form `p(x=k) ∝ A_k + B_k` is sampled ancestrally:
//! flip a coin with probability `Z_A / (Z_A + Z_B)` and then draw from the
//! normalized `A` or `B` component. The WarpLDA/LightLDA proposal
//! `q_doc(k) ∝ C_dk + α_k` is exactly this shape (sparse counts plus a dense
//! smoothing term), as is AliasLDA's factorization.

use rand::Rng;

use crate::rng::Dice;

/// A two-component mixture sampler: picks component A with probability
/// `z_a / (z_a + z_b)`, then delegates to the caller-provided component
/// samplers.
#[derive(Debug, Clone, Copy)]
pub struct TwoTermMixture {
    z_a: f64,
    z_b: f64,
}

impl TwoTermMixture {
    /// Creates a mixture from the two components' total (unnormalized) masses.
    ///
    /// # Panics
    /// Panics if either mass is negative or both are zero.
    pub fn new(z_a: f64, z_b: f64) -> Self {
        assert!(z_a >= 0.0 && z_b >= 0.0, "component masses must be non-negative");
        assert!(z_a + z_b > 0.0, "at least one component must have positive mass");
        Self { z_a, z_b }
    }

    /// Probability of selecting component A.
    pub fn prob_a(&self) -> f64 {
        self.z_a / (self.z_a + self.z_b)
    }

    /// Draws from the mixture: calls `sample_a` or `sample_b` depending on the
    /// component selected.
    #[inline]
    pub fn sample<R: Rng, T>(
        &self,
        rng: &mut R,
        sample_a: impl FnOnce(&mut R) -> T,
        sample_b: impl FnOnce(&mut R) -> T,
    ) -> T {
        if rng.flip(self.prob_a()) {
            sample_a(rng)
        } else {
            sample_b(rng)
        }
    }

    /// Convenience for the common LDA proposal shape
    /// `q(k) ∝ counts[k] + smoothing` where `counts` are integer topic counts:
    /// component A is the empirical count distribution (sampled by *random
    /// positioning* — pick a random token of the document and reuse its
    /// topic, see Section 4.3), component B is the uniform smoothing term.
    ///
    /// `total_count` must equal `counts.iter().sum()`; the caller supplies a
    /// closure mapping a uniform index in `0..total_count` to a topic (for
    /// random positioning this is "the topic of the i-th token").
    pub fn count_plus_smoothing(total_count: u64, num_topics: usize, smoothing: f64) -> Self {
        Self::new(total_count as f64, smoothing * num_topics as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::new_rng;

    #[test]
    fn mixing_probability_is_correct() {
        let m = TwoTermMixture::new(3.0, 1.0);
        assert!((m.prob_a() - 0.75).abs() < 1e-12);
        let mut rng = new_rng(7);
        let n = 100_000;
        let a_count = (0..n).filter(|_| m.sample(&mut rng, |_| true, |_| false)).count();
        let frac = a_count as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn pure_components_are_degenerate() {
        let mut rng = new_rng(9);
        let only_a = TwoTermMixture::new(2.0, 0.0);
        let only_b = TwoTermMixture::new(0.0, 2.0);
        for _ in 0..100 {
            assert!(only_a.sample(&mut rng, |_| true, |_| false));
            assert!(!only_b.sample(&mut rng, |_| true, |_| false));
        }
    }

    #[test]
    fn count_plus_smoothing_matches_paper_mixing_coefficient() {
        // Section 4.3: the doc proposal mixes with coefficient L_d / (L_d + ᾱ).
        let l_d = 20u64;
        let k = 10usize;
        let alpha = 0.5;
        let m = TwoTermMixture::count_plus_smoothing(l_d, k, alpha);
        let alpha_bar = alpha * k as f64;
        assert!((m.prob_a() - l_d as f64 / (l_d as f64 + alpha_bar)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive mass")]
    fn both_zero_masses_panic() {
        let _ = TwoTermMixture::new(0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_mass_panics() {
        let _ = TwoTermMixture::new(-1.0, 2.0);
    }
}
