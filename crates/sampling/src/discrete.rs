//! Straightforward O(K) discrete samplers.
//!
//! These are the reference implementations: plain CGS uses them directly
//! (that is what makes it O(K) per token), and the tests use them as ground
//! truth for the O(1)/O(log K) structures.

use rand::Rng;

/// Draws an index with probability proportional to `weights[i]`, scanning the
/// array once (O(K)). Falls back to the last index if rounding leaves the
/// cursor past the end, and to a uniform draw if the total weight is zero.
pub fn sample_unnormalized<R: Rng>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "cannot sample from an empty weight vector");
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return rng.gen_range(0..weights.len());
    }
    let mut u = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Draws an index from an already-computed cumulative distribution (ascending
/// partial sums of non-negative weights) by linear scan.
pub fn sample_cdf_linear<R: Rng>(rng: &mut R, cdf: &[f64]) -> usize {
    assert!(!cdf.is_empty(), "cannot sample from an empty CDF");
    let total = *cdf.last().unwrap();
    if total <= 0.0 {
        return rng.gen_range(0..cdf.len());
    }
    let u = rng.gen::<f64>() * total;
    for (i, &c) in cdf.iter().enumerate() {
        if u < c {
            return i;
        }
    }
    cdf.len() - 1
}

/// A reusable cumulative sampler with binary-search draws (O(K) build,
/// O(log K) per draw). SparseLDA-style samplers use it for the per-document
/// bucket whose weights change only once per token.
#[derive(Debug, Clone)]
pub struct CumulativeSampler {
    cdf: Vec<f64>,
}

impl CumulativeSampler {
    /// Builds the sampler from unnormalized weights.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "cannot build a sampler over zero outcomes");
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            debug_assert!(w >= 0.0, "negative weight {w}");
            acc += w.max(0.0);
            cdf.push(acc);
        }
        Self { cdf }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` when there are no outcomes (never for constructed samplers).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Total unnormalized weight.
    pub fn total(&self) -> f64 {
        *self.cdf.last().unwrap()
    }

    /// Draws one outcome in O(log K).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let total = self.total();
        if total <= 0.0 {
            return rng.gen_range(0..self.cdf.len());
        }
        let u = rng.gen::<f64>() * total;
        match self.cdf.binary_search_by(|x| x.partial_cmp(&u).unwrap()) {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::new_rng;

    fn check_frequencies(sampler: impl Fn(&mut rand::rngs::SmallRng) -> usize, weights: &[f64]) {
        let mut rng = new_rng(101);
        let n = 100_000;
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..n {
            counts[sampler(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let f = counts[i] as f64 / n as f64;
            assert!((f - w / total).abs() < 0.012, "outcome {i}: {f} vs {}", w / total);
        }
    }

    #[test]
    fn linear_sampler_matches_weights() {
        let weights = [1.0, 3.0, 0.0, 6.0];
        check_frequencies(|r| sample_unnormalized(r, &weights), &weights);
    }

    #[test]
    fn cdf_linear_matches_weights() {
        let weights = [2.0, 2.0, 4.0];
        let cdf: Vec<f64> = weights
            .iter()
            .scan(0.0, |acc, &w| {
                *acc += w;
                Some(*acc)
            })
            .collect();
        check_frequencies(|r| sample_cdf_linear(r, &cdf), &weights);
    }

    #[test]
    fn cumulative_sampler_matches_weights() {
        let weights = [0.1, 0.0, 0.4, 0.5, 1.0];
        let s = CumulativeSampler::new(&weights);
        assert_eq!(s.len(), 5);
        assert!((s.total() - 2.0).abs() < 1e-12);
        check_frequencies(|r| s.sample(r), &weights);
    }

    #[test]
    fn zero_total_weight_is_uniform() {
        let mut rng = new_rng(5);
        let weights = [0.0, 0.0];
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[sample_unnormalized(&mut rng, &weights)] = true;
        }
        assert!(seen[0] && seen[1]);
        let s = CumulativeSampler::new(&weights);
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[s.sample(&mut rng)] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_weights_panic() {
        let mut rng = new_rng(1);
        let _ = sample_unnormalized(&mut rng, &[]);
    }

    #[test]
    fn single_outcome_always_returned() {
        let mut rng = new_rng(1);
        assert_eq!(sample_unnormalized(&mut rng, &[3.0]), 0);
        assert_eq!(CumulativeSampler::new(&[3.0]).sample(&mut rng), 0);
    }
}
