//! Sampling primitives used by every LDA algorithm in the workspace.
//!
//! * [`AliasTable`] — Walker's alias method (Section 2.2 of the paper):
//!   O(K) construction, O(1) draws. Used by AliasLDA, LightLDA and WarpLDA's
//!   word proposal.
//! * [`FTree`] — the "F+ tree" used by F+LDA: a flat complete binary tree over
//!   the topic weights supporting O(log K) point updates and O(log K) exact
//!   draws from the current distribution.
//! * [`discrete`] — straightforward cumulative-distribution samplers, used as
//!   the O(K) reference (plain CGS) and as ground truth in tests.
//! * [`mixture`] — sampling from a distribution expressed as the sum of two
//!   unnormalized terms by ancestral sampling (first pick the mixture
//!   component, then sample within it), exactly the construction in
//!   Section 2.2.
//! * [`mh`] — Metropolis–Hastings acceptance computations and a tiny chain
//!   driver (Algorithm 1).
//! * [`rng`] — deterministic RNG construction helpers shared by the samplers
//!   and experiments.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alias;
pub mod discrete;
pub mod ftree;
pub mod mh;
pub mod mixture;
pub mod rng;

pub use alias::{AliasBuildScratch, AliasTable, SparseAliasTable};
pub use discrete::{sample_cdf_linear, sample_unnormalized, CumulativeSampler};
pub use ftree::FTree;
pub use mh::{accept, MhChain};
pub use mixture::TwoTermMixture;
pub use rng::{new_rng, split_seed, Dice};
