//! Packed per-entry records: one interleaved, fixed-stride block of `u32`s
//! per matrix entry.
//!
//! WarpLDA keeps a topic assignment *and* `M` pending MH proposals per token.
//! Storing them as a [`TokenMatrix`](crate::TokenMatrix) data array plus a
//! flat side array means every token touch streams two arrays at once —
//! twice the number of hardware prefetch streams and twice the TLB pressure
//! for state that is always read and written together. A [`PackedRecords`]
//! stores the whole per-token record contiguously instead:
//!
//! ```text
//! record e (stride S = 1 + M):   [ z_e | p_0 | p_1 | … | p_{M-1} ]
//! data layout:                   record 0, record 1, record 2, …
//! ```
//!
//! Entry ids are CSC positions, so a column's records form one contiguous
//! block ([`block_mut`](PackedRecords::block_mut)) and a column visit is a
//! single sequential stream; row visits hop between records but each hop
//! lands on one cache-resident record instead of two distant ones.

/// Fixed-stride packed `u32` records, indexed by entry id.
///
/// The value at offset 0 of each record is the *primary* value (WarpLDA's
/// topic assignment); offsets `1..stride` are auxiliary (the MH proposals).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedRecords {
    stride: usize,
    data: Vec<u32>,
}

impl PackedRecords {
    /// `num_records` zero-initialized records of `stride` words each.
    ///
    /// # Panics
    /// Panics if `stride` is zero.
    pub fn new(num_records: usize, stride: usize) -> Self {
        assert!(stride >= 1, "records need at least the primary word");
        Self { stride, data: vec![0; num_records * stride] }
    }

    /// Wraps an existing flat buffer (e.g. decoded from a checkpoint).
    ///
    /// # Panics
    /// Panics if `stride` is zero or `data.len()` is not a multiple of it.
    pub fn from_raw(data: Vec<u32>, stride: usize) -> Self {
        assert!(stride >= 1, "records need at least the primary word");
        assert!(
            data.len().is_multiple_of(stride),
            "buffer of {} words is not a whole number of stride-{stride} records",
            data.len()
        );
        Self { stride, data }
    }

    /// Words per record.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of records.
    pub fn num_records(&self) -> usize {
        self.data.len() / self.stride
    }

    /// The whole buffer, record-major.
    pub fn as_slice(&self) -> &[u32] {
        &self.data
    }

    /// Mutable access to the whole buffer.
    pub fn as_mut_slice(&mut self) -> &mut [u32] {
        &mut self.data
    }

    /// Raw pointer to the buffer, for parallel visitors that hand disjoint
    /// record sets to different workers.
    pub fn as_mut_ptr(&mut self) -> *mut u32 {
        self.data.as_mut_ptr()
    }

    /// The primary value of record `e`.
    #[inline]
    pub fn primary(&self, e: usize) -> u32 {
        self.data[e * self.stride]
    }

    /// Sets the primary value of record `e`.
    #[inline]
    pub fn set_primary(&mut self, e: usize, v: u32) {
        self.data[e * self.stride] = v;
    }

    /// Record `e` as a slice of `stride` words.
    #[inline]
    pub fn record(&self, e: usize) -> &[u32] {
        &self.data[e * self.stride..(e + 1) * self.stride]
    }

    /// Record `e` as a mutable slice.
    #[inline]
    pub fn record_mut(&mut self, e: usize) -> &mut [u32] {
        &mut self.data[e * self.stride..(e + 1) * self.stride]
    }

    /// The contiguous block of a range of records (a CSC column, in WarpLDA's
    /// use), `records.len() * stride` words long.
    pub fn block_mut(&mut self, records: std::ops::Range<usize>) -> &mut [u32] {
        &mut self.data[records.start * self.stride..records.end * self.stride]
    }

    /// Iterates the primary values of all records in order.
    pub fn primaries(&self) -> impl Iterator<Item = u32> + '_ {
        self.data.iter().step_by(self.stride).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_interleaved() {
        let mut r = PackedRecords::new(3, 3);
        for e in 0..3 {
            let rec = r.record_mut(e);
            rec[0] = 10 * e as u32;
            rec[1] = 10 * e as u32 + 1;
            rec[2] = 10 * e as u32 + 2;
        }
        assert_eq!(r.as_slice(), &[0, 1, 2, 10, 11, 12, 20, 21, 22]);
        assert_eq!(r.primary(1), 10);
        assert_eq!(r.record(2), &[20, 21, 22]);
        assert_eq!(r.primaries().collect::<Vec<_>>(), vec![0, 10, 20]);
        r.set_primary(0, 99);
        assert_eq!(r.primary(0), 99);
    }

    #[test]
    fn block_of_a_record_range_is_contiguous() {
        let mut r = PackedRecords::new(4, 2);
        for (i, w) in r.as_mut_slice().iter_mut().enumerate() {
            *w = i as u32;
        }
        assert_eq!(r.block_mut(1..3), &[2, 3, 4, 5]);
        assert_eq!(r.block_mut(0..0), &[] as &[u32]);
    }

    #[test]
    fn from_raw_round_trips() {
        let r = PackedRecords::from_raw(vec![7, 8, 9, 10], 2);
        assert_eq!(r.num_records(), 2);
        assert_eq!(r.stride(), 2);
        assert_eq!(r.primary(1), 9);
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn from_raw_rejects_ragged_buffers() {
        let _ = PackedRecords::from_raw(vec![1, 2, 3], 2);
    }

    #[test]
    #[should_panic(expected = "at least the primary")]
    fn zero_stride_rejected() {
        let _ = PackedRecords::new(4, 0);
    }
}
