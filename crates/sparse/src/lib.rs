//! The distributed-sparse-matrix programming model of Section 5 of the paper.
//!
//! WarpLDA's only data structure is a `D × V` sparse matrix with one entry per
//! token occurrence; the algorithm is expressed as alternating
//! `VisitByRow` / `VisitByColumn` passes over it (Figure 2 of the paper).
//! This crate provides:
//!
//! * [`TokenMatrix`] — the matrix itself, stored exactly as Section 5.2
//!   prescribes: a single CSC copy of the entry data (column = word, entries
//!   within a column sorted by row id) plus an array of row pointers
//!   (`PCSR`) so rows can be visited through indirect, cache-line-friendly
//!   accesses without a transpose pass.
//! * [`DualLayoutMatrix`] — the alternative layout the paper rejects (explicit
//!   CSR **and** CSC copies synchronized by a transpose after every pass),
//!   kept for the ablation benchmark.
//! * [`records`] — fixed-stride packed per-entry records
//!   ([`PackedRecords`]): the assignment-plus-proposals state WarpLDA keeps
//!   per token, interleaved so each token touch is one sequential stream.
//! * [`partition`] — the balanced column/row partitioning strategies of
//!   Section 5.3.2 (static, dynamic, greedy), the imbalance index used in
//!   Figure 4, and the [`ChunkCursor`] atomic work queue that removes the
//!   tail imbalance static partitions leave behind.
//! * [`parallel`] — multi-threaded `VisitByRow` / `VisitByColumn` built on
//!   crossbeam scoped threads over the chunked work queue, mirroring the
//!   paper's shared-memory parallelization (Section 5.3.1).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod layout;
pub mod matrix;
pub mod parallel;
pub mod partition;
pub mod records;

pub use layout::DualLayoutMatrix;
pub use matrix::{ColumnEntriesMut, RowEntriesMut, TokenMatrix};
pub use parallel::{parallel_visit_by_column, parallel_visit_by_row, SendPtr};
pub use partition::{
    imbalance_index, partition_by_size, partition_loads, ChunkCursor, PartitionStrategy,
};
pub use records::PackedRecords;
