//! Balanced partitioning of rows/columns across workers (Section 5.3.2).
//!
//! The difficulty the paper highlights is that column sizes (word term
//! frequencies) follow a power law, so naive partitioning leaves some workers
//! with far more tokens than others. Three strategies are compared in
//! Figure 4:
//!
//! * **static** — randomly shuffle the columns, then give every partition the
//!   same *number of columns*;
//! * **dynamic** — keep columns in order but cut the sequence into contiguous
//!   slices with approximately equal *token counts*;
//! * **greedy** — sort columns by size (descending) and assign each to the
//!   currently least-loaded partition.
//!
//! The quality metric is the *imbalance index*:
//! `max_partition_tokens / mean_partition_tokens − 1` (0 is perfect balance).
//!
//! All three strategies assign items to workers *up front*, which leaves a
//! tail imbalance whenever the static estimate is wrong (power-law column
//! sizes, fewer items than workers, one worker descheduled by the OS). The
//! [`ChunkCursor`] complements them: a chunked atomic work queue that hands
//! out contiguous index ranges on demand, so whichever worker drains its
//! share first simply claims the next chunk.

use std::sync::atomic::{AtomicUsize, Ordering};

use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Partitioning strategy for distributing columns (or rows) across `p` workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Random shuffle, equal number of items per partition.
    Static {
        /// Shuffle seed (the paper's static strategy is randomized).
        seed: u64,
    },
    /// Contiguous slices with approximately equal token counts.
    Dynamic,
    /// Largest-first, least-loaded assignment.
    Greedy,
}

/// Assigns each item (column or row) to one of `num_partitions` partitions
/// based on its size, returning `assignment[item] = partition`.
///
/// # Panics
/// Panics if `num_partitions` is zero.
pub fn partition_by_size(
    sizes: &[u64],
    num_partitions: usize,
    strategy: PartitionStrategy,
) -> Vec<u32> {
    assert!(num_partitions > 0, "need at least one partition");
    let n = sizes.len();
    let mut assignment = vec![0u32; n];
    if n == 0 {
        return assignment;
    }
    match strategy {
        PartitionStrategy::Static { seed } => {
            let mut order: Vec<usize> = (0..n).collect();
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            order.shuffle(&mut rng);
            // Equal number of items per partition, in shuffled order.
            for (pos, &item) in order.iter().enumerate() {
                assignment[item] = (pos * num_partitions / n) as u32;
            }
        }
        PartitionStrategy::Dynamic => {
            // Contiguous slices targeting total/num_partitions tokens each.
            let total: u64 = sizes.iter().sum();
            let target = (total as f64 / num_partitions as f64).max(1.0);
            let mut current: u64 = 0;
            let mut part: u32 = 0;
            for (i, &s) in sizes.iter().enumerate() {
                // Close the current slice when it has reached its target, but never
                // run out of partitions before running out of items.
                if current as f64 >= target * (part as f64 + 1.0)
                    && (part as usize) < num_partitions - 1
                {
                    part += 1;
                }
                assignment[i] = part;
                current += s;
            }
        }
        PartitionStrategy::Greedy => {
            // Sort by size descending; assign to least-loaded partition.
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_unstable_by(|&a, &b| sizes[b].cmp(&sizes[a]).then(a.cmp(&b)));
            let mut loads = vec![0u64; num_partitions];
            for &item in &order {
                let (best, _) =
                    loads.iter().enumerate().min_by_key(|&(_, &l)| l).expect("num_partitions > 0");
                assignment[item] = best as u32;
                loads[best] += sizes[item];
            }
        }
    }
    assignment
}

/// A chunked atomic-cursor work queue over the index range `0..len`.
///
/// Workers call [`claim`](Self::claim) until it returns `None`; each claim is
/// a contiguous chunk of indices owned exclusively by the claiming worker.
/// Unlike an up-front partition there is no tail imbalance: a worker that
/// finishes early keeps claiming. Chunks keep claims contiguous (sequential
/// memory access within a claim) and amortize the atomic increment.
#[derive(Debug)]
pub struct ChunkCursor {
    next: AtomicUsize,
    len: usize,
    chunk: usize,
}

impl ChunkCursor {
    /// A cursor over `0..len` handing out chunks of `chunk` indices.
    ///
    /// # Panics
    /// Panics if `chunk` is zero.
    pub fn new(len: usize, chunk: usize) -> Self {
        assert!(chunk >= 1, "chunks must hold at least one index");
        Self { next: AtomicUsize::new(0), len, chunk }
    }

    /// A cursor whose chunk size targets ~32 claims per worker — small
    /// enough to absorb power-law size skew, large enough that the atomic
    /// increment is noise.
    pub fn for_workers(len: usize, num_workers: usize) -> Self {
        let claims = num_workers.max(1) * 32;
        Self::new(len, (len.div_ceil(claims.max(1))).clamp(1, 1024))
    }

    /// Total number of indices.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the cursor covers no indices.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Indices per claim (the final claim may be shorter).
    pub fn chunk_size(&self) -> usize {
        self.chunk
    }

    /// Claims the next chunk; `None` once the range is exhausted.
    pub fn claim(&self) -> Option<std::ops::Range<usize>> {
        let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.len {
            return None;
        }
        Some(start..(start + self.chunk).min(self.len))
    }

    /// Rewinds the cursor so the range can be drained again (requires
    /// exclusive access, i.e. all workers of the previous drain are done).
    pub fn reset(&mut self) {
        *self.next.get_mut() = 0;
    }
}

/// Computes the per-partition total sizes from an assignment.
pub fn partition_loads(sizes: &[u64], assignment: &[u32], num_partitions: usize) -> Vec<u64> {
    let mut loads = vec![0u64; num_partitions];
    for (i, &p) in assignment.iter().enumerate() {
        loads[p as usize] += sizes[i];
    }
    loads
}

/// The imbalance index of Figure 4:
/// `(largest partition) / (average partition) − 1`. Zero means perfect balance.
pub fn imbalance_index(loads: &[u64]) -> f64 {
    if loads.is_empty() {
        return 0.0;
    }
    let max = *loads.iter().max().unwrap() as f64;
    let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
    if mean <= 0.0 {
        0.0
    } else {
        max / mean - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zipf_sizes(n: usize, exponent: f64, total: u64) -> Vec<u64> {
        let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(exponent)).collect();
        let sum: f64 = weights.iter().sum();
        weights.iter().map(|w| ((w / sum) * total as f64).round() as u64 + 1).collect()
    }

    #[test]
    fn all_items_are_assigned_exactly_once() {
        let sizes = zipf_sizes(1000, 1.1, 1_000_000);
        for strategy in [
            PartitionStrategy::Static { seed: 1 },
            PartitionStrategy::Dynamic,
            PartitionStrategy::Greedy,
        ] {
            let a = partition_by_size(&sizes, 8, strategy);
            assert_eq!(a.len(), sizes.len());
            assert!(a.iter().all(|&p| (p as usize) < 8), "{strategy:?}");
            let loads = partition_loads(&sizes, &a, 8);
            assert_eq!(loads.iter().sum::<u64>(), sizes.iter().sum::<u64>(), "{strategy:?}");
        }
    }

    #[test]
    fn greedy_beats_static_and_dynamic_on_power_law() {
        // This is the qualitative claim of Figure 4. The vocabulary has to be
        // large enough that the most frequent word stays below the
        // per-partition share (the paper's ClueWeb12 vocabulary is 1M words).
        let sizes = zipf_sizes(50_000, 0.9, 10_000_000);
        let p = 16;
        let greedy = imbalance_index(&partition_loads(
            &sizes,
            &partition_by_size(&sizes, p, PartitionStrategy::Greedy),
            p,
        ));
        let stat = imbalance_index(&partition_loads(
            &sizes,
            &partition_by_size(&sizes, p, PartitionStrategy::Static { seed: 3 }),
            p,
        ));
        let dynamic = imbalance_index(&partition_loads(
            &sizes,
            &partition_by_size(&sizes, p, PartitionStrategy::Dynamic),
            p,
        ));
        assert!(greedy < stat, "greedy {greedy} should beat static {stat}");
        assert!(greedy < dynamic, "greedy {greedy} should beat dynamic {dynamic}");
        assert!(greedy < 0.05, "greedy imbalance should be small, got {greedy}");
    }

    #[test]
    fn imbalance_index_zero_for_perfect_balance() {
        assert_eq!(imbalance_index(&[5, 5, 5, 5]), 0.0);
        assert!(imbalance_index(&[]) == 0.0);
        assert!((imbalance_index(&[10, 0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_partition_takes_everything() {
        let sizes = vec![3, 1, 4, 1, 5];
        for strategy in [
            PartitionStrategy::Static { seed: 0 },
            PartitionStrategy::Dynamic,
            PartitionStrategy::Greedy,
        ] {
            let a = partition_by_size(&sizes, 1, strategy);
            assert!(a.iter().all(|&p| p == 0));
            assert_eq!(imbalance_index(&partition_loads(&sizes, &a, 1)), 0.0);
        }
    }

    #[test]
    fn more_partitions_than_items_leaves_some_empty_but_covers_all_items() {
        let sizes = vec![10, 20];
        let a = partition_by_size(&sizes, 8, PartitionStrategy::Greedy);
        let loads = partition_loads(&sizes, &a, 8);
        assert_eq!(loads.iter().sum::<u64>(), 30);
        assert_eq!(loads.iter().filter(|&&l| l > 0).count(), 2);
    }

    #[test]
    fn dynamic_partitions_are_contiguous() {
        let sizes = zipf_sizes(500, 1.0, 100_000);
        let a = partition_by_size(&sizes, 7, PartitionStrategy::Dynamic);
        // Assignment must be non-decreasing for contiguous slices.
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn empty_sizes_produce_empty_assignment() {
        let a = partition_by_size(&[], 4, PartitionStrategy::Greedy);
        assert!(a.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_panic() {
        let _ = partition_by_size(&[1, 2], 0, PartitionStrategy::Greedy);
    }

    #[test]
    fn chunk_cursor_covers_the_range_exactly_once() {
        let mut cursor = ChunkCursor::new(103, 10);
        let mut seen = vec![0u32; 103];
        while let Some(chunk) = cursor.claim() {
            for i in chunk {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
        assert!(cursor.claim().is_none(), "exhausted cursors stay exhausted");
        cursor.reset();
        assert_eq!(cursor.claim(), Some(0..10));
    }

    #[test]
    fn chunk_cursor_is_safe_under_concurrent_claims() {
        let cursor = ChunkCursor::for_workers(10_000, 4);
        let counts: Vec<std::sync::atomic::AtomicU32> =
            (0..10_000).map(|_| std::sync::atomic::AtomicU32::new(0)).collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    while let Some(chunk) = cursor.claim() {
                        for i in chunk {
                            counts[i].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert!(counts.iter().all(|c| c.load(std::sync::atomic::Ordering::Relaxed) == 1));
    }

    #[test]
    fn chunk_cursor_edge_cases() {
        assert!(ChunkCursor::new(0, 5).claim().is_none());
        assert!(ChunkCursor::for_workers(0, 8).is_empty());
        let one = ChunkCursor::for_workers(1, 64);
        assert_eq!(one.chunk_size(), 1);
        assert_eq!(one.claim(), Some(0..1));
        // Huge ranges cap the chunk so claims stay balanced.
        assert_eq!(ChunkCursor::for_workers(10_000_000, 2).chunk_size(), 1024);
    }

    #[test]
    #[should_panic(expected = "at least one index")]
    fn zero_chunk_size_rejected() {
        let _ = ChunkCursor::new(10, 0);
    }

    #[test]
    fn greedy_imbalance_grows_when_partitions_exceed_head_mass() {
        // The paper notes greedy degrades once the largest column exceeds the
        // per-partition share (hundreds of machines on ClueWeb). Reproduce the
        // qualitative effect: imbalance at p=4096 is much worse than at p=16.
        let sizes = zipf_sizes(5_000, 1.3, 2_000_000);
        let small_p = imbalance_index(&partition_loads(
            &sizes,
            &partition_by_size(&sizes, 16, PartitionStrategy::Greedy),
            16,
        ));
        let large_p = imbalance_index(&partition_loads(
            &sizes,
            &partition_by_size(&sizes, 4096, PartitionStrategy::Greedy),
            4096,
        ));
        assert!(large_p > small_p * 10.0, "large_p {large_p} vs small_p {small_p}");
    }
}
