//! The dual CSR + CSC layout that the paper considers and rejects
//! (Section 5.2: "One possible data layout is storing both YCSR and YCSC …
//! However, the transpose operation requires an extra pass of data which is
//! expensive").
//!
//! Kept here so the layout ablation benchmark can quantify the trade-off:
//! both row and column visits are fully sequential, but every switch between
//! a row pass and a column pass pays an explicit transpose.

/// A sparse matrix stored twice: once row-major (CSR) and once column-major
/// (CSC). Whichever copy was written last is the *fresh* copy; switching
/// visit direction triggers a transpose that copies the data across.
#[derive(Debug, Clone)]
pub struct DualLayoutMatrix<T> {
    num_rows: usize,
    num_cols: usize,
    // CSR.
    row_offsets: Vec<u32>,
    row_cols: Vec<u32>,
    row_data: Vec<T>,
    // CSC.
    col_offsets: Vec<u32>,
    col_rows: Vec<u32>,
    col_data: Vec<T>,
    /// Mapping from CSR position to CSC position of the same entry.
    csr_to_csc: Vec<u32>,
    /// Which copy holds the freshest data.
    fresh: Fresh,
    /// Number of transposes performed (exposed for the ablation bench).
    transposes: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fresh {
    Rows,
    Cols,
}

impl<T: Default + Clone> DualLayoutMatrix<T> {
    /// Builds the matrix from `(row, col)` entry positions with
    /// default-initialized data.
    pub fn from_entries(num_rows: usize, num_cols: usize, entries: &[(u32, u32)]) -> Self {
        for &(r, c) in entries {
            assert!((r as usize) < num_rows, "row {r} out of range ({num_rows} rows)");
            assert!((c as usize) < num_cols, "col {c} out of range ({num_cols} cols)");
        }
        let nnz = entries.len();

        // CSR.
        let mut row_offsets = vec![0u32; num_rows + 1];
        for &(r, _) in entries {
            row_offsets[r as usize + 1] += 1;
        }
        for d in 0..num_rows {
            row_offsets[d + 1] += row_offsets[d];
        }
        let mut row_cols = vec![0u32; nnz];
        let mut csr_order = vec![0usize; nnz];
        {
            let mut cursor = row_offsets.clone();
            for (idx, &(r, c)) in entries.iter().enumerate() {
                let slot = cursor[r as usize] as usize;
                row_cols[slot] = c;
                csr_order[slot] = idx;
                cursor[r as usize] += 1;
            }
        }

        // CSC.
        let mut col_offsets = vec![0u32; num_cols + 1];
        for &(_, c) in entries {
            col_offsets[c as usize + 1] += 1;
        }
        for w in 0..num_cols {
            col_offsets[w + 1] += col_offsets[w];
        }
        let mut col_rows = vec![0u32; nnz];
        let mut csr_to_csc = vec![0u32; nnz];
        {
            let mut cursor = col_offsets.clone();
            // Walk entries in CSR order so columns end up sorted by row.
            for (csr_pos, &orig) in csr_order.iter().enumerate() {
                let (r, c) = entries[orig];
                let slot = cursor[c as usize];
                cursor[c as usize] += 1;
                col_rows[slot as usize] = r;
                csr_to_csc[csr_pos] = slot;
            }
        }

        Self {
            num_rows,
            num_cols,
            row_offsets,
            row_cols,
            row_data: vec![T::default(); nnz],
            col_offsets,
            col_rows,
            col_data: vec![T::default(); nnz],
            csr_to_csc,
            fresh: Fresh::Rows,
            transposes: 0,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Number of entries.
    pub fn num_entries(&self) -> usize {
        self.row_data.len()
    }

    /// Number of transpose passes performed so far.
    pub fn transposes(&self) -> u64 {
        self.transposes
    }

    fn transpose_to_rows(&mut self) {
        for (csr_pos, &csc_pos) in self.csr_to_csc.iter().enumerate() {
            self.row_data[csr_pos] = self.col_data[csc_pos as usize].clone();
        }
        self.fresh = Fresh::Rows;
        self.transposes += 1;
    }

    fn transpose_to_cols(&mut self) {
        for (csr_pos, &csc_pos) in self.csr_to_csc.iter().enumerate() {
            self.col_data[csc_pos as usize] = self.row_data[csr_pos].clone();
        }
        self.fresh = Fresh::Cols;
        self.transposes += 1;
    }

    /// Visits every row sequentially; transposes first if the CSC copy is fresher.
    pub fn visit_by_row<F>(&mut self, mut op: F)
    where
        F: FnMut(u32, &[u32], &mut [T]),
    {
        if self.fresh == Fresh::Cols {
            self.transpose_to_rows();
        }
        for d in 0..self.num_rows {
            let range = self.row_offsets[d] as usize..self.row_offsets[d + 1] as usize;
            op(d as u32, &self.row_cols[range.clone()], &mut self.row_data[range]);
        }
        self.fresh = Fresh::Rows;
    }

    /// Visits every column sequentially; transposes first if the CSR copy is fresher.
    pub fn visit_by_column<F>(&mut self, mut op: F)
    where
        F: FnMut(u32, &[u32], &mut [T]),
    {
        if self.fresh == Fresh::Rows {
            self.transpose_to_cols();
        }
        for w in 0..self.num_cols {
            let range = self.col_offsets[w] as usize..self.col_offsets[w + 1] as usize;
            op(w as u32, &self.col_rows[range.clone()], &mut self.col_data[range]);
        }
        self.fresh = Fresh::Cols;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries() -> Vec<(u32, u32)> {
        vec![(0, 0), (0, 1), (1, 2), (1, 3), (1, 2), (1, 0), (2, 2), (2, 4)]
    }

    #[test]
    fn alternating_visits_preserve_data() {
        let mut m: DualLayoutMatrix<u32> = DualLayoutMatrix::from_entries(3, 5, &entries());
        // Stamp unique values in a row pass.
        let mut counter = 0;
        m.visit_by_row(|_, _, data| {
            for v in data {
                *v = counter;
                counter += 1;
            }
        });
        // Column pass must see a permutation of the stamped values.
        let mut seen = [false; 8];
        m.visit_by_column(|_, _, data| {
            for &v in data.iter() {
                assert!(!seen[v as usize]);
                seen[v as usize] = true;
            }
        });
        assert!(seen.iter().all(|&s| s));
        assert_eq!(m.transposes(), 1);
        // Another row pass: still a permutation (second transpose happened).
        let mut seen = [false; 8];
        m.visit_by_row(|_, _, data| {
            for &v in data.iter() {
                assert!(!seen[v as usize]);
                seen[v as usize] = true;
            }
        });
        assert!(seen.iter().all(|&s| s));
        assert_eq!(m.transposes(), 2);
    }

    #[test]
    fn repeated_same_direction_visits_do_not_transpose() {
        let mut m: DualLayoutMatrix<u8> = DualLayoutMatrix::from_entries(3, 5, &entries());
        m.visit_by_row(|_, _, _| {});
        m.visit_by_row(|_, _, _| {});
        assert_eq!(m.transposes(), 0);
        m.visit_by_column(|_, _, _| {});
        m.visit_by_column(|_, _, _| {});
        assert_eq!(m.transposes(), 1);
    }

    #[test]
    fn writes_round_trip_row_col_row() {
        let mut m: DualLayoutMatrix<u32> =
            DualLayoutMatrix::from_entries(2, 2, &[(0, 0), (1, 1), (0, 1)]);
        m.visit_by_row(|d, cols, data| {
            for (i, v) in data.iter_mut().enumerate() {
                *v = d * 100 + cols[i];
            }
        });
        m.visit_by_column(|w, rows, data| {
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, rows[i] * 100 + w);
            }
        });
        // Increment everything in the column pass and check rows see it.
        m.visit_by_column(|_, _, data| {
            for v in data {
                *v += 1;
            }
        });
        m.visit_by_row(|d, cols, data| {
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, d * 100 + cols[i] + 1);
            }
        });
    }

    #[test]
    fn shapes_are_reported() {
        let m: DualLayoutMatrix<u8> = DualLayoutMatrix::from_entries(4, 7, &[(3, 6)]);
        assert_eq!(m.num_rows(), 4);
        assert_eq!(m.num_cols(), 7);
        assert_eq!(m.num_entries(), 1);
    }
}
