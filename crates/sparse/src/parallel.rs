//! Multi-threaded `VisitByRow` / `VisitByColumn` (Section 5.3.1).
//!
//! The paper calls WarpLDA "embarrassingly parallel because the workers
//! operate on disjoint sets of data": a row (document) belongs to exactly one
//! worker, and so does a column (word). We reproduce that here with crossbeam
//! scoped threads pulling contiguous row/column chunks from a
//! [`ChunkCursor`] work queue — an up-front static partition would leave a
//! tail imbalance whenever the size estimate is off (power-law column
//! sizes), while the queue lets early finishers keep claiming work.
//!
//! Disjointness is what makes the shared mutation sound:
//!
//! * **Columns** own contiguous ranges of the CSC data; every column is
//!   claimed by exactly one worker, so the per-column slices created from
//!   the shared base pointer never overlap.
//! * **Rows** reach their entries through the pointer indirection, so the
//!   entries of different rows interleave in memory. Workers share a raw
//!   pointer to the data array; safety rests on the structural invariant
//!   that every entry id belongs to exactly one row, and each row is claimed
//!   by exactly one worker. This is the same argument the paper's C++
//!   implementation relies on.

use crossbeam::thread;

use crate::matrix::TokenMatrix;
use crate::partition::ChunkCursor;

/// A view of one row's entries handed to parallel row visitors.
///
/// Functionally identical to [`crate::matrix::RowEntriesMut`] but reads and
/// writes go through a shared raw pointer (see the module docs for the safety
/// argument).
pub struct ParRowEntries<'a, T> {
    entry_ids: &'a [u32],
    cols: &'a [u32],
    data: *mut T,
}

// SAFETY: a `ParRowEntries` only ever dereferences `data` at the entry ids of
// its own row, and the parallel driver hands each row to exactly one thread.
unsafe impl<'a, T: Send> Send for ParRowEntries<'a, T> {}

impl<'a, T> ParRowEntries<'a, T> {
    /// Number of entries in the row.
    pub fn len(&self) -> usize {
        self.entry_ids.len()
    }

    /// Returns `true` when the row has no entries.
    pub fn is_empty(&self) -> bool {
        self.entry_ids.is_empty()
    }

    /// Column (word) of the `i`-th entry.
    pub fn col(&self, i: usize) -> u32 {
        self.cols[i]
    }

    /// Stable entry id of the `i`-th entry.
    pub fn entry_id(&self, i: usize) -> u32 {
        self.entry_ids[i]
    }

    /// Reads the data of the `i`-th entry.
    pub fn get(&self, i: usize) -> &T {
        // SAFETY: see module docs — this row's entry ids are not touched by any
        // other thread during the visit.
        unsafe { &*self.data.add(self.entry_ids[i] as usize) }
    }

    /// Mutates the data of the `i`-th entry.
    #[allow(clippy::mut_from_ref)]
    pub fn get_mut(&self, i: usize) -> &mut T {
        // SAFETY: as above; additionally no two `i` map to the same entry id
        // within a row because entry ids are unique matrix-wide.
        unsafe { &mut *self.data.add(self.entry_ids[i] as usize) }
    }
}

/// Visits all rows with `num_threads` workers pulling row chunks from a
/// [`ChunkCursor`], so a handful of very long documents cannot serialize the
/// pass and no worker idles while rows remain.
///
/// `op` receives `(row_id, entries)` and must be safe to call concurrently
/// for *different* rows.
pub fn parallel_visit_by_row<T, F>(matrix: &mut TokenMatrix<T>, num_threads: usize, op: F)
where
    T: Send + Sync,
    F: Fn(u32, ParRowEntries<'_, T>) + Sync,
{
    let num_threads = num_threads.max(1);
    if num_threads == 1 || matrix.num_rows() <= 1 {
        serial_visit_by_row_shim(matrix, op);
        return;
    }

    let cursor = ChunkCursor::for_workers(matrix.num_rows(), num_threads);
    let parts = matrix.raw_parts_mut();
    let data_ptr = SendPtr(parts.data.as_mut_ptr());
    let row_offsets = parts.row_offsets;
    let row_ptr = parts.row_ptr;
    let row_cols = parts.row_cols;

    thread::scope(|scope| {
        for _ in 0..num_threads {
            let cursor = &cursor;
            let op = &op;
            scope.spawn(move |_| {
                // Capture the whole wrapper (edition-2021 closures would otherwise
                // capture only the raw-pointer field, which is not `Send`).
                let data_ptr = data_ptr;
                while let Some(chunk) = cursor.claim() {
                    for d in chunk {
                        let range = row_offsets[d] as usize..row_offsets[d + 1] as usize;
                        let view = ParRowEntries {
                            entry_ids: &row_ptr[range.clone()],
                            cols: &row_cols[range],
                            data: data_ptr.0,
                        };
                        op(d as u32, view);
                    }
                }
            });
        }
    })
    .expect("row visit worker panicked");
}

/// Serial fallback with the same closure signature as
/// [`parallel_visit_by_row`]; used internally and by callers that want a
/// uniform code path for one thread.
pub fn serial_visit_by_row_shim<T, F>(matrix: &mut TokenMatrix<T>, op: F)
where
    F: Fn(u32, ParRowEntries<'_, T>),
{
    let parts = matrix.raw_parts_mut();
    let data_ptr = parts.data.as_mut_ptr();
    for d in 0..parts.num_rows {
        let range = parts.row_offsets[d] as usize..parts.row_offsets[d + 1] as usize;
        let view = ParRowEntries {
            entry_ids: &parts.row_ptr[range.clone()],
            cols: &parts.row_cols[range],
            data: data_ptr,
        };
        op(d as u32, view);
    }
}

/// A view of one column's entries handed to parallel column visitors.
pub struct ParColumnEntries<'a, T> {
    first_entry_id: u32,
    rows: &'a [u32],
    data: &'a mut [T],
}

impl<'a, T> ParColumnEntries<'a, T> {
    /// Number of entries in the column.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the column has no entries.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Row (document) of the `i`-th entry.
    pub fn row(&self, i: usize) -> u32 {
        self.rows[i]
    }

    /// Stable entry id of the `i`-th entry.
    pub fn entry_id(&self, i: usize) -> u32 {
        self.first_entry_id + i as u32
    }

    /// Reads the data of the `i`-th entry.
    pub fn get(&self, i: usize) -> &T {
        &self.data[i]
    }

    /// Mutates the data of the `i`-th entry.
    pub fn get_mut(&mut self, i: usize) -> &mut T {
        &mut self.data[i]
    }

    /// The column's data as a contiguous slice.
    pub fn as_slice(&self) -> &[T] {
        self.data
    }
}

/// Visits all columns with `num_threads` workers pulling contiguous column
/// chunks from a [`ChunkCursor`]. The paper's dynamic slicing balances
/// columns once, up front, by token count; the work queue achieves the same
/// contiguous-claim locality while also absorbing the tail imbalance a
/// power-law head word leaves in any static split.
pub fn parallel_visit_by_column<T, F>(matrix: &mut TokenMatrix<T>, num_threads: usize, op: F)
where
    T: Send,
    F: Fn(u32, ParColumnEntries<'_, T>) + Sync,
{
    let num_threads = num_threads.max(1);
    let cursor = ChunkCursor::for_workers(matrix.num_cols(), num_threads);
    let parts = matrix.raw_parts_mut();
    let data_ptr = SendPtr(parts.data.as_mut_ptr());
    let col_offsets = parts.col_offsets;
    let entry_rows = parts.entry_rows;

    thread::scope(|scope| {
        for _ in 0..num_threads {
            let cursor = &cursor;
            let op = &op;
            scope.spawn(move |_| {
                let data_ptr = data_ptr;
                while let Some(chunk) = cursor.claim() {
                    for w in chunk {
                        let lo = col_offsets[w] as usize;
                        let len = col_offsets[w + 1] as usize - lo;
                        // SAFETY: a column's entries are the contiguous CSC
                        // range `lo..lo + len`, and every column is claimed by
                        // exactly one worker, so these slices never overlap.
                        let data =
                            unsafe { std::slice::from_raw_parts_mut(data_ptr.0.add(lo), len) };
                        let view = ParColumnEntries {
                            first_entry_id: col_offsets[w],
                            rows: &entry_rows[lo..lo + len],
                            data,
                        };
                        op(w as u32, view);
                    }
                }
            });
        }
    })
    .expect("column visit worker panicked");
}

/// Copyable wrapper making a raw pointer `Send`/`Sync` for the scoped threads.
/// A copyable raw-pointer wrapper for sharing a base pointer across scoped
/// worker threads. The single home of the idiom used by every parallel
/// driver in the workspace (sparse visitors, parallel WarpLDA, batch
/// inference): each copy must only be dereferenced at indices the holding
/// thread exclusively owns — disjoint rows/columns/chunks — which is what
/// the `Send`/`Sync` impls rely on. A soundness argument accompanies every
/// use site.
pub struct SendPtr<T>(pub *mut T);
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
// SAFETY: the pointer is only dereferenced at indices owned by a single
// thread; see the struct and module documentation.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    fn random_entries(rows: usize, cols: usize, n: usize, seed: u64) -> Vec<(u32, u32)> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        (0..n).map(|_| (rng.gen_range(0..rows) as u32, rng.gen_range(0..cols) as u32)).collect()
    }

    #[test]
    fn parallel_column_visit_touches_every_entry_once() {
        let entries = random_entries(50, 40, 3000, 1);
        let mut m: TokenMatrix<u32> = TokenMatrix::from_entries(50, 40, &entries);
        parallel_visit_by_column(&mut m, 4, |_, mut col| {
            for i in 0..col.len() {
                *col.get_mut(i) += 1;
            }
        });
        assert!(m.data().iter().all(|&v| v == 1), "every entry incremented exactly once");
    }

    #[test]
    fn parallel_row_visit_touches_every_entry_once() {
        let entries = random_entries(60, 30, 2500, 2);
        let mut m: TokenMatrix<u32> = TokenMatrix::from_entries(60, 30, &entries);
        parallel_visit_by_row(&mut m, 4, |_, row| {
            for i in 0..row.len() {
                *row.get_mut(i) += 1;
            }
        });
        assert!(m.data().iter().all(|&v| v == 1));
    }

    #[test]
    fn parallel_and_serial_column_visits_agree() {
        let entries = random_entries(30, 25, 1000, 3);
        let mut a: TokenMatrix<u64> = TokenMatrix::from_entries(30, 25, &entries);
        let mut b: TokenMatrix<u64> = TokenMatrix::from_entries(30, 25, &entries);
        a.visit_by_column(|w, mut col| {
            for i in 0..col.len() {
                *col.get_mut(i) = (w as u64) * 1000 + col.row(i) as u64;
            }
        });
        parallel_visit_by_column(&mut b, 3, |w, mut col| {
            for i in 0..col.len() {
                *col.get_mut(i) = (w as u64) * 1000 + col.row(i) as u64;
            }
        });
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn parallel_and_serial_row_visits_agree() {
        let entries = random_entries(40, 20, 1500, 4);
        let mut a: TokenMatrix<u64> = TokenMatrix::from_entries(40, 20, &entries);
        let mut b: TokenMatrix<u64> = TokenMatrix::from_entries(40, 20, &entries);
        a.visit_by_row(|d, mut row| {
            for i in 0..row.len() {
                *row.get_mut(i) = (d as u64) * 1000 + row.col(i) as u64;
            }
        });
        parallel_visit_by_row(&mut b, 5, |d, row| {
            for i in 0..row.len() {
                *row.get_mut(i) = (d as u64) * 1000 + row.col(i) as u64;
            }
        });
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn each_row_is_visited_by_exactly_one_worker() {
        let entries = random_entries(100, 10, 2000, 5);
        let mut m: TokenMatrix<u8> = TokenMatrix::from_entries(100, 10, &entries);
        let visits = Mutex::new(vec![0u32; 100]);
        parallel_visit_by_row(&mut m, 6, |d, _| {
            visits.lock().unwrap()[d as usize] += 1;
        });
        assert!(visits.lock().unwrap().iter().all(|&v| v == 1));
    }

    #[test]
    fn serial_shim_matches_parallel() {
        let entries = random_entries(20, 20, 400, 6);
        let mut a: TokenMatrix<u32> = TokenMatrix::from_entries(20, 20, &entries);
        let mut b: TokenMatrix<u32> = TokenMatrix::from_entries(20, 20, &entries);
        serial_visit_by_row_shim(&mut a, |d, row| {
            for i in 0..row.len() {
                *row.get_mut(i) = d + row.col(i);
            }
        });
        parallel_visit_by_row(&mut b, 3, |d, row| {
            for i in 0..row.len() {
                *row.get_mut(i) = d + row.col(i);
            }
        });
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn more_threads_than_columns_still_works() {
        let entries = vec![(0u32, 0u32), (1, 1), (2, 1)];
        let mut m: TokenMatrix<u32> = TokenMatrix::from_entries(3, 2, &entries);
        parallel_visit_by_column(&mut m, 16, |_, mut col| {
            for i in 0..col.len() {
                *col.get_mut(i) += 7;
            }
        });
        assert!(m.data().iter().all(|&v| v == 7));
    }
}
