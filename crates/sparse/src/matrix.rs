//! The [`TokenMatrix`]: CSC storage with row pointers (Section 5.2).
//!
//! The matrix structure (which cells contain entries) is fixed at
//! construction; only the per-entry data is mutated by visits. Each entry has
//! a stable **entry id** — its position in the CSC data array — which callers
//! can use to maintain auxiliary per-token arrays (WarpLDA stores its MH
//! proposals this way).

/// A sparse `rows × cols` matrix with one data item of type `T` per entry.
///
/// * Column-major (CSC) storage of the data: the entries of column `w` are
///   contiguous and sorted by row id, so `VisitByColumn` makes purely
///   sequential accesses.
/// * Row access goes through a pointer array (`PCSR`): for each row, the list
///   of CSC positions of its entries, in column order. `VisitByRow` therefore
///   performs indirect accesses into the CSC data — but, because every
///   column's entries are sorted by row, those indirect accesses sweep each
///   column's region monotonically, which is the cache-line reuse argument of
///   Section 5.2.
#[derive(Debug, Clone)]
pub struct TokenMatrix<T> {
    num_rows: usize,
    num_cols: usize,
    /// `col_offsets[w]..col_offsets[w+1]` is the CSC range of column `w`.
    col_offsets: Vec<u32>,
    /// Row id of each entry, in CSC order.
    entry_rows: Vec<u32>,
    /// Per-entry data, in CSC order.
    data: Vec<T>,
    /// `row_offsets[d]..row_offsets[d+1]` is the range of `row_ptr` for row `d`.
    row_offsets: Vec<u32>,
    /// CSC positions of each row's entries, grouped by row, column-ascending.
    row_ptr: Vec<u32>,
    /// Column id of each entry of `row_ptr` (parallel array), so row visits
    /// know which column an entry belongs to without touching `col_offsets`.
    row_cols: Vec<u32>,
}

impl<T: Default + Clone> TokenMatrix<T> {
    /// Builds the matrix from `(row, col)` pairs (one per entry, duplicates
    /// allowed — a word occurring twice in a document is two entries), with
    /// default-initialized data.
    pub fn from_entries(num_rows: usize, num_cols: usize, entries: &[(u32, u32)]) -> Self {
        for &(r, c) in entries {
            assert!((r as usize) < num_rows, "row {r} out of range ({num_rows} rows)");
            assert!((c as usize) < num_cols, "col {c} out of range ({num_cols} cols)");
        }
        let nnz = entries.len();

        // Column offsets (counting sort by column).
        let mut col_offsets = vec![0u32; num_cols + 1];
        for &(_, c) in entries {
            col_offsets[c as usize + 1] += 1;
        }
        for w in 0..num_cols {
            col_offsets[w + 1] += col_offsets[w];
        }

        // Fill CSC arrays. Iterating entries sorted by row first guarantees that
        // within each column the rows are ascending (the property Section 5.2
        // relies on); we do that by a counting pass over rows.
        let mut row_counts = vec![0u32; num_rows + 1];
        for &(r, _) in entries {
            row_counts[r as usize + 1] += 1;
        }
        for d in 0..num_rows {
            row_counts[d + 1] += row_counts[d];
        }
        let row_offsets = row_counts.clone();
        // Entries ordered by row (stable within a row = input order).
        let mut by_row: Vec<(u32, u32)> = vec![(0, 0); nnz];
        {
            let mut cursor = row_counts.clone();
            for &(r, c) in entries {
                let slot = cursor[r as usize] as usize;
                by_row[slot] = (r, c);
                cursor[r as usize] += 1;
            }
        }

        let mut entry_rows = vec![0u32; nnz];
        let mut row_ptr = vec![0u32; nnz];
        let mut row_cols = vec![0u32; nnz];
        let mut col_cursor = col_offsets.clone();
        for (row_slot, &(r, c)) in by_row.iter().enumerate() {
            let pos = col_cursor[c as usize];
            col_cursor[c as usize] += 1;
            entry_rows[pos as usize] = r;
            row_ptr[row_slot] = pos;
            row_cols[row_slot] = c;
        }

        Self {
            num_rows,
            num_cols,
            col_offsets,
            entry_rows,
            data: vec![T::default(); nnz],
            row_offsets,
            row_ptr,
            row_cols,
        }
    }
}

impl<T> TokenMatrix<T> {
    /// Number of rows (documents).
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns (words).
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Number of entries (tokens).
    pub fn num_entries(&self) -> usize {
        self.data.len()
    }

    /// Number of entries in row `d` (`L_d`).
    pub fn row_len(&self, row: u32) -> usize {
        let r = row as usize;
        (self.row_offsets[r + 1] - self.row_offsets[r]) as usize
    }

    /// Number of entries in column `w` (`L_w`, the term frequency).
    pub fn col_len(&self, col: u32) -> usize {
        let c = col as usize;
        (self.col_offsets[c + 1] - self.col_offsets[c]) as usize
    }

    /// The per-entry data, indexed by entry id (CSC position).
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the per-entry data.
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Row id of the entry with the given id.
    pub fn entry_row(&self, entry_id: u32) -> u32 {
        self.entry_rows[entry_id as usize]
    }

    /// Entry ids of row `d`, in column order.
    pub fn row_entry_ids(&self, row: u32) -> &[u32] {
        let r = row as usize;
        &self.row_ptr[self.row_offsets[r] as usize..self.row_offsets[r + 1] as usize]
    }

    /// Column ids of the entries of row `d` (parallel to
    /// [`row_entry_ids`](Self::row_entry_ids)).
    pub fn row_entry_cols(&self, row: u32) -> &[u32] {
        let r = row as usize;
        &self.row_cols[self.row_offsets[r] as usize..self.row_offsets[r + 1] as usize]
    }

    /// Entry-id range of column `w` (entry ids of a column are contiguous).
    pub fn col_entry_range(&self, col: u32) -> std::ops::Range<usize> {
        let c = col as usize;
        self.col_offsets[c] as usize..self.col_offsets[c + 1] as usize
    }

    /// Row ids of the entries of column `w`, ascending.
    pub fn col_entry_rows(&self, col: u32) -> &[u32] {
        &self.entry_rows[self.col_entry_range(col)]
    }

    /// Visits every row in order, giving the closure mutable access to the
    /// row's entries (`VisitByRow` of Figure 2).
    pub fn visit_by_row<F>(&mut self, mut op: F)
    where
        F: FnMut(u32, RowEntriesMut<'_, T>),
    {
        for d in 0..self.num_rows as u32 {
            let r = d as usize;
            let range = self.row_offsets[r] as usize..self.row_offsets[r + 1] as usize;
            let view = RowEntriesMut {
                entry_ids: &self.row_ptr[range.clone()],
                cols: &self.row_cols[range],
                data: &mut self.data,
            };
            op(d, view);
        }
    }

    /// Visits every column in order, giving the closure mutable access to the
    /// column's entries (`VisitByColumn` of Figure 2).
    pub fn visit_by_column<F>(&mut self, mut op: F)
    where
        F: FnMut(u32, ColumnEntriesMut<'_, T>),
    {
        for w in 0..self.num_cols as u32 {
            let range = self.col_entry_range(w);
            let start = range.start;
            let view = ColumnEntriesMut {
                first_entry_id: start as u32,
                rows: &self.entry_rows[range.clone()],
                data: &mut self.data[range],
            };
            op(w, view);
        }
    }

    /// Splits the matrix into per-column raw parts for the parallel visitor.
    /// Internal to the crate.
    pub(crate) fn raw_parts_mut(&mut self) -> RawParts<'_, T> {
        RawParts {
            num_rows: self.num_rows,
            col_offsets: &self.col_offsets,
            entry_rows: &self.entry_rows,
            row_offsets: &self.row_offsets,
            row_ptr: &self.row_ptr,
            row_cols: &self.row_cols,
            data: &mut self.data,
        }
    }
}

/// Borrowed raw parts used by the parallel visitors.
pub(crate) struct RawParts<'a, T> {
    pub num_rows: usize,
    pub col_offsets: &'a [u32],
    pub entry_rows: &'a [u32],
    pub row_offsets: &'a [u32],
    pub row_ptr: &'a [u32],
    pub row_cols: &'a [u32],
    pub data: &'a mut [T],
}

/// Mutable view of one row's entries during `VisitByRow`.
///
/// Accesses go through the row-pointer indirection, exactly like the real
/// layout: `get`/`get_mut` cost one extra index load compared to the column
/// view.
pub struct RowEntriesMut<'a, T> {
    entry_ids: &'a [u32],
    cols: &'a [u32],
    data: &'a mut [T],
}

impl<'a, T> RowEntriesMut<'a, T> {
    /// Number of entries in the row.
    pub fn len(&self) -> usize {
        self.entry_ids.len()
    }

    /// Returns `true` when the row has no entries.
    pub fn is_empty(&self) -> bool {
        self.entry_ids.is_empty()
    }

    /// Column (word) of the `i`-th entry of the row.
    pub fn col(&self, i: usize) -> u32 {
        self.cols[i]
    }

    /// Stable entry id of the `i`-th entry of the row.
    pub fn entry_id(&self, i: usize) -> u32 {
        self.entry_ids[i]
    }

    /// Data of the `i`-th entry.
    pub fn get(&self, i: usize) -> &T {
        &self.data[self.entry_ids[i] as usize]
    }

    /// Mutable data of the `i`-th entry.
    pub fn get_mut(&mut self, i: usize) -> &mut T {
        &mut self.data[self.entry_ids[i] as usize]
    }
}

/// Mutable view of one column's entries during `VisitByColumn`.
///
/// The column's data is a contiguous slice, so this view also exposes it
/// directly for vectorizable scans.
pub struct ColumnEntriesMut<'a, T> {
    first_entry_id: u32,
    rows: &'a [u32],
    data: &'a mut [T],
}

impl<'a, T> ColumnEntriesMut<'a, T> {
    /// Number of entries in the column.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the column has no entries.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Row (document) of the `i`-th entry of the column.
    pub fn row(&self, i: usize) -> u32 {
        self.rows[i]
    }

    /// Stable entry id of the `i`-th entry of the column.
    pub fn entry_id(&self, i: usize) -> u32 {
        self.first_entry_id + i as u32
    }

    /// Data of the `i`-th entry.
    pub fn get(&self, i: usize) -> &T {
        &self.data[i]
    }

    /// Mutable data of the `i`-th entry.
    pub fn get_mut(&mut self, i: usize) -> &mut T {
        &mut self.data[i]
    }

    /// The whole column's data as a contiguous slice.
    pub fn as_slice(&self) -> &[T] {
        self.data
    }

    /// The whole column's data as a contiguous mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 1 matrix: 3 docs × 5 words, 8 tokens.
    fn fig1_entries() -> Vec<(u32, u32)> {
        // doc 0: ios(0) android(1)
        // doc 1: apple(2) iphone(3) apple(2) ios(0)
        // doc 2: apple(2) orange(4)
        vec![(0, 0), (0, 1), (1, 2), (1, 3), (1, 2), (1, 0), (2, 2), (2, 4)]
    }

    #[test]
    fn construction_counts_rows_and_cols() {
        let m: TokenMatrix<u32> = TokenMatrix::from_entries(3, 5, &fig1_entries());
        assert_eq!(m.num_rows(), 3);
        assert_eq!(m.num_cols(), 5);
        assert_eq!(m.num_entries(), 8);
        assert_eq!(m.row_len(0), 2);
        assert_eq!(m.row_len(1), 4);
        assert_eq!(m.row_len(2), 2);
        assert_eq!(m.col_len(0), 2); // ios
        assert_eq!(m.col_len(2), 3); // apple
        assert_eq!(m.col_len(4), 1); // orange
    }

    #[test]
    fn columns_are_sorted_by_row() {
        let m: TokenMatrix<u32> = TokenMatrix::from_entries(3, 5, &fig1_entries());
        for w in 0..5u32 {
            let rows = m.col_entry_rows(w);
            assert!(rows.windows(2).all(|p| p[0] <= p[1]), "column {w}: {rows:?}");
        }
    }

    #[test]
    fn row_and_column_views_see_the_same_entries() {
        let mut m: TokenMatrix<u32> = TokenMatrix::from_entries(3, 5, &fig1_entries());
        // Stamp each entry with a unique value via column visits…
        let mut counter = 0u32;
        m.visit_by_column(|_, mut col| {
            for i in 0..col.len() {
                *col.get_mut(i) = counter;
                counter += 1;
            }
        });
        // …and verify row visits observe a permutation of exactly those values.
        let mut seen = [false; 8];
        m.visit_by_row(|_, row| {
            for i in 0..row.len() {
                let v = *row.get(i) as usize;
                assert!(!seen[v], "value {v} seen twice");
                seen[v] = true;
            }
        });
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn row_visit_reports_correct_columns() {
        let mut m: TokenMatrix<u32> = TokenMatrix::from_entries(3, 5, &fig1_entries());
        let mut per_row_cols: Vec<Vec<u32>> = vec![Vec::new(); 3];
        m.visit_by_row(|d, row| {
            for i in 0..row.len() {
                per_row_cols[d as usize].push(row.col(i));
            }
        });
        let mut row1 = per_row_cols[1].clone();
        row1.sort_unstable();
        assert_eq!(row1, vec![0, 2, 2, 3]);
        let mut row2 = per_row_cols[2].clone();
        row2.sort_unstable();
        assert_eq!(row2, vec![2, 4]);
    }

    #[test]
    fn entry_ids_are_stable_across_view_kinds() {
        let mut m: TokenMatrix<u64> = TokenMatrix::from_entries(3, 5, &fig1_entries());
        // Write entry_id into each entry via row visits.
        m.visit_by_row(|_, mut row| {
            for i in 0..row.len() {
                *row.get_mut(i) = row.entry_id(i) as u64;
            }
        });
        // Column visits must see data[i] == entry_id(i).
        m.visit_by_column(|_, col| {
            for i in 0..col.len() {
                assert_eq!(*col.get(i), col.entry_id(i) as u64);
            }
        });
        // And the flat data array is the identity permutation.
        for (i, &v) in m.data().iter().enumerate() {
            assert_eq!(v, i as u64);
        }
    }

    #[test]
    fn writes_from_one_view_are_visible_in_the_other() {
        let mut m: TokenMatrix<u32> = TokenMatrix::from_entries(2, 2, &[(0, 0), (0, 1), (1, 1)]);
        m.visit_by_row(|d, mut row| {
            for i in 0..row.len() {
                *row.get_mut(i) = d + 10;
            }
        });
        let mut seen = Vec::new();
        m.visit_by_column(|w, col| {
            for i in 0..col.len() {
                seen.push((w, col.row(i), *col.get(i)));
            }
        });
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 0, 10), (1, 0, 10), (1, 1, 11)]);
    }

    #[test]
    fn empty_matrix_and_empty_rows() {
        let mut m: TokenMatrix<u8> = TokenMatrix::from_entries(3, 3, &[]);
        assert_eq!(m.num_entries(), 0);
        let mut rows_visited = 0;
        m.visit_by_row(|_, row| {
            assert!(row.is_empty());
            rows_visited += 1;
        });
        assert_eq!(rows_visited, 3);
        let mut cols_visited = 0;
        m.visit_by_column(|_, col| {
            assert!(col.is_empty());
            cols_visited += 1;
        });
        assert_eq!(cols_visited, 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_entry_panics() {
        let _: TokenMatrix<u8> = TokenMatrix::from_entries(2, 2, &[(2, 0)]);
    }

    #[test]
    fn duplicate_cells_are_distinct_entries() {
        let m: TokenMatrix<u8> = TokenMatrix::from_entries(1, 1, &[(0, 0), (0, 0), (0, 0)]);
        assert_eq!(m.num_entries(), 3);
        assert_eq!(m.row_len(0), 3);
        assert_eq!(m.col_len(0), 3);
    }
}
