//! Bidirectional word ⇄ id mapping.

use std::collections::HashMap;

use crate::WordId;

/// A bidirectional mapping between word strings and dense `u32` ids.
///
/// Ids are assigned in insertion order starting from zero, so a vocabulary
/// built by scanning a corpus front to back is deterministic.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    words: Vec<String>,
    index: HashMap<String, WordId>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a vocabulary with `n` synthetic word strings `w0, w1, ...`.
    ///
    /// Used by the synthetic corpus generators, where words carry no meaning
    /// beyond their id.
    pub fn synthetic(n: usize) -> Self {
        let mut v = Self::with_capacity(n);
        for i in 0..n {
            v.intern(&format!("w{i}"));
        }
        v
    }

    /// Creates an empty vocabulary with room for `capacity` words.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { words: Vec::with_capacity(capacity), index: HashMap::with_capacity(capacity) }
    }

    /// Number of distinct words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Returns `true` when the vocabulary contains no words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Returns the id of `word`, inserting it if necessary.
    pub fn intern(&mut self, word: &str) -> WordId {
        if let Some(&id) = self.index.get(word) {
            return id;
        }
        let id = self.words.len() as WordId;
        self.words.push(word.to_owned());
        self.index.insert(word.to_owned(), id);
        id
    }

    /// Returns the id of `word` if it is already known.
    pub fn get(&self, word: &str) -> Option<WordId> {
        self.index.get(word).copied()
    }

    /// Returns the word string for `id`, or `None` if out of range.
    pub fn word(&self, id: WordId) -> Option<&str> {
        self.words.get(id as usize).map(String::as_str)
    }

    /// Iterates over `(id, word)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (WordId, &str)> {
        self.words.iter().enumerate().map(|(i, w)| (i as WordId, w.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("apple");
        let b = v.intern("banana");
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(v.intern("apple"), a);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn lookup_round_trips() {
        let mut v = Vocabulary::new();
        for w in ["ios", "android", "apple", "iphone", "orange"] {
            v.intern(w);
        }
        for w in ["ios", "android", "apple", "iphone", "orange"] {
            let id = v.get(w).unwrap();
            assert_eq!(v.word(id), Some(w));
        }
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.word(99), None);
    }

    #[test]
    fn synthetic_vocab_has_requested_size() {
        let v = Vocabulary::synthetic(100);
        assert_eq!(v.len(), 100);
        assert_eq!(v.word(42), Some("w42"));
        assert_eq!(v.get("w99"), Some(99));
    }

    #[test]
    fn empty_vocab() {
        let v = Vocabulary::new();
        assert!(v.is_empty());
        assert_eq!(v.iter().count(), 0);
    }

    #[test]
    fn codec_round_trip() {
        // Real persistence goes through the binary codec, not derives.
        use crate::io::codec::{read_vocab, write_vocab, Decoder, Encoder};
        let mut v = Vocabulary::new();
        v.intern("alpha");
        v.intern("beta");
        let mut buf = Vec::new();
        write_vocab(&mut Encoder::new(&mut buf), &v).unwrap();
        let mut cursor = buf.as_slice();
        let back = read_vocab(&mut Decoder::new(&mut cursor)).unwrap();
        assert_eq!(back.word(0), Some("alpha"));
        assert_eq!(back.get("beta"), Some(1));
    }
}
