//! The [`Corpus`] container and its builder.

use crate::{CorpusError, CorpusStats, DocId, Document, Vocabulary, WordId};

/// A bag-of-words corpus: a set of documents over a shared vocabulary.
///
/// This is the input to every LDA sampler in the workspace. The corpus is
/// immutable after construction; the samplers keep all mutable state (topic
/// assignments, counts) separately so that one corpus can be shared across
/// threads and across samplers.
#[derive(Debug, Clone)]
pub struct Corpus {
    docs: Vec<Document>,
    vocab: Vocabulary,
    num_tokens: u64,
}

impl Corpus {
    /// Builds a corpus from parts, validating that all token ids are within
    /// the vocabulary.
    pub fn from_parts(docs: Vec<Document>, vocab: Vocabulary) -> Result<Self, CorpusError> {
        let vocab_size = vocab.len();
        let mut num_tokens = 0u64;
        for d in &docs {
            for &w in d.tokens() {
                if (w as usize) >= vocab_size {
                    return Err(CorpusError::WordOutOfRange { word: w, vocab_size });
                }
            }
            num_tokens += d.len() as u64;
        }
        Ok(Self { docs, vocab, num_tokens })
    }

    /// Builds a corpus from token-id documents with an anonymous synthetic
    /// vocabulary sized to the largest token id plus one.
    pub fn from_token_docs(docs: Vec<Vec<WordId>>) -> Self {
        let max_word = docs.iter().flat_map(|d| d.iter().copied()).max().map_or(0, |m| m + 1);
        let vocab = Vocabulary::synthetic(max_word as usize);
        let docs: Vec<Document> = docs.into_iter().map(Document::from_tokens).collect();
        let num_tokens = docs.iter().map(|d| d.len() as u64).sum();
        Self { docs, vocab, num_tokens }
    }

    /// Number of documents (`D` in the paper).
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// Vocabulary size (`V` in the paper).
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Total number of token occurrences (`T` in Table 3).
    pub fn num_tokens(&self) -> u64 {
        self.num_tokens
    }

    /// The documents.
    pub fn docs(&self) -> &[Document] {
        &self.docs
    }

    /// A single document.
    pub fn doc(&self, d: DocId) -> Option<&Document> {
        self.docs.get(d as usize)
    }

    /// The vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Term frequency of every word: `tf[w]` = number of occurrences of `w`
    /// in the whole corpus (`L_w` in Section 4.1).
    pub fn term_frequencies(&self) -> Vec<u64> {
        let mut tf = vec![0u64; self.vocab_size()];
        for d in &self.docs {
            for &w in d.tokens() {
                tf[w as usize] += 1;
            }
        }
        tf
    }

    /// Summary statistics (the rows of Table 3).
    pub fn stats(&self) -> CorpusStats {
        CorpusStats::from_corpus(self)
    }

    /// Iterates over `(doc_id, document)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (DocId, &Document)> {
        self.docs.iter().enumerate().map(|(i, d)| (i as DocId, d))
    }
}

/// Incremental builder used by the readers and generators.
#[derive(Debug, Default)]
pub struct CorpusBuilder {
    docs: Vec<Document>,
    vocab: Vocabulary,
}

impl CorpusBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with a pre-existing vocabulary (token-id documents
    /// must then stay within it).
    pub fn with_vocab(vocab: Vocabulary) -> Self {
        Self { docs: Vec::new(), vocab }
    }

    /// Adds a document given as raw word strings, interning new words.
    pub fn push_text_doc<'a, I: IntoIterator<Item = &'a str>>(&mut self, words: I) -> DocId {
        let tokens: Vec<WordId> = words.into_iter().map(|w| self.vocab.intern(w)).collect();
        self.push_token_doc(tokens)
    }

    /// Adds a document given as token ids.
    pub fn push_token_doc(&mut self, tokens: Vec<WordId>) -> DocId {
        let id = self.docs.len() as DocId;
        self.docs.push(Document::from_tokens(tokens));
        id
    }

    /// Number of documents added so far.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// Access to the growing vocabulary.
    pub fn vocab_mut(&mut self) -> &mut Vocabulary {
        &mut self.vocab
    }

    /// Finalizes the corpus.
    pub fn build(self) -> Result<Corpus, CorpusError> {
        Corpus::from_parts(self.docs, self.vocab)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Corpus {
        // The Figure 1 example: 3 documents over {ios, android, apple, iphone, orange}.
        let mut b = CorpusBuilder::new();
        b.push_text_doc(["ios", "android"]);
        b.push_text_doc(["apple", "iphone", "apple", "ios"]);
        b.push_text_doc(["apple", "orange"]);
        b.build().unwrap()
    }

    #[test]
    fn counts_match_figure1_example() {
        let c = tiny();
        assert_eq!(c.num_docs(), 3);
        assert_eq!(c.vocab_size(), 5);
        assert_eq!(c.num_tokens(), 8);
        let tf = c.term_frequencies();
        let apple = c.vocab().get("apple").unwrap() as usize;
        assert_eq!(tf[apple], 3);
        assert_eq!(tf.iter().sum::<u64>(), 8);
    }

    #[test]
    fn from_token_docs_builds_synthetic_vocab() {
        let c = Corpus::from_token_docs(vec![vec![0, 4, 2], vec![1]]);
        assert_eq!(c.vocab_size(), 5);
        assert_eq!(c.num_tokens(), 4);
        assert_eq!(c.doc(1).unwrap().tokens(), &[1]);
        assert!(c.doc(2).is_none());
    }

    #[test]
    fn out_of_range_token_is_rejected() {
        let vocab = Vocabulary::synthetic(3);
        let err = Corpus::from_parts(vec![Document::from_tokens(vec![0, 3])], vocab).unwrap_err();
        match err {
            CorpusError::WordOutOfRange { word, vocab_size } => {
                assert_eq!(word, 3);
                assert_eq!(vocab_size, 3);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn empty_corpus_is_allowed_by_from_parts() {
        let c = Corpus::from_parts(vec![], Vocabulary::new()).unwrap();
        assert_eq!(c.num_docs(), 0);
        assert_eq!(c.num_tokens(), 0);
    }

    #[test]
    fn builder_with_existing_vocab() {
        let vocab = Vocabulary::synthetic(10);
        let mut b = CorpusBuilder::with_vocab(vocab);
        b.push_token_doc(vec![0, 9, 3]);
        let c = b.build().unwrap();
        assert_eq!(c.vocab_size(), 10);
        assert_eq!(c.num_tokens(), 3);
    }
}
