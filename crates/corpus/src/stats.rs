//! Corpus summary statistics (Table 3 of the paper).

use crate::Corpus;

/// Summary statistics of a corpus, matching the columns of Table 3:
/// `D` (documents), `T` (tokens), `V` (vocabulary), `T/D` (mean document
/// length), plus a few extras that the analysis sections use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusStats {
    /// Number of documents (`D`).
    pub num_docs: usize,
    /// Total token occurrences (`T`).
    pub num_tokens: u64,
    /// Vocabulary size (`V`).
    pub vocab_size: usize,
    /// Mean document length (`T/D`).
    pub mean_doc_len: f64,
    /// Longest document.
    pub max_doc_len: usize,
    /// Largest term frequency (most frequent word).
    pub max_term_frequency: u64,
    /// Fraction of all tokens taken by the single most frequent word
    /// (the paper quotes 0.257% for ClueWeb12 after stop-word removal).
    pub top_word_fraction: f64,
}

impl CorpusStats {
    /// Computes statistics for a corpus.
    pub fn from_corpus(corpus: &Corpus) -> Self {
        let num_docs = corpus.num_docs();
        let num_tokens = corpus.num_tokens();
        let vocab_size = corpus.vocab_size();
        let max_doc_len = corpus.docs().iter().map(|d| d.len()).max().unwrap_or(0);
        let tf = corpus.term_frequencies();
        let max_term_frequency = tf.iter().copied().max().unwrap_or(0);
        let mean_doc_len = if num_docs == 0 { 0.0 } else { num_tokens as f64 / num_docs as f64 };
        let top_word_fraction =
            if num_tokens == 0 { 0.0 } else { max_term_frequency as f64 / num_tokens as f64 };
        Self {
            num_docs,
            num_tokens,
            vocab_size,
            mean_doc_len,
            max_doc_len,
            max_term_frequency,
            top_word_fraction,
        }
    }

    /// Renders the statistics as a Table 3 style row: `D  T  V  T/D`.
    pub fn table_row(&self, name: &str) -> String {
        format!(
            "{name:<22} D={:<10} T={:<12} V={:<9} T/D={:.1}",
            self.num_docs, self.num_tokens, self.vocab_size, self.mean_doc_len
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::CorpusBuilder;

    #[test]
    fn stats_of_small_corpus() {
        let mut b = CorpusBuilder::new();
        b.push_text_doc(["a", "b", "a", "a"]);
        b.push_text_doc(["b", "c"]);
        let c = b.build().unwrap();
        let s = c.stats();
        assert_eq!(s.num_docs, 2);
        assert_eq!(s.num_tokens, 6);
        assert_eq!(s.vocab_size, 3);
        assert!((s.mean_doc_len - 3.0).abs() < 1e-12);
        assert_eq!(s.max_doc_len, 4);
        assert_eq!(s.max_term_frequency, 3);
        assert!((s.top_word_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty_corpus() {
        let c = crate::Corpus::from_parts(vec![], crate::Vocabulary::new()).unwrap();
        let s = c.stats();
        assert_eq!(s.num_docs, 0);
        assert_eq!(s.mean_doc_len, 0.0);
        assert_eq!(s.top_word_fraction, 0.0);
    }

    #[test]
    fn table_row_contains_fields() {
        let mut b = CorpusBuilder::new();
        b.push_text_doc(["x", "y"]);
        let c = b.build().unwrap();
        let row = c.stats().table_row("Tiny");
        assert!(row.contains("Tiny"));
        assert!(row.contains("D=2") || row.contains("D=1"));
    }
}
