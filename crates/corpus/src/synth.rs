//! Synthetic corpus generators.
//!
//! The paper evaluates on NYTimes, PubMed and ClueWeb12, which are not
//! redistributable here. These generators produce corpora with the same
//! *statistical shape* — document-length distribution, Zipfian word
//! frequencies, and (for the LDA generator) a planted topic structure — so the
//! relative behaviour of the samplers (convergence curves, speedups, cache
//! behaviour) is preserved. See DESIGN.md §4 for the substitution argument.

use crate::{Corpus, Document, Vocabulary, WordId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration shared by the synthetic generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Number of documents `D`.
    pub num_docs: usize,
    /// Vocabulary size `V`.
    pub vocab_size: usize,
    /// Mean document length `T/D` (document lengths are geometric around it).
    pub mean_doc_len: usize,
    /// Number of planted topics (LDA generator only).
    pub num_topics: usize,
    /// Dirichlet hyper-parameter for document-topic proportions.
    pub alpha: f64,
    /// Dirichlet hyper-parameter for topic-word distributions.
    pub beta: f64,
    /// Zipf exponent for the unigram generator and for the word-popularity
    /// skew of the LDA generator.
    pub zipf_exponent: f64,
    /// Seed for reproducibility.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            num_docs: 1000,
            vocab_size: 2000,
            mean_doc_len: 100,
            num_topics: 20,
            alpha: 0.5,
            beta: 0.1,
            zipf_exponent: 1.05,
            seed: 42,
        }
    }
}

/// Samples from a Gamma(shape, 1) distribution using the Marsaglia–Tsang
/// method (with the standard boost for shape < 1). Only needs a uniform RNG,
/// so we avoid an extra dependency on `rand_distr`.
fn sample_gamma<R: Rng>(rng: &mut R, shape: f64) -> f64 {
    debug_assert!(shape > 0.0);
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^{1/a}
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        return sample_gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen::<f64>();
        let x = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Samples a point on the probability simplex from a symmetric Dirichlet.
fn sample_dirichlet<R: Rng>(rng: &mut R, dim: usize, concentration: f64) -> Vec<f64> {
    let mut g: Vec<f64> = (0..dim).map(|_| sample_gamma(rng, concentration)).collect();
    let sum: f64 = g.iter().sum();
    if sum <= 0.0 {
        // Degenerate draw (can happen for very small concentration); fall back to uniform.
        return vec![1.0 / dim as f64; dim];
    }
    for x in &mut g {
        *x /= sum;
    }
    g
}

/// Builds a cumulative distribution for O(log n) sampling by binary search.
#[derive(Debug, Clone)]
struct Cdf {
    cumulative: Vec<f64>,
}

impl Cdf {
    fn from_weights(weights: &[f64]) -> Self {
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            acc += w.max(0.0);
            cumulative.push(acc);
        }
        Self { cumulative }
    }

    fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("empty CDF");
        let u = rng.gen::<f64>() * total;
        match self.cumulative.binary_search_by(|x| x.partial_cmp(&u).unwrap()) {
            Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

/// Generates corpora from the LDA generative model itself (Section 2.1):
/// draw `θ_d ~ Dir(α)`, `φ_k ~ Dir(β)` (skewed towards a Zipfian word
/// popularity), then for each token draw a topic and a word.
///
/// Because the topics are planted, integration tests can verify that the
/// samplers actually *recover* structure, not merely that likelihood goes up.
#[derive(Debug, Clone)]
pub struct LdaGenerator {
    config: SyntheticConfig,
    /// The planted topic-word distributions, one per topic.
    topic_word: Vec<Vec<f64>>,
}

impl LdaGenerator {
    /// Creates a generator with freshly drawn planted topics.
    pub fn new(config: SyntheticConfig) -> Self {
        assert!(config.num_topics > 0, "need at least one topic");
        assert!(config.vocab_size > 0, "need a non-empty vocabulary");
        let mut rng = SmallRng::seed_from_u64(config.seed);
        // Zipfian base popularity so the generated corpus has the power-law
        // column sizes that Section 5 relies on.
        let base: Vec<f64> = (0..config.vocab_size)
            .map(|i| 1.0 / ((i + 1) as f64).powf(config.zipf_exponent))
            .collect();
        let topic_word = (0..config.num_topics)
            .map(|_| {
                let dir = sample_dirichlet(&mut rng, config.vocab_size, config.beta.max(1e-3));
                let mut phi: Vec<f64> = dir.iter().zip(&base).map(|(d, b)| d * b).collect();
                let s: f64 = phi.iter().sum();
                for p in &mut phi {
                    *p /= s;
                }
                phi
            })
            .collect();
        Self { config, topic_word }
    }

    /// The planted topic-word distributions (row `k` sums to one).
    pub fn planted_topics(&self) -> &[Vec<f64>] {
        &self.topic_word
    }

    /// The configuration used to build the generator.
    pub fn config(&self) -> &SyntheticConfig {
        &self.config
    }

    /// Generates the corpus. Deterministic for a fixed configuration.
    pub fn generate(&self) -> Corpus {
        let cfg = &self.config;
        let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(1));
        let topic_cdfs: Vec<Cdf> = self.topic_word.iter().map(|p| Cdf::from_weights(p)).collect();
        let mut docs = Vec::with_capacity(cfg.num_docs);
        for _ in 0..cfg.num_docs {
            let theta = sample_dirichlet(&mut rng, cfg.num_topics, cfg.alpha.max(1e-3));
            let theta_cdf = Cdf::from_weights(&theta);
            let len = sample_doc_len(&mut rng, cfg.mean_doc_len);
            let mut tokens = Vec::with_capacity(len);
            for _ in 0..len {
                let k = theta_cdf.sample(&mut rng);
                let w = topic_cdfs[k].sample(&mut rng) as WordId;
                tokens.push(w);
            }
            docs.push(Document::from_tokens(tokens));
        }
        let vocab = Vocabulary::synthetic(cfg.vocab_size);
        Corpus::from_parts(docs, vocab).expect("generated tokens are always in range")
    }
}

/// Generates corpora whose words are drawn i.i.d. from a Zipf distribution
/// (no topic structure). Used by the partitioning and cache experiments,
/// which only depend on the word-frequency power law.
#[derive(Debug, Clone)]
pub struct ZipfGenerator {
    config: SyntheticConfig,
}

impl ZipfGenerator {
    /// Creates a Zipfian unigram generator.
    pub fn new(config: SyntheticConfig) -> Self {
        assert!(config.vocab_size > 0, "need a non-empty vocabulary");
        Self { config }
    }

    /// Generates the corpus. Deterministic for a fixed configuration.
    pub fn generate(&self) -> Corpus {
        let cfg = &self.config;
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let weights: Vec<f64> =
            (0..cfg.vocab_size).map(|i| 1.0 / ((i + 1) as f64).powf(cfg.zipf_exponent)).collect();
        let cdf = Cdf::from_weights(&weights);
        let mut docs = Vec::with_capacity(cfg.num_docs);
        for _ in 0..cfg.num_docs {
            let len = sample_doc_len(&mut rng, cfg.mean_doc_len);
            let tokens: Vec<WordId> = (0..len).map(|_| cdf.sample(&mut rng) as WordId).collect();
            docs.push(Document::from_tokens(tokens));
        }
        let vocab = Vocabulary::synthetic(cfg.vocab_size);
        Corpus::from_parts(docs, vocab).expect("generated tokens are always in range")
    }

    /// Just the term-frequency profile (column sizes), without materializing
    /// documents — used by the Figure 4 partitioning experiment, which needs
    /// ClueWeb-scale vocabularies that would be too big to materialize.
    pub fn term_frequency_profile(&self, total_tokens: u64) -> Vec<u64> {
        let cfg = &self.config;
        let weights: Vec<f64> =
            (0..cfg.vocab_size).map(|i| 1.0 / ((i + 1) as f64).powf(cfg.zipf_exponent)).collect();
        let sum: f64 = weights.iter().sum();
        let mut tf: Vec<u64> =
            weights.iter().map(|w| ((w / sum) * total_tokens as f64).round() as u64).collect();
        // Keep the total exact by dumping the rounding residue on the most frequent word.
        let assigned: u64 = tf.iter().sum();
        if assigned < total_tokens {
            tf[0] += total_tokens - assigned;
        } else if assigned > total_tokens {
            tf[0] = tf[0].saturating_sub(assigned - total_tokens);
        }
        tf
    }
}

/// Document lengths: geometric-ish around the mean, at least 2 tokens, using a
/// simple two-sided jitter so the distribution has realistic spread without
/// extreme outliers.
fn sample_doc_len<R: Rng>(rng: &mut R, mean: usize) -> usize {
    let mean = mean.max(2) as f64;
    let u: f64 = rng.gen_range(0.25f64..1.75f64);
    (mean * u).round().max(2.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_sampler_has_roughly_correct_mean() {
        let mut rng = SmallRng::seed_from_u64(7);
        for &shape in &[0.5, 1.0, 2.5, 10.0] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| sample_gamma(&mut rng, shape)).sum::<f64>() / n as f64;
            assert!((mean - shape).abs() < 0.15 * shape.max(1.0), "gamma({shape}) mean was {mean}");
        }
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut rng = SmallRng::seed_from_u64(3);
        for &c in &[0.01, 0.5, 5.0] {
            let d = sample_dirichlet(&mut rng, 50, c);
            let s: f64 = d.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(d.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn lda_generator_is_deterministic() {
        let cfg = SyntheticConfig {
            num_docs: 50,
            vocab_size: 200,
            mean_doc_len: 30,
            ..Default::default()
        };
        let a = LdaGenerator::new(cfg).generate();
        let b = LdaGenerator::new(cfg).generate();
        assert_eq!(a.num_tokens(), b.num_tokens());
        assert_eq!(a.term_frequencies(), b.term_frequencies());
    }

    #[test]
    fn lda_generator_respects_config_shape() {
        let cfg = SyntheticConfig {
            num_docs: 80,
            vocab_size: 300,
            mean_doc_len: 40,
            ..Default::default()
        };
        let c = LdaGenerator::new(cfg).generate();
        assert_eq!(c.num_docs(), 80);
        assert_eq!(c.vocab_size(), 300);
        let mean = c.num_tokens() as f64 / c.num_docs() as f64;
        assert!((mean - 40.0).abs() < 12.0, "mean doc len {mean}");
    }

    #[test]
    fn planted_topics_are_distributions() {
        let gen = LdaGenerator::new(SyntheticConfig {
            vocab_size: 100,
            num_topics: 5,
            ..Default::default()
        });
        for phi in gen.planted_topics() {
            let s: f64 = phi.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn zipf_generator_produces_power_law() {
        let cfg = SyntheticConfig {
            num_docs: 300,
            vocab_size: 1000,
            mean_doc_len: 100,
            zipf_exponent: 1.1,
            ..Default::default()
        };
        let c = ZipfGenerator::new(cfg).generate();
        let mut tf = c.term_frequencies();
        tf.sort_unstable_by(|a, b| b.cmp(a));
        // The most frequent word should dominate: top-1% of words should carry a
        // disproportionate share of tokens.
        let top: u64 = tf.iter().take(10).sum();
        assert!(top as f64 > 0.2 * c.num_tokens() as f64, "top-10 share too small: {top}");
    }

    #[test]
    fn term_frequency_profile_sums_to_total() {
        let cfg = SyntheticConfig { vocab_size: 5000, zipf_exponent: 1.0, ..Default::default() };
        let gen = ZipfGenerator::new(cfg);
        let tf = gen.term_frequency_profile(1_000_000);
        assert_eq!(tf.iter().sum::<u64>(), 1_000_000);
        assert!(tf[0] >= tf[100]);
    }

    #[test]
    fn doc_len_sampler_stays_positive() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(sample_doc_len(&mut rng, 1) >= 2);
            let l = sample_doc_len(&mut rng, 100);
            assert!((25..=200).contains(&l), "doc len {l} out of expected range");
        }
    }
}
