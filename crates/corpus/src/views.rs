//! Document-major and word-major token views.
//!
//! Section 4.1 of the paper defines the topic-assignment matrix `X` (documents
//! × words, one cell per token occurrence) and its two linearizations:
//! `Zd` — tokens grouped by document (row-major), and `Zw` — tokens grouped by
//! word (column-major). The samplers need both orderings: document phases
//! visit tokens document-by-document, word phases word-by-word.
//!
//! A [`TokenRef`] identifies one token occurrence by a stable *token index*
//! `0..T` assigned in document-major order, so that per-token state (topic
//! assignment, MH proposals) can live in flat arrays indexed by it regardless
//! of the visiting order.

use crate::{Corpus, DocId, WordId};

/// A reference to a single token occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TokenRef {
    /// Document the token belongs to.
    pub doc: DocId,
    /// Word of the token.
    pub word: WordId,
    /// Stable token index in `0..T` (document-major order).
    pub index: u32,
}

/// Document-major view: for each document, the contiguous range of token
/// indices and their word ids.
#[derive(Debug, Clone)]
pub struct DocMajorView {
    /// `offsets[d]..offsets[d+1]` is the token-index range of document `d`.
    offsets: Vec<u32>,
    /// `words[i]` is the word of token index `i`.
    words: Vec<WordId>,
}

impl DocMajorView {
    /// Builds the document-major view of a corpus.
    pub fn build(corpus: &Corpus) -> Self {
        let mut offsets = Vec::with_capacity(corpus.num_docs() + 1);
        let mut words = Vec::with_capacity(corpus.num_tokens() as usize);
        offsets.push(0u32);
        for (_, doc) in corpus.iter() {
            words.extend_from_slice(doc.tokens());
            offsets.push(words.len() as u32);
        }
        Self { offsets, words }
    }

    /// Number of documents.
    pub fn num_docs(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of tokens.
    pub fn num_tokens(&self) -> usize {
        self.words.len()
    }

    /// The token-index range of document `d`.
    pub fn doc_range(&self, d: DocId) -> std::ops::Range<usize> {
        let d = d as usize;
        self.offsets[d] as usize..self.offsets[d + 1] as usize
    }

    /// Words of document `d`, indexed by position within the document.
    pub fn doc_words(&self, d: DocId) -> &[WordId] {
        &self.words[self.doc_range(d)]
    }

    /// Word of token index `i`.
    pub fn word_of(&self, token_index: usize) -> WordId {
        self.words[token_index]
    }

    /// Flat word array, indexed by token index.
    pub fn words(&self) -> &[WordId] {
        &self.words
    }

    /// Document length `L_d`.
    pub fn doc_len(&self, d: DocId) -> usize {
        self.doc_range(d).len()
    }

    /// Iterates over every token as a [`TokenRef`], document by document.
    pub fn iter_tokens(&self) -> impl Iterator<Item = TokenRef> + '_ {
        (0..self.num_docs()).flat_map(move |d| {
            self.doc_range(d as DocId).map(move |i| TokenRef {
                doc: d as DocId,
                word: self.words[i],
                index: i as u32,
            })
        })
    }
}

/// Word-major view: for each word, the token indices of its occurrences and
/// the documents they occur in. This is the `Zw` / CSC ordering of the paper;
/// within each word the occurrences are sorted by document id, which is
/// exactly the property Section 5.2 relies on for cache-friendly indirect row
/// accesses.
#[derive(Debug, Clone)]
pub struct WordMajorView {
    /// `offsets[w]..offsets[w+1]` is the occurrence range of word `w`.
    offsets: Vec<u32>,
    /// Token index (into the document-major arrays) of each occurrence.
    token_indices: Vec<u32>,
    /// Document of each occurrence, parallel to `token_indices`.
    docs: Vec<DocId>,
}

impl WordMajorView {
    /// Builds the word-major view from the document-major view.
    pub fn build(corpus: &Corpus, doc_view: &DocMajorView) -> Self {
        let vocab_size = corpus.vocab_size();
        let mut counts = vec![0u32; vocab_size + 1];
        for &w in doc_view.words() {
            counts[w as usize + 1] += 1;
        }
        for w in 0..vocab_size {
            counts[w + 1] += counts[w];
        }
        let offsets = counts.clone();
        let total = doc_view.num_tokens();
        let mut token_indices = vec![0u32; total];
        let mut docs = vec![0u32; total];
        let mut cursor = offsets.clone();
        // Visiting tokens document-by-document (increasing doc id) guarantees
        // that within each word bucket the occurrences are sorted by doc id.
        for d in 0..doc_view.num_docs() {
            for i in doc_view.doc_range(d as DocId) {
                let w = doc_view.words()[i] as usize;
                let slot = cursor[w] as usize;
                token_indices[slot] = i as u32;
                docs[slot] = d as DocId;
                cursor[w] += 1;
            }
        }
        Self { offsets, token_indices, docs }
    }

    /// Number of words.
    pub fn num_words(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of tokens.
    pub fn num_tokens(&self) -> usize {
        self.token_indices.len()
    }

    /// Occurrence range of word `w`.
    pub fn word_range(&self, w: WordId) -> std::ops::Range<usize> {
        let w = w as usize;
        self.offsets[w] as usize..self.offsets[w + 1] as usize
    }

    /// Term frequency `L_w` of word `w`.
    pub fn word_len(&self, w: WordId) -> usize {
        self.word_range(w).len()
    }

    /// Token indices (into document-major order) of the occurrences of `w`.
    pub fn word_token_indices(&self, w: WordId) -> &[u32] {
        &self.token_indices[self.word_range(w)]
    }

    /// Documents of the occurrences of `w`, parallel to
    /// [`word_token_indices`](Self::word_token_indices).
    pub fn word_docs(&self, w: WordId) -> &[DocId] {
        &self.docs[self.word_range(w)]
    }

    /// Iterates over every token as a [`TokenRef`], word by word.
    pub fn iter_tokens(&self) -> impl Iterator<Item = TokenRef> + '_ {
        (0..self.num_words()).flat_map(move |w| {
            self.word_range(w as WordId).map(move |slot| TokenRef {
                doc: self.docs[slot],
                word: w as WordId,
                index: self.token_indices[slot],
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CorpusBuilder;

    fn fig1_corpus() -> Corpus {
        let mut b = CorpusBuilder::new();
        b.push_text_doc(["ios", "android"]);
        b.push_text_doc(["apple", "iphone", "apple", "ios"]);
        b.push_text_doc(["apple", "orange"]);
        b.build().unwrap()
    }

    #[test]
    fn doc_view_preserves_lengths_and_words() {
        let c = fig1_corpus();
        let dv = DocMajorView::build(&c);
        assert_eq!(dv.num_docs(), 3);
        assert_eq!(dv.num_tokens(), 8);
        assert_eq!(dv.doc_len(0), 2);
        assert_eq!(dv.doc_len(1), 4);
        assert_eq!(dv.doc_len(2), 2);
        let apple = c.vocab().get("apple").unwrap();
        assert_eq!(dv.doc_words(1).iter().filter(|&&w| w == apple).count(), 2);
    }

    #[test]
    fn word_view_is_a_permutation_of_doc_view() {
        let c = fig1_corpus();
        let dv = DocMajorView::build(&c);
        let wv = WordMajorView::build(&c, &dv);
        assert_eq!(wv.num_tokens(), dv.num_tokens());
        let mut seen = vec![false; dv.num_tokens()];
        for t in wv.iter_tokens() {
            assert_eq!(dv.word_of(t.index as usize), t.word);
            assert!(!seen[t.index as usize], "token index repeated");
            seen[t.index as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn word_occurrences_are_sorted_by_doc() {
        let c = fig1_corpus();
        let dv = DocMajorView::build(&c);
        let wv = WordMajorView::build(&c, &dv);
        for w in 0..wv.num_words() {
            let docs = wv.word_docs(w as WordId);
            assert!(docs.windows(2).all(|p| p[0] <= p[1]), "word {w} docs not sorted: {docs:?}");
        }
    }

    #[test]
    fn term_frequencies_match_word_view() {
        let c = fig1_corpus();
        let dv = DocMajorView::build(&c);
        let wv = WordMajorView::build(&c, &dv);
        let tf = c.term_frequencies();
        for (w, &freq) in tf.iter().enumerate() {
            assert_eq!(freq as usize, wv.word_len(w as WordId));
        }
    }

    #[test]
    fn empty_corpus_views() {
        let c = Corpus::from_parts(vec![], crate::Vocabulary::new()).unwrap();
        let dv = DocMajorView::build(&c);
        let wv = WordMajorView::build(&c, &dv);
        assert_eq!(dv.num_docs(), 0);
        assert_eq!(dv.num_tokens(), 0);
        assert_eq!(wv.num_words(), 0);
        assert_eq!(wv.iter_tokens().count(), 0);
    }

    #[test]
    fn doc_iter_tokens_covers_all_tokens_in_order() {
        let c = fig1_corpus();
        let dv = DocMajorView::build(&c);
        let tokens: Vec<TokenRef> = dv.iter_tokens().collect();
        assert_eq!(tokens.len(), 8);
        for (i, t) in tokens.iter().enumerate() {
            assert_eq!(t.index as usize, i);
        }
        assert_eq!(tokens[0].doc, 0);
        assert_eq!(tokens[7].doc, 2);
    }
}
