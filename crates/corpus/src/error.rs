//! Error type shared across the corpus crate.

use std::fmt;

/// Errors produced while building, reading or writing corpora.
#[derive(Debug)]
pub enum CorpusError {
    /// An I/O error while reading or writing a corpus file.
    Io(std::io::Error),
    /// A line of an input file could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A token id referenced a word outside of the vocabulary.
    WordOutOfRange {
        /// The offending word id.
        word: u32,
        /// The vocabulary size.
        vocab_size: usize,
    },
    /// A document id was out of range for the corpus.
    DocOutOfRange {
        /// The offending document id.
        doc: u32,
        /// The number of documents.
        num_docs: usize,
    },
    /// The input described an empty corpus where a non-empty one is required.
    Empty(&'static str),
    /// A query contained a word that is not in the frozen vocabulary and the
    /// caller's [`OovPolicy`](crate::io::OovPolicy) rejects out-of-vocabulary
    /// words.
    UnknownWord {
        /// The offending (normalized) word.
        word: String,
    },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Io(e) => write!(f, "i/o error: {e}"),
            CorpusError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            CorpusError::WordOutOfRange { word, vocab_size } => {
                write!(f, "word id {word} out of range for vocabulary of size {vocab_size}")
            }
            CorpusError::DocOutOfRange { doc, num_docs } => {
                write!(f, "document id {doc} out of range for corpus of {num_docs} documents")
            }
            CorpusError::Empty(what) => write!(f, "empty input: {what}"),
            CorpusError::UnknownWord { word } => {
                write!(f, "word {word:?} is not in the model vocabulary")
            }
        }
    }
}

impl std::error::Error for CorpusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CorpusError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CorpusError {
    fn from(e: std::io::Error) -> Self {
        CorpusError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = CorpusError::Parse { line: 3, message: "bad count".into() };
        assert!(e.to_string().contains("line 3"));
        let e = CorpusError::WordOutOfRange { word: 9, vocab_size: 5 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('5'));
        let e = CorpusError::Empty("corpus");
        assert!(e.to_string().contains("empty"));
    }

    #[test]
    fn io_error_preserves_source() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: CorpusError = io.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
