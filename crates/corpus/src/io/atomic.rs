//! Crash-safe file writes: temp file in the target directory + fsync +
//! atomic rename.
//!
//! Every persistent artifact of the workspace (checkpoints, frozen models,
//! bench reports) is written through [`atomic_write`], which guarantees that
//! a reader can **never** observe a torn write: the bytes land in a hidden
//! temp file next to the destination, are flushed and fsync'd, and only then
//! renamed over the target — rename within one directory is atomic on every
//! platform this workspace builds on. A crash (or an injected fault) at any
//! point leaves either the old file or the new file, never a prefix of the
//! new one, and the temp file is removed on every failure path.
//!
//! The module also owns the **write fault injection** point of the
//! deterministic fault harness: [`fail_nth_write`] arms a thread-local
//! countdown so the Nth `write` call issued through an [`atomic_write`]
//! writer returns a typed I/O error. Crash-mid-save is thereby a scripted,
//! reproducible test — not a hope that `kill -9` lands at the right moment.
//! The countdown is thread-local so parallel tests cannot trip each other.

use std::cell::Cell;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

thread_local! {
    /// Writes remaining before the armed fault fires; `None` = disarmed.
    static WRITE_FAULT: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Distinguishes injected write faults from genuine I/O errors in tests.
pub const INJECTED_WRITE_FAULT: &str = "injected write fault";

/// Arms the fault injector: the `n`-th `write` call (1-based) issued through
/// an [`atomic_write`] writer **on this thread** fails with a typed
/// [`std::io::Error`] whose message is [`INJECTED_WRITE_FAULT`]. The fault
/// fires once and disarms itself; call [`disarm_write_faults`] to cancel an
/// armed fault that never fired.
pub fn fail_nth_write(n: u64) {
    assert!(n > 0, "write faults are 1-based: n = 0 would never fire");
    WRITE_FAULT.with(|f| f.set(Some(n)));
}

/// Disarms a pending write fault on this thread.
pub fn disarm_write_faults() {
    WRITE_FAULT.with(|f| f.set(None));
}

/// Counts a write against the armed fault; `true` means this write must fail.
fn consume_write_budget() -> bool {
    WRITE_FAULT.with(|f| match f.get() {
        None => false,
        Some(1) => {
            f.set(None);
            true
        }
        Some(n) => {
            f.set(Some(n - 1));
            false
        }
    })
}

/// The writer handed to [`atomic_write`] closures: buffered, with the fault
/// injection point in front of the buffer so every logical `write` call from
/// the encoder counts as one potential fault site.
struct FaultingWriter {
    inner: BufWriter<File>,
}

impl Write for FaultingWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if consume_write_budget() {
            return Err(std::io::Error::other(INJECTED_WRITE_FAULT));
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Removes the temp file unless the write completed and disarmed it.
struct TmpGuard {
    path: PathBuf,
    armed: bool,
}

impl Drop for TmpGuard {
    fn drop(&mut self) {
        if self.armed {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// Monotonic discriminator so concurrent writers in one process never race on
/// the same temp name.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

fn tmp_path_for(path: &Path) -> PathBuf {
    let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
    let tmp = format!(
        ".{name}.tmp-{}-{}",
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    );
    path.with_file_name(tmp)
}

/// Writes a file crash-safely: `write` streams the content into a hidden temp
/// file in the destination directory, which is flushed, fsync'd and atomically
/// renamed to `path` only after `write` returns success. On any error — from
/// the closure, the filesystem, or an injected fault — the destination is
/// untouched and the temp file is removed. Parent directories are created as
/// needed.
///
/// The error type is the caller's (any `E: From<std::io::Error>`), so codec
/// writers pass their typed errors through unchanged.
pub fn atomic_write<E, F>(path: &Path, write: F) -> Result<(), E>
where
    E: From<std::io::Error>,
    F: FnOnce(&mut dyn Write) -> Result<(), E>,
{
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = tmp_path_for(path);
    let mut guard = TmpGuard { path: tmp.clone(), armed: true };
    let file = File::create(&tmp)?;
    let mut w = FaultingWriter { inner: BufWriter::new(file) };
    write(&mut w)?;
    w.flush()?;
    let file = w.inner.into_inner().map_err(|e| std::io::Error::from(e.into_error().kind()))?;
    // The data must be durable *before* the rename makes it visible — a crash
    // between rename and writeback must not surface a hollow file.
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, path)?;
    guard.armed = false;
    // Durability of the rename itself: fsync the directory entry.
    #[cfg(unix)]
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() { Path::new(".") } else { parent };
        File::open(dir)?.sync_all()?;
    }
    Ok(())
}

/// Crash-safe counterpart of `std::fs::write`: the whole of `contents`
/// appears at `path` atomically, or `path` is untouched.
pub fn atomic_write_bytes(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    atomic_write(path, |w| w.write_all(contents))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("warplda-atomic-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn debris_in(dir: &Path) -> Vec<PathBuf> {
        std::fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.file_name().unwrap().to_string_lossy().contains(".tmp-"))
            .collect()
    }

    #[test]
    fn successful_write_lands_whole_with_no_debris() {
        let dir = tmp_dir("ok");
        let path = dir.join("artifact.bin");
        atomic_write_bytes(&path, b"first version").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first version");
        atomic_write_bytes(&path, b"second, longer version").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer version");
        assert!(debris_in(&dir).is_empty(), "temp files must not survive success");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn closure_error_leaves_original_untouched_and_cleans_up() {
        let dir = tmp_dir("closure-err");
        let path = dir.join("artifact.bin");
        atomic_write_bytes(&path, b"original").unwrap();
        let err = atomic_write::<std::io::Error, _>(&path, |w| {
            w.write_all(b"half a new ver")?;
            Err(std::io::Error::other("encoder blew up"))
        })
        .unwrap_err();
        assert_eq!(err.to_string(), "encoder blew up");
        assert_eq!(std::fs::read(&path).unwrap(), b"original");
        assert!(debris_in(&dir).is_empty(), "temp file must be removed on failure");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_nth_write_fault_aborts_without_touching_the_target() {
        let dir = tmp_dir("inject");
        let path = dir.join("artifact.bin");
        atomic_write_bytes(&path, b"stable").unwrap();
        // Three writes scripted; the second one fails.
        fail_nth_write(2);
        let err = atomic_write::<std::io::Error, _>(&path, |w| {
            w.write_all(b"one")?;
            w.write_all(b"two")?;
            w.write_all(b"three")
        })
        .unwrap_err();
        assert!(err.to_string().contains(INJECTED_WRITE_FAULT), "{err}");
        assert_eq!(std::fs::read(&path).unwrap(), b"stable");
        assert!(debris_in(&dir).is_empty());
        // The fault disarmed itself: the retry succeeds.
        atomic_write_bytes(&path, b"onetwothree").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"onetwothree");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disarm_cancels_a_pending_fault() {
        let dir = tmp_dir("disarm");
        let path = dir.join("artifact.bin");
        fail_nth_write(1);
        disarm_write_faults();
        atomic_write_bytes(&path, b"clean").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"clean");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn first_write_failure_means_no_file_at_all() {
        let dir = tmp_dir("no-file");
        let path = dir.join("never-created.bin");
        fail_nth_write(1);
        assert!(atomic_write_bytes(&path, b"doomed").is_err());
        assert!(!path.exists(), "a failed first save must not create the target");
        assert!(debris_in(&dir).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
