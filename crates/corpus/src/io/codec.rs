//! A small self-contained binary codec for model checkpoints.
//!
//! The build environment has no package registry, so instead of pulling in a
//! real serialization framework the workspace writes its persistent artifacts
//! (sampler checkpoints, model snapshots, vocabularies) through this module:
//! little-endian primitives behind an [`Encoder`]/[`Decoder`] pair, wrapped in
//! a *framed container* with a magic number, a format version and an FNV-1a
//! checksum so that truncated, corrupted or foreign files are rejected with a
//! typed [`CodecError`] instead of being silently misread.
//!
//! Framed container layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"WLDACKPT"
//! 8       4     format version (currently 2)
//! 12      8     payload length in bytes
//! 20      8     FNV-1a 64 checksum of the payload
//! 28      n     payload
//! ```
//!
//! **Format history.** Version 1 stored WarpLDA's per-token state as two
//! separate arrays (assignments, then a flat proposal array). Version 2
//! stores the packed per-entry records (assignment + `M` proposals
//! interleaved) and drops the parallel driver's worker-count field, whose
//! continuation is now thread-count independent. v1 files are rejected with
//! the typed [`CodecError::LegacyVersion`] — re-save the model under the
//! current format; there is no in-place migration because v1 payloads do not
//! record which layout their sampler section uses.
//!
//! The payload itself is written by the caller via an [`Encoder`]; the
//! checkpoint layer in `warplda-core` composes sampler state, model
//! parameters and (optionally) a [`Vocabulary`] inside one payload.
//!
//! The container materializes the whole payload in memory on both sides so
//! the length and checksum can sit in the header (peak memory ≈ 2× the
//! serialized state). Fine at the corpus scales this workspace trains; if a
//! future PR checkpoints multi-GB models, move the checksum to a trailer and
//! stream the payload instead — that is a format-version bump.

use std::io::{Read, Write};

use crate::{Corpus, Document, Vocabulary};

/// Magic number opening every framed file: identifies WarpLDA checkpoints.
pub const MAGIC: [u8; 8] = *b"WLDACKPT";

/// Magic number of frozen serving models ([`MODEL_MAGIC`] files hold a
/// read-optimized `TopicModel`, written by the `warplda-serve` crate). The
/// container layout is identical to checkpoints; only the magic differs, so a
/// checkpoint can never be misread as a model or vice versa.
pub const MODEL_MAGIC: [u8; 8] = *b"WLDAMODL";

/// Current format version of the framed container. Bump when the payload
/// layout changes incompatibly; readers reject versions they do not know.
/// See the module docs for the format history.
pub const FORMAT_VERSION: u32 = 2;

/// Longest string (in bytes) the decoder will allocate for; guards against
/// reading a length field from a corrupt file and allocating gigabytes.
const MAX_STRING_LEN: u64 = 1 << 20;

/// Errors produced while encoding or decoding framed binary data.
#[derive(Debug)]
pub enum CodecError {
    /// An underlying I/O error (file missing, disk full, short read, …).
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`] — not a WarpLDA checkpoint.
    BadMagic,
    /// The file's format version is newer than this reader understands.
    UnsupportedVersion(u32),
    /// The file uses a superseded format this reader deliberately no longer
    /// decodes (v1 predates the packed token-record layout). Re-save the
    /// model with the current code.
    LegacyVersion(u32),
    /// The payload's checksum does not match the header.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum recomputed over the payload actually read.
        found: u64,
    },
    /// The payload decoded to something structurally invalid.
    Corrupt(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "I/O error: {e}"),
            CodecError::BadMagic => write!(f, "bad magic: not a WarpLDA checkpoint file"),
            CodecError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint format version {v} (reader supports {FORMAT_VERSION})"
                )
            }
            CodecError::LegacyVersion(v) => {
                write!(
                    f,
                    "checkpoint format version {v} is superseded (current: {FORMAT_VERSION}); \
                     v1 predates the packed token-record layout — re-train or re-save the model"
                )
            }
            CodecError::ChecksumMismatch { expected, found } => {
                write!(f, "checksum mismatch: header says {expected:#018x}, payload hashes to {found:#018x}")
            }
            CodecError::Corrupt(msg) => write!(f, "corrupt checkpoint payload: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        CodecError::Io(e)
    }
}

/// Result alias for codec operations.
pub type CodecResult<T> = Result<T, CodecError>;

/// FNV-1a 64-bit hash — the integrity checksum of the framed container.
///
/// Not cryptographic; it exists to catch truncation and bit rot, the failure
/// modes that actually happen to checkpoint files on disk.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Writes little-endian primitives to an underlying writer.
pub struct Encoder<'a> {
    w: &'a mut dyn Write,
}

impl<'a> Encoder<'a> {
    /// Wraps a writer.
    pub fn new(w: &'a mut dyn Write) -> Self {
        Self { w }
    }

    /// Writes raw bytes verbatim.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> CodecResult<()> {
        self.w.write_all(bytes)?;
        Ok(())
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, v: u8) -> CodecResult<()> {
        self.write_bytes(&[v])
    }

    /// Writes a `u32`, little-endian.
    pub fn write_u32(&mut self, v: u32) -> CodecResult<()> {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Writes a `u64`, little-endian.
    pub fn write_u64(&mut self, v: u64) -> CodecResult<()> {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Writes a `usize` as a `u64`.
    pub fn write_usize(&mut self, v: usize) -> CodecResult<()> {
        self.write_u64(v as u64)
    }

    /// Writes an `f64` via its IEEE-754 bit pattern (exact round trip).
    pub fn write_f64(&mut self, v: f64) -> CodecResult<()> {
        self.write_u64(v.to_bits())
    }

    /// Writes a `bool` as one byte.
    pub fn write_bool(&mut self, v: bool) -> CodecResult<()> {
        self.write_u8(v as u8)
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, s: &str) -> CodecResult<()> {
        self.write_u64(s.len() as u64)?;
        self.write_bytes(s.as_bytes())
    }

    /// Writes a length-prefixed `u32` slice. Elements are staged into a
    /// stack chunk so the underlying writer sees kilobyte-sized blocks
    /// rather than one virtual call per element — checkpoints stream
    /// hundreds of millions of `u32`s through this path.
    pub fn write_u32_slice(&mut self, vs: &[u32]) -> CodecResult<()> {
        self.write_u64(vs.len() as u64)?;
        let mut buf = [0u8; CHUNK_ELEMS * 4];
        for chunk in vs.chunks(CHUNK_ELEMS) {
            for (slot, &v) in buf.chunks_exact_mut(4).zip(chunk) {
                slot.copy_from_slice(&v.to_le_bytes());
            }
            self.write_bytes(&buf[..chunk.len() * 4])?;
        }
        Ok(())
    }

    /// Writes a length-prefixed `u64` slice (chunked like
    /// [`write_u32_slice`](Self::write_u32_slice)).
    pub fn write_u64_slice(&mut self, vs: &[u64]) -> CodecResult<()> {
        self.write_u64(vs.len() as u64)?;
        let mut buf = [0u8; CHUNK_ELEMS * 8];
        for chunk in vs.chunks(CHUNK_ELEMS) {
            for (slot, &v) in buf.chunks_exact_mut(8).zip(chunk) {
                slot.copy_from_slice(&v.to_le_bytes());
            }
            self.write_bytes(&buf[..chunk.len() * 8])?;
        }
        Ok(())
    }
}

/// Elements per staged chunk of the slice codecs (8 KiB of `u64`s).
const CHUNK_ELEMS: usize = 1024;

/// Reads little-endian primitives from an underlying reader.
pub struct Decoder<'a> {
    r: &'a mut dyn Read,
}

impl<'a> Decoder<'a> {
    /// Wraps a reader.
    pub fn new(r: &'a mut dyn Read) -> Self {
        Self { r }
    }

    fn read_exact(&mut self, buf: &mut [u8]) -> CodecResult<()> {
        self.r.read_exact(buf)?;
        Ok(())
    }

    /// Reads one byte.
    pub fn read_u8(&mut self) -> CodecResult<u8> {
        let mut b = [0u8; 1];
        self.read_exact(&mut b)?;
        Ok(b[0])
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self) -> CodecResult<u32> {
        let mut b = [0u8; 4];
        self.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self) -> CodecResult<u64> {
        let mut b = [0u8; 8];
        self.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a `usize` written by [`Encoder::write_usize`], rejecting values
    /// that do not fit the host's pointer width.
    pub fn read_usize(&mut self) -> CodecResult<usize> {
        let v = self.read_u64()?;
        usize::try_from(v)
            .map_err(|_| CodecError::Corrupt(format!("length {v} exceeds the host usize")))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn read_f64(&mut self) -> CodecResult<f64> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// Reads a `bool`; any byte other than 0/1 is a corruption error.
    pub fn read_bool(&mut self) -> CodecResult<bool> {
        match self.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CodecError::Corrupt(format!("invalid bool byte {b:#04x}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn read_string(&mut self) -> CodecResult<String> {
        let len = self.read_u64()?;
        if len > MAX_STRING_LEN {
            return Err(CodecError::Corrupt(format!("string length {len} is implausibly large")));
        }
        let mut bytes = vec![0u8; len as usize];
        self.read_exact(&mut bytes)?;
        String::from_utf8(bytes)
            .map_err(|e| CodecError::Corrupt(format!("string is not UTF-8: {e}")))
    }

    /// Reads a length-prefixed `u32` vector, in kilobyte-sized blocks (the
    /// mirror of [`Encoder::write_u32_slice`]). The preallocation is capped
    /// so a corrupt length field cannot trigger a huge upfront allocation —
    /// truncated data surfaces as an I/O error at the first short chunk.
    pub fn read_u32_vec(&mut self) -> CodecResult<Vec<u32>> {
        let len = self.read_usize()?;
        let mut out = Vec::with_capacity(len.min(1 << 20));
        let mut buf = [0u8; CHUNK_ELEMS * 4];
        let mut remaining = len;
        while remaining > 0 {
            let n = remaining.min(CHUNK_ELEMS);
            self.read_exact(&mut buf[..n * 4])?;
            out.extend(
                buf[..n * 4].chunks_exact(4).map(|b| u32::from_le_bytes(b.try_into().unwrap())),
            );
            remaining -= n;
        }
        Ok(out)
    }

    /// Reads a length-prefixed `u64` vector (chunked like
    /// [`read_u32_vec`](Self::read_u32_vec)).
    pub fn read_u64_vec(&mut self) -> CodecResult<Vec<u64>> {
        let len = self.read_usize()?;
        let mut out = Vec::with_capacity(len.min(1 << 20));
        let mut buf = [0u8; CHUNK_ELEMS * 8];
        let mut remaining = len;
        while remaining > 0 {
            let n = remaining.min(CHUNK_ELEMS);
            self.read_exact(&mut buf[..n * 8])?;
            out.extend(
                buf[..n * 8].chunks_exact(8).map(|b| u64::from_le_bytes(b.try_into().unwrap())),
            );
            remaining -= n;
        }
        Ok(out)
    }
}

/// Wraps `payload` in the framed container (magic, version, length, checksum)
/// and writes it to `w` under the checkpoint magic. See
/// [`write_framed_section`] for other section kinds.
pub fn write_framed(w: &mut dyn Write, payload: &[u8]) -> CodecResult<()> {
    write_framed_section(w, MAGIC, payload)
}

/// Reads a checkpoint-magic framed container from `r`, verifying magic,
/// version, length and checksum, and returns the payload bytes.
pub fn read_framed(r: &mut dyn Read) -> CodecResult<Vec<u8>> {
    read_framed_section(r, MAGIC)
}

/// Wraps `payload` in the framed container under an explicit section magic
/// ([`MAGIC`] for checkpoints, [`MODEL_MAGIC`] for frozen serving models).
pub fn write_framed_section(w: &mut dyn Write, magic: [u8; 8], payload: &[u8]) -> CodecResult<()> {
    w.write_all(&magic)?;
    w.write_all(&FORMAT_VERSION.to_le_bytes())?;
    w.write_all(&(payload.len() as u64).to_le_bytes())?;
    w.write_all(&fnv1a64(payload).to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Reads a framed container from `r`, requiring it to open with `expected_magic`
/// (a file carrying a *different* section magic — e.g. a model where a
/// checkpoint is expected — is rejected with [`CodecError::BadMagic`]), then
/// verifies version, length and checksum and returns the payload bytes.
pub fn read_framed_section(r: &mut dyn Read, expected_magic: [u8; 8]) -> CodecResult<Vec<u8>> {
    let mut dec = Decoder::new(r);
    let mut magic = [0u8; 8];
    dec.read_exact(&mut magic)?;
    if magic != expected_magic {
        return Err(CodecError::BadMagic);
    }
    let version = dec.read_u32()?;
    // Only version 1 ever shipped before the current format; anything else
    // (0, or a future number) is unknown, not legacy.
    if version == 1 {
        return Err(CodecError::LegacyVersion(version));
    }
    if version != FORMAT_VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let len = dec.read_usize()?;
    let expected = dec.read_u64()?;
    // Grow the payload buffer chunk by chunk instead of trusting the header's
    // length field with one upfront allocation: a corrupt length over a short
    // file then fails with a typed I/O error at the first missing chunk
    // rather than aborting the process on an absurd allocation.
    const CHUNK: usize = 1 << 20;
    let mut payload = Vec::with_capacity(len.min(CHUNK));
    let mut remaining = len;
    while remaining > 0 {
        let n = remaining.min(CHUNK);
        let start = payload.len();
        payload.resize(start + n, 0);
        dec.read_exact(&mut payload[start..])?;
        remaining -= n;
    }
    let found = fnv1a64(&payload);
    if found != expected {
        return Err(CodecError::ChecksumMismatch { expected, found });
    }
    Ok(payload)
}

/// Writes a [`Vocabulary`] (word strings in id order) through an encoder.
pub fn write_vocab(enc: &mut Encoder<'_>, vocab: &Vocabulary) -> CodecResult<()> {
    enc.write_usize(vocab.len())?;
    for (_, word) in vocab.iter() {
        enc.write_str(word)?;
    }
    Ok(())
}

/// Reads a [`Vocabulary`] previously written by [`write_vocab`].
pub fn read_vocab(dec: &mut Decoder<'_>) -> CodecResult<Vocabulary> {
    let len = dec.read_usize()?;
    let mut vocab = Vocabulary::with_capacity(len);
    for i in 0..len {
        let word = dec.read_string()?;
        let id = vocab.intern(&word);
        if id as usize != i {
            return Err(CodecError::Corrupt(format!("duplicate vocabulary word {word:?}")));
        }
    }
    Ok(vocab)
}

/// Writes a full [`Corpus`] (vocabulary + per-document token-id sequences)
/// through an encoder. The distributed runtime ships the training corpus to
/// every worker through this path, inside one wire frame.
pub fn write_corpus(enc: &mut Encoder<'_>, corpus: &Corpus) -> CodecResult<()> {
    write_vocab(enc, corpus.vocab())?;
    enc.write_usize(corpus.num_docs())?;
    for doc in corpus.docs() {
        enc.write_u32_slice(doc.tokens())?;
    }
    Ok(())
}

/// Reads a [`Corpus`] previously written by [`write_corpus`], re-validating
/// every token id against the decoded vocabulary.
pub fn read_corpus(dec: &mut Decoder<'_>) -> CodecResult<Corpus> {
    let vocab = read_vocab(dec)?;
    let num_docs = dec.read_usize()?;
    let mut docs = Vec::with_capacity(num_docs.min(1 << 20));
    for _ in 0..num_docs {
        docs.push(Document::from_tokens(dec.read_u32_vec()?));
    }
    Corpus::from_parts(docs, vocab).map_err(|e| CodecError::Corrupt(format!("invalid corpus: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        {
            let mut enc = Encoder::new(&mut buf);
            enc.write_u8(7).unwrap();
            enc.write_u32(0xDEAD_BEEF).unwrap();
            enc.write_u64(u64::MAX - 3).unwrap();
            enc.write_f64(-0.125).unwrap();
            enc.write_f64(f64::NEG_INFINITY).unwrap();
            enc.write_bool(true).unwrap();
            enc.write_str("warp λδα").unwrap();
            enc.write_u32_slice(&[1, 2, 3]).unwrap();
            enc.write_u64_slice(&[9, 8]).unwrap();
        }
        let mut cursor = buf.as_slice();
        let mut dec = Decoder::new(&mut cursor);
        assert_eq!(dec.read_u8().unwrap(), 7);
        assert_eq!(dec.read_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.read_u64().unwrap(), u64::MAX - 3);
        assert_eq!(dec.read_f64().unwrap(), -0.125);
        assert_eq!(dec.read_f64().unwrap(), f64::NEG_INFINITY);
        assert!(dec.read_bool().unwrap());
        assert_eq!(dec.read_string().unwrap(), "warp λδα");
        assert_eq!(dec.read_u32_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(dec.read_u64_vec().unwrap(), vec![9, 8]);
    }

    #[test]
    fn slices_crossing_chunk_boundaries_round_trip() {
        let u32s: Vec<u32> =
            (0..CHUNK_ELEMS as u32 * 3 + 7).map(|i| i.wrapping_mul(2654435761)).collect();
        let u64s: Vec<u64> =
            (0..CHUNK_ELEMS as u64 + 1).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)).collect();
        let mut buf = Vec::new();
        {
            let mut enc = Encoder::new(&mut buf);
            enc.write_u32_slice(&u32s).unwrap();
            enc.write_u64_slice(&u64s).unwrap();
        }
        let mut cursor = buf.as_slice();
        let mut dec = Decoder::new(&mut cursor);
        assert_eq!(dec.read_u32_vec().unwrap(), u32s);
        assert_eq!(dec.read_u64_vec().unwrap(), u64s);
    }

    #[test]
    fn absurd_payload_length_is_rejected_without_allocating() {
        let mut file = Vec::new();
        write_framed(&mut file, b"tiny").unwrap();
        // Corrupt the length field (offset 12..20) to claim a 1 TiB payload:
        // the reader must fail on the missing data, not attempt the
        // allocation.
        file[12..20].copy_from_slice(&(1u64 << 40).to_le_bytes());
        assert!(matches!(read_framed(&mut file.as_slice()), Err(CodecError::Io(_))));
    }

    #[test]
    fn framed_round_trip() {
        let payload = b"the quick brown fox".to_vec();
        let mut file = Vec::new();
        write_framed(&mut file, &payload).unwrap();
        let back = read_framed(&mut file.as_slice()).unwrap();
        assert_eq!(back, payload);
    }

    #[test]
    fn model_section_round_trips_and_is_not_a_checkpoint() {
        let payload = b"frozen phi".to_vec();
        let mut file = Vec::new();
        write_framed_section(&mut file, MODEL_MAGIC, &payload).unwrap();
        let back = read_framed_section(&mut file.as_slice(), MODEL_MAGIC).unwrap();
        assert_eq!(back, payload);
        // A model file must never decode as a checkpoint, nor vice versa.
        assert!(matches!(read_framed(&mut file.as_slice()), Err(CodecError::BadMagic)));
        let mut ckpt = Vec::new();
        write_framed(&mut ckpt, &payload).unwrap();
        assert!(matches!(
            read_framed_section(&mut ckpt.as_slice(), MODEL_MAGIC),
            Err(CodecError::BadMagic)
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut file = Vec::new();
        write_framed(&mut file, b"x").unwrap();
        file[0] ^= 0xFF;
        assert!(matches!(read_framed(&mut file.as_slice()), Err(CodecError::BadMagic)));
    }

    #[test]
    fn future_version_rejected() {
        let mut file = Vec::new();
        write_framed(&mut file, b"x").unwrap();
        file[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            read_framed(&mut file.as_slice()),
            Err(CodecError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn legacy_v1_rejected_with_typed_error() {
        let mut file = Vec::new();
        write_framed(&mut file, b"x").unwrap();
        file[8..12].copy_from_slice(&1u32.to_le_bytes());
        let err = read_framed(&mut file.as_slice()).unwrap_err();
        assert!(matches!(err, CodecError::LegacyVersion(1)), "{err}");
        assert!(err.to_string().contains("packed token-record"), "{err}");
    }

    #[test]
    fn version_zero_is_unknown_not_legacy() {
        // Version 0 never existed: a header claiming it is corruption, and
        // telling the user to "re-save" such a file would be misleading.
        let mut file = Vec::new();
        write_framed(&mut file, b"x").unwrap();
        file[8..12].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_framed(&mut file.as_slice()),
            Err(CodecError::UnsupportedVersion(0))
        ));
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let mut file = Vec::new();
        write_framed(&mut file, b"precious model weights").unwrap();
        let last = file.len() - 1;
        file[last] ^= 0x01;
        assert!(matches!(
            read_framed(&mut file.as_slice()),
            Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncated_file_is_an_io_error() {
        let mut file = Vec::new();
        write_framed(&mut file, b"0123456789").unwrap();
        file.truncate(file.len() - 4);
        assert!(matches!(read_framed(&mut file.as_slice()), Err(CodecError::Io(_))));
    }

    #[test]
    fn vocab_round_trip() {
        let mut vocab = Vocabulary::new();
        for w in ["alpha", "beta", "gamma", "delta"] {
            vocab.intern(w);
        }
        let mut buf = Vec::new();
        write_vocab(&mut Encoder::new(&mut buf), &vocab).unwrap();
        let mut cursor = buf.as_slice();
        let back = read_vocab(&mut Decoder::new(&mut cursor)).unwrap();
        assert_eq!(back.len(), 4);
        assert_eq!(back.word(0), Some("alpha"));
        assert_eq!(back.get("delta"), Some(3));
    }

    #[test]
    fn corpus_round_trips_and_validates_token_ids() {
        let mut vocab = Vocabulary::new();
        for w in ["sun", "moon", "star"] {
            vocab.intern(w);
        }
        let docs = vec![
            Document::from_tokens(vec![0, 2, 1, 1]),
            Document::from_tokens(vec![]),
            Document::from_tokens(vec![2, 2]),
        ];
        let corpus = Corpus::from_parts(docs, vocab).unwrap();
        let mut buf = Vec::new();
        write_corpus(&mut Encoder::new(&mut buf), &corpus).unwrap();
        let mut cursor = buf.as_slice();
        let back = read_corpus(&mut Decoder::new(&mut cursor)).unwrap();
        assert_eq!(back.num_docs(), corpus.num_docs());
        assert_eq!(back.vocab_size(), corpus.vocab_size());
        assert_eq!(back.num_tokens(), corpus.num_tokens());
        for (a, b) in back.docs().iter().zip(corpus.docs()) {
            assert_eq!(a.tokens(), b.tokens());
        }
        assert_eq!(back.vocab().word(2), Some("star"));

        // A token id outside the decoded vocabulary is structural corruption.
        let mut vocab = Vocabulary::new();
        vocab.intern("only");
        let corpus = Corpus::from_parts(vec![Document::from_tokens(vec![0, 0])], vocab).unwrap();
        let mut buf = Vec::new();
        write_corpus(&mut Encoder::new(&mut buf), &corpus).unwrap();
        // Patch the single-token doc's first token id (last 8 bytes are the
        // two u32 tokens; flip the final one to an out-of-vocab id).
        let at = buf.len() - 4;
        buf[at..].copy_from_slice(&7u32.to_le_bytes());
        let mut cursor = buf.as_slice();
        let err = read_corpus(&mut Decoder::new(&mut cursor)).unwrap_err();
        assert!(matches!(err, CodecError::Corrupt(_)), "{err}");
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned value: the checksum is part of the on-disk format.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
